#include "trace/connection_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "util/expect.hpp"

namespace droppkt::trace {

namespace {
std::string format_host(const std::string& fmt, int index) {
  // fmt contains a single %d placeholder.
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt.c_str(), index);
  return std::string(buf);
}
}  // namespace

ConnectionManager::ConnectionManager(const has::ConnectionPolicy& policy,
                                     util::Rng& rng)
    : policy_(policy) {
  DROPPKT_EXPECT(policy_.cdn_hosts_per_session >= 1,
                 "ConnectionManager: need at least one CDN host per session");
  DROPPKT_EXPECT(policy_.cdn_pool_size >= policy_.cdn_hosts_per_session,
                 "ConnectionManager: pool smaller than per-session host count");
  DROPPKT_EXPECT(!policy_.cdn_host_format.empty(),
                 "ConnectionManager: cdn_host_format must be set");
  // Pick distinct shard indices from the service-wide pool. A new session
  // picking a (mostly) fresh server set is the second insight behind the
  // paper's session-identification heuristic.
  std::set<int> chosen;
  while (static_cast<int>(chosen.size()) < policy_.cdn_hosts_per_session) {
    chosen.insert(static_cast<int>(
        rng.uniform_int(0, policy_.cdn_pool_size - 1)));
  }
  for (int idx : chosen) {
    cdn_hosts_.push_back(format_host(policy_.cdn_host_format, idx));
  }
}

TlsLog ConnectionManager::collect(has::HttpLog& http, util::Rng& rng) const {
  // Live connection state per host.
  struct Conn {
    std::string host;
    double open_s = 0.0;
    double last_activity_s = 0.0;
    double ul = 0.0;
    double dl = 0.0;
    std::size_t n_http = 0;
    std::int32_t id = -1;  // stable identifier exposed to the packet layer
  };
  std::map<std::string, std::vector<Conn>> open;  // host -> live connections
  std::int32_t next_conn_id = 0;
  TlsLog out;

  // Browser preconnect: TLS connections to the session's CDN shards open
  // as soon as the page loads, before any media request. They are reused
  // by the first requests to each host (or time out unused) and give the
  // session start its characteristic burst of fresh-server transactions.
  if (!http.empty()) {
    const double t0 = http.front().request_s;
    for (const auto& host : cdn_hosts_) {
      const double open_s = t0 + rng.uniform(0.05, 0.8);
      open[host].push_back(Conn{.host = host,
                                .open_s = open_s,
                                .last_activity_s = open_s,
                                .id = next_conn_id++});
    }
  }

  auto finalize = [&](Conn&& c, double close_s) {
    out.push_back({.start_s = c.open_s,
                   .end_s = close_s,
                   .ul_bytes = c.ul + policy_.handshake_ul_bytes,
                   .dl_bytes = c.dl + policy_.handshake_dl_bytes,
                   .sni = c.host,
                   .http_count = c.n_http});
  };

  // Per-session HPACK efficiency (client builds differ in how much header
  // state they let the dynamic table absorb).
  const double hpack_factor = rng.uniform(0.10, 0.35);

  // The media host a request goes to: sticky primary shard with occasional
  // failover to another of the session's shards.
  std::size_t primary = 0;
  if (cdn_hosts_.size() > 1) {
    primary = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cdn_hosts_.size()) - 1));
  }

  for (auto& txn : http) {
    // 1. Host assignment by request kind.
    switch (txn.kind) {
      case has::HttpKind::kManifest:
        txn.host = policy_.api_host;
        break;
      case has::HttpKind::kBeacon:
        txn.host = policy_.beacon_host;
        break;
      case has::HttpKind::kAsset:
        // Assets split between the API host and the session's CDN shards.
        if (rng.bernoulli(0.5)) {
          txn.host = policy_.api_host;
          break;
        }
        [[fallthrough]];
      case has::HttpKind::kInitSegment:
      case has::HttpKind::kVideoSegment:
      case has::HttpKind::kAudioSegment: {
        if (cdn_hosts_.size() > 1 && rng.bernoulli(0.04)) {
          // Occasional shard switch (CDN load balancing).
          primary = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(cdn_hosts_.size()) - 1));
        }
        txn.host = cdn_hosts_[primary];
        break;
      }
    }

    // 2. Connection selection: reuse a live connection on that host if it
    // is within the idle timeout and under the request cap.
    auto& conns = open[txn.host];
    // Expire idle connections first.
    for (auto it = conns.begin(); it != conns.end();) {
      if (txn.request_s - it->last_activity_s > policy_.idle_timeout_s) {
        const double close_s = it->last_activity_s + policy_.idle_timeout_s;
        finalize(std::move(*it), close_s);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
    Conn* chosen = nullptr;
    for (auto& c : conns) {
      // A connection can only take the request if it is idle at that
      // moment — overlapping exchanges force additional connections,
      // which is what produces the burst of TLS transactions at session
      // start that the session-identification heuristic relies on.
      const bool idle_now = c.last_activity_s <= txn.request_s;
      if (idle_now && c.n_http < static_cast<std::size_t>(
                                     policy_.max_requests_per_connection)) {
        // Most-recently-used reuse keeps the pool small, as browsers do.
        if (chosen == nullptr || c.last_activity_s > chosen->last_activity_s) {
          chosen = &c;
        }
      }
    }
    if (chosen == nullptr) {
      conns.push_back(Conn{.host = txn.host,
                           .open_s = txn.request_s,
                           .last_activity_s = txn.request_s,
                           .id = next_conn_id++});
      chosen = &conns.back();
    }

    // 3. Account the exchange on the connection. Repeated requests on a
    // connection are HPACK-compressed: after the first exchange, most
    // header bytes collapse into the dynamic table, so uplink volume
    // tracks connection count far more than request count.
    txn.connection_id = chosen->id;
    if (chosen->n_http > 0) {
      txn.ul_bytes *= hpack_factor;
    }
    chosen->ul += txn.ul_bytes;
    chosen->dl += txn.dl_bytes;
    chosen->n_http += 1;
    chosen->last_activity_s = std::max(chosen->last_activity_s, txn.response_end_s);

    if (chosen->n_http >=
        static_cast<std::size_t>(policy_.max_requests_per_connection)) {
      // Request cap reached: connection closes right after the response.
      Conn done = std::move(*chosen);
      conns.erase(conns.begin() + (chosen - conns.data()));
      const double close_s = done.last_activity_s + 0.05;
      finalize(std::move(done), close_s);
    }
  }

  // 4. Player closed: remaining connections linger until the idle timeout
  // (the paper's overlapping-transaction effect for back-to-back sessions).
  for (auto& [host, conns] : open) {
    for (auto& c : conns) {
      const double close_s = c.last_activity_s + policy_.idle_timeout_s;
      finalize(std::move(c), close_s);
    }
  }

  std::sort(out.begin(), out.end(),
            [](const TlsTransaction& a, const TlsTransaction& b) {
              return a.start_s < b.start_s;
            });
  return out;
}

double total_bytes(const TlsLog& log) {
  double total = 0.0;
  for (const auto& t : log) total += t.ul_bytes + t.dl_bytes;
  return total;
}

}  // namespace droppkt::trace
