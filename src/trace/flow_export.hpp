// NetFlow-style flow export — the paper's stated future work (Section 5:
// "more granular flow-level data collected using NetFlow").
//
// A flow monitor sees packets, not TLS handshakes: records carry byte and
// packet counters per direction keyed by the connection 4-tuple, but no
// SNI. Long flows are split into periodic records by the exporter's
// active timeout, and idle flows are flushed by the inactive timeout —
// so, unlike TLS transactions, flow data offers tunable granularity.
// Video traffic must be identified indirectly (DNS-assisted, after
// Bermudez et al., "DNS to the rescue", IMC'12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/records.hpp"

namespace droppkt::trace {

/// One NetFlow v9-style record (both directions of a connection merged,
/// as a bidirectional-flow exporter would emit).
struct FlowRecord {
  double first_s = 0.0;        // first packet in this record's window
  double last_s = 0.0;         // last packet in this record's window
  double ul_bytes = 0.0;
  double dl_bytes = 0.0;
  std::uint32_t ul_packets = 0;
  std::uint32_t dl_packets = 0;
  std::uint32_t flow_id = 0;   // connection identity (4-tuple stand-in)
  std::string server_ip;       // destination address — the only identity
                               // a flow monitor exports (no SNI)

  double duration_s() const { return last_s - first_s; }
};

using FlowLog = std::vector<FlowRecord>;

struct FlowExportConfig {
  /// Long flows are cut into records at most this long (periodic
  /// summaries). NetFlow default is 30 min; video monitoring deployments
  /// use 60 s or less.
  double active_timeout_s = 60.0;
  /// A flow idle this long is flushed.
  double inactive_timeout_s = 15.0;
};

/// Deterministic synthetic IP for a hostname ("203.0.x.y" from its hash).
std::string server_ip_for_host(const std::string& host);

/// Export flow records from a packet trace. Packets must be sorted by
/// timestamp; per-packet server identity is supplied by `ip_of_flow`
/// (flow_id -> server IP), since PacketRecord carries no addresses.
class FlowExporter {
 public:
  explicit FlowExporter(FlowExportConfig config = {});

  FlowLog export_flows(
      const PacketLog& packets,
      const std::vector<std::pair<std::uint32_t, std::string>>& ip_of_flow) const;

 private:
  FlowExportConfig config_;
};

/// A DNS lookup observed by the monitor (client resolving a video domain).
struct DnsRecord {
  double ts_s = 0.0;
  std::string name;  // queried hostname
  std::string ip;    // answer
};

using DnsLog = std::vector<DnsRecord>;

/// Filter a flow log to the flows whose server IP was resolved from a
/// hostname matching `domain_suffix` (the DNS-assisted video-traffic
/// identification step that SNI makes unnecessary for TLS transactions).
FlowLog identify_video_flows(const FlowLog& flows, const DnsLog& dns,
                             const std::string& domain_suffix);

}  // namespace droppkt::trace
