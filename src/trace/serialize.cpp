#include "trace/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/expect.hpp"

namespace droppkt::trace {

void write_tls_csv(const TlsLog& log, std::ostream& os) {
  util::CsvTable table({"start_s", "end_s", "ul_bytes", "dl_bytes", "sni"});
  for (const auto& t : log) {
    table.add_row({util::format_double(t.start_s), util::format_double(t.end_s),
                   util::format_double(t.ul_bytes),
                   util::format_double(t.dl_bytes), t.sni});
  }
  table.write(os);
}

void write_tls_csv_file(const TlsLog& log, const std::string& path) {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("write_tls_csv_file: cannot open " + path);
  write_tls_csv(log, ofs);
}

TlsLog read_tls_csv(std::istream& is) {
  const util::CsvTable table = util::CsvTable::read(is);
  const std::size_t c_start = table.col("start_s");
  const std::size_t c_end = table.col("end_s");
  const std::size_t c_ul = table.col("ul_bytes");
  const std::size_t c_dl = table.col("dl_bytes");
  const std::size_t c_sni = table.col("sni");
  TlsLog log;
  log.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    TlsTransaction t;
    t.start_s = table.at_double(r, c_start);
    t.end_s = table.at_double(r, c_end);
    t.ul_bytes = table.at_double(r, c_ul);
    t.dl_bytes = table.at_double(r, c_dl);
    t.sni = table.at(r, c_sni);
    DROPPKT_EXPECT(t.end_s >= t.start_s,
                   "read_tls_csv: transaction end precedes start");
    log.push_back(std::move(t));
  }
  return log;
}

TlsLog read_tls_csv_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("read_tls_csv_file: cannot open " + path);
  return read_tls_csv(ifs);
}

}  // namespace droppkt::trace
