#include "trace/serialize.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>

#include "util/csv.hpp"
#include "util/expect.hpp"

namespace droppkt::trace {

namespace {

constexpr char kMagic[4] = {'D', 'P', 'T', 'L'};
constexpr std::uint32_t kVersion = 1;
// 4 doubles + u64 http_count + u32 sni length: the smallest possible record.
constexpr std::uint64_t kMinRecordBytes = 4 * 8 + 8 + 4;
// A ClientHello SNI is a DNS name; anything past this is hostile input.
constexpr std::uint64_t kMaxSniBytes = 64 * 1024;

[[noreturn]] void parse_fail(const std::string& what) {
  throw ParseError("read_tls_binary: " + what);
}

/// Bounds-checked cursor over the untrusted buffer. All length fields are
/// widened to u64 *before* any comparison or arithmetic so a narrow
/// attacker-supplied length can never wrap a size computation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::uint64_t remaining() const { return buf_.size() - pos_; }

  void bytes(void* out, std::uint64_t n, const char* what) {
    if (n > remaining()) {
      parse_fail(std::string("truncated input reading ") + what);
    }
    std::memcpy(out, buf_.data() + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
  }

  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::uint64_t u64(const char* what) {
    std::uint64_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  double f64(const char* what) {
    double v = 0.0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::string str(std::uint64_t n, const char* what) {
    if (n > remaining()) {
      parse_fail(std::string("truncated input reading ") + what);
    }
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

void append_raw(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  if (n == 0) return;
  const std::size_t old = out.size();
  out.resize(old + n);
  std::memcpy(out.data() + old, p, n);
}

}  // namespace

void write_tls_csv(const TlsLog& log, std::ostream& os) {
  util::CsvTable table({"start_s", "end_s", "ul_bytes", "dl_bytes", "sni"});
  for (const auto& t : log) {
    table.add_row({util::format_double(t.start_s), util::format_double(t.end_s),
                   util::format_double(t.ul_bytes),
                   util::format_double(t.dl_bytes), t.sni});
  }
  table.write(os);
}

void write_tls_csv_file(const TlsLog& log, const std::string& path) {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("write_tls_csv_file: cannot open " + path);
  write_tls_csv(log, ofs);
}

TlsLog read_tls_csv(std::istream& is) {
  const util::CsvTable table = util::CsvTable::read(is);
  const std::size_t c_start = table.col("start_s");
  const std::size_t c_end = table.col("end_s");
  const std::size_t c_ul = table.col("ul_bytes");
  const std::size_t c_dl = table.col("dl_bytes");
  const std::size_t c_sni = table.col("sni");
  TlsLog log;
  log.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    TlsTransaction t;
    t.start_s = table.at_double(r, c_start);
    t.end_s = table.at_double(r, c_end);
    t.ul_bytes = table.at_double(r, c_ul);
    t.dl_bytes = table.at_double(r, c_dl);
    t.sni = table.at(r, c_sni);
    DROPPKT_EXPECT(t.end_s >= t.start_s,
                   "read_tls_csv: transaction end precedes start");
    log.push_back(std::move(t));
  }
  return log;
}

TlsLog read_tls_csv_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("read_tls_csv_file: cannot open " + path);
  return read_tls_csv(ifs);
}

std::vector<std::uint8_t> tls_binary_bytes(const TlsLog& log) {
  std::vector<std::uint8_t> out;
  append_raw(out, kMagic, sizeof kMagic);
  append_raw(out, &kVersion, sizeof kVersion);
  const std::uint64_t count = log.size();
  append_raw(out, &count, sizeof count);
  for (const auto& t : log) {
    DROPPKT_EXPECT(t.sni.size() <= kMaxSniBytes,
                   "write_tls_binary: SNI exceeds the wire-format limit");
    append_raw(out, &t.start_s, sizeof t.start_s);
    append_raw(out, &t.end_s, sizeof t.end_s);
    append_raw(out, &t.ul_bytes, sizeof t.ul_bytes);
    append_raw(out, &t.dl_bytes, sizeof t.dl_bytes);
    const std::uint64_t http = t.http_count;
    append_raw(out, &http, sizeof http);
    const auto sni_len = static_cast<std::uint32_t>(t.sni.size());
    append_raw(out, &sni_len, sizeof sni_len);
    append_raw(out, t.sni.data(), t.sni.size());
  }
  return out;
}

void write_tls_binary(const TlsLog& log, std::ostream& os) {
  const auto bytes = tls_binary_bytes(log);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

void write_tls_binary_file(const TlsLog& log, const std::string& path) {
  std::ofstream ofs(path, std::ios::binary);
  if (!ofs) {
    throw std::runtime_error("write_tls_binary_file: cannot open " + path);
  }
  write_tls_binary(log, ofs);
  if (!ofs) {
    throw std::runtime_error("write_tls_binary_file: write failed " + path);
  }
}

TlsLog read_tls_binary(std::span<const std::uint8_t> buffer) {
  ByteReader r(buffer);
  char magic[4] = {};
  r.bytes(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    parse_fail("bad magic (not a DPTL stream)");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kVersion) {
    parse_fail("unsupported version " + std::to_string(version));
  }
  const std::uint64_t count = r.u64("record count");
  // Every record costs at least kMinRecordBytes, so a count the buffer
  // cannot possibly hold is rejected before any allocation — this is the
  // check that turns the "absurd length" fuzz crash into a typed error.
  if (count > r.remaining() / kMinRecordBytes) {
    parse_fail("record count " + std::to_string(count) +
               " exceeds what the buffer can hold");
  }
  TlsLog log;
  log.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TlsTransaction t;
    t.start_s = r.f64("start_s");
    t.end_s = r.f64("end_s");
    t.ul_bytes = r.f64("ul_bytes");
    t.dl_bytes = r.f64("dl_bytes");
    const std::uint64_t http = r.u64("http_count");
    if constexpr (sizeof(std::size_t) < sizeof(std::uint64_t)) {
      if (http > std::numeric_limits<std::size_t>::max()) {
        parse_fail("http_count overflows size_t");
      }
    }
    t.http_count = static_cast<std::size_t>(http);
    if (!std::isfinite(t.start_s) || !std::isfinite(t.end_s)) {
      parse_fail("non-finite transaction times");
    }
    if (t.end_s < t.start_s) parse_fail("transaction end precedes start");
    if (!(t.ul_bytes >= 0.0) || !(t.dl_bytes >= 0.0)) {
      parse_fail("negative or non-finite byte counts");
    }
    // Widen before comparing: the u32 is attacker-controlled, the limits
    // are u64, and the comparison must never truncate.
    const std::uint64_t sni_len = r.u32("sni length");
    if (sni_len > kMaxSniBytes) {
      parse_fail("SNI length " + std::to_string(sni_len) + " exceeds limit");
    }
    t.sni = r.str(sni_len, "sni");
    log.push_back(std::move(t));
  }
  if (r.remaining() != 0) {
    parse_fail(std::to_string(r.remaining()) +
               " trailing bytes after the last record");
  }
  return log;
}

TlsLog read_tls_binary(std::istream& is) {
  std::vector<std::uint8_t> buf{std::istreambuf_iterator<char>(is),
                                std::istreambuf_iterator<char>()};
  return read_tls_binary(std::span<const std::uint8_t>(buf));
}

TlsLog read_tls_binary_file(const std::string& path) {
  std::ifstream ifs(path, std::ios::binary);
  if (!ifs) {
    throw std::runtime_error("read_tls_binary_file: cannot open " + path);
  }
  return read_tls_binary(ifs);
}

}  // namespace droppkt::trace
