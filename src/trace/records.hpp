// Measurement-plane record types.
//
// TlsTransaction is the paper's unit of coarse-grained data: what a
// transparent proxy (Squid-style) exports per TLS connection — start/end
// time, uplink/downlink byte counts, and the SNI hostname. PacketRecord is
// the fine-grained comparison substrate used by the ML16 baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace droppkt::trace {

/// One TLS connection as reported by a transparent proxy.
struct TlsTransaction {
  double start_s = 0.0;   // connection open (ClientHello)
  double end_s = 0.0;     // connection teardown / timeout at the proxy
  double ul_bytes = 0.0;  // client -> server, including handshake
  double dl_bytes = 0.0;  // server -> client, including handshake
  std::string sni;        // Server Name Indication from the ClientHello
  std::size_t http_count = 0;  // HTTP exchanges carried (diagnostic only;
                               // a real proxy cannot see this)

  double duration_s() const { return end_s - start_s; }
};

/// Packet direction relative to the client.
enum class Direction : std::uint8_t { kUplink, kDownlink };

/// One packet as a capture tool would record it.
struct PacketRecord {
  double ts_s = 0.0;       // capture timestamp
  Direction dir = Direction::kDownlink;
  std::uint32_t size_bytes = 0;   // on-the-wire size
  std::uint32_t payload_bytes = 0;
  std::uint32_t flow_id = 0;      // connection identifier
  bool retransmission = false;
  bool is_syn = false;
  bool is_fin = false;
};

using TlsLog = std::vector<TlsTransaction>;
using PacketLog = std::vector<PacketRecord>;

}  // namespace droppkt::trace
