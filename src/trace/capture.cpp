#include "trace/capture.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>

#include "util/expect.hpp"

namespace droppkt::trace {

namespace {

constexpr char kMagic[4] = {'D', 'P', 'F', 'C'};
constexpr std::uint32_t kVersion = 1;
/// The smallest possible event: u8 kind + u64 seq + f64 time (a marker).
constexpr std::uint64_t kMinEventBytes = 1 + 8 + 8;
/// Client ids are operator-assigned names ("cell-3/sub-17"), not payloads.
constexpr std::uint64_t kMaxClientBytes = 4096;
/// A ClientHello SNI is a DNS name; anything past this is hostile input.
constexpr std::uint64_t kMaxSniBytes = 64 * 1024;

[[noreturn]] void parse_fail(const std::string& what) {
  throw ParseError("read_feed_capture: " + what);
}

/// Bounds-checked cursor over the untrusted buffer (the DPTL idiom: all
/// length fields widen to u64 before any comparison or arithmetic).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::uint64_t remaining() const { return buf_.size() - pos_; }

  void bytes(void* out, std::uint64_t n, const char* what) {
    if (n > remaining()) {
      parse_fail(std::string("truncated input reading ") + what);
    }
    std::memcpy(out, buf_.data() + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
  }

  std::uint8_t u8(const char* what) {
    std::uint8_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::uint64_t u64(const char* what) {
    std::uint64_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  double f64(const char* what) {
    double v = 0.0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::string str(std::uint64_t n, const char* what) {
    if (n > remaining()) {
      parse_fail(std::string("truncated input reading ") + what);
    }
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

void append_raw(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  if (n == 0) return;
  const std::size_t old = out.size();
  out.resize(old + n);
  std::memcpy(out.data() + old, p, n);
}

}  // namespace

std::vector<std::uint8_t> feed_capture_bytes(const FeedCapture& capture) {
  std::vector<std::uint8_t> out;
  append_raw(out, kMagic, sizeof kMagic);
  append_raw(out, &kVersion, sizeof kVersion);
  const std::uint64_t count = capture.size();
  append_raw(out, &count, sizeof count);
  for (const CaptureEvent& ev : capture) {
    const auto kind = static_cast<std::uint8_t>(ev.kind);
    append_raw(out, &kind, sizeof kind);
    if (ev.kind == CaptureEvent::Kind::kRecord) {
      DROPPKT_EXPECT(
          !ev.client.empty() && ev.client.size() <= kMaxClientBytes,
          "feed_capture_bytes: client id empty or over the format limit");
      DROPPKT_EXPECT(ev.txn.sni.size() <= kMaxSniBytes,
                     "feed_capture_bytes: SNI exceeds the wire-format limit");
      DROPPKT_EXPECT(
          std::isfinite(ev.txn.start_s) && std::isfinite(ev.txn.end_s),
          "feed_capture_bytes: non-finite transaction times");
      const auto client_len = static_cast<std::uint32_t>(ev.client.size());
      append_raw(out, &client_len, sizeof client_len);
      append_raw(out, ev.client.data(), ev.client.size());
      append_raw(out, &ev.txn.start_s, sizeof ev.txn.start_s);
      append_raw(out, &ev.txn.end_s, sizeof ev.txn.end_s);
      append_raw(out, &ev.txn.ul_bytes, sizeof ev.txn.ul_bytes);
      append_raw(out, &ev.txn.dl_bytes, sizeof ev.txn.dl_bytes);
      const std::uint64_t http = ev.txn.http_count;
      append_raw(out, &http, sizeof http);
      const auto sni_len = static_cast<std::uint32_t>(ev.txn.sni.size());
      append_raw(out, &sni_len, sizeof sni_len);
      append_raw(out, ev.txn.sni.data(), ev.txn.sni.size());
    } else {
      DROPPKT_EXPECT(std::isfinite(ev.marker_time_s),
                     "feed_capture_bytes: non-finite marker time");
      append_raw(out, &ev.marker_seq, sizeof ev.marker_seq);
      append_raw(out, &ev.marker_time_s, sizeof ev.marker_time_s);
    }
  }
  return out;
}

void write_feed_capture_file(const FeedCapture& capture,
                             const std::string& path) {
  std::ofstream ofs(path, std::ios::binary);
  if (!ofs) {
    throw std::runtime_error("write_feed_capture_file: cannot open " + path);
  }
  const auto bytes = feed_capture_bytes(capture);
  ofs.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!ofs) {
    throw std::runtime_error("write_feed_capture_file: write failed " + path);
  }
}

FeedCapture read_feed_capture(std::span<const std::uint8_t> buffer) {
  ByteReader r(buffer);
  char magic[4] = {};
  r.bytes(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    parse_fail("bad magic (not a DPFC stream)");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kVersion) {
    parse_fail("unsupported version " + std::to_string(version));
  }
  const std::uint64_t count = r.u64("event count");
  // Every event costs at least kMinEventBytes, so a count the buffer
  // cannot possibly hold is rejected before any allocation.
  if (count > r.remaining() / kMinEventBytes) {
    parse_fail("event count " + std::to_string(count) +
               " exceeds what the buffer can hold");
  }
  FeedCapture capture;
  capture.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CaptureEvent ev;
    const std::uint8_t kind = r.u8("event kind");
    if (kind == static_cast<std::uint8_t>(CaptureEvent::Kind::kRecord)) {
      ev.kind = CaptureEvent::Kind::kRecord;
      const std::uint64_t client_len = r.u32("client length");
      if (client_len == 0 || client_len > kMaxClientBytes) {
        parse_fail("client length " + std::to_string(client_len) +
                   " outside [1, " + std::to_string(kMaxClientBytes) + "]");
      }
      ev.client = r.str(client_len, "client");
      ev.txn.start_s = r.f64("start_s");
      ev.txn.end_s = r.f64("end_s");
      ev.txn.ul_bytes = r.f64("ul_bytes");
      ev.txn.dl_bytes = r.f64("dl_bytes");
      const std::uint64_t http = r.u64("http_count");
      if constexpr (sizeof(std::size_t) < sizeof(std::uint64_t)) {
        if (http > std::numeric_limits<std::size_t>::max()) {
          parse_fail("http_count overflows size_t");
        }
      }
      ev.txn.http_count = static_cast<std::size_t>(http);
      if (!std::isfinite(ev.txn.start_s) || !std::isfinite(ev.txn.end_s)) {
        parse_fail("non-finite transaction times");
      }
      if (ev.txn.end_s < ev.txn.start_s) {
        parse_fail("transaction end precedes start");
      }
      if (!(ev.txn.ul_bytes >= 0.0) || !(ev.txn.dl_bytes >= 0.0)) {
        parse_fail("negative or non-finite byte counts");
      }
      const std::uint64_t sni_len = r.u32("sni length");
      if (sni_len > kMaxSniBytes) {
        parse_fail("SNI length " + std::to_string(sni_len) + " exceeds limit");
      }
      ev.txn.sni = r.str(sni_len, "sni");
    } else if (kind == static_cast<std::uint8_t>(CaptureEvent::Kind::kMarker)) {
      ev.kind = CaptureEvent::Kind::kMarker;
      ev.marker_seq = r.u64("marker sequence");
      ev.marker_time_s = r.f64("marker time");
      if (!std::isfinite(ev.marker_time_s)) {
        parse_fail("non-finite marker time");
      }
    } else {
      parse_fail("unknown event kind " + std::to_string(kind));
    }
    capture.push_back(std::move(ev));
  }
  if (r.remaining() != 0) {
    parse_fail(std::to_string(r.remaining()) +
               " trailing bytes after the last event");
  }
  return capture;
}

FeedCapture read_feed_capture_file(const std::string& path) {
  std::ifstream ifs(path, std::ios::binary);
  if (!ifs) {
    throw std::runtime_error("read_feed_capture_file: cannot open " + path);
  }
  std::vector<std::uint8_t> buf{std::istreambuf_iterator<char>(ifs),
                                std::istreambuf_iterator<char>()};
  return read_feed_capture(std::span<const std::uint8_t>(buf));
}

}  // namespace droppkt::trace
