// Packet trace generation: the fine-grained substrate the paper compares
// against (tcpdump-style captures feeding the ML16 baseline [12]).
//
// Each HTTP exchange is expanded into uplink request packets, MSS-sized
// downlink data packets paced across the measured transfer window, client
// ACKs, and loss-driven retransmissions. The result is what a capture at
// the client's access link would record.
#pragma once

#include "has/http_transaction.hpp"
#include "net/link_model.hpp"
#include "trace/records.hpp"
#include "util/rng.hpp"

namespace droppkt::trace {

struct PacketGenOptions {
  std::uint32_t mss_bytes = 1448;      // TCP payload per data packet
  std::uint32_t header_bytes = 52;     // IP+TCP headers (with timestamps)
  int ack_every = 2;                   // delayed ACK: one ACK per N data pkts
};

/// Expands HTTP transaction logs into packet logs.
class PacketTraceGenerator {
 public:
  PacketTraceGenerator(net::LinkParams params, PacketGenOptions opts = {});

  /// Generate the packet view of a session's HTTP log. Deterministic for a
  /// given Rng state. Packets are returned sorted by timestamp.
  PacketLog generate(const has::HttpLog& http, util::Rng& rng) const;

  /// Number of packets `generate` would emit, without materializing them
  /// (loss ignored; used for overhead accounting).
  std::size_t estimate_packet_count(const has::HttpLog& http) const;

 private:
  net::LinkParams params_;
  PacketGenOptions opts_;
};

}  // namespace droppkt::trace
