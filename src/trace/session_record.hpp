// A fully-simulated session: ground truth + both measurement views' inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "has/player.hpp"
#include "net/bandwidth_trace.hpp"
#include "trace/records.hpp"

namespace droppkt::trace {

/// One session of the evaluation dataset.
struct SessionRecord {
  std::string service;           // "Svc1" | "Svc2" | "Svc3"
  std::string video_id;
  net::Environment environment = net::Environment::kBroadband;
  double trace_avg_kbps = 0.0;   // average bandwidth of the replayed trace
  double watch_duration_s = 0.0; // intended watch time
  std::uint64_t seed = 0;        // per-session seed (regenerates packets)
  has::GroundTruth ground_truth;
  has::HttpLog http;             // fine-grained application view
  TlsLog tls;                    // coarse-grained proxy view
};

using SessionDataset = std::vector<SessionRecord>;

}  // namespace droppkt::trace
