// Feed capture: the record/replay half of the telemetry plane's wire
// story. A capture is a proxy feed frozen to disk — every (client, TLS
// transaction) record in global start-time order, interleaved with the
// interval markers the live run's watermark cadence produced — so a
// replay (engine/replay.hpp) can push the identical record sequence
// through a fresh engine and reproduce the live alert sequence
// byte-for-byte, at line rate or any time scale.
//
// Binary format "DPFC" v1, hardened to the same standard as the DPTL
// stream in trace/serialize.hpp: every length is validated against the
// bytes actually present before any allocation, counts are checked
// against a per-event minimum size, numeric fields are validated
// (finite, ordered), and malformed input throws droppkt::ParseError —
// never a crash. fuzz/fuzz_feed_capture.cpp holds the reader to that.
//
//   "DPFC" magic, u32 version, u64 event count, then per event
//     u8 kind (0 = record, 1 = marker)
//     record: u32 client length (1..4096), client bytes,
//             f64 start_s, end_s, ul_bytes, dl_bytes,
//             u64 http_count, u32 sni length, sni bytes
//     marker: u64 marker sequence, f64 marker feed time
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/records.hpp"

namespace droppkt::trace {

/// One captured feed event: a proxy record or an interval marker.
struct CaptureEvent {
  enum class Kind : std::uint8_t { kRecord = 0, kMarker = 1 };
  Kind kind = Kind::kRecord;
  // kRecord fields.
  std::string client;
  TlsTransaction txn;
  // kMarker fields: dense capture-order sequence and the feed time the
  // live run's watermark cadence reached.
  std::uint64_t marker_seq = 0;
  double marker_time_s = 0.0;
};

/// A captured feed: events in capture order (records in global start-time
/// order, markers at the instants the capturing run emitted them).
using FeedCapture = std::vector<CaptureEvent>;

/// Serialize a capture ("DPFC" v1). Throws ContractViolation when an
/// event violates the format limits (empty/oversized client, oversized
/// SNI, non-finite times).
std::vector<std::uint8_t> feed_capture_bytes(const FeedCapture& capture);
void write_feed_capture_file(const FeedCapture& capture,
                             const std::string& path);

/// Decode a capture. Throws droppkt::ParseError on any malformed input:
/// truncated buffer, bad magic/version, event count or string length
/// inconsistent with the bytes present, unknown event kind, non-finite
/// times, end < start, negative byte counts, or trailing bytes.
FeedCapture read_feed_capture(std::span<const std::uint8_t> buffer);
FeedCapture read_feed_capture_file(const std::string& path);

}  // namespace droppkt::trace
