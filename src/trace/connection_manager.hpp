// Client connection management: maps HTTP transactions onto TLS
// connections according to a service's ConnectionPolicy.
//
// This is the layer that makes TLS transaction data "coarse": many HTTP
// exchanges share one connection, so the proxy's per-connection record
// hides the individual segment requests (paper Section 2.2, Figure 2).
#pragma once

#include "has/http_transaction.hpp"
#include "has/service_profile.hpp"
#include "trace/records.hpp"
#include "util/rng.hpp"

namespace droppkt::trace {

/// Groups a session's HTTP log onto TLS connections.
///
/// Construction picks the session's server set (CDN shards, API host,
/// beacon host); `collect` assigns a host to every HTTP transaction
/// (mutating its `host` field) and returns the proxy-visible TLS log.
class ConnectionManager {
 public:
  ConnectionManager(const has::ConnectionPolicy& policy, util::Rng& rng);

  /// The CDN hostnames this session shards across.
  const std::vector<std::string>& session_hosts() const { return cdn_hosts_; }

  /// Assign hosts and build the TLS log. `http` must be sorted by
  /// request time (the player guarantees this).
  TlsLog collect(has::HttpLog& http, util::Rng& rng) const;

 private:
  has::ConnectionPolicy policy_;
  std::vector<std::string> cdn_hosts_;
};

/// Total bytes (up + down) in a TLS log — sanity/consistency helper.
double total_bytes(const TlsLog& log);

}  // namespace droppkt::trace
