#include "trace/flow_export.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "util/expect.hpp"

namespace droppkt::trace {

std::string server_ip_for_host(const std::string& host) {
  const auto h = std::hash<std::string>{}(host);
  return "203.0." + std::to_string((h >> 8) & 0xff) + "." +
         std::to_string(h & 0xff);
}

FlowExporter::FlowExporter(FlowExportConfig config) : config_(config) {
  DROPPKT_EXPECT(config_.active_timeout_s > 0.0,
                 "FlowExporter: active timeout must be positive");
  DROPPKT_EXPECT(config_.inactive_timeout_s > 0.0,
                 "FlowExporter: inactive timeout must be positive");
}

FlowLog FlowExporter::export_flows(
    const PacketLog& packets,
    const std::vector<std::pair<std::uint32_t, std::string>>& ip_of_flow) const {
  std::map<std::uint32_t, std::string> ip_map(ip_of_flow.begin(),
                                              ip_of_flow.end());
  struct Open {
    FlowRecord rec;
  };
  std::map<std::uint32_t, Open> open;
  FlowLog out;

  auto flush = [&out](Open&& o) { out.push_back(std::move(o.rec)); };

  double prev_ts = -1e18;
  for (const auto& p : packets) {
    DROPPKT_EXPECT(p.ts_s >= prev_ts, "FlowExporter: packets must be sorted");
    prev_ts = p.ts_s;

    auto it = open.find(p.flow_id);
    if (it != open.end()) {
      // Timeout-driven record cuts.
      const bool inactive =
          p.ts_s - it->second.rec.last_s > config_.inactive_timeout_s;
      const bool active_expired =
          p.ts_s - it->second.rec.first_s > config_.active_timeout_s;
      if (inactive || active_expired) {
        flush(std::move(it->second));
        open.erase(it);
        it = open.end();
      }
    }
    if (it == open.end()) {
      Open o;
      o.rec.first_s = p.ts_s;
      o.rec.last_s = p.ts_s;
      o.rec.flow_id = p.flow_id;
      auto ip_it = ip_map.find(p.flow_id);
      o.rec.server_ip =
          ip_it != ip_map.end() ? ip_it->second : std::string("0.0.0.0");
      it = open.emplace(p.flow_id, std::move(o)).first;
    }

    FlowRecord& rec = it->second.rec;
    rec.last_s = p.ts_s;
    // Per-packet, so debug-only: with sorted input the open record's
    // window can never invert.
    DROPPKT_ASSERT(rec.first_s <= rec.last_s,
                   "FlowExporter: open record window inverted");
    if (p.dir == Direction::kUplink) {
      rec.ul_bytes += p.size_bytes;
      rec.ul_packets += 1;
    } else {
      rec.dl_bytes += p.size_bytes;
      rec.dl_packets += 1;
    }
  }
  for (auto& [id, o] : open) flush(std::move(o));

  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return a.first_s < b.first_s;
  });
  return out;
}

FlowLog identify_video_flows(const FlowLog& flows, const DnsLog& dns,
                             const std::string& domain_suffix) {
  DROPPKT_EXPECT(!domain_suffix.empty(),
                 "identify_video_flows: domain suffix must be non-empty");
  std::set<std::string> video_ips;
  for (const auto& r : dns) {
    if (r.name.size() >= domain_suffix.size() &&
        r.name.compare(r.name.size() - domain_suffix.size(),
                       domain_suffix.size(), domain_suffix) == 0) {
      video_ips.insert(r.ip);
    }
  }
  FlowLog out;
  for (const auto& f : flows) {
    if (video_ips.count(f.server_ip)) out.push_back(f);
  }
  return out;
}

}  // namespace droppkt::trace
