// CSV import/export for TLS transaction logs.
//
// Matches what a proxy log export would look like: one row per TLS
// transaction with start, end, byte counts and SNI. Used by the examples
// to show how a deployment would feed real proxy data into the estimator.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/records.hpp"

namespace droppkt::trace {

/// Write a TLS log as CSV (header: start_s,end_s,ul_bytes,dl_bytes,sni).
void write_tls_csv(const TlsLog& log, std::ostream& os);
void write_tls_csv_file(const TlsLog& log, const std::string& path);

/// Parse a TLS log from CSV in the same format. Throws on malformed input.
TlsLog read_tls_csv(std::istream& is);
TlsLog read_tls_csv_file(const std::string& path);

}  // namespace droppkt::trace
