// CSV and binary import/export for TLS transaction logs.
//
// Matches what a proxy log export would look like: one row per TLS
// transaction with start, end, byte counts and SNI. Used by the examples
// to show how a deployment would feed real proxy data into the estimator.
//
// The binary format is the on-wire form a high-volume collector would
// ship (CSV costs ~3x the bytes and a float parse per field). Every byte
// of it is attacker-controllable in the deployment the ROADMAP targets,
// so the reader validates all length fields against the actual buffer
// before allocating or narrowing, and rejects malformed input with
// droppkt::ParseError — never a crash. fuzz/fuzz_tls_binary.cpp holds the
// reader to that.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "trace/records.hpp"

namespace droppkt::trace {

/// Write a TLS log as CSV (header: start_s,end_s,ul_bytes,dl_bytes,sni).
void write_tls_csv(const TlsLog& log, std::ostream& os);
void write_tls_csv_file(const TlsLog& log, const std::string& path);

/// Parse a TLS log from CSV in the same format. Throws on malformed input.
TlsLog read_tls_csv(std::istream& is);
TlsLog read_tls_csv_file(const std::string& path);

/// Length-prefixed little-endian binary record stream:
///   "DPTL" magic, u32 version, u64 record count, then per record
///   f64 start_s, f64 end_s, f64 ul_bytes, f64 dl_bytes,
///   u64 http_count, u32 sni length, sni bytes.
void write_tls_binary(const TlsLog& log, std::ostream& os);
void write_tls_binary_file(const TlsLog& log, const std::string& path);

/// Serialize into a byte buffer (what the fuzz round-trip drives).
std::vector<std::uint8_t> tls_binary_bytes(const TlsLog& log);

/// Decode a binary record stream. Throws droppkt::ParseError on any
/// malformed input: truncated buffer, bad magic/version, record count or
/// SNI length inconsistent with the bytes actually present, non-finite
/// times, end < start, or negative byte counts.
TlsLog read_tls_binary(std::span<const std::uint8_t> buffer);
TlsLog read_tls_binary(std::istream& is);
TlsLog read_tls_binary_file(const std::string& path);

}  // namespace droppkt::trace
