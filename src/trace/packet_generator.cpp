#include "trace/packet_generator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/expect.hpp"

namespace droppkt::trace {

PacketTraceGenerator::PacketTraceGenerator(net::LinkParams params,
                                           PacketGenOptions opts)
    : params_(params), opts_(opts) {
  DROPPKT_EXPECT(opts_.mss_bytes > 0, "PacketTraceGenerator: MSS must be > 0");
  DROPPKT_EXPECT(opts_.ack_every >= 1,
                 "PacketTraceGenerator: ack_every must be >= 1");
}

PacketLog PacketTraceGenerator::generate(const has::HttpLog& http,
                                         util::Rng& rng) const {
  PacketLog packets;
  packets.reserve(estimate_packet_count(http) + 64);

  for (const auto& txn : http) {
    // Flow identity: the TLS connection when known (4-tuple equivalent),
    // else a host-derived id for logs that never went through a
    // connection manager.
    const auto flow_id =
        txn.connection_id >= 0
            ? static_cast<std::uint32_t>(txn.connection_id)
            : static_cast<std::uint32_t>(
                  0x10000u + (std::hash<std::string>{}(txn.host) & 0xffffu));
    const double rtt = txn.rtt_s > 0.0 ? txn.rtt_s : params_.base_rtt_ms / 1000.0;

    // Uplink request packets at the request instant.
    const auto ul_pkts = static_cast<std::size_t>(
        std::max(1.0, std::ceil(txn.ul_bytes / opts_.mss_bytes)));
    double ul_remaining = txn.ul_bytes;
    for (std::size_t i = 0; i < ul_pkts; ++i) {
      const double payload = std::min<double>(ul_remaining, opts_.mss_bytes);
      ul_remaining -= payload;
      packets.push_back(
          {.ts_s = txn.request_s + static_cast<double>(i) * 1e-4,
           .dir = Direction::kUplink,
           .size_bytes = static_cast<std::uint32_t>(payload) + opts_.header_bytes,
           .payload_bytes = static_cast<std::uint32_t>(payload),
           .flow_id = flow_id,
           .retransmission = false,
           .is_syn = false,
           .is_fin = false});
    }

    // Downlink data packets paced uniformly across the transfer window.
    const auto dl_pkts = static_cast<std::size_t>(
        std::ceil(txn.dl_bytes / opts_.mss_bytes));
    if (dl_pkts == 0) continue;
    const double window =
        std::max(1e-6, txn.response_end_s - txn.response_start_s);
    const double spacing =
        dl_pkts > 1 ? window / static_cast<double>(dl_pkts - 1) : 0.0;
    double dl_remaining = txn.dl_bytes;
    int since_ack = 0;
    for (std::size_t i = 0; i < dl_pkts; ++i) {
      const double payload = std::min<double>(dl_remaining, opts_.mss_bytes);
      dl_remaining -= payload;
      const double ts = txn.response_start_s + spacing * static_cast<double>(i);
      packets.push_back(
          {.ts_s = ts,
           .dir = Direction::kDownlink,
           .size_bytes = static_cast<std::uint32_t>(payload) + opts_.header_bytes,
           .payload_bytes = static_cast<std::uint32_t>(payload),
           .flow_id = flow_id,
           .retransmission = false,
           .is_syn = false,
           .is_fin = false});

      // Loss: the packet is retransmitted roughly an RTO later.
      if (rng.bernoulli(params_.loss_rate)) {
        packets.push_back(
            {.ts_s = ts + rtt * rng.uniform(1.0, 2.0),
             .dir = Direction::kDownlink,
             .size_bytes = static_cast<std::uint32_t>(payload) + opts_.header_bytes,
             .payload_bytes = static_cast<std::uint32_t>(payload),
             .flow_id = flow_id,
             .retransmission = true,
             .is_syn = false,
             .is_fin = false});
      }

      // Client ACK: pure-ack uplink packet, delayed-ack policy. The ACK for
      // downlink data observed at the client capture point appears ~half an
      // RTT is irrelevant at the client; it is sent immediately.
      if (++since_ack >= opts_.ack_every || i + 1 == dl_pkts) {
        since_ack = 0;
        packets.push_back({.ts_s = ts + 1e-4,
                           .dir = Direction::kUplink,
                           .size_bytes = opts_.header_bytes,
                           .payload_bytes = 0,
                           .flow_id = flow_id,
                           .retransmission = false,
                           .is_syn = false,
                           .is_fin = false});
      }
    }
  }

  std::sort(packets.begin(), packets.end(),
            [](const PacketRecord& a, const PacketRecord& b) {
              return a.ts_s < b.ts_s;
            });
  return packets;
}

std::size_t PacketTraceGenerator::estimate_packet_count(
    const has::HttpLog& http) const {
  std::size_t count = 0;
  for (const auto& txn : http) {
    const auto ul = static_cast<std::size_t>(
        std::max(1.0, std::ceil(txn.ul_bytes / opts_.mss_bytes)));
    const auto dl = static_cast<std::size_t>(
        std::ceil(txn.dl_bytes / opts_.mss_bytes));
    const std::size_t acks = dl / static_cast<std::size_t>(opts_.ack_every) + 1;
    count += ul + dl + acks;
  }
  return count;
}

}  // namespace droppkt::trace
