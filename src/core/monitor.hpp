// Streaming monitor: the deployment-shaped wrapper around the paper's
// pipeline. A transparent proxy emits TLS transaction records as
// connections close, interleaved across many subscribers; the monitor
// demultiplexes them per client, delimits sessions online with the
// burst+fresh-server heuristic, and emits a QoE estimate for every
// completed session.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/estimator.hpp"
#include "core/feature_accumulator.hpp"
#include "core/session_id.hpp"
#include "trace/records.hpp"

namespace droppkt::core {

/// A completed, classified session as reported by the monitor.
struct MonitoredSession {
  std::string client;
  trace::TlsLog transactions;
  int predicted_class = 0;  // 0 = low/worst
  double start_s = 0.0;
  double end_s = 0.0;
};

/// An in-flight QoE estimate for a client's still-open session — the
/// answer to the paper's §4.3 limitation (TLS records complete only at
/// connection close, so estimates arrive late): each client's live
/// feature accumulator is snapshotted mid-session, at partial-log cost
/// O(features) instead of a full re-extraction. `client` borrows the
/// monitor's storage and is valid only during the callback.
struct ProvisionalEstimate {
  std::string_view client;
  std::size_t transactions_observed = 0;
  int predicted_class = 0;  // 0 = low/worst
  double session_start_s = 0.0;
  double last_activity_s = 0.0;  // start of the newest record
};

struct MonitorConfig {
  SessionIdParams session_id;
  /// A client idle this long has finished its last session.
  double client_idle_timeout_s = 120.0;
  /// Sessions with fewer transactions than this are dropped as noise
  /// (stray beacons, preconnects that never carried traffic).
  std::size_t min_transactions = 3;
  /// Emit a provisional estimate every this-many records per client, once
  /// the pending window holds min_transactions records (0 = off). Needs a
  /// provisional callback to have any effect.
  std::size_t provisional_every = 0;
};

/// Online QoE monitoring over a proxy's TLS transaction feed.
///
/// Records must arrive in global start-time order (the proxy's export
/// order); interleaving across clients is expected. The estimator is
/// borrowed and must outlive the monitor.
class StreamingMonitor {
 public:
  using Callback = std::function<void(const MonitoredSession&)>;
  using ProvisionalCallback = std::function<void(const ProvisionalEstimate&)>;

  StreamingMonitor(const QoeEstimator& estimator, Callback on_session,
                   MonitorConfig config = {});

  /// Install the in-flight estimate hook (see MonitorConfig::
  /// provisional_every). Call before feeding records. The callback fires
  /// from inside observe(), before any session-boundary decision — a
  /// later burst boundary can retroactively assign early records to the
  /// previous session, which is inherent to online estimation.
  void set_provisional_callback(ProvisionalCallback on_provisional);

  /// Feed one proxy record for a client. Completed sessions (detected via
  /// a new-session burst or the client idle timeout) are classified and
  /// reported through the callback before this call returns.
  void observe(const std::string& client, const trace::TlsTransaction& txn);

  /// Advance the monitor's notion of "now" to `now_s` (feed time) without
  /// feeding a record: clients idle longer than the timeout have their
  /// pending session emitted and their state evicted. Lets a driver (e.g.
  /// the sharded ingest engine's low-watermark broadcast) fire idle-client
  /// eviction on monitors whose own clients have gone quiet. `now_s` must
  /// not exceed the start time of any record observed later.
  void advance_time(double now_s);

  /// Flush all in-progress sessions (end of the monitoring window).
  void finish();

  std::size_t sessions_reported() const { return sessions_reported_; }
  std::size_t provisionals_reported() const { return provisionals_reported_; }
  std::size_t open_clients() const { return clients_.size(); }

 private:
  struct ClientState {
    trace::TlsLog pending;        // transactions of the in-progress session
    double last_start_s = -1e18;  // latest transaction start seen
    // Live feature state over `pending`, fed in lockstep by observe().
    // After a burst-boundary split it is rebuilt from the surviving
    // records; acc.transactions() == pending.size() is the invariant
    // emit() relies on to classify without re-extracting.
    TlsFeatureAccumulator acc;
  };

  void emit(const std::string& client, ClientState& state);
  void rebuild_accumulator(ClientState& state);

  const QoeEstimator* estimator_;
  Callback on_session_;
  ProvisionalCallback on_provisional_;
  MonitorConfig config_;
  // unordered: client lookup is on the per-record hot path, needs no order.
  std::unordered_map<std::string, ClientState> clients_;
  std::size_t sessions_reported_ = 0;
  std::size_t provisionals_reported_ = 0;
  // Classification scratch, reused across emits/provisionals (observe is
  // single-threaded per monitor).
  std::vector<double> feature_scratch_;
  std::vector<double> proba_scratch_;
};

}  // namespace droppkt::core
