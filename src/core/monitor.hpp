// Streaming monitor: the deployment-shaped wrapper around the paper's
// pipeline. A transparent proxy emits TLS transaction records as
// connections close, interleaved across many subscribers; the monitor
// demultiplexes them per client, delimits sessions online with the
// burst+fresh-server heuristic, and emits a QoE estimate for every
// completed session.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "core/estimator.hpp"
#include "core/session_id.hpp"
#include "trace/records.hpp"

namespace droppkt::core {

/// A completed, classified session as reported by the monitor.
struct MonitoredSession {
  std::string client;
  trace::TlsLog transactions;
  int predicted_class = 0;  // 0 = low/worst
  double start_s = 0.0;
  double end_s = 0.0;
};

struct MonitorConfig {
  SessionIdParams session_id;
  /// A client idle this long has finished its last session.
  double client_idle_timeout_s = 120.0;
  /// Sessions with fewer transactions than this are dropped as noise
  /// (stray beacons, preconnects that never carried traffic).
  std::size_t min_transactions = 3;
};

/// Online QoE monitoring over a proxy's TLS transaction feed.
///
/// Records must arrive in global start-time order (the proxy's export
/// order); interleaving across clients is expected. The estimator is
/// borrowed and must outlive the monitor.
class StreamingMonitor {
 public:
  using Callback = std::function<void(const MonitoredSession&)>;

  StreamingMonitor(const QoeEstimator& estimator, Callback on_session,
                   MonitorConfig config = {});

  /// Feed one proxy record for a client. Completed sessions (detected via
  /// a new-session burst or the client idle timeout) are classified and
  /// reported through the callback before this call returns.
  void observe(const std::string& client, const trace::TlsTransaction& txn);

  /// Advance the monitor's notion of "now" to `now_s` (feed time) without
  /// feeding a record: clients idle longer than the timeout have their
  /// pending session emitted and their state evicted. Lets a driver (e.g.
  /// the sharded ingest engine's low-watermark broadcast) fire idle-client
  /// eviction on monitors whose own clients have gone quiet. `now_s` must
  /// not exceed the start time of any record observed later.
  void advance_time(double now_s);

  /// Flush all in-progress sessions (end of the monitoring window).
  void finish();

  std::size_t sessions_reported() const { return sessions_reported_; }
  std::size_t open_clients() const { return clients_.size(); }

 private:
  struct ClientState {
    trace::TlsLog pending;        // transactions of the in-progress session
    double last_start_s = -1e18;  // latest transaction start seen
  };

  void emit(const std::string& client, ClientState& state);

  const QoeEstimator* estimator_;
  Callback on_session_;
  MonitorConfig config_;
  // unordered: client lookup is on the per-record hot path, needs no order.
  std::unordered_map<std::string, ClientState> clients_;
  std::size_t sessions_reported_ = 0;
};

}  // namespace droppkt::core
