// Streaming monitor: the deployment-shaped wrapper around the paper's
// pipeline. A transparent proxy emits TLS transaction records as
// connections close, interleaved across many subscribers; the monitor
// demultiplexes them per client, delimits sessions online with the
// burst+fresh-server heuristic, and emits a QoE estimate for every
// completed session.
//
// Hot-path representation: clients and SNIs are interned in
// util::StringPools, so per-client state is keyed by a 4-byte ref and the
// pending-session window buffers trivially copyable core::TlsRecord
// values. In standalone use the monitor owns its pools and the string API
// interns on the way in; inside the sharded ingest engine the *producer*
// interns into shard-local pools and the worker feeds refs straight to
// observe_ref() — no string is hashed, copied, or allocated per record on
// the worker. Owning strings are materialized only at emission, into
// scratch that keeps its capacity across sessions, so the steady-state
// record path performs zero heap allocations (gated by a counting-
// allocator test).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/estimator.hpp"
#include "core/feature_accumulator.hpp"
#include "core/session_id.hpp"
#include "core/tls_record.hpp"
#include "telemetry/registry.hpp"
#include "trace/records.hpp"
#include "util/annotations.hpp"
#include "util/string_pool.hpp"

namespace droppkt::core {

/// A completed, classified session as reported by the monitor. Callback
/// sinks receive a const reference to monitor-owned scratch that is reused
/// for the next emission — copy what must outlive the call.
struct MonitoredSession {
  std::string client;
  trace::TlsLog transactions;
  int predicted_class = 0;  // 0 = low/worst
  double confidence = 0.0;  // forest probability of predicted_class
  double start_s = 0.0;
  double end_s = 0.0;
  /// Feed time at which the monitor decided the session was over (the
  /// record or watermark that triggered emission) — always >= the start
  /// of the session's last record, and the time an alerting layer should
  /// order this verdict by. end_s can exceed it (long final connections).
  double detected_s = 0.0;
};

/// Borrowed view of a completed session — the allocation-free emit path.
/// `client` and `transactions` point into the monitor's storage and are
/// valid only during the callback; sinks that need to retain the session
/// call to_owned(). Skipping the owned copy also lets the monitor keep
/// its emission buffers' capacity across sessions.
struct MonitoredSessionView {
  std::string_view client;
  /// Materialized owning transactions — empty when the monitor runs with
  /// MonitorConfig::materialize_transactions off; `records` always carries
  /// the session content either way.
  std::span<const trace::TlsTransaction> transactions;
  /// The session's interned POD records (always populated). SNI strings
  /// resolve through `sni_pool`; sinks that only need counts or byte
  /// totals read these and skip string materialization entirely.
  std::span<const TlsRecord> records;
  const util::StringPool* sni_pool = nullptr;
  int predicted_class = 0;  // 0 = low/worst
  double confidence = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  double detected_s = 0.0;  // see MonitoredSession::detected_s

  /// Deep copy for sinks that outlive the callback. Requires the monitor
  /// to be materializing transactions (the default).
  MonitoredSession to_owned() const {
    return MonitoredSession{
        .client = std::string(client),
        .transactions = trace::TlsLog(transactions.begin(),
                                      transactions.end()),
        .predicted_class = predicted_class,
        .confidence = confidence,
        .start_s = start_s,
        .end_s = end_s,
        .detected_s = detected_s};
  }
};

/// An in-flight QoE estimate for a client's still-open session — the
/// answer to the paper's §4.3 limitation (TLS records complete only at
/// connection close, so estimates arrive late): each client's live
/// feature accumulator is snapshotted mid-session, at partial-log cost
/// O(features) instead of a full re-extraction. `client` borrows the
/// monitor's storage and is valid only during the callback.
struct ProvisionalEstimate {
  std::string_view client;
  std::size_t transactions_observed = 0;
  int predicted_class = 0;  // 0 = low/worst
  double confidence = 0.0;  // forest probability of predicted_class
  double session_start_s = 0.0;
  double last_activity_s = 0.0;  // start of the newest record
};

/// Registry-backed counters a StreamingMonitor reports through when bound
/// to the telemetry plane (see StreamingMonitor::bind_telemetry). All
/// pointers must be non-null and outlive the monitor.
struct MonitorMetrics {
  telemetry::Counter* sessions = nullptr;
  telemetry::Counter* provisionals = nullptr;
  telemetry::Counter* clients_evicted = nullptr;
  telemetry::Counter* sessions_noise_dropped = nullptr;
};

struct MonitorConfig {
  SessionIdParams session_id;
  /// A client idle this long has finished its last session.
  double client_idle_timeout_s = 120.0;
  /// Sessions with fewer transactions than this are dropped as noise
  /// (stray beacons, preconnects that never carried traffic).
  std::size_t min_transactions = 3;
  /// Emit a provisional estimate every this-many records per client, once
  /// the pending window holds min_transactions records (0 = off). Needs a
  /// provisional callback to have any effect.
  std::size_t provisional_every = 0;
  /// View-sink monitors only: when false, emission skips materializing
  /// owning trace::TlsTransaction strings and the view's `transactions`
  /// span is empty — sinks read the interned `records` instead. Saves one
  /// string resolve+copy per record for sinks (like the alert pipeline)
  /// that never look at transaction contents. Ignored (always on) for the
  /// owned-callback constructor, which must hand out owning strings.
  bool materialize_transactions = true;
};

/// Online QoE monitoring over a proxy's TLS transaction feed.
///
/// Records must arrive in global start-time order (the proxy's export
/// order); interleaving across clients is expected. The estimator is
/// borrowed and must outlive the monitor.
class StreamingMonitor {
 public:
  using Callback = std::function<void(const MonitoredSession&)>;
  using ViewCallback = std::function<void(const MonitoredSessionView&)>;
  using ProvisionalCallback = std::function<void(const ProvisionalEstimate&)>;

  StreamingMonitor(const QoeEstimator& estimator, Callback on_session,
                   MonitorConfig config = {});

  /// Monitor with the borrowed-span emit path: sessions are reported as
  /// MonitoredSessionView, whose client/transactions borrow the monitor's
  /// emission scratch for the duration of the callback. Sinks that only
  /// inspect the session (counters, alerting, logging) skip the owned
  /// copy entirely, and the scratch capacity is reused across sessions.
  static StreamingMonitor with_view_sink(const QoeEstimator& estimator,
                                         ViewCallback on_session,
                                         MonitorConfig config = {});

  /// Tag-dispatched form of with_view_sink for in-place construction
  /// (emplace / make_unique) — the monitor holds atomics and cannot move.
  struct ViewSinkTag {};
  StreamingMonitor(ViewSinkTag, const QoeEstimator& estimator,
                   ViewCallback on_session, MonitorConfig config = {});

  /// Switch to externally owned interning pools (the sharded engine's
  /// shard-local pools: its ingest thread interns, this monitor's thread
  /// resolves). Must be called before the first record; afterwards feed
  /// records through observe_ref() with refs from exactly these pools —
  /// the string-keyed observe() is disabled because interning would write
  /// to pools this monitor no longer owns. The pools must outlive the
  /// monitor.
  void use_external_pools(const util::StringPool* client_pool,
                          const util::StringPool* sni_pool);

  /// Install the in-flight estimate hook (see MonitorConfig::
  /// provisional_every). Call before feeding records. The callback fires
  /// from inside observe(), before any session-boundary decision — a
  /// later burst boundary can retroactively assign early records to the
  /// previous session, which is inherent to online estimation.
  void set_provisional_callback(ProvisionalCallback on_provisional);

  /// Report through registry-backed counters instead of the monitor's own
  /// (the unified telemetry plane: the sharded engine binds each shard's
  /// monitor to its shard metrics). Must be called before the first
  /// record; the counters must outlive the monitor. Accessors below read
  /// whichever counters are bound.
  void bind_telemetry(const MonitorMetrics& metrics);

  /// Feed one proxy record for a client. Completed sessions (detected via
  /// a new-session burst or the client idle timeout) are classified and
  /// reported through the callback before this call returns. Interns the
  /// client and SNI into the monitor's own pools, then forwards to
  /// observe_ref() — both calls are the same hot path.
  DROPPKT_NOALLOC void observe(const std::string& client,
                               const trace::TlsTransaction& txn);

  /// The allocation-free hot path: feed one interned record. `client_ref`
  /// and `rec.sni_ref` must come from the monitor's pools (owned or
  /// external; see use_external_pools).
  DROPPKT_NOALLOC void observe_ref(util::StringPool::Ref client_ref,
                                   const TlsRecord& rec);

  /// Advance the monitor's notion of "now" to `now_s` (feed time) without
  /// feeding a record: clients idle longer than the timeout have their
  /// pending session emitted and their state evicted. Lets a driver (e.g.
  /// the sharded ingest engine's low-watermark broadcast) fire idle-client
  /// eviction on monitors whose own clients have gone quiet. `now_s` must
  /// not exceed the start time of any record observed later.
  DROPPKT_NOALLOC void advance_time(double now_s);

  /// Flush all in-progress sessions (end of the monitoring window). Their
  /// detected_s is the client's last record start (there is no feed clock
  /// at shutdown).
  void finish();

  std::size_t sessions_reported() const {
    return static_cast<std::size_t>(sessions_ctr_->value());
  }
  std::size_t provisionals_reported() const {
    return static_cast<std::size_t>(provisionals_ctr_->value());
  }
  /// Clients whose state was closed by the idle-timeout sweep
  /// (advance_time); a returning client reopens without a new count.
  std::size_t clients_evicted() const {
    return static_cast<std::size_t>(evicted_ctr_->value());
  }
  /// Pending windows discarded for holding fewer than min_transactions
  /// records (stray beacons, preconnects).
  std::size_t sessions_noise_dropped() const {
    return static_cast<std::size_t>(noise_ctr_->value());
  }
  std::size_t open_clients() const { return open_clients_; }

 private:
  struct ViewTag {};
  StreamingMonitor(const QoeEstimator& estimator, Callback on_session,
                   ViewCallback on_session_view, MonitorConfig config,
                   ViewTag);

  struct ClientState {
    /// Slot lifecycle in the dense table below: `open` means the client
    /// has un-emitted state; `init` means the accumulator has been shaped
    /// to the estimator's feature config (done once, buffers then live for
    /// the process — an evicted client that returns reuses its slot's
    /// capacity instead of reallocating).
    bool open = false;
    bool init = false;
    std::vector<TlsRecord> pending;  // in-progress session, POD records
    double last_start_s = -1e18;     // latest transaction start seen
    // Live feature state over pending[0..acc_synced). Folding is lazy:
    // records are appended POD-cheap and folded in arrival order only
    // when a classification needs the accumulator (emit / provisional),
    // which keeps the record path free of accumulator arithmetic while
    // staying bit-identical — snapshots are functions of the fed multiset.
    TlsFeatureAccumulator acc;
    std::size_t acc_synced = 0;
    // Incremental boundary detection over `pending` (see
    // IncrementalBoundaryScan) — byte-identical splits to re-running the
    // batch heuristic per arrival, at O(burst) per record.
    IncrementalBoundaryScan scan;
  };

  /// Fold pending[acc_synced..) into the accumulator.
  void sync_acc(ClientState& state);
  /// Classify and report `recs` (acc must already mirror them), resolving
  /// client/SNI strings from the pools into reused emission scratch.
  void emit_records(util::StringPool::Ref client_ref,
                    std::span<const TlsRecord> recs,
                    const TlsFeatureAccumulator& acc, double detected_s);
  /// Emit the client's whole pending window, then reset it for the next
  /// session (buffer capacity and accumulator storage are kept).
  void emit_pending(util::StringPool::Ref client_ref, ClientState& state,
                    double detected_s);

  const QoeEstimator* estimator_;
  Callback on_session_;
  ViewCallback on_session_view_;
  ProvisionalCallback on_provisional_;
  MonitorConfig config_;
  // Interning pools: owned in standalone use, the shard's in engine use.
  util::StringPool owned_clients_;
  util::StringPool owned_snis_;
  const util::StringPool* client_pool_ = &owned_clients_;
  const util::StringPool* sni_pool_ = &owned_snis_;
  bool external_pools_ = false;
  // Dense table indexed by client ref: interner refs are sequential pool
  // indices, so the per-record lookup is one bounds check + array index —
  // no hashing, no probing, and advance_time() sweeps contiguously.
  std::vector<ClientState> clients_;
  std::size_t open_clients_ = 0;
  // Reporting counters: standalone monitors count into their own
  // instruments; bind_telemetry() repoints these at registry-backed ones
  // so every layer shares one metrics plane. Counter updates are single
  // relaxed atomics — the observe hot path stays allocation- and
  // lock-free either way.
  telemetry::Counter own_sessions_;
  telemetry::Counter own_provisionals_;
  telemetry::Counter own_evicted_;
  telemetry::Counter own_noise_;
  telemetry::Counter* sessions_ctr_ = &own_sessions_;
  telemetry::Counter* provisionals_ctr_ = &own_provisionals_;
  telemetry::Counter* evicted_ctr_ = &own_evicted_;
  telemetry::Counter* noise_ctr_ = &own_noise_;
  // Scratch reused across emits/provisionals (observe is single-threaded
  // per monitor). emit_txns_ only ever grows, so element string capacity
  // survives; emit_session_ is the owned-callback materialization buffer.
  std::vector<double> feature_scratch_;
  std::vector<double> proba_scratch_;
  TlsFeatureAccumulator head_acc_;  // split-prefix accumulator, reused
  trace::TlsLog emit_txns_;         // high-water materialization buffer
  MonitoredSession emit_session_;
};

}  // namespace droppkt::core
