// Streaming monitor: the deployment-shaped wrapper around the paper's
// pipeline. A transparent proxy emits TLS transaction records as
// connections close, interleaved across many subscribers; the monitor
// demultiplexes them per client, delimits sessions online with the
// burst+fresh-server heuristic, and emits a QoE estimate for every
// completed session.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/estimator.hpp"
#include "core/feature_accumulator.hpp"
#include "core/session_id.hpp"
#include "trace/records.hpp"

namespace droppkt::core {

/// A completed, classified session as reported by the monitor.
struct MonitoredSession {
  std::string client;
  trace::TlsLog transactions;
  int predicted_class = 0;  // 0 = low/worst
  double confidence = 0.0;  // forest probability of predicted_class
  double start_s = 0.0;
  double end_s = 0.0;
  /// Feed time at which the monitor decided the session was over (the
  /// record or watermark that triggered emission) — always >= the start
  /// of the session's last record, and the time an alerting layer should
  /// order this verdict by. end_s can exceed it (long final connections).
  double detected_s = 0.0;
};

/// Borrowed view of a completed session — the allocation-free emit path.
/// `client` and `transactions` point into the monitor's storage and are
/// valid only during the callback; sinks that need to retain the session
/// call to_owned(). Skipping the owned copy also lets the monitor keep
/// each client's transaction buffer capacity across sessions.
struct MonitoredSessionView {
  std::string_view client;
  std::span<const trace::TlsTransaction> transactions;
  int predicted_class = 0;  // 0 = low/worst
  double confidence = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  double detected_s = 0.0;  // see MonitoredSession::detected_s

  /// Deep copy for sinks that outlive the callback.
  MonitoredSession to_owned() const {
    return MonitoredSession{
        .client = std::string(client),
        .transactions = trace::TlsLog(transactions.begin(),
                                      transactions.end()),
        .predicted_class = predicted_class,
        .confidence = confidence,
        .start_s = start_s,
        .end_s = end_s,
        .detected_s = detected_s};
  }
};

/// An in-flight QoE estimate for a client's still-open session — the
/// answer to the paper's §4.3 limitation (TLS records complete only at
/// connection close, so estimates arrive late): each client's live
/// feature accumulator is snapshotted mid-session, at partial-log cost
/// O(features) instead of a full re-extraction. `client` borrows the
/// monitor's storage and is valid only during the callback.
struct ProvisionalEstimate {
  std::string_view client;
  std::size_t transactions_observed = 0;
  int predicted_class = 0;  // 0 = low/worst
  double confidence = 0.0;  // forest probability of predicted_class
  double session_start_s = 0.0;
  double last_activity_s = 0.0;  // start of the newest record
};

struct MonitorConfig {
  SessionIdParams session_id;
  /// A client idle this long has finished its last session.
  double client_idle_timeout_s = 120.0;
  /// Sessions with fewer transactions than this are dropped as noise
  /// (stray beacons, preconnects that never carried traffic).
  std::size_t min_transactions = 3;
  /// Emit a provisional estimate every this-many records per client, once
  /// the pending window holds min_transactions records (0 = off). Needs a
  /// provisional callback to have any effect.
  std::size_t provisional_every = 0;
};

/// Online QoE monitoring over a proxy's TLS transaction feed.
///
/// Records must arrive in global start-time order (the proxy's export
/// order); interleaving across clients is expected. The estimator is
/// borrowed and must outlive the monitor.
class StreamingMonitor {
 public:
  using Callback = std::function<void(const MonitoredSession&)>;
  using ViewCallback = std::function<void(const MonitoredSessionView&)>;
  using ProvisionalCallback = std::function<void(const ProvisionalEstimate&)>;

  StreamingMonitor(const QoeEstimator& estimator, Callback on_session,
                   MonitorConfig config = {});

  /// Monitor with the borrowed-span emit path: sessions are reported as
  /// MonitoredSessionView, whose client/transactions borrow the monitor's
  /// per-client buffer for the duration of the callback. Sinks that only
  /// inspect the session (counters, alerting, logging) skip the owned
  /// copy entirely, and the buffer's capacity is reused across sessions.
  static StreamingMonitor with_view_sink(const QoeEstimator& estimator,
                                         ViewCallback on_session,
                                         MonitorConfig config = {});

  /// Install the in-flight estimate hook (see MonitorConfig::
  /// provisional_every). Call before feeding records. The callback fires
  /// from inside observe(), before any session-boundary decision — a
  /// later burst boundary can retroactively assign early records to the
  /// previous session, which is inherent to online estimation.
  void set_provisional_callback(ProvisionalCallback on_provisional);

  /// Feed one proxy record for a client. Completed sessions (detected via
  /// a new-session burst or the client idle timeout) are classified and
  /// reported through the callback before this call returns.
  void observe(const std::string& client, const trace::TlsTransaction& txn);

  /// Advance the monitor's notion of "now" to `now_s` (feed time) without
  /// feeding a record: clients idle longer than the timeout have their
  /// pending session emitted and their state evicted. Lets a driver (e.g.
  /// the sharded ingest engine's low-watermark broadcast) fire idle-client
  /// eviction on monitors whose own clients have gone quiet. `now_s` must
  /// not exceed the start time of any record observed later.
  void advance_time(double now_s);

  /// Flush all in-progress sessions (end of the monitoring window). Their
  /// detected_s is the client's last record start (there is no feed clock
  /// at shutdown).
  void finish();

  std::size_t sessions_reported() const { return sessions_reported_; }
  std::size_t provisionals_reported() const { return provisionals_reported_; }
  std::size_t open_clients() const { return clients_.size(); }

 private:
  struct ViewTag {};
  StreamingMonitor(const QoeEstimator& estimator, Callback on_session,
                   ViewCallback on_session_view, MonitorConfig config,
                   ViewTag);

  struct ClientState {
    trace::TlsLog pending;        // transactions of the in-progress session
    double last_start_s = -1e18;  // latest transaction start seen
    // Live feature state over `pending`, fed in lockstep by observe().
    // After a burst-boundary split it is rebuilt from the surviving
    // records; acc.transactions() == pending.size() is the invariant
    // emit() relies on to classify without re-extracting.
    TlsFeatureAccumulator acc;
  };

  void emit(const std::string& client, ClientState& state, double detected_s);
  void rebuild_accumulator(ClientState& state);

  const QoeEstimator* estimator_;
  Callback on_session_;
  ViewCallback on_session_view_;
  ProvisionalCallback on_provisional_;
  MonitorConfig config_;
  // unordered: client lookup is on the per-record hot path, needs no order.
  std::unordered_map<std::string, ClientState> clients_;
  std::size_t sessions_reported_ = 0;
  std::size_t provisionals_reported_ = 0;
  // Classification scratch, reused across emits/provisionals (observe is
  // single-threaded per monitor).
  std::vector<double> feature_scratch_;
  std::vector<double> proba_scratch_;
};

}  // namespace droppkt::core
