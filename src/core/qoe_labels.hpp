// Categorical QoE labels (paper Section 2.1).
//
// All three targets use a 3-class ordinal scale encoded worst-to-best:
// class 0 is the "performance problem" class the paper's recall numbers
// focus on. For re-buffering the classes are high / mild / zero; for video
// quality low / medium / high; the combined metric is the minimum (worse)
// of the two.
#pragma once

#include <string>
#include <vector>

#include "has/player.hpp"
#include "has/service_profile.hpp"

namespace droppkt::core {

/// Which QoE metric a model estimates.
enum class QoeTarget { kRebuffering, kVideoQuality, kCombined };

std::string to_string(QoeTarget target);

/// Class names, worst first, for a target (3 classes each).
const std::vector<std::string>& class_names(QoeTarget target);

inline constexpr int kNumQoeClasses = 3;

/// Per-session ground-truth labels.
struct QoeLabels {
  int rebuffering = 2;   // 0: rr > 2%, 1: 0 < rr <= 2%, 2: no stalls
  int video_quality = 2; // 0: low, 1: medium, 2: high (majority category)
  int combined = 2;      // min(rebuffering, video_quality)
  double rebuffer_ratio = 0.0;  // raw rr for reference

  int label_for(QoeTarget target) const;
};

/// Categorize a re-buffering ratio (paper: zero / mild <= 2% / high).
int rebuffering_class(double rebuffer_ratio);

/// Categorize one played height against a service's thresholds.
int quality_class(int height_px, const has::ServiceProfile& svc);

/// Majority-category video quality over the played seconds; ties pick the
/// lower category (paper Section 2.1). Sessions that never played are low.
int video_quality_label(const has::GroundTruth& gt,
                        const has::ServiceProfile& svc);

/// Full label computation for one session.
QoeLabels compute_labels(const has::GroundTruth& gt,
                         const has::ServiceProfile& svc);

}  // namespace droppkt::core
