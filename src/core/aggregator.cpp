#include "core/aggregator.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::core {

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  return wilson_interval_real(static_cast<double>(successes),
                              static_cast<double>(trials), z);
}

Interval wilson_interval_real(double successes, double trials, double z) {
  DROPPKT_EXPECT(successes >= 0.0 && trials >= 0.0,
                 "wilson_interval: counts must be non-negative");
  DROPPKT_EXPECT(successes <= trials,
                 "wilson_interval: successes cannot exceed trials");
  DROPPKT_EXPECT(z > 0.0, "wilson_interval: z must be positive");
  if (trials == 0.0) return {0.0, 1.0};
  const double n = trials;
  const double p = successes / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

LocationAggregator::LocationAggregator(AggregatorConfig config)
    : config_(config) {
  DROPPKT_EXPECT(config_.alert_rate > 0.0 && config_.alert_rate < 1.0,
                 "LocationAggregator: alert rate must be in (0,1)");
  DROPPKT_EXPECT(config_.min_sessions >= 1,
                 "LocationAggregator: min_sessions must be >= 1");
}

void LocationAggregator::record(const std::string& location,
                                int predicted_class) {
  DROPPKT_EXPECT(!location.empty(),
                 "LocationAggregator: location must be non-empty");
  auto& stats = locations_[location];
  stats.location = location;
  ++stats.sessions;
  if (predicted_class == 0) ++stats.low_qoe;
  ++total_;
}

Interval LocationAggregator::interval(const std::string& location) const {
  const auto it = locations_.find(location);
  if (it == locations_.end()) return {0.0, 1.0};
  return wilson_interval(it->second.low_qoe, it->second.sessions, config_.z);
}

std::vector<LocationStats> LocationAggregator::flagged() const {
  std::vector<LocationStats> out;
  for (const auto& [name, stats] : locations_) {
    if (stats.sessions < config_.min_sessions) continue;
    const auto ci = wilson_interval(stats.low_qoe, stats.sessions, config_.z);
    if (ci.low > config_.alert_rate) out.push_back(stats);
  }
  // Worst first; equal rates tie-break on (sessions desc, name asc) so the
  // ordering is total and stable run-to-run — std::sort on rate alone
  // leaves tied locations in unspecified relative order.
  std::sort(out.begin(), out.end(),
            [](const LocationStats& a, const LocationStats& b) {
              if (a.rate() != b.rate()) return a.rate() > b.rate();
              if (a.sessions != b.sessions) return a.sessions > b.sessions;
              return a.location < b.location;
            });
  return out;
}

}  // namespace droppkt::core
