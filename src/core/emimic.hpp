// eMIMIC-style analytic QoE estimation (Mangla et al., TMA 2018 — the
// paper's reference [22], by the same authors).
//
// Instead of learning a classifier, eMIMIC reconstructs the HAS session
// analytically from HTTP-level transactions: segment requests are
// detected from the request/response pattern, each segment is assumed to
// carry a fixed media duration, and playback is replayed against segment
// arrival times to estimate startup, re-buffering and average bitrate.
// It needs the fine-grained (per-request) view — exactly the data the
// paper argues is expensive — which makes it the natural analytic
// counterpart to the ML16 comparison.
#pragma once

#include "core/qoe_labels.hpp"
#include "has/http_transaction.hpp"
#include "has/service_profile.hpp"

namespace droppkt::core {

struct EmimicConfig {
  /// Requests at least this large are treated as media segments.
  double min_segment_bytes = 30e3;
  /// Buffer level (media seconds) at which playback is assumed to start.
  double startup_segments = 2.0;
};

/// eMIMIC's reconstruction of a session.
struct EmimicEstimate {
  double startup_delay_s = 0.0;
  double rebuffer_ratio = 0.0;
  double avg_bitrate_kbps = 0.0;   // media bytes over played duration
  std::size_t segments_detected = 0;

  /// Categorical labels derived from the reconstruction, using the same
  /// thresholds as the ground truth (rr classes; bitrate mapped onto the
  /// service ladder for the quality class).
  QoeLabels to_labels(const has::ServiceProfile& svc) const;
};

/// Reconstruct a session from its HTTP transaction log. The log must be
/// sorted by request time (the player guarantees this); `segment_duration`
/// is the service's nominal media seconds per segment — eMIMIC assumes it
/// is known or estimated out of band.
EmimicEstimate emimic_estimate(const has::HttpLog& http,
                               double segment_duration_s,
                               const EmimicConfig& config = {});

}  // namespace droppkt::core
