// ML16 baseline: packet-trace features after Dimopoulos et al.,
// "Measuring Video QoE from Encrypted Traffic" (IMC 2016) — the
// comparison point of the paper's Table 4.
//
// The feature set combines (a) video-chunk statistics recovered from the
// request/response structure of the packet trace and (b) network-health
// metrics: throughput, RTT estimates, loss and retransmissions. All of it
// is computed from the packet log alone, the way a passive monitor would.
#pragma once

#include <string>
#include <vector>

#include "trace/records.hpp"

namespace droppkt::core {

/// Chunk detection: a new chunk starts at each uplink packet with payload
/// (an HTTP request); the chunk aggregates following downlink data.
struct Ml16Config {
  double min_chunk_bytes = 10e3;  // ignore tiny responses (beacons, inits)
  double chunk_gap_s = 0.25;      // idle gap that also closes a chunk
};

/// Names of the ML16 features, in extraction order.
std::vector<std::string> ml16_feature_names();

/// Number of ML16 features, without building the name vector: 4 chunk
/// metrics x 5 stats, 2 chunk counts, 8 network-health, 4 volume, 2 rate,
/// 3 D2U, 5x2 cumulative windows, 5 flow aggregates.
inline constexpr std::size_t ml16_feature_count() { return 54; }

/// Extract the ML16 feature vector from one session's packet trace.
/// Packets must be sorted by timestamp (the generator guarantees this).
std::vector<double> extract_ml16_features(const trace::PacketLog& packets,
                                          const Ml16Config& config = {});

}  // namespace droppkt::core
