#include "core/feature_accumulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace droppkt::core {
namespace {

/// min / median / max of a scratch sample without a full sort,
/// bit-identical to util::summarize_sorted over the sorted copy: the same
/// order statistics are selected (via nth_element partitioning) and the
/// median interpolation replicates percentile_sorted's arithmetic on the
/// same operand values. Reorders `v`; small samples just sort (cheaper
/// than selection at that size, and trivially identical).
struct MinMedMax {
  double min, median, max;
};

MinMedMax min_med_max(std::vector<double>& v) {
  const std::size_t n = v.size();
  DROPPKT_ASSERT(n > 0, "min_med_max: empty sample");
  if (n <= 32) {
    std::sort(v.begin(), v.end());
    const auto s = util::summarize_sorted(v);
    return {s.min, s.median, s.max};
  }
  // percentile_sorted(v, 50): rank = 0.5 * (n - 1), lo = floor(rank).
  const double rank = 0.5 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const auto nth = v.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(v.begin(), nth, v.end());
  const double v_lo = *nth;  // sorted[lo]
  // n > 32 puts lo in [1, n-2]: both partitions are non-empty, so the
  // global min lives left of nth and sorted[lo+1] / the global max right.
  const double v_min = *std::min_element(v.begin(), nth);
  double v_hi = v[lo + 1];
  double v_max = v_hi;
  for (std::size_t i = lo + 2; i < n; ++i) {
    v_hi = std::min(v_hi, v[i]);
    v_max = std::max(v_max, v[i]);
  }
  return {v_min, v_lo + frac * (v_hi - v_lo), v_max};
}

}  // namespace

TlsFeatureAccumulator::TlsFeatureAccumulator(TlsFeatureConfig config)
    : config_(std::move(config)) {
  for (double end : config_.interval_ends_s) {
    DROPPKT_EXPECT(end > 0.0, "TlsFeatureConfig: interval ends must be > 0");
  }
  n_features_ = tls_feature_count(config_);
  cum_dl_.resize(config_.interval_ends_s.size());
  cum_ul_.resize(config_.interval_ends_s.size());
  s_cum_dl_.resize(config_.interval_ends_s.size());
  s_cum_ul_.resize(config_.interval_ends_s.size());

  // Sessions usually hold tens of transactions; pre-sizing to that scale
  // turns the growth-realloc churn of a fresh accumulator (the batch
  // wrapper builds one per call) into a handful of fixed allocations.
  constexpr std::size_t kExpectedTxns = 32;
  txns_.reserve(kExpectedTxns);
  for (util::OrderedSample* s : {&dl_, &ul_, &dur_, &tdr_, &d2u_, &starts_,
                                 &iat_}) {
    s->reserve(kExpectedTxns);
  }
}

void TlsFeatureAccumulator::fold_intervals(const Txn& t,
                                           std::vector<util::ExactSum>& dl,
                                           std::vector<util::ExactSum>& ul) const {
  // A transaction contributes bytes proportional to its overlap with
  // [first_start, first_start + end). Two exactness-preserving shortcuts:
  // zero-overlap terms are skipped (an exact 0 never moves an ExactSum's
  // correctly-rounded value), and full coverage adds the raw bytes (there
  // share == 1.0 exactly, and bytes * 1.0 is the same double as bytes).
  const double span_raw = t.end_s - t.start_s;
  const double span = std::max(1e-3, span_raw);
  for (std::size_t i = 0; i < config_.interval_ends_s.size(); ++i) {
    const double window_end = first_start_ + config_.interval_ends_s[i];
    if (t.start_s >= window_end) continue;  // overlap <= 0: zero share
    if (t.end_s <= window_end && span_raw >= 1e-3) {
      dl[i].add(t.dl_bytes);
      ul[i].add(t.ul_bytes);
      continue;
    }
    const double overlap =
        std::max(0.0, std::min(t.end_s, window_end) - t.start_s);
    const double share = std::min(1.0, overlap / span);
    dl[i].add(t.dl_bytes * share);
    ul[i].add(t.ul_bytes * share);
  }
}

void TlsFeatureAccumulator::rebuild_intervals() {
  // A transaction arrived with an earlier start than anything seen, so
  // every interval window [first_start, first_start + end) moved: re-fold
  // all contributions. Rare in practice (logs are near session-relative,
  // so the first observation usually pins first_start) and exact in any
  // case — ExactSum makes the re-fold order-irrelevant.
  for (auto& s : cum_dl_) s.clear();
  for (auto& s : cum_ul_) s.clear();
  for (const Txn& t : txns_) fold_intervals(t, cum_dl_, cum_ul_);
}

void TlsFeatureAccumulator::observe(double start_s, double end_s,
                                    double ul_bytes, double dl_bytes) {
  DROPPKT_EXPECT(end_s >= start_s,
                 "TlsFeatureAccumulator: transaction end precedes start");
  const Txn t{start_s, end_s, ul_bytes, dl_bytes};
  const bool first = txns_.empty();
  txns_.push_back(t);
  s_by_start_valid_ = false;

  total_dl_.add(t.dl_bytes);
  total_ul_.add(t.ul_bytes);
  dl_.insert(t.dl_bytes);
  ul_.insert(t.ul_bytes);
  const double dur = t.end_s - t.start_s;
  dur_.insert(dur);
  const double d = std::max(1e-3, dur);
  tdr_.insert(t.dl_bytes * 8.0 / 1000.0 / d);
  d2u_.insert(t.ul_bytes > 0.0 ? t.dl_bytes / t.ul_bytes : 0.0);

  // Inter-arrival gaps: inserting a start into the sorted sequence splits
  // one adjacent gap into two (or extends an end). The resulting multiset
  // equals the adjacent differences of the final sorted starts, which is
  // what the batch extractor computes.
  const auto sp = starts_.sorted();
  if (!sp.empty()) {
    const auto pos = static_cast<std::size_t>(
        std::upper_bound(sp.begin(), sp.end(), t.start_s) - sp.begin());
    if (pos == 0) {
      iat_.insert(sp.front() - t.start_s);
    } else if (pos == sp.size()) {
      iat_.insert(t.start_s - sp.back());
    } else {
      iat_.erase_one(sp[pos] - sp[pos - 1]);
      iat_.insert(t.start_s - sp[pos - 1]);
      iat_.insert(sp[pos] - t.start_s);
    }
  }
  starts_.insert(t.start_s);

  if (first) {
    first_start_ = t.start_s;
    last_end_ = t.end_s;
    fold_intervals(t, cum_dl_, cum_ul_);
    return;
  }
  last_end_ = std::max(last_end_, t.end_s);
  if (t.start_s < first_start_) {
    first_start_ = t.start_s;
    rebuild_intervals();
  } else {
    fold_intervals(t, cum_dl_, cum_ul_);
  }
}

void TlsFeatureAccumulator::reset() {
  txns_.clear();
  s_by_start_.clear();
  s_by_start_valid_ = false;
  first_start_ = 0.0;
  last_end_ = 0.0;
  total_dl_.clear();
  total_ul_.clear();
  dl_.clear();
  ul_.clear();
  dur_.clear();
  tdr_.clear();
  d2u_.clear();
  starts_.clear();
  iat_.clear();
  for (auto& s : cum_dl_) s.clear();
  for (auto& s : cum_ul_) s.clear();
}

void TlsFeatureAccumulator::snapshot_into(std::span<double> out) const {
  DROPPKT_EXPECT(out.size() == n_features_,
                 "TlsFeatureAccumulator::snapshot_into: bad output size");
  if (txns_.empty()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const double ses_dur = std::max(1e-3, last_end_ - first_start_);
  std::size_t f = 0;
  out[f++] = total_dl_.value() * 8.0 / 1000.0 / ses_dur;  // SDR_DL (kbps)
  out[f++] = total_ul_.value() * 8.0 / 1000.0 / ses_dur;  // SDR_UL (kbps)
  out[f++] = ses_dur;                                     // SES_DUR (s)
  out[f++] = static_cast<double>(txns_.size()) / ses_dur;  // TRANS_PER_SEC

  for (const util::OrderedSample* metric :
       {&dl_, &ul_, &dur_, &tdr_, &d2u_, &iat_}) {
    const auto s = util::summarize_sorted(metric->sorted());
    out[f++] = s.min;
    out[f++] = s.median;
    out[f++] = s.max;
    if (config_.extended_stats) {
      out[f++] = s.mean;
      out[f++] = s.stddev;
    }
  }

  for (std::size_t i = 0; i < cum_dl_.size(); ++i) {
    out[f++] = cum_dl_[i].value();
    out[f++] = cum_ul_[i].value();
  }
  DROPPKT_ENSURE(f == n_features_,
                 "TlsFeatureAccumulator: feature count drift");
}

void TlsFeatureAccumulator::snapshot_at(double horizon_s,
                                        std::span<double> out) {
  DROPPKT_EXPECT(horizon_s > 0.0,
                 "TlsFeatureAccumulator::snapshot_at: horizon must be > 0");
  DROPPKT_EXPECT(out.size() == n_features_,
                 "TlsFeatureAccumulator::snapshot_at: bad output size");
  if (txns_.empty()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const double cutoff = first_start_ + horizon_s;
  // Horizon past the session's end: nothing is dropped (every start <=
  // last_end < cutoff) or clipped (every end <= last_end < cutoff), so the
  // truncated view is the full log — reuse the O(features) live snapshot
  // instead of re-folding the scratch pass below.
  if (cutoff > last_end_) {
    snapshot_into(out);
    return;
  }

  // The sweep walks the start-sorted copy once across an ascending run of
  // cutoffs (the early-detection access pattern). A transaction CLOSED at
  // the current cutoff (end <= cutoff) contributes the same exact values
  // to every later horizon — its clipped form equals its raw form — so it
  // folds into the persistent s_* scratch exactly once, in fold_closed().
  // Only the few transactions still open at the cutoff get clipped per
  // call, into o_* copies. observe() or a smaller horizon resets the run.
  if (!s_by_start_valid_) {
    s_by_start_ = txns_;
    std::sort(s_by_start_.begin(), s_by_start_.end(),
              [](const Txn& a, const Txn& b) { return a.start_s < b.start_s; });
    s_by_start_valid_ = true;
    reset_sweep();
  }
  if (cutoff < sweep_cutoff_) reset_sweep();
  sweep_cutoff_ = cutoff;

  // Admit transactions that started before the new cutoff. Starts (and
  // hence IATs) are cutoff-independent for any started transaction —
  // clipping never moves start_s — so they append to the persistent
  // ascending arrays directly.
  while (sweep_pos_ < s_by_start_.size() &&
         s_by_start_[sweep_pos_].start_s < cutoff) {
    const Txn& t = s_by_start_[sweep_pos_];
    if (!s_starts_.empty()) s_iat_.push_back(t.start_s - s_starts_.back());
    s_starts_.push_back(t.start_s);
    if (t.end_s <= cutoff) {
      fold_closed(t);
    } else {
      sweep_open_.push_back(static_cast<std::uint32_t>(sweep_pos_));
    }
    ++sweep_pos_;
  }
  // Previously-open transactions that the advancing cutoff has now passed
  // fold over to the closed side.
  for (std::size_t i = 0; i < sweep_open_.size();) {
    const Txn& t = s_by_start_[sweep_open_[i]];
    if (t.end_s <= cutoff) {
      fold_closed(t);
      sweep_open_[i] = sweep_open_.back();
      sweep_open_.pop_back();
    } else {
      ++i;
    }
  }
  DROPPKT_ENSURE(sweep_pos_ > 0,
                 "TlsFeatureAccumulator::snapshot_at: empty horizon view");
  DROPPKT_ASSERT(std::is_sorted(s_starts_.begin(), s_starts_.end()),
                 "snapshot_at: starts not sorted");

  // Clip the open transactions to this cutoff (truncate_tls_log's rule).
  o_clipped_.clear();
  for (std::uint32_t idx : sweep_open_) {
    const Txn& t = s_by_start_[idx];
    const double span = std::max(1e-3, t.end_s - t.start_s);
    const double share = (cutoff - t.start_s) / span;
    o_clipped_.push_back(
        {t.start_s, cutoff, t.ul_bytes * share, t.dl_bytes * share});
  }
  // Every clipped transaction ends exactly at the cutoff, so the view's
  // last end is the cutoff itself whenever anything is open.
  const double last =
      sweep_open_.empty() ? sweep_last_closed_end_ : cutoff;

  // Totals and cumulative-interval sums: copy the closed-side exact sums
  // (partials only — no heap for realistic sessions) and extend with the
  // clipped contributions. ExactSum is order-insensitive, so closed-then-
  // open fold order matches the batch extractor bit for bit.
  util::ExactSum tot_dl = s_total_dl_;
  util::ExactSum tot_ul = s_total_ul_;
  for (const Txn& c : o_clipped_) {
    tot_dl.add(c.dl_bytes);
    tot_ul.add(c.ul_bytes);
  }
  o_cum_dl_ = s_cum_dl_;
  o_cum_ul_ = s_cum_ul_;
  for (const Txn& c : o_clipped_) fold_intervals(c, o_cum_dl_, o_cum_ul_);

  const double ses_dur = std::max(1e-3, last - first_start_);
  std::size_t f = 0;
  out[f++] = tot_dl.value() * 8.0 / 1000.0 / ses_dur;
  out[f++] = tot_ul.value() * 8.0 / 1000.0 / ses_dur;
  out[f++] = ses_dur;
  out[f++] = static_cast<double>(s_starts_.size()) / ses_dur;

  for (std::size_t m = 0; m < 6; ++m) {
    // Summaries reorder their input (selection / sort), so they operate on
    // a per-call copy: closed-side values plus the open transactions'
    // clipped values, computed with the same expressions as fold_closed.
    if (m < 5) {
      s_summary_.assign(s_metric_[m].begin(), s_metric_[m].end());
      for (const Txn& c : o_clipped_) {
        switch (m) {
          case 0: s_summary_.push_back(c.dl_bytes); break;
          case 1: s_summary_.push_back(c.ul_bytes); break;
          case 2: s_summary_.push_back(c.end_s - c.start_s); break;
          case 3:
            s_summary_.push_back(c.dl_bytes * 8.0 / 1000.0 /
                                 std::max(1e-3, c.end_s - c.start_s));
            break;
          default:
            s_summary_.push_back(
                c.ul_bytes > 0.0 ? c.dl_bytes / c.ul_bytes : 0.0);
            break;
        }
      }
    } else {
      s_summary_.assign(s_iat_.begin(), s_iat_.end());
    }
    if (!config_.extended_stats) {
      // Per-horizon hot path: selection instead of a full sort. An empty
      // sample (IAT of a single-transaction view) summarizes to zeros,
      // like summarize_sorted.
      const auto s = s_summary_.empty() ? MinMedMax{0.0, 0.0, 0.0}
                                        : min_med_max(s_summary_);
      out[f++] = s.min;
      out[f++] = s.median;
      out[f++] = s.max;
      continue;
    }
    // mean/stddev fold in sorted order inside summarize_sorted; keep the
    // sort so the fold order — hence every rounding — matches the batch
    // extractor's.
    std::sort(s_summary_.begin(), s_summary_.end());
    const auto s = util::summarize_sorted(s_summary_);
    out[f++] = s.min;
    out[f++] = s.median;
    out[f++] = s.max;
    out[f++] = s.mean;
    out[f++] = s.stddev;
  }

  for (std::size_t i = 0; i < o_cum_dl_.size(); ++i) {
    out[f++] = o_cum_dl_[i].value();
    out[f++] = o_cum_ul_[i].value();
  }
  DROPPKT_ENSURE(f == n_features_,
                 "TlsFeatureAccumulator: feature count drift");
}

void TlsFeatureAccumulator::reset_sweep() {
  sweep_cutoff_ = -std::numeric_limits<double>::infinity();
  sweep_pos_ = 0;
  sweep_open_.clear();
  // Overwritten by the first fold_closed; when the open set is empty at
  // least one transaction is closed (sweep_pos_ > 0), so this sentinel
  // never reaches the feature math.
  sweep_last_closed_end_ = -std::numeric_limits<double>::infinity();
  for (auto& v : s_metric_) v.clear();
  s_starts_.clear();
  s_iat_.clear();
  s_total_dl_.clear();
  s_total_ul_.clear();
  for (auto& s : s_cum_dl_) s.clear();
  for (auto& s : s_cum_ul_) s.clear();
}

void TlsFeatureAccumulator::fold_closed(const Txn& t) {
  sweep_last_closed_end_ = std::max(sweep_last_closed_end_, t.end_s);
  s_total_dl_.add(t.dl_bytes);
  s_total_ul_.add(t.ul_bytes);
  s_metric_[0].push_back(t.dl_bytes);
  s_metric_[1].push_back(t.ul_bytes);
  const double dur = t.end_s - t.start_s;
  s_metric_[2].push_back(dur);
  s_metric_[3].push_back(t.dl_bytes * 8.0 / 1000.0 / std::max(1e-3, dur));
  s_metric_[4].push_back(t.ul_bytes > 0.0 ? t.dl_bytes / t.ul_bytes : 0.0);
  fold_intervals(t, s_cum_dl_, s_cum_ul_);
}

std::vector<double> TlsFeatureAccumulator::snapshot() const {
  std::vector<double> out(n_features_);
  snapshot_into(out);
  return out;
}

}  // namespace droppkt::core
