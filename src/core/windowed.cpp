#include "core/windowed.hpp"

#include <algorithm>
#include <cmath>

#include "net/link_model.hpp"
#include "trace/packet_generator.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace droppkt::core {

std::vector<std::string> window_feature_names() {
  std::vector<std::string> names = {
      "WIN_DL_BYTES",    "WIN_UL_BYTES",   "WIN_DL_PKTS",
      "WIN_UL_PKTS",     "WIN_TPUT_KBPS",  "WIN_RETX_RATE",
      "WIN_ACTIVE_FRAC", "WIN_BURSTINESS", "WIN_MAX_GAP_S",
      "WIN_REQUESTS"};
  DROPPKT_ENSURE(names.size() == window_feature_count(),
                 "window features: name/count drift");
  return names;
}

std::vector<double> extract_window_features(
    std::span<const trace::PacketRecord> slice, double win_start_s,
    double window_s) {
  DROPPKT_EXPECT(window_s > 0.0, "window features: window must be positive");
  std::vector<double> f(window_feature_count(), 0.0);
  double dl = 0.0, ul = 0.0;
  std::size_t dl_pkts = 0, ul_pkts = 0, retx = 0, requests = 0;
  const auto n_secs = static_cast<std::size_t>(std::ceil(window_s));
  std::vector<double> per_sec(std::max<std::size_t>(1, n_secs), 0.0);
  double last_ts = win_start_s;
  double max_gap = 0.0;
  for (const auto& p : slice) {
    max_gap = std::max(max_gap, p.ts_s - last_ts);
    last_ts = p.ts_s;
    const auto sec = static_cast<std::size_t>(
        std::clamp(p.ts_s - win_start_s, 0.0, window_s - 1e-9));
    if (p.dir == trace::Direction::kDownlink) {
      dl += p.size_bytes;
      ++dl_pkts;
      if (p.retransmission) ++retx;
      if (sec < per_sec.size()) per_sec[sec] += p.size_bytes;
    } else {
      ul += p.size_bytes;
      ++ul_pkts;
      if (p.payload_bytes > 0) ++requests;
    }
  }
  max_gap = std::max(max_gap, win_start_s + window_s - last_ts);

  std::size_t active_secs = 0;
  for (double b : per_sec) active_secs += b > 0.0;

  std::size_t i = 0;
  f[i++] = dl;
  f[i++] = ul;
  f[i++] = static_cast<double>(dl_pkts);
  f[i++] = static_cast<double>(ul_pkts);
  f[i++] = dl * 8.0 / 1000.0 / window_s;
  f[i++] = dl_pkts > 0 ? static_cast<double>(retx) / dl_pkts : 0.0;
  f[i++] = static_cast<double>(active_secs) / per_sec.size();
  f[i++] = util::stddev(per_sec);
  f[i++] = max_gap;
  f[i++] = static_cast<double>(requests);
  DROPPKT_ENSURE(i == f.size(), "window features: count drift");
  return f;
}

SessionWindows windows_for_session(const LabeledSession& session,
                                   const WindowedConfig& config) {
  DROPPKT_EXPECT(config.window_s > 0.0,
                 "windows_for_session: window must be positive");
  util::Rng rng(session.record.seed ^ 0x9ac4e7ULL);
  const trace::PacketTraceGenerator gen(
      net::link_params_for(session.record.environment));
  const trace::PacketLog packets = gen.generate(session.record.http, rng);

  const double end_s = session.record.ground_truth.session_end_s;
  const auto n_windows =
      static_cast<std::size_t>(std::ceil(end_s / config.window_s));

  SessionWindows out;
  std::size_t pkt_lo = 0;
  for (std::size_t w = 0; w < n_windows; ++w) {
    const double t0 = static_cast<double>(w) * config.window_s;
    const double t1 = t0 + config.window_s;
    // Packets are sorted: advance a sliding range.
    while (pkt_lo < packets.size() && packets[pkt_lo].ts_s < t0) ++pkt_lo;
    std::size_t pkt_hi = pkt_lo;
    while (pkt_hi < packets.size() && packets[pkt_hi].ts_s < t1) ++pkt_hi;
    out.features.push_back(extract_window_features(
        std::span<const trace::PacketRecord>(packets.data() + pkt_lo,
                                             pkt_hi - pkt_lo),
        t0, config.window_s));
    pkt_lo = pkt_hi;

    double stall_overlap = 0.0;
    for (const auto& s : session.record.ground_truth.stalls) {
      stall_overlap +=
          std::max(0.0, std::min(s.end_s, t1) - std::max(s.start_s, t0));
    }
    out.stalled.push_back(
        stall_overlap / config.window_s >= config.stall_fraction_threshold ? 1
                                                                           : 0);
  }
  return out;
}

ml::Dataset make_window_dataset(const LabeledDataset& sessions,
                                const WindowedConfig& config) {
  DROPPKT_EXPECT(!sessions.empty(), "make_window_dataset: empty dataset");
  ml::Dataset data(window_feature_names(), 2);
  for (const auto& s : sessions) {
    auto windows = windows_for_session(s, config);
    for (std::size_t w = 0; w < windows.features.size(); ++w) {
      data.add_row(std::move(windows.features[w]), windows.stalled[w]);
    }
  }
  return data;
}

int session_rebuffering_from_windows(std::span<const int> window_predictions,
                                     const WindowedConfig& config) {
  DROPPKT_EXPECT(config.window_s > 0.0,
                 "session_rebuffering_from_windows: window must be positive");
  if (window_predictions.empty()) return 2;  // nothing observed: zero
  std::size_t stalled = 0;
  for (int p : window_predictions) stalled += p != 0;
  if (stalled == 0) return 2;  // zero
  const double fraction =
      static_cast<double>(stalled) / window_predictions.size();
  // One coarse window already exceeds the paper's 2% mild threshold for
  // typical sessions — the quantization cost of deriving per-session
  // metrics from fine-granular estimates. We call <=10% of windows "mild".
  return fraction <= 0.10 ? 1 : 0;
}

}  // namespace droppkt::core
