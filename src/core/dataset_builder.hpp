// Dataset generation: drives the full simulation stack to produce the
// paper's evaluation corpus (Section 4.1) — thousands of sessions per
// service streamed under diverse emulated network conditions, each with
// ground-truth labels, an HTTP log, and the proxy's TLS log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/qoe_labels.hpp"
#include "has/service_profile.hpp"
#include "net/trace_generator.hpp"
#include "trace/session_record.hpp"

namespace droppkt::core {

/// A simulated session plus its ground-truth QoE labels.
struct LabeledSession {
  trace::SessionRecord record;
  QoeLabels labels;
};

using LabeledDataset = std::vector<LabeledSession>;

struct DatasetConfig {
  std::size_t num_sessions = 0;     // 0: use the paper's count for the service
  std::size_t catalog_size = 60;    // paper: 50-75 titles per service
  std::size_t trace_pool_size = 300;
  std::uint64_t seed = 20201204;    // CoNEXT'20 conference date
};

/// The paper's session count for a service (Svc1 2111, Svc2 2216,
/// Svc3 1440), scaled by DROPPKT_SESSIONS_SCALE if set.
std::size_t paper_session_count(const std::string& service_name);

/// Value of DROPPKT_SESSIONS_SCALE clamped to (0, 1]; 1 when unset.
double dataset_scale();

/// Simulate a full dataset for one service.
LabeledDataset build_dataset(const has::ServiceProfile& svc,
                             const DatasetConfig& config = {});

/// A merged TLS log of back-to-back sessions for the session-identification
/// experiment (Table 5).
struct BackToBackStream {
  trace::TlsLog merged;          // sorted by start time
  std::vector<bool> truth_new;   // parallel to merged: first txn of a session
  std::size_t num_sessions = 0;
};

/// Stream `num_sessions` videos consecutively (each starting the moment the
/// previous player closes) and merge the proxy's view into one log.
BackToBackStream build_back_to_back(const has::ServiceProfile& svc,
                                    std::size_t num_sessions,
                                    std::uint64_t seed);

}  // namespace droppkt::core
