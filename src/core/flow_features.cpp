#include "core/flow_features.hpp"

#include <set>

#include "core/feature_accumulator.hpp"
#include "net/link_model.hpp"
#include "trace/packet_generator.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::core {

namespace {

/// A flow record carries the same (start, end, ul, dl) shape as a TLS
/// transaction; folding the fields straight into the accumulator runs the
/// 38-feature extractor unchanged without materializing a TlsLog.
void observe_flows(TlsFeatureAccumulator& acc, const trace::FlowLog& flows) {
  for (const auto& f : flows) {
    acc.observe(f.first_s, f.last_s, f.ul_bytes, f.dl_bytes);
  }
}

}  // namespace

std::vector<std::string> flow_feature_names(const TlsFeatureConfig& config) {
  auto names = tls_feature_names(config);
  for (auto& n : names) n = "FLOW_" + n;
  return names;
}

std::vector<double> extract_flow_features(const trace::FlowLog& flows,
                                          const TlsFeatureConfig& config) {
  TlsFeatureAccumulator acc(config);
  observe_flows(acc, flows);
  return acc.snapshot();
}

trace::FlowLog flows_for_session(const trace::SessionRecord& record,
                                 const trace::FlowExportConfig& config) {
  util::Rng rng(record.seed ^ 0x9ac4e7ULL);
  const trace::PacketTraceGenerator gen(net::link_params_for(record.environment));
  const trace::PacketLog packets = gen.generate(record.http, rng);

  // Connection id -> server IP, derived from the HTTP log's host mapping.
  std::vector<std::pair<std::uint32_t, std::string>> ip_of_flow;
  std::set<std::uint32_t> seen;
  for (const auto& txn : record.http) {
    if (txn.connection_id < 0) continue;
    const auto id = static_cast<std::uint32_t>(txn.connection_id);
    if (seen.insert(id).second) {
      ip_of_flow.emplace_back(id, trace::server_ip_for_host(txn.host));
    }
  }
  const trace::FlowExporter exporter(config);
  return exporter.export_flows(packets, ip_of_flow);
}

trace::DnsLog dns_for_session(const trace::SessionRecord& record) {
  trace::DnsLog dns;
  std::set<std::string> seen;
  for (const auto& txn : record.http) {
    if (txn.host.empty()) continue;
    if (seen.insert(txn.host).second) {
      dns.push_back({.ts_s = txn.request_s - 0.01,
                     .name = txn.host,
                     .ip = trace::server_ip_for_host(txn.host)});
    }
  }
  return dns;
}

ml::Dataset make_flow_dataset(const LabeledDataset& sessions, QoeTarget target,
                              const trace::FlowExportConfig& config,
                              const TlsFeatureConfig& features) {
  DROPPKT_EXPECT(!sessions.empty(), "make_flow_dataset: empty dataset");
  ml::Dataset data(flow_feature_names(features), kNumQoeClasses);
  data.reserve(sessions.size());
  TlsFeatureAccumulator acc(features);
  std::vector<double> row(acc.feature_count());
  for (const auto& s : sessions) {
    const auto flows = flows_for_session(s.record, config);
    acc.reset();
    observe_flows(acc, flows);
    acc.snapshot_into(row);
    data.add_row(std::span<const double>(row), s.labels.label_for(target));
  }
  return data;
}

}  // namespace droppkt::core
