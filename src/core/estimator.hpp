// QoEEstimator: the library's primary public API.
//
// Train on labelled sessions (simulated here; proxy logs + ground truth in
// a deployment), then estimate categorical QoE for new sessions straight
// from their TLS transaction logs.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/feature_accumulator.hpp"
#include "core/qoe_labels.hpp"
#include "core/tls_features.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"

namespace droppkt::core {

/// Configuration of a QoeEstimator.
struct EstimatorConfig {
  QoeTarget target = QoeTarget::kCombined;
  TlsFeatureConfig features;
  ml::RandomForestParams forest;
};

/// End-to-end estimator: TLS log -> 38 features -> Random Forest -> class.
///
/// Every predict* method serves from a ml::CompiledForest flattened once
/// at train/load time — the tree-walk forest is kept for training,
/// importances and serialization, inference runs on the flat arrays.
/// Results are byte-identical to voting the tree-walk forest directly.
class QoeEstimator {
 public:
  using Config = EstimatorConfig;

  explicit QoeEstimator(Config config = {});

  /// Train on labelled sessions. Throws if `sessions` is empty.
  void train(const LabeledDataset& sessions);

  /// Train directly on (TLS log, class label) pairs — the deployment path.
  void train_raw(const std::vector<std::pair<trace::TlsLog, int>>& labelled);

  bool trained() const { return trained_; }
  const Config& config() const { return config_; }

  /// Predicted class for a session (0 = worst, 2 = best).
  int predict(const trace::TlsLog& session) const;

  /// Human-readable class name for a prediction on this target.
  const std::string& class_name(int cls) const;

  /// Per-class probabilities.
  std::vector<double> predict_proba(const trace::TlsLog& session) const;

  /// Width of the feature vector this estimator consumes.
  std::size_t feature_count() const {
    return tls_feature_count(config_.features);
  }

  /// A fresh accumulator configured to feed this estimator — streaming
  /// callers hold one per client and snapshot it into the span APIs.
  TlsFeatureAccumulator make_accumulator() const {
    return TlsFeatureAccumulator(config_.features);
  }

  /// Predicted class from an already-extracted feature vector (size
  /// feature_count()). No allocation beyond the forest's per-row scratch.
  int predict_into(std::span<const double> features,
                   std::span<double> proba_scratch) const;

  /// Per-class probabilities from an already-extracted feature vector
  /// into `out` (size kNumQoeClasses). Zero allocation.
  void predict_proba_into(std::span<const double> features,
                          std::span<double> out) const;

  /// Classify an accumulator's live state: snapshot into `feature_scratch`
  /// (size feature_count()) and vote. The zero-allocation streaming path —
  /// bit-identical to predict() over the same transactions, mid-session
  /// or complete.
  int predict_into(const TlsFeatureAccumulator& acc,
                   std::span<double> feature_scratch,
                   std::span<double> proba_scratch) const;

  /// Classify many sessions in one pass — the monitoring-node hot path.
  /// Feature extraction and forest voting are spread over `num_threads`
  /// workers (0 = hardware concurrency) and the forest votes accumulate
  /// into one flat buffer, so no per-session/per-tree vectors are
  /// allocated. Predictions are identical for any thread count.
  std::vector<int> predict_batch(std::span<const trace::TlsLog> sessions,
                                 std::size_t num_threads = 0) const;

  /// Batch probabilities: `out` must hold sessions.size() x kNumQoeClasses
  /// doubles (row-major, one row per session).
  void predict_proba_batch(std::span<const trace::TlsLog> sessions,
                           std::span<double> out,
                           std::size_t num_threads = 0) const;

  /// Forest feature importances paired with feature names, descending.
  std::vector<std::pair<std::string, double>> feature_importances() const;

  /// Persist the trained estimator (target, feature intervals, forest) so
  /// monitoring nodes can load it without the training corpus.
  void save_file(const std::string& path) const;
  static QoeEstimator load_file(const std::string& path);

  /// Count every prediction (single-row and batch rows alike) into
  /// `predictions` — typically registry.counter("ml.predictions").
  /// nullptr unbinds. Survives retraining: the binding is re-forwarded to
  /// each recompiled forest. Setup-phase, like all telemetry binding; the
  /// predict paths themselves stay const and thread-safe.
  void bind_telemetry(telemetry::Counter* predictions);

 private:
  Config config_;
  ml::RandomForest forest_;
  ml::CompiledForest compiled_;  // rebuilt after every train/load
  /// Borrowed prediction counter re-applied at every compile site.
  telemetry::Counter* predictions_ctr_ = nullptr;
  bool trained_ = false;
};

}  // namespace droppkt::core
