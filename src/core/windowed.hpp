// Fine-granular (windowed) estimation — the estimation style of the
// related work the paper positions against (Requet [14], BUFFEST [17],
// Mazhar & Shafiq [24]): classify every T-second window of a session from
// packet-level features, here for stall detection. The paper notes that
// comparing against these approaches "would require estimation of
// per-session metrics from fine-granular estimation" — this module
// implements that derivation, closing the comparison the paper skipped.
#pragma once

#include <span>

#include "core/dataset_builder.hpp"
#include "ml/dataset.hpp"
#include "trace/records.hpp"

namespace droppkt::core {

struct WindowedConfig {
  double window_s = 10.0;
  /// A window is labelled "stalled" if at least this fraction of it was
  /// spent re-buffering.
  double stall_fraction_threshold = 0.05;
};

/// Names of the per-window packet features.
std::vector<std::string> window_feature_names();

/// Number of per-window features, without building the name vector — the
/// per-window extractor sizes its output with this.
inline constexpr std::size_t window_feature_count() { return 10; }

/// Features of one window's packet slice (packets with ts in
/// [win_start, win_start + window_s), sorted by time).
std::vector<double> extract_window_features(
    std::span<const trace::PacketRecord> slice, double win_start_s,
    double window_s);

/// One session's windows: features plus the stall ground-truth label
/// (1 = stalled window, 0 = smooth).
struct SessionWindows {
  std::vector<std::vector<double>> features;
  std::vector<int> stalled;
};

/// Cut a session into windows, regenerate its packet view, and label each
/// window from the ground-truth stall intervals.
SessionWindows windows_for_session(const LabeledSession& session,
                                   const WindowedConfig& config = {});

/// Pooled window dataset over many sessions (binary classes).
ml::Dataset make_window_dataset(const LabeledDataset& sessions,
                                const WindowedConfig& config = {});

/// Derive the paper's per-session re-buffering class (high / mild / zero,
/// encoded 0/1/2) from per-window stall predictions: predicted stalled
/// windows approximate stall time; the ratio to playback time is then
/// categorized with the Section 2.1 thresholds.
int session_rebuffering_from_windows(std::span<const int> window_predictions,
                                     const WindowedConfig& config = {});

}  // namespace droppkt::core
