// Experiment pipeline: glue between the simulated datasets and the ML
// evaluation protocol. Every bench binary builds on these helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/dataset_builder.hpp"
#include "core/ml16_features.hpp"
#include "core/tls_features.hpp"
#include "ml/cross_validation.hpp"
#include "ml/random_forest.hpp"

namespace droppkt::core {

/// The paper's Table 3 feature ablation groups.
enum class FeatureSet {
  kSessionLevel,          // SL (4 features)
  kSessionPlusTransaction,  // SL + TS (22)
  kFull,                  // SL + TS + Temporal (38)
};

std::string to_string(FeatureSet set);

/// Feature names for an ablation group.
std::vector<std::string> feature_set_names(FeatureSet set,
                                           const TlsFeatureConfig& config = {});

/// Build the ML dataset from TLS features of labelled sessions.
ml::Dataset make_tls_dataset(const LabeledDataset& sessions, QoeTarget target,
                             const TlsFeatureConfig& config = {},
                             FeatureSet set = FeatureSet::kFull);

/// Build the ML16 dataset: regenerate each session's packet trace from its
/// stored seed and extract the packet-based features.
ml::Dataset make_ml16_dataset(const LabeledDataset& sessions, QoeTarget target,
                              const Ml16Config& config = {});

/// Accuracy, low-class recall and low-class precision — the three numbers
/// every results table in the paper reports.
struct Scores {
  double accuracy = 0.0;
  double recall_low = 0.0;
  double precision_low = 0.0;
};

Scores scores_from(const ml::CrossValidationResult& cv);

/// Fresh default-configured Random Forest per CV fold.
std::function<std::unique_ptr<ml::Classifier>()> forest_factory(
    std::uint64_t seed = 42, std::size_t num_trees = 100);

/// Run the paper's protocol: 5-fold stratified CV with a Random Forest.
ml::CrossValidationResult evaluate_tls(const LabeledDataset& sessions,
                                       QoeTarget target,
                                       FeatureSet set = FeatureSet::kFull,
                                       const TlsFeatureConfig& config = {},
                                       std::uint64_t seed = 42);

}  // namespace droppkt::core
