#include "core/qoe_labels.hpp"

#include <algorithm>
#include <array>

#include "util/expect.hpp"

namespace droppkt::core {

std::string to_string(QoeTarget target) {
  switch (target) {
    case QoeTarget::kRebuffering: return "re-buffering";
    case QoeTarget::kVideoQuality: return "video quality";
    case QoeTarget::kCombined: return "combined QoE";
  }
  return "unknown";
}

const std::vector<std::string>& class_names(QoeTarget target) {
  static const std::vector<std::string> kRebuf{"high", "mild", "zero"};
  static const std::vector<std::string> kQuality{"low", "medium", "high"};
  switch (target) {
    case QoeTarget::kRebuffering: return kRebuf;
    case QoeTarget::kVideoQuality:
    case QoeTarget::kCombined: return kQuality;
  }
  return kQuality;
}

int QoeLabels::label_for(QoeTarget target) const {
  switch (target) {
    case QoeTarget::kRebuffering: return rebuffering;
    case QoeTarget::kVideoQuality: return video_quality;
    case QoeTarget::kCombined: return combined;
  }
  return combined;
}

int rebuffering_class(double rr) {
  DROPPKT_EXPECT(rr >= 0.0, "rebuffering_class: rr must be non-negative");
  if (rr == 0.0) return 2;       // zero
  if (rr <= 0.02) return 1;      // mild
  return 0;                      // high
}

int quality_class(int height_px, const has::ServiceProfile& svc) {
  if (height_px <= svc.low_max_px) return 0;
  if (height_px <= svc.med_max_px) return 1;
  return 2;
}

int video_quality_label(const has::GroundTruth& gt,
                        const has::ServiceProfile& svc) {
  if (gt.played_height_per_s.empty()) return 0;  // nothing played: worst
  std::array<std::size_t, kNumQoeClasses> counts{};
  for (int h : gt.played_height_per_s) {
    ++counts[static_cast<std::size_t>(quality_class(h, svc))];
  }
  // Majority; ties select the lower category.
  int best = 0;
  for (int c = 1; c < kNumQoeClasses; ++c) {
    if (counts[static_cast<std::size_t>(c)] >
        counts[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

QoeLabels compute_labels(const has::GroundTruth& gt,
                         const has::ServiceProfile& svc) {
  QoeLabels labels;
  labels.rebuffer_ratio = gt.rebuffer_ratio();
  labels.rebuffering = rebuffering_class(labels.rebuffer_ratio);
  labels.video_quality = video_quality_label(gt, svc);
  labels.combined = std::min(labels.rebuffering, labels.video_quality);
  return labels;
}

}  // namespace droppkt::core
