#include "core/session_id.hpp"

#include <set>
#include <string>

#include "util/expect.hpp"

namespace droppkt::core {

std::vector<bool> detect_session_starts(const trace::TlsLog& merged,
                                        const SessionIdParams& params) {
  DROPPKT_EXPECT(params.window_s > 0.0, "SessionIdParams: W must be > 0");
  DROPPKT_EXPECT(params.delta_min >= 0.0 && params.delta_min <= 1.0,
                 "SessionIdParams: delta_min must be in [0,1]");
  for (std::size_t i = 1; i < merged.size(); ++i) {
    DROPPKT_EXPECT(merged[i].start_s >= merged[i - 1].start_s,
                   "detect_session_starts: log must be sorted by start time");
  }

  std::vector<bool> is_start(merged.size(), false);
  if (merged.empty()) return is_start;

  std::set<std::string> session_servers;  // servers seen this session
  double last_start_s = -1e18;            // refractory anchor
  for (std::size_t i = 0; i < merged.size(); ++i) {
    bool starts_new = (i == 0);
    // Transactions inside the burst window of a just-detected start belong
    // to that session — without this, every member of the opening burst
    // would re-trigger detection.
    const bool in_refractory =
        merged[i].start_s - last_start_s <= params.window_s;
    if (!starts_new && !in_refractory) {
      // Succeeding transactions starting within W seconds of this one
      // (paper Section 4.2: N and δ are computed over that set).
      std::size_t n = 0;
      std::size_t fresh = 0;
      for (std::size_t j = i + 1; j < merged.size(); ++j) {
        if (merged[j].start_s - merged[i].start_s > params.window_s) break;
        ++n;
        if (session_servers.count(merged[j].sni) == 0) ++fresh;
      }
      const double delta =
          n > 0 ? static_cast<double>(fresh) / static_cast<double>(n) : 0.0;
      starts_new = n > params.n_min && delta > params.delta_min;
    }
    if (starts_new) {
      is_start[i] = true;
      session_servers.clear();
      last_start_s = merged[i].start_s;
    }
    session_servers.insert(merged[i].sni);
  }
  return is_start;
}

std::vector<trace::TlsLog> split_sessions(const trace::TlsLog& merged,
                                          const SessionIdParams& params) {
  const auto starts = detect_session_starts(merged, params);
  std::vector<trace::TlsLog> sessions;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (starts[i] || sessions.empty()) sessions.emplace_back();
    sessions.back().push_back(merged[i]);
  }
  return sessions;
}

}  // namespace droppkt::core
