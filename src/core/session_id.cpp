#include "core/session_id.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "util/expect.hpp"

namespace droppkt::core {

std::vector<bool> detect_session_starts(const trace::TlsLog& merged,
                                        const SessionIdParams& params) {
  DROPPKT_EXPECT(params.window_s > 0.0, "SessionIdParams: W must be > 0");
  DROPPKT_EXPECT(params.delta_min >= 0.0 && params.delta_min <= 1.0,
                 "SessionIdParams: delta_min must be in [0,1]");
  for (std::size_t i = 1; i < merged.size(); ++i) {
    DROPPKT_EXPECT(merged[i].start_s >= merged[i - 1].start_s,
                   "detect_session_starts: log must be sorted by start time");
  }

  std::vector<bool> is_start(merged.size(), false);
  if (merged.empty()) return is_start;

  std::set<std::string> session_servers;  // servers seen this session
  double last_start_s = -1e18;            // refractory anchor
  for (std::size_t i = 0; i < merged.size(); ++i) {
    bool starts_new = (i == 0);
    // Transactions inside the burst window of a just-detected start belong
    // to that session — without this, every member of the opening burst
    // would re-trigger detection.
    const bool in_refractory =
        merged[i].start_s - last_start_s <= params.window_s;
    if (!starts_new && !in_refractory) {
      // Succeeding transactions starting within W seconds of this one
      // (paper Section 4.2: N and δ are computed over that set).
      std::size_t n = 0;
      std::size_t fresh = 0;
      for (std::size_t j = i + 1; j < merged.size(); ++j) {
        if (merged[j].start_s - merged[i].start_s > params.window_s) break;
        ++n;
        if (session_servers.count(merged[j].sni) == 0) ++fresh;
      }
      const double delta =
          n > 0 ? static_cast<double>(fresh) / static_cast<double>(n) : 0.0;
      starts_new = n > params.n_min && delta > params.delta_min;
    }
    if (starts_new) {
      is_start[i] = true;
      session_servers.clear();
      last_start_s = merged[i].start_s;
    }
    session_servers.insert(merged[i].sni);
  }
  return is_start;
}

void detect_session_starts_into(std::span<const TlsRecord> merged,
                                const SessionIdParams& params,
                                SessionStartScratch& scratch) {
  DROPPKT_EXPECT(params.window_s > 0.0, "SessionIdParams: W must be > 0");
  DROPPKT_EXPECT(params.delta_min >= 0.0 && params.delta_min <= 1.0,
                 "SessionIdParams: delta_min must be in [0,1]");

  scratch.is_start.assign(merged.size(), 0);
  scratch.servers.clear();
  if (merged.empty()) return;

  // Same loop as detect_session_starts; the session-server set is a small
  // vector of distinct refs scanned linearly (sessions talk to a handful
  // of servers, so a linear probe beats a node-based set and allocates
  // nothing). Sortedness is the caller's documented precondition — the
  // per-record hot path only debug-checks it.
  auto& servers = scratch.servers;
  const auto seen = [&servers](std::uint32_t ref) {
    return std::find(servers.begin(), servers.end(), ref) != servers.end();
  };
  double last_start_s = -1e18;  // refractory anchor
  for (std::size_t i = 0; i < merged.size(); ++i) {
    DROPPKT_ASSERT(i == 0 || merged[i].start_s >= merged[i - 1].start_s,
                   "detect_session_starts_into: log must be sorted by start");
    bool starts_new = (i == 0);
    const bool in_refractory =
        merged[i].start_s - last_start_s <= params.window_s;
    if (!starts_new && !in_refractory) {
      std::size_t n = 0;
      std::size_t fresh = 0;
      for (std::size_t j = i + 1; j < merged.size(); ++j) {
        if (merged[j].start_s - merged[i].start_s > params.window_s) break;
        ++n;
        if (!seen(merged[j].sni_ref)) ++fresh;
      }
      const double delta =
          n > 0 ? static_cast<double>(fresh) / static_cast<double>(n) : 0.0;
      starts_new = n > params.n_min && delta > params.delta_min;
    }
    if (starts_new) {
      scratch.is_start[i] = 1;
      servers.clear();
      last_start_s = merged[i].start_s;
    }
    if (!seen(merged[i].sni_ref)) servers.push_back(merged[i].sni_ref);
  }
}

void IncrementalBoundaryScan::reset() {
  n_.clear();
  fresh_.clear();
  first_occ_.clear();
  active_begin_ = 0;
  evaluate_all_next_ = false;
}

void IncrementalBoundaryScan::append(std::span<const TlsRecord> window,
                                     const SessionIdParams& params) {
  DROPPKT_ASSERT(window.size() == n_.size() + 1,
                 "IncrementalBoundaryScan: window out of step with state");
  const std::size_t m = window.size() - 1;
  const double t = window[m].start_s;
  DROPPKT_ASSERT(m == 0 || window[m - 1].start_s <= t,
                 "IncrementalBoundaryScan: window lost start order");
  while (active_begin_ < m &&
         t - window[active_begin_].start_s > params.window_s) {
    ++active_begin_;
  }
  // First occurrence index of the new record's SNI within the window: the
  // new record is fresh at position i exactly when that index is >= i
  // (i.e. the SNI is absent from records [0, i)).
  std::uint32_t first = static_cast<std::uint32_t>(m);
  bool known = false;
  for (const FirstOcc& fo : first_occ_) {
    if (fo.sni_ref == window[m].sni_ref) {
      first = fo.index;
      known = true;
      break;
    }
  }
  if (!known) {
    first_occ_.push_back({window[m].sni_ref, first});
  }
  for (std::size_t i = active_begin_; i < m; ++i) {
    ++n_[i];
    if (first >= i) ++fresh_[i];
  }
  n_.push_back(0);
  fresh_.push_back(0);
}

std::size_t IncrementalBoundaryScan::evaluate(
    std::span<const TlsRecord> window, const SessionIdParams& params) {
  // A position whose look-ahead window has closed keeps its counters —
  // and therefore its (negative) decision — forever, so only the active
  // suffix needs re-evaluation... except right after a cut, when every
  // surviving position's seen-before set changed (rebuild() sets the
  // flag and we sweep from the front once).
  const std::size_t from = evaluate_all_next_ ? 1 : active_begin_;
  evaluate_all_next_ = false;
  const double anchor = window.empty() ? 0.0 : window[0].start_s;
  for (std::size_t i = from; i < window.size(); ++i) {
    if (i == 0) continue;
    if (window[i].start_s - anchor <= params.window_s) continue;  // refractory
    const std::size_t n = n_[i];
    const double delta =
        n > 0 ? static_cast<double>(fresh_[i]) / static_cast<double>(n) : 0.0;
    if (n > params.n_min && delta > params.delta_min) return i;
  }
  return 0;
}

std::size_t IncrementalBoundaryScan::on_append(
    std::span<const TlsRecord> window, const SessionIdParams& params) {
  append(window, params);
  return evaluate(window, params);
}

void IncrementalBoundaryScan::rebuild(std::span<const TlsRecord> window,
                                      const SessionIdParams& params) {
  reset();
  for (std::size_t k = 1; k <= window.size(); ++k) {
    append(window.first(k), params);
  }
  evaluate_all_next_ = true;
}

std::vector<trace::TlsLog> split_sessions(const trace::TlsLog& merged,
                                          const SessionIdParams& params) {
  const auto starts = detect_session_starts(merged, params);
  std::vector<trace::TlsLog> sessions;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (starts[i] || sessions.empty()) sessions.emplace_back();
    sessions.back().push_back(merged[i]);
  }
  return sessions;
}

}  // namespace droppkt::core
