#include "core/estimator.hpp"

#include <fstream>

#include "util/expect.hpp"

namespace droppkt::core {

QoeEstimator::QoeEstimator(Config config)
    : config_(std::move(config)), forest_(config_.forest) {}

void QoeEstimator::train(const LabeledDataset& sessions) {
  std::vector<std::pair<trace::TlsLog, int>> labelled;
  labelled.reserve(sessions.size());
  for (const auto& s : sessions) {
    labelled.emplace_back(s.record.tls, s.labels.label_for(config_.target));
  }
  train_raw(labelled);
}

void QoeEstimator::train_raw(
    const std::vector<std::pair<trace::TlsLog, int>>& labelled) {
  DROPPKT_EXPECT(!labelled.empty(), "QoeEstimator: empty training set");
  ml::Dataset data(tls_feature_names(config_.features), kNumQoeClasses);
  for (const auto& [log, label] : labelled) {
    data.add_row(extract_tls_features(log, config_.features), label);
  }
  forest_ = ml::RandomForest(config_.forest);
  forest_.fit(data);
  trained_ = true;
}

int QoeEstimator::predict(const trace::TlsLog& session) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  return forest_.predict(extract_tls_features(session, config_.features));
}

std::vector<double> QoeEstimator::predict_proba(
    const trace::TlsLog& session) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  return forest_.predict_proba(extract_tls_features(session, config_.features));
}

const std::string& QoeEstimator::class_name(int cls) const {
  const auto& names = class_names(config_.target);
  DROPPKT_EXPECT(cls >= 0 && cls < static_cast<int>(names.size()),
                 "QoeEstimator: class out of range");
  return names[static_cast<std::size_t>(cls)];
}

std::vector<std::pair<std::string, double>> QoeEstimator::feature_importances()
    const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: importances before train");
  return forest_.ranked_importances();
}

void QoeEstimator::save_file(const std::string& path) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: save before train");
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("QoeEstimator: cannot open " + path);
  ofs << "droppkt-estimator v1\n";
  ofs << static_cast<int>(config_.target) << '\n';
  ofs << config_.features.interval_ends_s.size();
  for (double end : config_.features.interval_ends_s) ofs << ' ' << end;
  ofs << '\n';
  forest_.save(ofs);
  if (!ofs) throw std::runtime_error("QoeEstimator: write failed " + path);
}

QoeEstimator QoeEstimator::load_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("QoeEstimator: cannot open " + path);
  std::string header;
  std::getline(ifs, header);
  DROPPKT_EXPECT(header == "droppkt-estimator v1",
                 "QoeEstimator::load: unrecognized header '" + header + "'");
  int target = 0;
  std::size_t n_intervals = 0;
  ifs >> target >> n_intervals;
  DROPPKT_EXPECT(ifs.good() && target >= 0 && target <= 2 &&
                     n_intervals >= 1 && n_intervals <= 1000,
                 "QoeEstimator::load: malformed config");
  Config config;
  config.target = static_cast<QoeTarget>(target);
  config.features.interval_ends_s.resize(n_intervals);
  for (auto& end : config.features.interval_ends_s) ifs >> end;
  ifs.ignore(1, '\n');

  QoeEstimator estimator(config);
  estimator.forest_ = ml::RandomForest::load(ifs);
  DROPPKT_EXPECT(
      estimator.forest_.num_trees() >= 1,
      "QoeEstimator::load: model file contained no trees");
  estimator.trained_ = true;
  return estimator;
}

}  // namespace droppkt::core
