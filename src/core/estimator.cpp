#include "core/estimator.hpp"

#include <algorithm>
#include <fstream>

#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace droppkt::core {

QoeEstimator::QoeEstimator(Config config)
    : config_(std::move(config)), forest_(config_.forest) {}

void QoeEstimator::train(const LabeledDataset& sessions) {
  std::vector<std::pair<trace::TlsLog, int>> labelled;
  labelled.reserve(sessions.size());
  for (const auto& s : sessions) {
    labelled.emplace_back(s.record.tls, s.labels.label_for(config_.target));
  }
  train_raw(labelled);
}

void QoeEstimator::train_raw(
    const std::vector<std::pair<trace::TlsLog, int>>& labelled) {
  DROPPKT_EXPECT(!labelled.empty(), "QoeEstimator: empty training set");
  ml::Dataset data(tls_feature_names(config_.features), kNumQoeClasses);
  for (const auto& [log, label] : labelled) {
    data.add_row(extract_tls_features(log, config_.features), label);
  }
  forest_ = ml::RandomForest(config_.forest);
  forest_.fit(data);
  trained_ = true;
}

int QoeEstimator::predict(const trace::TlsLog& session) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  return forest_.predict(extract_tls_features(session, config_.features));
}

std::vector<double> QoeEstimator::predict_proba(
    const trace::TlsLog& session) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  return forest_.predict_proba(extract_tls_features(session, config_.features));
}

void QoeEstimator::predict_proba_batch(std::span<const trace::TlsLog> sessions,
                                       std::span<double> out,
                                       std::size_t num_threads) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  const std::size_t rows = sessions.size();
  const auto c_count = static_cast<std::size_t>(kNumQoeClasses);
  DROPPKT_EXPECT(out.size() == rows * c_count,
                 "QoeEstimator::predict_proba_batch: bad output buffer size");
  if (rows == 0) return;
  const std::size_t width = tls_feature_names(config_.features).size();

  // Extract all feature rows into one flat matrix, in parallel.
  std::vector<double> matrix(rows * width);
  auto extract_row = [&](std::size_t r) {
    const auto feats = extract_tls_features(sessions[r], config_.features);
    DROPPKT_ENSURE(feats.size() == width,
                   "QoeEstimator: feature width drifted from config");
    std::copy(feats.begin(), feats.end(),
              matrix.begin() + static_cast<std::ptrdiff_t>(r * width));
  };
  const std::size_t threads =
      std::min(util::ThreadPool::resolve_threads(num_threads), rows);
  if (threads <= 1) {
    for (std::size_t r = 0; r < rows; ++r) extract_row(r);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(0, rows, extract_row);
  }

  forest_.predict_proba_batch(matrix, out, threads);
}

std::vector<int> QoeEstimator::predict_batch(
    std::span<const trace::TlsLog> sessions, std::size_t num_threads) const {
  const auto c_count = static_cast<std::size_t>(kNumQoeClasses);
  std::vector<double> proba(sessions.size() * c_count);
  predict_proba_batch(sessions, proba, num_threads);
  std::vector<int> preds(sessions.size());
  for (std::size_t r = 0; r < sessions.size(); ++r) {
    const double* p = proba.data() + r * c_count;
    preds[r] = static_cast<int>(std::max_element(p, p + c_count) - p);
  }
  return preds;
}

const std::string& QoeEstimator::class_name(int cls) const {
  const auto& names = class_names(config_.target);
  DROPPKT_EXPECT(cls >= 0 && cls < static_cast<int>(names.size()),
                 "QoeEstimator: class out of range");
  return names[static_cast<std::size_t>(cls)];
}

std::vector<std::pair<std::string, double>> QoeEstimator::feature_importances()
    const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: importances before train");
  return forest_.ranked_importances();
}

void QoeEstimator::save_file(const std::string& path) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: save before train");
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("QoeEstimator: cannot open " + path);
  ofs << "droppkt-estimator v1\n";
  ofs << static_cast<int>(config_.target) << '\n';
  ofs << config_.features.interval_ends_s.size();
  for (double end : config_.features.interval_ends_s) ofs << ' ' << end;
  ofs << '\n';
  forest_.save(ofs);
  if (!ofs) throw std::runtime_error("QoeEstimator: write failed " + path);
}

QoeEstimator QoeEstimator::load_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("QoeEstimator: cannot open " + path);
  std::string header;
  std::getline(ifs, header);
  if (header != "droppkt-estimator v1") {
    throw ParseError("QoeEstimator::load: unrecognized header '" + header +
                     "'");
  }
  int target = 0;
  std::size_t n_intervals = 0;
  ifs >> target >> n_intervals;
  if (!ifs.good() || target < 0 || target > 2 || n_intervals < 1 ||
      n_intervals > 1000) {
    throw ParseError("QoeEstimator::load: malformed config");
  }
  Config config;
  config.target = static_cast<QoeTarget>(target);
  config.features.interval_ends_s.resize(n_intervals);
  for (auto& end : config.features.interval_ends_s) ifs >> end;
  if (ifs.fail()) {
    throw ParseError("QoeEstimator::load: truncated interval list");
  }
  ifs.ignore(1, '\n');

  QoeEstimator estimator(config);
  estimator.forest_ = ml::RandomForest::load(ifs);
  DROPPKT_EXPECT(
      estimator.forest_.num_trees() >= 1,
      "QoeEstimator::load: model file contained no trees");
  estimator.trained_ = true;
  return estimator;
}

}  // namespace droppkt::core
