#include "core/estimator.hpp"

#include <algorithm>
#include <fstream>

#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace droppkt::core {

QoeEstimator::QoeEstimator(Config config)
    : config_(std::move(config)), forest_(config_.forest) {}

void QoeEstimator::train(const LabeledDataset& sessions) {
  std::vector<std::pair<trace::TlsLog, int>> labelled;
  labelled.reserve(sessions.size());
  for (const auto& s : sessions) {
    labelled.emplace_back(s.record.tls, s.labels.label_for(config_.target));
  }
  train_raw(labelled);
}

void QoeEstimator::train_raw(
    const std::vector<std::pair<trace::TlsLog, int>>& labelled) {
  DROPPKT_EXPECT(!labelled.empty(), "QoeEstimator: empty training set");
  ml::Dataset data(tls_feature_names(config_.features), kNumQoeClasses);
  data.reserve(labelled.size());
  // One accumulator and one row buffer for the whole corpus instead of a
  // fresh feature vector per session.
  TlsFeatureAccumulator acc(config_.features);
  std::vector<double> row(acc.feature_count());
  for (const auto& [log, label] : labelled) {
    acc.reset();
    for (const auto& t : log) acc.observe(t);
    acc.snapshot_into(row);
    data.add_row(std::span<const double>(row), label);
  }
  forest_ = ml::RandomForest(config_.forest);
  forest_.fit(data);
  compiled_ = ml::CompiledForest::compile(forest_);
  compiled_.bind_telemetry(predictions_ctr_);
  trained_ = true;
}

void QoeEstimator::bind_telemetry(telemetry::Counter* predictions) {
  predictions_ctr_ = predictions;
  compiled_.bind_telemetry(predictions_ctr_);
}

int QoeEstimator::predict(const trace::TlsLog& session) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  return compiled_.predict(extract_tls_features(session, config_.features));
}

std::vector<double> QoeEstimator::predict_proba(
    const trace::TlsLog& session) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  std::vector<double> proba(static_cast<std::size_t>(kNumQoeClasses));
  compiled_.predict_proba_into(
      extract_tls_features(session, config_.features), proba);
  return proba;
}

int QoeEstimator::predict_into(std::span<const double> features,
                               std::span<double> proba_scratch) const {
  predict_proba_into(features, proba_scratch);
  return static_cast<int>(
      std::max_element(proba_scratch.begin(), proba_scratch.end()) -
      proba_scratch.begin());
}

void QoeEstimator::predict_proba_into(std::span<const double> features,
                                      std::span<double> out) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  compiled_.predict_proba_into(features, out);
}

int QoeEstimator::predict_into(const TlsFeatureAccumulator& acc,
                               std::span<double> feature_scratch,
                               std::span<double> proba_scratch) const {
  acc.snapshot_into(feature_scratch);
  return predict_into(feature_scratch, proba_scratch);
}

void QoeEstimator::predict_proba_batch(std::span<const trace::TlsLog> sessions,
                                       std::span<double> out,
                                       std::size_t num_threads) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: predict before train");
  const std::size_t rows = sessions.size();
  const auto c_count = static_cast<std::size_t>(kNumQoeClasses);
  DROPPKT_EXPECT(out.size() == rows * c_count,
                 "QoeEstimator::predict_proba_batch: bad output buffer size");
  if (rows == 0) return;
  const std::size_t width = feature_count();

  // Extract all feature rows into one flat matrix, in parallel: one
  // accumulator per contiguous chunk snapshots straight into the matrix
  // rows — no per-session feature vector.
  std::vector<double> matrix(rows * width);
  auto extract_chunk = [&](std::size_t lo, std::size_t hi) {
    TlsFeatureAccumulator acc(config_.features);
    for (std::size_t r = lo; r < hi; ++r) {
      acc.reset();
      for (const auto& t : sessions[r]) acc.observe(t);
      acc.snapshot_into(
          std::span<double>(matrix.data() + r * width, width));
    }
  };
  const std::size_t threads =
      std::min(util::ThreadPool::resolve_threads(num_threads), rows);
  if (threads <= 1) {
    extract_chunk(0, rows);
  } else {
    const std::size_t base = rows / threads;
    const std::size_t extra = rows % threads;
    util::ThreadPool pool(threads);
    pool.parallel_for(0, threads, [&](std::size_t c) {
      const std::size_t lo = c * base + std::min(c, extra);
      const std::size_t hi = lo + base + (c < extra ? 1 : 0);
      extract_chunk(lo, hi);
    });
  }

  compiled_.predict_proba_batch(matrix, out, threads);
}

std::vector<int> QoeEstimator::predict_batch(
    std::span<const trace::TlsLog> sessions, std::size_t num_threads) const {
  const auto c_count = static_cast<std::size_t>(kNumQoeClasses);
  std::vector<double> proba(sessions.size() * c_count);
  predict_proba_batch(sessions, proba, num_threads);
  std::vector<int> preds(sessions.size());
  for (std::size_t r = 0; r < sessions.size(); ++r) {
    const double* p = proba.data() + r * c_count;
    preds[r] = static_cast<int>(std::max_element(p, p + c_count) - p);
  }
  return preds;
}

const std::string& QoeEstimator::class_name(int cls) const {
  const auto& names = class_names(config_.target);
  DROPPKT_EXPECT(cls >= 0 && cls < static_cast<int>(names.size()),
                 "QoeEstimator: class out of range");
  return names[static_cast<std::size_t>(cls)];
}

std::vector<std::pair<std::string, double>> QoeEstimator::feature_importances()
    const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: importances before train");
  return forest_.ranked_importances();
}

void QoeEstimator::save_file(const std::string& path) const {
  DROPPKT_EXPECT(trained_, "QoeEstimator: save before train");
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("QoeEstimator: cannot open " + path);
  ofs << "droppkt-estimator v1\n";
  ofs << static_cast<int>(config_.target) << '\n';
  ofs << config_.features.interval_ends_s.size();
  for (double end : config_.features.interval_ends_s) ofs << ' ' << end;
  ofs << '\n';
  forest_.save(ofs);
  if (!ofs) throw std::runtime_error("QoeEstimator: write failed " + path);
}

QoeEstimator QoeEstimator::load_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("QoeEstimator: cannot open " + path);
  std::string header;
  std::getline(ifs, header);
  if (header != "droppkt-estimator v1") {
    throw ParseError("QoeEstimator::load: unrecognized header '" + header +
                     "'");
  }
  int target = 0;
  std::size_t n_intervals = 0;
  ifs >> target >> n_intervals;
  if (!ifs.good() || target < 0 || target > 2 || n_intervals < 1 ||
      n_intervals > 1000) {
    throw ParseError("QoeEstimator::load: malformed config");
  }
  Config config;
  config.target = static_cast<QoeTarget>(target);
  config.features.interval_ends_s.resize(n_intervals);
  for (auto& end : config.features.interval_ends_s) ifs >> end;
  if (ifs.fail()) {
    throw ParseError("QoeEstimator::load: truncated interval list");
  }
  ifs.ignore(1, '\n');

  QoeEstimator estimator(config);
  estimator.forest_ = ml::RandomForest::load(ifs);
  DROPPKT_EXPECT(
      estimator.forest_.num_trees() >= 1,
      "QoeEstimator::load: model file contained no trees");
  estimator.compiled_ = ml::CompiledForest::compile(estimator.forest_);
  estimator.compiled_.bind_telemetry(estimator.predictions_ctr_);
  estimator.trained_ = true;
  return estimator;
}

}  // namespace droppkt::core
