#include "core/ml16_features.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace droppkt::core {

std::vector<std::string> ml16_feature_names() {
  std::vector<std::string> names;
  // Chunk features (video-segment proxies).
  const char* chunk_metrics[] = {"CHUNK_SIZE", "CHUNK_DUR", "CHUNK_IAT",
                                 "CHUNK_RATE"};
  const char* stats[] = {"MIN", "MED", "MAX", "AVG", "STD"};
  for (const char* m : chunk_metrics) {
    for (const char* s : stats) names.push_back(std::string(m) + "_" + s);
  }
  names.push_back("CHUNKS_PER_SEC");
  names.push_back("NUM_CHUNKS");
  // Network-health features.
  names.push_back("AVG_TPUT_KBPS");
  names.push_back("STD_TPUT_KBPS");
  names.push_back("P25_TPUT_KBPS");
  names.push_back("RETX_RATE");
  names.push_back("LOSS_RATE");
  names.push_back("RTT_AVG_MS");
  names.push_back("RTT_STD_MS");
  names.push_back("RTT_MAX_MS");
  // Volume features.
  names.push_back("TOTAL_DL_BYTES");
  names.push_back("TOTAL_UL_BYTES");
  names.push_back("SES_DUR");
  names.push_back("PKTS_PER_SEC");
  // Rate/temporal features (packet-level counterparts of the strongest
  // TLS features — packets strictly contain that information too).
  names.push_back("SDR_DL_KBPS");
  names.push_back("SDR_UL_KBPS");
  // Payload-level downlink:uplink ratio (pure ACKs excluded) — the packet
  // counterpart of the TLS D2U feature.
  names.push_back("D2U_RATIO");
  names.push_back("CHUNK_D2U_MED");
  names.push_back("CHUNK_D2U_MAX");
  for (const char* w : {"30S", "60S", "120S", "240S", "480S"}) {
    names.push_back(std::string("CUM_DL_") + w);
    names.push_back(std::string("CUM_UL_") + w);
  }
  // Flow (connection) aggregates — the packet monitor's reconstruction of
  // the per-connection view a proxy would report.
  names.push_back("NUM_FLOWS");
  names.push_back("FLOW_DL_MED");
  names.push_back("FLOW_DL_MAX");
  names.push_back("FLOW_D2U_MED");
  names.push_back("FLOW_DUR_MED");
  DROPPKT_ENSURE(names.size() == ml16_feature_count(),
                 "ml16: name/count drift");
  return names;
}

std::vector<double> extract_ml16_features(const trace::PacketLog& packets,
                                          const Ml16Config& config) {
  std::vector<double> features(ml16_feature_count(), 0.0);
  if (packets.empty()) return features;

  const double first_ts = packets.front().ts_s;
  const double last_ts = packets.back().ts_s;
  const double ses_dur = std::max(1e-3, last_ts - first_ts);

  // --- Single pass: volumes, retransmissions, per-second throughput,
  // chunk reconstruction, and RTT samples. ---
  double total_dl = 0.0, total_ul = 0.0;
  std::size_t retx = 0, dl_packets = 0;

  // Per-second byte series for throughput stats and cumulative windows.
  std::vector<double> per_sec(static_cast<std::size_t>(ses_dur) + 1, 0.0);
  std::vector<double> per_sec_ul(per_sec.size(), 0.0);

  struct Chunk {
    double start_s = 0.0;
    double last_s = 0.0;
    double bytes = 0.0;
    double ul_payload = 0.0;  // request bytes that opened/fed the chunk
  };
  std::vector<Chunk> chunks;
  // Chunk reassembly is per flow: requests on one connection must not
  // truncate a response in flight on another.
  std::map<std::uint32_t, Chunk> open_chunks;
  double total_ul_payload = 0.0;

  // RTT: per flow, remember the last request (uplink with payload) time and
  // take the delay to the next downlink packet as a sample.
  std::map<std::uint32_t, double> pending_request;
  std::vector<double> rtt_samples;

  // Per-flow byte/time aggregates.
  struct FlowAgg {
    double first_s = 0.0;
    double last_s = 0.0;
    double dl = 0.0;
    double ul_payload = 0.0;
  };
  std::map<std::uint32_t, FlowAgg> flows;
  auto touch_flow = [&flows](const trace::PacketRecord& p) -> FlowAgg& {
    auto [it, inserted] = flows.try_emplace(p.flow_id);
    if (inserted) it->second.first_s = p.ts_s;
    it->second.last_s = p.ts_s;
    return it->second;
  };

  auto close_chunk = [&](std::uint32_t flow) {
    auto it = open_chunks.find(flow);
    if (it == open_chunks.end()) return;
    if (it->second.bytes >= config.min_chunk_bytes) {
      chunks.push_back(it->second);
    }
    open_chunks.erase(it);
  };

  for (const auto& p : packets) {
    DROPPKT_EXPECT(p.ts_s >= first_ts, "ml16: packets must be sorted");
    if (p.dir == trace::Direction::kUplink) {
      total_ul += p.size_bytes;
      total_ul_payload += p.payload_bytes;
      touch_flow(p).ul_payload += p.payload_bytes;
      const auto usec = static_cast<std::size_t>(p.ts_s - first_ts);
      if (usec < per_sec_ul.size()) per_sec_ul[usec] += p.size_bytes;
      if (p.payload_bytes > 0) {
        // New HTTP request: closes the flow's previous chunk, opens the next.
        close_chunk(p.flow_id);
        open_chunks[p.flow_id] = {p.ts_s, p.ts_s, 0.0,
                                  static_cast<double>(p.payload_bytes)};
        pending_request[p.flow_id] = p.ts_s;
      }
    } else {
      total_dl += p.size_bytes;
      ++dl_packets;
      touch_flow(p).dl += p.size_bytes;
      if (p.retransmission) ++retx;
      const auto sec = static_cast<std::size_t>(p.ts_s - first_ts);
      if (sec < per_sec.size()) per_sec[sec] += p.size_bytes;
      auto oc = open_chunks.find(p.flow_id);
      if (oc != open_chunks.end()) {
        Chunk& cur = oc->second;
        if (p.ts_s - cur.last_s > config.chunk_gap_s && cur.bytes > 0) {
          close_chunk(p.flow_id);
        } else {
          cur.bytes += p.payload_bytes;
          cur.last_s = p.ts_s;
        }
      }
      auto it = pending_request.find(p.flow_id);
      if (it != pending_request.end()) {
        rtt_samples.push_back((p.ts_s - it->second) * 1000.0);  // ms
        pending_request.erase(it);
      }
    }
  }
  for (auto& [flow, chunk] : std::map<std::uint32_t, Chunk>(open_chunks)) {
    close_chunk(flow);
  }

  // Chunk-derived series (inter-arrivals need start order).
  std::sort(chunks.begin(), chunks.end(),
            [](const Chunk& a, const Chunk& b) { return a.start_s < b.start_s; });
  std::vector<double> sizes, durs, iats, rates;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const auto& c = chunks[i];
    sizes.push_back(c.bytes);
    const double d = std::max(1e-3, c.last_s - c.start_s);
    durs.push_back(d);
    rates.push_back(c.bytes * 8.0 / 1000.0 / d);
    if (i > 0) iats.push_back(c.start_s - chunks[i - 1].start_s);
  }

  std::size_t f = 0;
  for (const auto* series : {&sizes, &durs, &iats, &rates}) {
    const auto s = util::summarize(*series);
    features[f++] = s.min;
    features[f++] = s.median;
    features[f++] = s.max;
    features[f++] = s.mean;
    features[f++] = s.stddev;
  }
  features[f++] = static_cast<double>(chunks.size()) / ses_dur;
  features[f++] = static_cast<double>(chunks.size());

  // Throughput over active seconds (kbps).
  std::vector<double> tput;
  for (double bytes : per_sec) tput.push_back(bytes * 8.0 / 1000.0);
  features[f++] = util::mean(tput);
  features[f++] = util::stddev(tput);
  features[f++] = util::percentile(tput, 25.0);

  const double retx_rate =
      dl_packets > 0 ? static_cast<double>(retx) / static_cast<double>(dl_packets)
                     : 0.0;
  features[f++] = retx_rate;
  // Passive loss estimate: retransmissions stand in for lost originals.
  features[f++] = retx_rate / (1.0 + retx_rate);

  const auto rtt = util::summarize(rtt_samples);
  features[f++] = rtt.mean;
  features[f++] = rtt.stddev;
  features[f++] = rtt.max;

  features[f++] = total_dl;
  features[f++] = total_ul;
  features[f++] = ses_dur;
  features[f++] = static_cast<double>(packets.size()) / ses_dur;

  features[f++] = total_dl * 8.0 / 1000.0 / ses_dur;
  features[f++] = total_ul * 8.0 / 1000.0 / ses_dur;
  features[f++] =
      total_ul_payload > 0.0 ? total_dl / total_ul_payload : 0.0;
  std::vector<double> chunk_d2u;
  for (const auto& c : chunks) {
    if (c.ul_payload > 0.0) chunk_d2u.push_back(c.bytes / c.ul_payload);
  }
  features[f++] = util::median(chunk_d2u);
  features[f++] = chunk_d2u.empty()
                      ? 0.0
                      : *std::max_element(chunk_d2u.begin(), chunk_d2u.end());
  for (const double window_s : {30.0, 60.0, 120.0, 240.0, 480.0}) {
    double cum_dl = 0.0, cum_ul = 0.0;
    const auto end_sec = static_cast<std::size_t>(window_s);
    for (std::size_t s = 0; s < per_sec.size() && s < end_sec; ++s) {
      cum_dl += per_sec[s];
      cum_ul += per_sec_ul[s];
    }
    features[f++] = cum_dl;
    features[f++] = cum_ul;
  }

  std::vector<double> flow_dl, flow_d2u, flow_dur;
  for (const auto& [id, agg] : flows) {
    flow_dl.push_back(agg.dl);
    flow_dur.push_back(agg.last_s - agg.first_s);
    if (agg.ul_payload > 0.0) flow_d2u.push_back(agg.dl / agg.ul_payload);
  }
  features[f++] = static_cast<double>(flows.size());
  features[f++] = util::median(flow_dl);
  features[f++] =
      flow_dl.empty() ? 0.0 : *std::max_element(flow_dl.begin(), flow_dl.end());
  features[f++] = util::median(flow_d2u);
  features[f++] = util::median(flow_dur);

  DROPPKT_ENSURE(f == features.size(), "ml16: feature count drift");
  return features;
}

}  // namespace droppkt::core
