// Flow-record features and the flow-based inference path — the paper's
// future-work direction ("accuracy vs. scalability trade-off for other
// forms of network data such as more granular flow-level data collected
// using NetFlow", Section 5).
//
// A bidirectional flow record carries the same shape of information as a
// TLS transaction (start, end, uplink/downlink bytes), so the 38-feature
// extraction applies verbatim; what changes is (a) granularity — the
// exporter's active timeout cuts long connections into periodic records —
// and (b) identification, which needs DNS assistance instead of SNI.
#pragma once

#include "core/dataset_builder.hpp"
#include "core/tls_features.hpp"
#include "ml/dataset.hpp"
#include "trace/flow_export.hpp"

namespace droppkt::core {

/// Feature names for the flow path (same structure as the TLS features).
std::vector<std::string> flow_feature_names(const TlsFeatureConfig& config = {});

/// Extract the 38-feature vector from a session's flow records.
std::vector<double> extract_flow_features(const trace::FlowLog& flows,
                                          const TlsFeatureConfig& config = {});

/// Regenerate a session's flow view: packets are rebuilt deterministically
/// from the stored session seed and run through a FlowExporter.
trace::FlowLog flows_for_session(const trace::SessionRecord& record,
                                 const trace::FlowExportConfig& config = {});

/// The DNS lookups a monitor would have seen for this session (one per
/// distinct hostname, at its first use).
trace::DnsLog dns_for_session(const trace::SessionRecord& record);

/// Build an ML dataset from the flow view of labelled sessions.
ml::Dataset make_flow_dataset(const LabeledDataset& sessions, QoeTarget target,
                              const trace::FlowExportConfig& config = {},
                              const TlsFeatureConfig& features = {});

}  // namespace droppkt::core
