#include "core/dataset_builder.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "has/player.hpp"
#include "net/link_model.hpp"
#include "trace/connection_manager.hpp"
#include "util/expect.hpp"

namespace droppkt::core {

double dataset_scale() {
  const char* env = std::getenv("DROPPKT_SESSIONS_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (v <= 0.0 || v > 1.0) return 1.0;
  return v;
}

std::size_t paper_session_count(const std::string& service_name) {
  std::size_t base = 0;
  if (service_name == "Svc1") base = 2111;
  else if (service_name == "Svc2") base = 2216;
  else if (service_name == "Svc3") base = 1440;
  else throw ContractViolation("paper_session_count: unknown service '" +
                               service_name + "'");
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(base) * dataset_scale());
  return std::max<std::size_t>(50, scaled);
}

LabeledDataset build_dataset(const has::ServiceProfile& svc,
                             const DatasetConfig& config) {
  const std::size_t n = config.num_sessions > 0
                            ? config.num_sessions
                            : paper_session_count(svc.name);

  // Independent substreams so changing one knob doesn't reshuffle others.
  util::Rng master(config.seed ^ std::hash<std::string>{}(svc.name));
  const net::TracePool pool(config.trace_pool_size, master());
  const auto catalog =
      has::VideoCatalog::generate(svc.name, config.catalog_size, master());
  const has::PlayerSimulator player;

  LabeledDataset dataset;
  dataset.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t session_seed = master();
    util::Rng rng(session_seed);

    const net::BandwidthTrace& bw = pool.sample(rng);
    const double watch_s = pool.sample_session_duration(rng);
    const has::Video& video = catalog.sample(rng);
    const net::LinkModel link(bw);

    has::PlaybackResult playback = player.play(svc, video, link, watch_s, rng);
    const trace::ConnectionManager conns(svc.connections, rng);
    trace::TlsLog tls = conns.collect(playback.http, rng);

    LabeledSession session;
    session.labels = compute_labels(playback.ground_truth, svc);
    session.record = {.service = svc.name,
                      .video_id = video.id,
                      .environment = bw.environment(),
                      .trace_avg_kbps = bw.average_kbps(),
                      .watch_duration_s = watch_s,
                      .seed = session_seed,
                      .ground_truth = std::move(playback.ground_truth),
                      .http = std::move(playback.http),
                      .tls = std::move(tls)};
    dataset.push_back(std::move(session));
  }
  return dataset;
}

BackToBackStream build_back_to_back(const has::ServiceProfile& svc,
                                    std::size_t num_sessions,
                                    std::uint64_t seed) {
  DROPPKT_EXPECT(num_sessions >= 1, "build_back_to_back: need >= 1 session");
  util::Rng master(seed ^ 0xb2bULL);
  const net::TracePool pool(64, master());
  const auto catalog = has::VideoCatalog::generate(svc.name, 60, master());
  const has::PlayerSimulator player;

  struct Tagged {
    trace::TlsTransaction txn;
    bool is_first = false;
  };
  std::vector<Tagged> all;
  double offset_s = 0.0;

  for (std::size_t s = 0; s < num_sessions; ++s) {
    util::Rng rng(master());
    const net::BandwidthTrace& bw = pool.sample(rng);
    const double watch_s = pool.sample_session_duration(rng);
    const has::Video& video = catalog.sample(rng);
    const net::LinkModel link(bw);

    has::PlaybackResult playback = player.play(svc, video, link, watch_s, rng);
    const trace::ConnectionManager conns(svc.connections, rng);
    trace::TlsLog tls = conns.collect(playback.http, rng);

    // Shift into the stream's timeline and tag the session's first
    // transaction (earliest start) as ground-truth "New".
    std::size_t first_idx = 0;
    for (std::size_t i = 1; i < tls.size(); ++i) {
      if (tls[i].start_s < tls[first_idx].start_s) first_idx = i;
    }
    for (std::size_t i = 0; i < tls.size(); ++i) {
      Tagged t;
      t.txn = tls[i];
      t.txn.start_s += offset_s;
      t.txn.end_s += offset_s;
      t.is_first = (i == first_idx);
      all.push_back(std::move(t));
    }
    // The next video starts the moment this player closes.
    offset_s += playback.ground_truth.session_end_s;
  }

  std::stable_sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.txn.start_s < b.txn.start_s;
  });

  BackToBackStream stream;
  stream.num_sessions = num_sessions;
  stream.merged.reserve(all.size());
  stream.truth_new.reserve(all.size());
  for (auto& t : all) {
    stream.merged.push_back(std::move(t.txn));
    stream.truth_new.push_back(t.is_first);
  }
  return stream;
}

}  // namespace droppkt::core
