// The paper's 38-feature representation of a session's TLS transactions
// (Section 3, Table 1):
//
//   Session level (4):    SDR_DL, SDR_UL, SES_DUR, TRANS_PER_SEC
//   Transaction stats     min/med/max of DL_SIZE, UL_SIZE, DUR, TDR,
//     (18):               D2U, IAT
//   Temporal stats (16):  CUM_DL_XXs / CUM_UL_XXs at interval end-points
//                         {30,60,120,240,480,720,960,1200} s
#pragma once

#include <string>
#include <vector>

#include "trace/records.hpp"

namespace droppkt::core {

/// Interval end-points for the temporal features — a model hyperparameter
/// the paper tunes (Section 3).
struct TlsFeatureConfig {
  std::vector<double> interval_ends_s{30, 60, 120, 240, 480, 720, 960, 1200};
  /// Also emit MEAN and STD per transaction metric. The paper considered
  /// these and dropped them as "highly correlated to one of the existing
  /// statistics" (footnote 5); the stats ablation bench measures that.
  bool extended_stats = false;
};

/// Number of features a config produces (38 with the default config).
/// Cheap — callers that only need the vector width (batch loops, span
/// sizing) should use this instead of tls_feature_names(...).size(),
/// which builds a vector<string> per call.
inline std::size_t tls_feature_count(const TlsFeatureConfig& config = {}) {
  const std::size_t per_metric = config.extended_stats ? 5u : 3u;
  return 4 + 6 * per_metric + 2 * config.interval_ends_s.size();
}

/// Names of the session-level features (4).
std::vector<std::string> session_level_feature_names();
/// Names of the transaction-statistic features (18).
std::vector<std::string> transaction_stat_feature_names();
/// Names of the temporal features (2 per interval).
std::vector<std::string> temporal_feature_names(const TlsFeatureConfig& config);
/// All names in extraction order (38 with the default config).
std::vector<std::string> tls_feature_names(const TlsFeatureConfig& config = {});

/// Extract the feature vector for one session's TLS log.
///
/// Times inside `log` must be session-relative (first transaction near 0);
/// the dataset builder guarantees this. An empty log yields all-zero
/// features. Transactions need not be sorted.
///
/// Thin wrapper over TlsFeatureAccumulator (core/feature_accumulator.hpp):
/// feeds the log through one accumulator and snapshots it, so batch and
/// incremental extraction share one code path and are bit-identical by
/// construction. Streaming callers should hold an accumulator directly.
std::vector<double> extract_tls_features(const trace::TlsLog& log,
                                         const TlsFeatureConfig& config = {});

/// What a monitor would have exported by `horizon_s` after the session's
/// first transaction: later transactions are dropped, and transactions
/// still open at the horizon are clipped there with proportional byte
/// shares. Used to study early detection (the paper notes TLS data is
/// only complete once connections close — Section 4.3).
trace::TlsLog truncate_tls_log(const trace::TlsLog& log, double horizon_s);

}  // namespace droppkt::core
