// Incremental construction of the paper's 38-feature TLS representation.
//
// The batch extractor (extract_tls_features) needs the whole session log
// up front, so every layer that wanted features mid-session paid to
// recompute them from scratch: the early-detection bench re-extracted per
// horizon (O(H·n)), and a per-record provisional estimate in the
// streaming monitor would have been O(n²). TlsFeatureAccumulator turns
// that into one pass: observe() folds a transaction into running state
// (sorted per-metric samples for exact order statistics, exactly-rounded
// byte totals and cumulative-interval counters), and snapshot_into()
// materializes the feature vector with zero allocation.
//
// Equivalence contract (asserted by tests and gated in
// bench_feature_extraction):
//   * snapshot_into() is bit-identical to extract_tls_features over the
//     same transaction multiset, for ANY observation order — the batch
//     extractor is itself a thin wrapper over this class, and all
//     order-sensitive reductions inside use util::ExactSum /
//     util::OrderedSample, which are functions of the multiset alone.
//   * snapshot_at(h) is bit-identical to truncate_tls_log(log, h)
//     followed by batch extraction: proportional byte clipping of
//     transactions still open at the horizon, drop of later ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tls_features.hpp"
#include "trace/records.hpp"
#include "util/exact_sum.hpp"
#include "util/ordered_sample.hpp"

namespace droppkt::core {

class TlsFeatureAccumulator {
 public:
  explicit TlsFeatureAccumulator(TlsFeatureConfig config = {});

  /// Fold one transaction into the running state. Order-insensitive:
  /// feeding any permutation of a log yields identical snapshots.
  void observe(const trace::TlsTransaction& txn) {
    observe(txn.start_s, txn.end_s, txn.ul_bytes, txn.dl_bytes);
  }

  /// Same fold from the numeric fields alone — lets flow records (or any
  /// transaction-shaped tuple) feed the extractor without materializing a
  /// trace::TlsTransaction.
  void observe(double start_s, double end_s, double ul_bytes, double dl_bytes);

  /// Drop all observed transactions, keep the configuration (and the
  /// allocated capacity — a monitor reuses one accumulator per client
  /// across sessions without reallocating).
  void reset();

  std::size_t transactions() const { return txns_.size(); }
  std::size_t feature_count() const { return n_features_; }
  const TlsFeatureConfig& config() const { return config_; }

  /// Write the feature vector over everything observed so far into `out`
  /// (size must be feature_count()). Zero allocation; an empty
  /// accumulator writes all zeros, like the batch extractor.
  void snapshot_into(std::span<double> out) const;

  /// The feature vector a monitor would compute `horizon_s` after the
  /// first observed transaction: later transactions dropped, open ones
  /// clipped with proportional byte shares — bit-identical to
  /// truncate_tls_log + extract_tls_features, without materializing the
  /// truncated log. Reuses internal scratch (hence non-const); O(n) per
  /// call instead of the batch path's copy + re-extract.
  void snapshot_at(double horizon_s, std::span<double> out);

  /// Convenience: snapshot into a fresh vector (allocating; the batch
  /// wrapper and tests use this, hot paths use snapshot_into).
  std::vector<double> snapshot() const;

 private:
  struct Txn {  // what feature math needs; drops sni/http_count
    double start_s, end_s, ul_bytes, dl_bytes;
  };

  void fold_intervals(const Txn& t, std::vector<util::ExactSum>& dl,
                      std::vector<util::ExactSum>& ul) const;
  void rebuild_intervals();

  TlsFeatureConfig config_;
  std::size_t n_features_ = 0;

  std::vector<Txn> txns_;  // observation order (rebuilds + snapshot_at)
  double first_start_ = 0.0;
  double last_end_ = 0.0;
  util::ExactSum total_dl_, total_ul_;
  util::OrderedSample dl_, ul_, dur_, tdr_, d2u_;
  util::OrderedSample starts_;  // sorted arrival times
  util::OrderedSample iat_;     // gaps between adjacent sorted starts
  std::vector<util::ExactSum> cum_dl_, cum_ul_;  // one per interval end

  void reset_sweep();
  void fold_closed(const Txn& t);

  // snapshot_at sweep state, reused across calls. s_by_start_ is a lazily
  // rebuilt start-sorted copy of txns_; consecutive snapshot_at calls
  // with non-decreasing horizons (the early-detection access pattern)
  // advance through it incrementally: a transaction wholly before the
  // cutoff contributes the same values to every later horizon, so its
  // fold into the s_* scratch happens exactly once, and only the few
  // transactions still open at the cutoff are clipped per call. observe()
  // or a smaller horizon resets the sweep. Fold order is irrelevant —
  // every scratch reduction is a function of the value multiset (exact
  // sums; samples summarized by selection or after sorting a copy).
  std::vector<Txn> s_by_start_;
  bool s_by_start_valid_ = false;
  double sweep_cutoff_ = 0.0;
  std::size_t sweep_pos_ = 0;          // first index with start >= cutoff
  std::vector<std::uint32_t> sweep_open_;  // started, end > cutoff
  double sweep_last_closed_end_ = 0.0;
  std::vector<double> s_metric_[5];  // closed txns: dl, ul, dur, tdr, d2u
  std::vector<double> s_starts_, s_iat_;  // all started txns (ascending)
  std::vector<double> s_summary_;    // per-call copy handed to selection
  util::ExactSum s_total_dl_, s_total_ul_;             // closed txns
  std::vector<util::ExactSum> s_cum_dl_, s_cum_ul_;    // closed txns
  std::vector<Txn> o_clipped_;       // per-call: open txns clipped to cutoff
  std::vector<util::ExactSum> o_cum_dl_, o_cum_ul_;    // closed + clipped
};

}  // namespace droppkt::core
