// Fixed-size POD form of a proxy TLS record, for the allocation-free
// ingest hot path.
//
// trace::TlsTransaction owns its SNI as a std::string, so copying one into
// a queue or a per-client buffer heap-allocates. TlsRecord replaces the
// string with a util::StringPool ref: records become trivially copyable
// 48-byte values that move through SPSC mailboxes and pending-session
// buffers without touching the allocator, and SNI equality (all the
// session-boundary heuristic needs) is a 4-byte integer compare. The
// owning form is materialized back — pool lookup per transaction — only
// when a completed session is emitted, which is orders of magnitude rarer
// than record arrival.
#pragma once

#include <cstdint>

#include "trace/records.hpp"
#include "util/string_pool.hpp"

namespace droppkt::core {

/// One proxy TLS record with the SNI interned in a util::StringPool.
/// Trivially copyable; the pool that produced `sni_ref` is needed to
/// resolve it back to a hostname.
struct TlsRecord {
  double start_s = 0.0;
  double end_s = 0.0;
  double ul_bytes = 0.0;
  double dl_bytes = 0.0;
  util::StringPool::Ref sni_ref = 0;
  std::uint32_t http_count = 0;  // u32 is ample for per-connection exchanges

  double duration_s() const { return end_s - start_s; }
};

/// Intern `txn.sni` into `sni_pool` and return the POD form. Producer-side
/// only (see StringPool's threading contract).
inline TlsRecord to_tls_record(const trace::TlsTransaction& txn,
                               util::StringPool& sni_pool) {
  return TlsRecord{.start_s = txn.start_s,
                   .end_s = txn.end_s,
                   .ul_bytes = txn.ul_bytes,
                   .dl_bytes = txn.dl_bytes,
                   .sni_ref = sni_pool.intern(txn.sni),
                   .http_count = static_cast<std::uint32_t>(txn.http_count)};
}

/// Materialize the owning form into `out`, resolving the SNI from
/// `sni_pool`. Assigning into a reused TlsTransaction lets its sni string
/// keep its capacity across sessions (the emit path's scratch reuse).
inline void to_transaction(const TlsRecord& rec,
                           const util::StringPool& sni_pool,
                           trace::TlsTransaction& out) {
  out.start_s = rec.start_s;
  out.end_s = rec.end_s;
  out.ul_bytes = rec.ul_bytes;
  out.dl_bytes = rec.dl_bytes;
  out.sni.assign(sni_pool.view(rec.sni_ref));
  out.http_count = rec.http_count;
}

}  // namespace droppkt::core
