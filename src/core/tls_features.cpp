#include "core/tls_features.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace droppkt::core {

namespace {
std::string interval_suffix(double end_s) {
  return std::to_string(static_cast<int>(std::lround(end_s))) + "s";
}
}  // namespace

std::vector<std::string> session_level_feature_names() {
  return {"SDR_DL", "SDR_UL", "SES_DUR", "TRANS_PER_SEC"};
}

namespace {
std::vector<std::string> transaction_stat_names_impl(bool extended) {
  std::vector<std::string> names;
  const char* metrics[] = {"DL_SIZE", "UL_SIZE", "DUR", "TDR", "D2U", "IAT"};
  for (const char* m : metrics) {
    names.push_back(std::string(m) + "_MIN");
    names.push_back(std::string(m) + "_MED");
    names.push_back(std::string(m) + "_MAX");
    if (extended) {
      names.push_back(std::string(m) + "_MEAN");
      names.push_back(std::string(m) + "_STD");
    }
  }
  return names;
}
}  // namespace

std::vector<std::string> transaction_stat_feature_names() {
  return transaction_stat_names_impl(false);
}

std::vector<std::string> temporal_feature_names(const TlsFeatureConfig& config) {
  std::vector<std::string> names;
  for (double end : config.interval_ends_s) {
    names.push_back("CUM_DL_" + interval_suffix(end));
    names.push_back("CUM_UL_" + interval_suffix(end));
  }
  return names;
}

std::vector<std::string> tls_feature_names(const TlsFeatureConfig& config) {
  auto names = session_level_feature_names();
  for (auto& n : transaction_stat_names_impl(config.extended_stats)) {
    names.push_back(std::move(n));
  }
  for (auto& n : temporal_feature_names(config)) names.push_back(std::move(n));
  return names;
}

std::vector<double> extract_tls_features(const trace::TlsLog& log,
                                         const TlsFeatureConfig& config) {
  for (double end : config.interval_ends_s) {
    DROPPKT_EXPECT(end > 0.0, "TlsFeatureConfig: interval ends must be > 0");
  }
  const std::size_t per_metric = config.extended_stats ? 5u : 3u;
  const std::size_t n_features =
      4 + 6 * per_metric + 2 * config.interval_ends_s.size();
  std::vector<double> features(n_features, 0.0);
  if (log.empty()) return features;

  // Session extent from the transactions themselves (all an ISP can see).
  double first_start = log.front().start_s;
  double last_end = log.front().end_s;
  double total_dl = 0.0, total_ul = 0.0;
  for (const auto& t : log) {
    DROPPKT_EXPECT(t.end_s >= t.start_s,
                   "extract_tls_features: transaction end precedes start");
    first_start = std::min(first_start, t.start_s);
    last_end = std::max(last_end, t.end_s);
    total_dl += t.dl_bytes;
    total_ul += t.ul_bytes;
  }
  const double ses_dur = std::max(1e-3, last_end - first_start);

  // --- Session-level (4). ---
  std::size_t f = 0;
  features[f++] = total_dl * 8.0 / 1000.0 / ses_dur;  // SDR_DL (kbps)
  features[f++] = total_ul * 8.0 / 1000.0 / ses_dur;  // SDR_UL (kbps)
  features[f++] = ses_dur;                            // SES_DUR (s)
  features[f++] = static_cast<double>(log.size()) / ses_dur;  // TRANS_PER_SEC

  // --- Transaction statistics (18). ---
  std::vector<double> dl, ul, dur, tdr, d2u, iat;
  dl.reserve(log.size());
  ul.reserve(log.size());
  dur.reserve(log.size());
  tdr.reserve(log.size());
  d2u.reserve(log.size());
  std::vector<double> starts;
  starts.reserve(log.size());
  for (const auto& t : log) {
    dl.push_back(t.dl_bytes);
    ul.push_back(t.ul_bytes);
    const double d = std::max(1e-3, t.duration_s());
    dur.push_back(t.duration_s());
    tdr.push_back(t.dl_bytes * 8.0 / 1000.0 / d);  // kbps
    d2u.push_back(t.ul_bytes > 0.0 ? t.dl_bytes / t.ul_bytes : 0.0);
    starts.push_back(t.start_s);
  }
  std::sort(starts.begin(), starts.end());
  for (std::size_t i = 1; i < starts.size(); ++i) {
    iat.push_back(starts[i] - starts[i - 1]);
  }

  for (const auto* metric : {&dl, &ul, &dur, &tdr, &d2u, &iat}) {
    const auto s = util::summarize(*metric);
    features[f++] = s.min;
    features[f++] = s.median;
    features[f++] = s.max;
    if (config.extended_stats) {
      features[f++] = s.mean;
      features[f++] = s.stddev;
    }
  }

  // --- Temporal features (2 per interval). ---
  // Cumulative bytes in [session start, session start + end). Transactions
  // partially overlapping an interval contribute proportionally to the
  // overlap (the paper's stated approximation).
  for (double end : config.interval_ends_s) {
    double cum_dl = 0.0, cum_ul = 0.0;
    const double window_end = first_start + end;
    for (const auto& t : log) {
      const double span = std::max(1e-3, t.duration_s());
      const double overlap =
          std::max(0.0, std::min(t.end_s, window_end) - t.start_s);
      const double share = std::min(1.0, overlap / span);
      cum_dl += t.dl_bytes * share;
      cum_ul += t.ul_bytes * share;
    }
    features[f++] = cum_dl;
    features[f++] = cum_ul;
  }

  DROPPKT_ENSURE(f == n_features, "extract_tls_features: feature count drift");
  return features;
}

trace::TlsLog truncate_tls_log(const trace::TlsLog& log, double horizon_s) {
  DROPPKT_EXPECT(horizon_s > 0.0, "truncate_tls_log: horizon must be > 0");
  if (log.empty()) return {};
  double first_start = log.front().start_s;
  for (const auto& t : log) first_start = std::min(first_start, t.start_s);
  const double cutoff = first_start + horizon_s;

  trace::TlsLog out;
  for (const auto& t : log) {
    if (t.start_s >= cutoff) continue;
    if (t.end_s <= cutoff) {
      out.push_back(t);
      continue;
    }
    // Still open at the horizon: the monitor sees a partial record.
    trace::TlsTransaction clipped = t;
    const double span = std::max(1e-3, t.duration_s());
    const double share = (cutoff - t.start_s) / span;
    clipped.end_s = cutoff;
    clipped.ul_bytes *= share;
    clipped.dl_bytes *= share;
    out.push_back(std::move(clipped));
  }
  return out;
}

}  // namespace droppkt::core
