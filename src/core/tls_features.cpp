#include "core/tls_features.hpp"

#include <algorithm>
#include <cmath>

#include "core/feature_accumulator.hpp"
#include "util/expect.hpp"

namespace droppkt::core {

namespace {
std::string interval_suffix(double end_s) {
  return std::to_string(static_cast<int>(std::lround(end_s))) + "s";
}
}  // namespace

std::vector<std::string> session_level_feature_names() {
  return {"SDR_DL", "SDR_UL", "SES_DUR", "TRANS_PER_SEC"};
}

namespace {
std::vector<std::string> transaction_stat_names_impl(bool extended) {
  std::vector<std::string> names;
  const char* metrics[] = {"DL_SIZE", "UL_SIZE", "DUR", "TDR", "D2U", "IAT"};
  for (const char* m : metrics) {
    names.push_back(std::string(m) + "_MIN");
    names.push_back(std::string(m) + "_MED");
    names.push_back(std::string(m) + "_MAX");
    if (extended) {
      names.push_back(std::string(m) + "_MEAN");
      names.push_back(std::string(m) + "_STD");
    }
  }
  return names;
}
}  // namespace

std::vector<std::string> transaction_stat_feature_names() {
  return transaction_stat_names_impl(false);
}

std::vector<std::string> temporal_feature_names(const TlsFeatureConfig& config) {
  std::vector<std::string> names;
  for (double end : config.interval_ends_s) {
    names.push_back("CUM_DL_" + interval_suffix(end));
    names.push_back("CUM_UL_" + interval_suffix(end));
  }
  return names;
}

std::vector<std::string> tls_feature_names(const TlsFeatureConfig& config) {
  auto names = session_level_feature_names();
  for (auto& n : transaction_stat_names_impl(config.extended_stats)) {
    names.push_back(std::move(n));
  }
  for (auto& n : temporal_feature_names(config)) names.push_back(std::move(n));
  return names;
}

std::vector<double> extract_tls_features(const trace::TlsLog& log,
                                         const TlsFeatureConfig& config) {
  // One code path for batch and incremental extraction: the batch case is
  // just "observe everything, snapshot once". The accumulator's internal
  // reductions are functions of the transaction multiset (exact sums,
  // sorted samples), so this is also bit-identical for any log order.
  //
  // The accumulator is pooled per thread: constructing one allocates a
  // dozen sample/scratch vectors, and callers that extract in a loop
  // (training corpus build, ablation benches) were paying that per
  // session. reset() keeps capacity, so steady state is allocation-free
  // up to each session's high-water; the pool is rebuilt only when a
  // caller switches feature configs on the same thread.
  thread_local TlsFeatureAccumulator pooled_acc;
  if (pooled_acc.config().extended_stats != config.extended_stats ||
      pooled_acc.config().interval_ends_s != config.interval_ends_s) {
    pooled_acc = TlsFeatureAccumulator(config);
  } else {
    pooled_acc.reset();
  }
  for (const auto& t : log) pooled_acc.observe(t);
  return pooled_acc.snapshot();
}

trace::TlsLog truncate_tls_log(const trace::TlsLog& log, double horizon_s) {
  DROPPKT_EXPECT(horizon_s > 0.0, "truncate_tls_log: horizon must be > 0");
  if (log.empty()) return {};
  double first_start = log.front().start_s;
  for (const auto& t : log) first_start = std::min(first_start, t.start_s);
  const double cutoff = first_start + horizon_s;

  trace::TlsLog out;
  for (const auto& t : log) {
    if (t.start_s >= cutoff) continue;
    if (t.end_s <= cutoff) {
      out.push_back(t);
      continue;
    }
    // Still open at the horizon: the monitor sees a partial record.
    trace::TlsTransaction clipped = t;
    const double span = std::max(1e-3, t.duration_s());
    const double share = (cutoff - t.start_s) / span;
    clipped.end_s = cutoff;
    clipped.ul_bytes *= share;
    clipped.dl_bytes *= share;
    out.push_back(std::move(clipped));
  }
  return out;
}

}  // namespace droppkt::core
