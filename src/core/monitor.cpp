#include "core/monitor.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace droppkt::core {

StreamingMonitor::StreamingMonitor(const QoeEstimator& estimator,
                                   Callback on_session, MonitorConfig config)
    : StreamingMonitor(estimator, std::move(on_session), ViewCallback{},
                       config, ViewTag{}) {
  DROPPKT_EXPECT(static_cast<bool>(on_session_),
                 "StreamingMonitor: callback must be callable");
}

StreamingMonitor StreamingMonitor::with_view_sink(const QoeEstimator& estimator,
                                                  ViewCallback on_session,
                                                  MonitorConfig config) {
  return StreamingMonitor(ViewSinkTag{}, estimator, std::move(on_session),
                          config);
}

StreamingMonitor::StreamingMonitor(ViewSinkTag, const QoeEstimator& estimator,
                                   ViewCallback on_session,
                                   MonitorConfig config)
    : StreamingMonitor(estimator, Callback{}, std::move(on_session), config,
                       ViewTag{}) {
  DROPPKT_EXPECT(static_cast<bool>(on_session_view_),
                 "StreamingMonitor: callback must be callable");
}

StreamingMonitor::StreamingMonitor(const QoeEstimator& estimator,
                                   Callback on_session,
                                   ViewCallback on_session_view,
                                   MonitorConfig config, ViewTag)
    : estimator_(&estimator),
      on_session_(std::move(on_session)),
      on_session_view_(std::move(on_session_view)),
      config_(config),
      head_acc_(estimator.make_accumulator()) {
  DROPPKT_EXPECT(estimator.trained(),
                 "StreamingMonitor: estimator must be trained");
  DROPPKT_EXPECT(config_.client_idle_timeout_s > 0.0,
                 "StreamingMonitor: idle timeout must be positive");
  DROPPKT_EXPECT(config_.session_id.window_s > 0.0,
                 "SessionIdParams: W must be > 0");
  DROPPKT_EXPECT(config_.session_id.delta_min >= 0.0 &&
                     config_.session_id.delta_min <= 1.0,
                 "SessionIdParams: delta_min must be in [0,1]");
  feature_scratch_.resize(estimator_->feature_count());
  proba_scratch_.resize(static_cast<std::size_t>(kNumQoeClasses));
}

void StreamingMonitor::use_external_pools(const util::StringPool* client_pool,
                                          const util::StringPool* sni_pool) {
  DROPPKT_EXPECT(client_pool != nullptr && sni_pool != nullptr,
                 "StreamingMonitor: external pools must be non-null");
  DROPPKT_EXPECT(clients_.empty() && sessions_reported() == 0,
                 "StreamingMonitor: pools must be set before the first record");
  client_pool_ = client_pool;
  sni_pool_ = sni_pool;
  external_pools_ = true;
}

void StreamingMonitor::bind_telemetry(const MonitorMetrics& metrics) {
  DROPPKT_EXPECT(metrics.sessions != nullptr && metrics.provisionals != nullptr &&
                     metrics.clients_evicted != nullptr &&
                     metrics.sessions_noise_dropped != nullptr,
                 "StreamingMonitor: telemetry counters must be non-null");
  DROPPKT_EXPECT(clients_.empty() && sessions_reported() == 0,
                 "StreamingMonitor: telemetry must be bound before the first "
                 "record");
  sessions_ctr_ = metrics.sessions;
  provisionals_ctr_ = metrics.provisionals;
  evicted_ctr_ = metrics.clients_evicted;
  noise_ctr_ = metrics.sessions_noise_dropped;
}

void StreamingMonitor::set_provisional_callback(
    ProvisionalCallback on_provisional) {
  on_provisional_ = std::move(on_provisional);
}

void StreamingMonitor::sync_acc(ClientState& state) {
  for (std::size_t i = state.acc_synced; i < state.pending.size(); ++i) {
    const TlsRecord& r = state.pending[i];
    state.acc.observe(r.start_s, r.end_s, r.ul_bytes, r.dl_bytes);
  }
  state.acc_synced = state.pending.size();
}

void StreamingMonitor::emit_records(util::StringPool::Ref client_ref,
                                    std::span<const TlsRecord> recs,
                                    const TlsFeatureAccumulator& acc,
                                    double detected_s) {
  if (recs.size() < config_.min_transactions) {
    noise_ctr_->inc();
    return;
  }
  DROPPKT_ASSERT(acc.transactions() == recs.size(),
                 "StreamingMonitor: accumulator out of sync with emission");
  // Classification is one snapshot + forest vote into reused scratch — no
  // re-extraction, no allocation; bit-identical to predict() over the
  // materialized log.
  const int predicted =
      estimator_->predict_into(acc, feature_scratch_, proba_scratch_);
  const double confidence =
      proba_scratch_[static_cast<std::size_t>(predicted)];
  double end_s = recs.front().end_s;
  for (const TlsRecord& r : recs) end_s = std::max(end_s, r.end_s);

  // Materialize owning strings into grow-only scratch: emit_txns_ keeps
  // every element's sni capacity across sessions, so in steady state the
  // emission itself allocates nothing either. View sinks can opt out and
  // read the interned records straight off the view.
  const bool materialize =
      config_.materialize_transactions || !on_session_view_;
  if (materialize) {
    if (emit_txns_.size() < recs.size()) emit_txns_.resize(recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
      to_transaction(recs[i], *sni_pool_, emit_txns_[i]);
    }
  }
  sessions_ctr_->inc();
  if (on_session_view_) {
    MonitoredSessionView view;
    view.client = client_pool_->view(client_ref);
    if (materialize) view.transactions = {emit_txns_.data(), recs.size()};
    view.records = recs;
    view.sni_pool = sni_pool_;
    view.predicted_class = predicted;
    view.confidence = confidence;
    view.start_s = recs.front().start_s;
    view.end_s = end_s;
    view.detected_s = detected_s;
    on_session_view_(view);
  } else {
    emit_session_.client.assign(client_pool_->view(client_ref));
    emit_session_.transactions.assign(emit_txns_.begin(),
                                      emit_txns_.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              recs.size()));
    emit_session_.predicted_class = predicted;
    emit_session_.confidence = confidence;
    emit_session_.start_s = recs.front().start_s;
    emit_session_.end_s = end_s;
    emit_session_.detected_s = detected_s;
    on_session_(emit_session_);
  }
}

void StreamingMonitor::emit_pending(util::StringPool::Ref client_ref,
                                    ClientState& state, double detected_s) {
  sync_acc(state);
  emit_records(client_ref, state.pending, state.acc, detected_s);
  state.pending.clear();
  state.acc.reset();
  state.acc_synced = 0;
  state.scan.reset();
}

void StreamingMonitor::observe(const std::string& client,
                               const trace::TlsTransaction& txn) {
  DROPPKT_EXPECT(!client.empty(), "StreamingMonitor: client must be non-empty");
  DROPPKT_EXPECT(!external_pools_,
                 "StreamingMonitor: string observe() requires owned pools — "
                 "with external pools the producer interns and calls "
                 "observe_ref()");
  const util::StringPool::Ref client_ref = owned_clients_.intern(client);
  observe_ref(client_ref, to_tls_record(txn, owned_snis_));
}

void StreamingMonitor::observe_ref(util::StringPool::Ref client_ref,
                                   const TlsRecord& rec) {
  if (client_ref >= clients_.size()) {
    clients_.resize(static_cast<std::size_t>(client_ref) + 1);
  }
  ClientState& state = clients_[client_ref];
  if (!state.open) {
    if (!state.init) {
      state.acc = estimator_->make_accumulator();
      state.init = true;
    }
    state.open = true;
    state.last_start_s = -1e18;
    ++open_clients_;
  }
  DROPPKT_EXPECT(rec.start_s >= state.last_start_s,
                 "StreamingMonitor: records must arrive in start-time order");

  // Idle gap: the previous session ended long ago.
  if (!state.pending.empty() &&
      rec.start_s - state.last_start_s > config_.client_idle_timeout_s) {
    emit_pending(client_ref, state, rec.start_s);
  }

  state.pending.push_back(rec);
  state.last_start_s = rec.start_s;
  // Per-record hot path, so debug-only: the buffered window must stay
  // start-ordered or the boundary heuristic below silently misfires.
  DROPPKT_ASSERT(state.pending.size() < 2 ||
                     state.pending[state.pending.size() - 2].start_s <=
                         rec.start_s,
                 "StreamingMonitor: pending window lost start order");

  // In-flight QoE: snapshot the live accumulator every N records. This is
  // the early-detection path running online — the session is still open,
  // records may still be clipped short of their eventual totals.
  if (on_provisional_ && config_.provisional_every > 0 &&
      state.pending.size() >= config_.min_transactions &&
      state.pending.size() % config_.provisional_every == 0) {
    sync_acc(state);
    ProvisionalEstimate est;
    est.client = client_pool_->view(client_ref);
    est.transactions_observed = state.pending.size();
    est.predicted_class =
        estimator_->predict_into(state.acc, feature_scratch_, proba_scratch_);
    est.confidence =
        proba_scratch_[static_cast<std::size_t>(est.predicted_class)];
    est.session_start_s = state.pending.front().start_s;
    est.last_activity_s = rec.start_s;
    provisionals_ctr_->inc();
    on_provisional_(est);
  }

  // Online boundary detection: the burst+fresh-server heuristic over the
  // buffered window, maintained incrementally — per record this costs
  // O(records within W), not O(window x burst). A boundary at index k
  // becomes detectable once its burst (the W-second look-ahead) has
  // arrived in the buffer; at that point everything before k is a
  // completed session.
  const std::size_t k = state.scan.on_append(state.pending,
                                             config_.session_id);
  if (k != 0) {
    // Emit the prefix through the reused split accumulator, then slide the
    // survivors down. The live accumulator restarts lazily from the
    // surviving records (acc_synced = 0), folded on next need.
    head_acc_.reset();
    for (std::size_t i = 0; i < k; ++i) {
      const TlsRecord& r = state.pending[i];
      head_acc_.observe(r.start_s, r.end_s, r.ul_bytes, r.dl_bytes);
    }
    emit_records(client_ref, {state.pending.data(), k}, head_acc_,
                 rec.start_s);
    state.pending.erase(state.pending.begin(),
                        state.pending.begin() + static_cast<std::ptrdiff_t>(k));
    state.acc.reset();
    state.acc_synced = 0;
    state.scan.rebuild(state.pending, config_.session_id);
  }
}

void StreamingMonitor::advance_time(double now_s) {
  for (std::size_t ref = 0; ref < clients_.size(); ++ref) {
    ClientState& state = clients_[ref];
    if (!state.open) continue;
    if (now_s - state.last_start_s > config_.client_idle_timeout_s) {
      if (!state.pending.empty()) {
        emit_pending(static_cast<util::StringPool::Ref>(ref), state, now_s);
      }
      state.open = false;
      --open_clients_;
      evicted_ctr_->inc();
    }
  }
}

void StreamingMonitor::finish() {
  for (std::size_t ref = 0; ref < clients_.size(); ++ref) {
    ClientState& state = clients_[ref];
    if (!state.open) continue;
    if (!state.pending.empty()) {
      emit_pending(static_cast<util::StringPool::Ref>(ref), state,
                   state.last_start_s);
    }
    state.open = false;
  }
  open_clients_ = 0;
}

}  // namespace droppkt::core
