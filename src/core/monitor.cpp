#include "core/monitor.hpp"

#include "util/expect.hpp"

namespace droppkt::core {

StreamingMonitor::StreamingMonitor(const QoeEstimator& estimator,
                                   Callback on_session, MonitorConfig config)
    : StreamingMonitor(estimator, std::move(on_session), ViewCallback{},
                       config, ViewTag{}) {
  DROPPKT_EXPECT(static_cast<bool>(on_session_),
                 "StreamingMonitor: callback must be callable");
}

StreamingMonitor StreamingMonitor::with_view_sink(const QoeEstimator& estimator,
                                                  ViewCallback on_session,
                                                  MonitorConfig config) {
  DROPPKT_EXPECT(static_cast<bool>(on_session),
                 "StreamingMonitor: callback must be callable");
  return StreamingMonitor(estimator, Callback{}, std::move(on_session), config,
                          ViewTag{});
}

StreamingMonitor::StreamingMonitor(const QoeEstimator& estimator,
                                   Callback on_session,
                                   ViewCallback on_session_view,
                                   MonitorConfig config, ViewTag)
    : estimator_(&estimator),
      on_session_(std::move(on_session)),
      on_session_view_(std::move(on_session_view)),
      config_(config) {
  DROPPKT_EXPECT(estimator.trained(),
                 "StreamingMonitor: estimator must be trained");
  DROPPKT_EXPECT(config_.client_idle_timeout_s > 0.0,
                 "StreamingMonitor: idle timeout must be positive");
  feature_scratch_.resize(estimator_->feature_count());
  proba_scratch_.resize(static_cast<std::size_t>(kNumQoeClasses));
}

void StreamingMonitor::set_provisional_callback(
    ProvisionalCallback on_provisional) {
  on_provisional_ = std::move(on_provisional);
}

void StreamingMonitor::rebuild_accumulator(ClientState& state) {
  state.acc.reset();
  for (const auto& t : state.pending) state.acc.observe(t);
}

void StreamingMonitor::emit(const std::string& client, ClientState& state,
                            double detected_s) {
  if (state.pending.size() >= config_.min_transactions) {
    // The live accumulator mirrors `pending`, so classification is one
    // snapshot + forest vote into reused scratch — no re-extraction, no
    // allocation. Bit-identical to estimator_->predict(state.pending).
    DROPPKT_ASSERT(state.acc.transactions() == state.pending.size(),
                   "StreamingMonitor: accumulator out of sync with pending");
    MonitoredSessionView view;
    view.client = client;
    view.transactions = state.pending;
    view.predicted_class =
        estimator_->predict_into(state.acc, feature_scratch_, proba_scratch_);
    view.confidence =
        proba_scratch_[static_cast<std::size_t>(view.predicted_class)];
    view.start_s = state.pending.front().start_s;
    view.end_s = state.pending.front().end_s;
    for (const auto& t : state.pending) {
      view.end_s = std::max(view.end_s, t.end_s);
    }
    view.detected_s = detected_s;
    ++sessions_reported_;
    if (on_session_view_) {
      // Borrowed-span path: the sink sees `pending` in place; clearing
      // below keeps the buffer's capacity for the client's next session.
      on_session_view_(view);
    } else {
      MonitoredSession session;
      session.client = client;
      session.transactions = std::move(state.pending);
      session.predicted_class = view.predicted_class;
      session.confidence = view.confidence;
      session.start_s = view.start_s;
      session.end_s = view.end_s;
      session.detected_s = view.detected_s;
      on_session_(session);
    }
  }
  state.pending.clear();
  state.acc.reset();
}

void StreamingMonitor::observe(const std::string& client,
                               const trace::TlsTransaction& txn) {
  DROPPKT_EXPECT(!client.empty(), "StreamingMonitor: client must be non-empty");
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    it = clients_
             .emplace(client, ClientState{.pending = {},
                                          .last_start_s = -1e18,
                                          .acc = estimator_->make_accumulator()})
             .first;
  }
  ClientState& state = it->second;
  DROPPKT_EXPECT(txn.start_s >= state.last_start_s,
                 "StreamingMonitor: records must arrive in start-time order");

  // Idle gap: the previous session ended long ago.
  if (!state.pending.empty() &&
      txn.start_s - state.last_start_s > config_.client_idle_timeout_s) {
    emit(client, state, txn.start_s);
  }

  state.pending.push_back(txn);
  state.acc.observe(txn);
  state.last_start_s = txn.start_s;
  // Per-record hot path, so debug-only: the buffered window must stay
  // start-ordered or the boundary heuristic below silently misfires.
  DROPPKT_ASSERT(state.pending.size() < 2 ||
                     state.pending[state.pending.size() - 2].start_s <=
                         txn.start_s,
                 "StreamingMonitor: pending window lost start order");

  // In-flight QoE: snapshot the live accumulator every N records. This is
  // the early-detection path running online — the session is still open,
  // records may still be clipped short of their eventual totals.
  if (on_provisional_ && config_.provisional_every > 0 &&
      state.pending.size() >= config_.min_transactions &&
      state.pending.size() % config_.provisional_every == 0) {
    ProvisionalEstimate est;
    est.client = it->first;
    est.transactions_observed = state.pending.size();
    est.predicted_class =
        estimator_->predict_into(state.acc, feature_scratch_, proba_scratch_);
    est.confidence =
        proba_scratch_[static_cast<std::size_t>(est.predicted_class)];
    est.session_start_s = state.pending.front().start_s;
    est.last_activity_s = txn.start_s;
    ++provisionals_reported_;
    on_provisional_(est);
  }

  // Online boundary detection: re-run the burst+fresh-server heuristic on
  // the buffered window. A boundary at index k becomes detectable once its
  // burst (the W-second look-ahead) has arrived in the buffer; at that
  // point everything before k is a completed session.
  const auto starts = detect_session_starts(state.pending, config_.session_id);
  for (std::size_t k = 1; k < starts.size(); ++k) {
    if (!starts[k]) continue;
    ClientState head;
    head.acc = estimator_->make_accumulator();
    head.pending.assign(state.pending.begin(),
                        state.pending.begin() + static_cast<std::ptrdiff_t>(k));
    rebuild_accumulator(head);
    emit(client, head, txn.start_s);
    state.pending.erase(state.pending.begin(),
                        state.pending.begin() + static_cast<std::ptrdiff_t>(k));
    // The split invalidated the live state; re-fold the survivors.
    rebuild_accumulator(state);
    break;
  }
}

void StreamingMonitor::advance_time(double now_s) {
  for (auto it = clients_.begin(); it != clients_.end();) {
    ClientState& state = it->second;
    if (now_s - state.last_start_s > config_.client_idle_timeout_s) {
      if (!state.pending.empty()) emit(it->first, state, now_s);
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
}

void StreamingMonitor::finish() {
  for (auto& [client, state] : clients_) {
    if (!state.pending.empty()) emit(client, state, state.last_start_s);
  }
  clients_.clear();
}

}  // namespace droppkt::core
