#include "core/emimic.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::core {

QoeLabels EmimicEstimate::to_labels(const has::ServiceProfile& svc) const {
  QoeLabels labels;
  labels.rebuffer_ratio = rebuffer_ratio;
  labels.rebuffering = rebuffering_class(rebuffer_ratio);
  // Map the estimated average bitrate onto the nearest ladder rung, then
  // categorize its height with the service thresholds (eMIMIC assumes the
  // ladder is known for the service).
  std::size_t best = 0;
  double best_err = 1e18;
  for (std::size_t q = 0; q < svc.ladder.size(); ++q) {
    const double err = std::abs(std::log(
        std::max(1.0, avg_bitrate_kbps) / svc.ladder.level(q).bitrate_kbps));
    if (err < best_err) {
      best_err = err;
      best = q;
    }
  }
  labels.video_quality = quality_class(svc.ladder.level(best).height_px, svc);
  labels.combined = std::min(labels.rebuffering, labels.video_quality);
  return labels;
}

EmimicEstimate emimic_estimate(const has::HttpLog& http,
                               double segment_duration_s,
                               const EmimicConfig& config) {
  DROPPKT_EXPECT(segment_duration_s > 0.0,
                 "emimic_estimate: segment duration must be positive");
  DROPPKT_EXPECT(config.startup_segments >= 1.0,
                 "emimic_estimate: need at least one startup segment");

  EmimicEstimate est;
  if (http.empty()) return est;

  // 1. Detect media segments: large responses, with back-to-back range
  // requests (gap below 200 ms) merged into one segment.
  struct Segment {
    double arrival_s = 0.0;  // last byte of the (merged) segment
    double bytes = 0.0;
  };
  std::vector<Segment> segments;
  double prev_request = -1e18;
  double prev_end = -1e18;
  for (const auto& txn : http) {
    DROPPKT_EXPECT(txn.request_s >= prev_request,
                   "emimic_estimate: log must be sorted by request time");
    prev_request = txn.request_s;
    if (txn.dl_bytes < config.min_segment_bytes) continue;
    const bool continuation =
        !segments.empty() && (txn.request_s - prev_end) < 0.2;
    if (continuation) {
      segments.back().arrival_s = txn.response_end_s;
      segments.back().bytes += txn.dl_bytes;
    } else {
      segments.push_back({txn.response_end_s, txn.dl_bytes});
    }
    prev_end = txn.response_end_s;
  }
  est.segments_detected = segments.size();
  if (segments.empty()) return est;

  // 2. Replay playback against segment arrivals: playback starts once the
  // startup buffer is filled, the playhead consumes one segment duration
  // per segment, and it stalls whenever it catches up with arrivals.
  const auto startup_n = static_cast<std::size_t>(
      std::min<double>(config.startup_segments, segments.size()));
  const double session_t0 = http.front().request_s;
  const double play_start = segments[startup_n - 1].arrival_s;
  est.startup_delay_s = play_start - session_t0;

  double stall_s = 0.0;
  for (std::size_t i = startup_n; i < segments.size(); ++i) {
    // Media available before segment i arrives: i segments.
    const double exhaust_t = play_start + stall_s +
                             static_cast<double>(i) * segment_duration_s;
    if (segments[i].arrival_s > exhaust_t) {
      stall_s += segments[i].arrival_s - exhaust_t;
    }
  }

  // 3. Playback time: bounded by the media fetched and by the observed
  // session span (the user closes the player at the last activity).
  const double last_activity = std::max(
      segments.back().arrival_s, http.back().response_end_s);
  const double media_s =
      static_cast<double>(segments.size()) * segment_duration_s;
  const double wall_play_budget =
      std::max(1.0, last_activity - play_start - stall_s);
  const double playback_s = std::min(media_s, wall_play_budget);

  est.rebuffer_ratio = stall_s / std::max(1.0, playback_s);

  double media_bytes = 0.0;
  for (const auto& s : segments) media_bytes += s.bytes;
  est.avg_bitrate_kbps = media_bytes * 8.0 / 1000.0 / media_s;
  return est;
}

}  // namespace droppkt::core
