#include "core/pipeline.hpp"

#include "core/feature_accumulator.hpp"
#include "net/link_model.hpp"
#include "trace/packet_generator.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::core {

std::string to_string(FeatureSet set) {
  switch (set) {
    case FeatureSet::kSessionLevel: return "Only Session-level (SL)";
    case FeatureSet::kSessionPlusTransaction: return "SL + Transaction Stats (TS)";
    case FeatureSet::kFull: return "SL + TS + Temporal Stats";
  }
  return "unknown";
}

std::vector<std::string> feature_set_names(FeatureSet set,
                                           const TlsFeatureConfig& config) {
  std::vector<std::string> names = session_level_feature_names();
  if (set == FeatureSet::kSessionLevel) return names;
  for (auto& n : transaction_stat_feature_names()) names.push_back(std::move(n));
  if (set == FeatureSet::kSessionPlusTransaction) return names;
  for (auto& n : temporal_feature_names(config)) names.push_back(std::move(n));
  return names;
}

ml::Dataset make_tls_dataset(const LabeledDataset& sessions, QoeTarget target,
                             const TlsFeatureConfig& config, FeatureSet set) {
  DROPPKT_EXPECT(!sessions.empty(), "make_tls_dataset: empty dataset");
  ml::Dataset full(tls_feature_names(config), kNumQoeClasses);
  full.reserve(sessions.size());
  TlsFeatureAccumulator acc(config);
  std::vector<double> row(acc.feature_count());
  for (const auto& s : sessions) {
    acc.reset();
    for (const auto& t : s.record.tls) acc.observe(t);
    acc.snapshot_into(row);
    full.add_row(std::span<const double>(row), s.labels.label_for(target));
  }
  if (set == FeatureSet::kFull) return full;
  return full.select_features(feature_set_names(set, config));
}

ml::Dataset make_ml16_dataset(const LabeledDataset& sessions, QoeTarget target,
                              const Ml16Config& config) {
  DROPPKT_EXPECT(!sessions.empty(), "make_ml16_dataset: empty dataset");
  ml::Dataset data(ml16_feature_names(), kNumQoeClasses);
  data.reserve(sessions.size());
  for (const auto& s : sessions) {
    // Regenerate the packet view deterministically from the session seed.
    util::Rng rng(s.record.seed ^ 0x9ac4e7ULL);
    const trace::PacketTraceGenerator gen(
        net::link_params_for(s.record.environment));
    const trace::PacketLog packets = gen.generate(s.record.http, rng);
    data.add_row(extract_ml16_features(packets, config),
                 s.labels.label_for(target));
  }
  return data;
}

Scores scores_from(const ml::CrossValidationResult& cv) {
  return {.accuracy = cv.accuracy(),
          .recall_low = cv.recall(0),
          .precision_low = cv.precision(0)};
}

std::function<std::unique_ptr<ml::Classifier>()> forest_factory(
    std::uint64_t seed, std::size_t num_trees) {
  return [seed, num_trees]() -> std::unique_ptr<ml::Classifier> {
    ml::RandomForestParams params;
    params.num_trees = num_trees;
    params.seed = seed;
    return std::make_unique<ml::RandomForest>(params);
  };
}

ml::CrossValidationResult evaluate_tls(const LabeledDataset& sessions,
                                       QoeTarget target, FeatureSet set,
                                       const TlsFeatureConfig& config,
                                       std::uint64_t seed) {
  const ml::Dataset data = make_tls_dataset(sessions, target, config, set);
  return ml::cross_validate(data, forest_factory(seed), 5, seed ^ 0xcafeULL);
}

}  // namespace droppkt::core
