// Session-identification heuristic (paper Section 4.2, Table 5).
//
// Back-to-back sessions from the same service produce overlapping TLS
// transactions (connections linger past the player close), so timeouts
// cannot delimit sessions. The heuristic uses two insights instead:
// (i) a session opens with a burst of transactions, and (ii) a new session
// talks to a (mostly) fresh set of servers. A transaction starts a new
// session when more than Nmin transactions start within W seconds of it
// AND more than a δmin fraction of them target servers not yet seen in the
// current session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/tls_record.hpp"
#include "trace/records.hpp"

namespace droppkt::core {

struct SessionIdParams {
  double window_s = 3.0;   // W
  std::size_t n_min = 2;   // Nmin
  double delta_min = 0.5;  // δmin
};

/// For each transaction of a time-merged log (sorted by start time),
/// decide whether it begins a new session. The first transaction is always
/// a session start.
std::vector<bool> detect_session_starts(const trace::TlsLog& merged,
                                        const SessionIdParams& params = {});

/// Convenience: split a merged log into per-session TLS logs using the
/// detected boundaries.
std::vector<trace::TlsLog> split_sessions(const trace::TlsLog& merged,
                                          const SessionIdParams& params = {});

/// Reused working memory for detect_session_starts_into — hold one per
/// caller (the streaming monitor keeps one) so the per-record hot path
/// allocates nothing in steady state.
struct SessionStartScratch {
  /// Output: is_start[i] != 0 iff merged[i] begins a new session.
  std::vector<char> is_start;
  /// Distinct SNI refs seen in the current session (small; linear scan).
  std::vector<std::uint32_t> servers;
};

/// The same heuristic over interned POD records: identical boundaries to
/// detect_session_starts for the equivalent transaction log, with the
/// fresh-server test comparing 4-byte SNI refs instead of strings (ref
/// equality == string equality within one util::StringPool). Writes into
/// scratch.is_start; no allocation once the scratch has grown to the
/// caller's window high-water mark.
void detect_session_starts_into(std::span<const TlsRecord> merged,
                                const SessionIdParams& params,
                                SessionStartScratch& scratch);

/// Incremental form of the boundary heuristic for the streaming hot path.
///
/// Re-running detect_session_starts_into over a client's whole pending
/// window on every arrival costs O(window x burst) per record; this class
/// maintains the per-position burst counters (N_i and the fresh count
/// F_i) across arrivals instead, so each record costs O(records within W
/// of it). The counters are pure functions of the window content — N_i
/// counts succeeding records within W of record i, F_i those whose SNI's
/// first occurrence in the window is at or after i (equivalent to "not in
/// the servers seen before i") — so a position whose look-ahead window
/// has closed can never change its decision and is skipped until the
/// window itself is cut.
///
/// Usage (mirrors StreamingMonitor): call on_append() with the window
/// AFTER appending each record; if it returns k > 0, records [0, k) are a
/// completed session — cut them and call rebuild() with the surviving
/// suffix. Byte-identical split decisions to running
/// detect_session_starts_into per arrival and cutting at the first start.
class IncrementalBoundaryScan {
 public:
  /// Forget everything (the window was emptied).
  void reset();

  /// Account for the newest record (window.back()) and return the first
  /// session-start index in [1, window.size()), or 0 when no boundary is
  /// detectable yet. `window` must be the full sorted pending window.
  std::size_t on_append(std::span<const TlsRecord> window,
                        const SessionIdParams& params);

  /// Recompute state for a window whose prefix was just cut. The cut
  /// changes every surviving position's seen-before-set, so the next
  /// on_append() re-evaluates all positions once instead of only the
  /// active suffix.
  void rebuild(std::span<const TlsRecord> window,
               const SessionIdParams& params);

 private:
  void append(std::span<const TlsRecord> window, const SessionIdParams& params);
  std::size_t evaluate(std::span<const TlsRecord> window,
                       const SessionIdParams& params);

  struct FirstOcc {
    std::uint32_t sni_ref = 0;
    std::uint32_t index = 0;  // first window index carrying sni_ref
  };
  std::vector<std::uint32_t> n_;      // succeeding records within W of i
  std::vector<std::uint32_t> fresh_;  // ... targeting servers fresh at i
  std::vector<FirstOcc> first_occ_;   // distinct SNIs (small; linear scan)
  std::size_t active_begin_ = 0;      // first position still within W
  bool evaluate_all_next_ = false;    // set by rebuild()
};

}  // namespace droppkt::core
