// Session-identification heuristic (paper Section 4.2, Table 5).
//
// Back-to-back sessions from the same service produce overlapping TLS
// transactions (connections linger past the player close), so timeouts
// cannot delimit sessions. The heuristic uses two insights instead:
// (i) a session opens with a burst of transactions, and (ii) a new session
// talks to a (mostly) fresh set of servers. A transaction starts a new
// session when more than Nmin transactions start within W seconds of it
// AND more than a δmin fraction of them target servers not yet seen in the
// current session.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/records.hpp"

namespace droppkt::core {

struct SessionIdParams {
  double window_s = 3.0;   // W
  std::size_t n_min = 2;   // Nmin
  double delta_min = 0.5;  // δmin
};

/// For each transaction of a time-merged log (sorted by start time),
/// decide whether it begins a new session. The first transaction is always
/// a session start.
std::vector<bool> detect_session_starts(const trace::TlsLog& merged,
                                        const SessionIdParams& params = {});

/// Convenience: split a merged log into per-session TLS logs using the
/// detected boundaries.
std::vector<trace::TlsLog> split_sessions(const trace::TlsLog& merged,
                                          const SessionIdParams& params = {});

}  // namespace droppkt::core
