// Location aggregation: turning per-session QoE estimates into the
// network-level signal the paper's introduction motivates — "identify
// parts of the network that underperform in a lightweight manner", so
// fine-grained collection can be targeted there.
//
// Each session estimate is a noisy Bernoulli observation of a location's
// low-QoE rate; the aggregator maintains per-location counts and flags
// locations whose rate is credibly above a threshold using a Wilson score
// interval (robust at the small per-location sample sizes a monitoring
// window yields).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace droppkt::core {

/// Wilson score interval for a binomial proportion at z standard errors.
struct Interval {
  double low = 0.0;
  double high = 1.0;
};
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z = 1.96);

/// Wilson interval over fractional counts — for windowed/decaying
/// aggregation where each observation carries an exponentially-decayed
/// weight, so "successes" and "trials" are effective (real-valued) sample
/// sizes. Degenerates to the integer version on whole numbers.
Interval wilson_interval_real(double successes, double trials,
                              double z = 1.96);

struct LocationStats {
  std::string location;
  std::size_t sessions = 0;
  std::size_t low_qoe = 0;
  double rate() const {
    return sessions ? static_cast<double>(low_qoe) / sessions : 0.0;
  }
};

struct AggregatorConfig {
  /// A location is flagged when the *lower* bound of its low-QoE rate
  /// interval exceeds this threshold — i.e. it is credibly degraded, not
  /// just unlucky.
  double alert_rate = 0.5;
  double z = 1.96;  // ~95% interval
  /// Locations with fewer sessions than this are never flagged.
  std::size_t min_sessions = 10;
};

/// Accumulates per-location session classifications and reports the
/// credibly-degraded set.
class LocationAggregator {
 public:
  explicit LocationAggregator(AggregatorConfig config = {});

  /// Record one classified session (predicted_class 0 = low QoE).
  void record(const std::string& location, int predicted_class);

  std::size_t total_sessions() const { return total_; }
  const std::map<std::string, LocationStats>& locations() const {
    return locations_;
  }

  /// The location's interval, or (0,1) if unseen.
  Interval interval(const std::string& location) const;

  /// Locations whose low-QoE rate is credibly above the alert threshold,
  /// worst first.
  std::vector<LocationStats> flagged() const;

 private:
  AggregatorConfig config_;
  std::map<std::string, LocationStats> locations_;
  std::size_t total_ = 0;
};

}  // namespace droppkt::core
