// Hysteresis over per-session verdict flips — the first stage of the
// alerting pipeline.
//
// Provisional estimates are noisy early in a session (the paper's
// early-detection experiments show accuracy climbing with observation
// horizon), so a session's predicted class can flip several times before
// settling. Alerting on every flip would double-count sessions and thrash
// downstream state; this filter turns the flip stream into a stable
// per-session verdict that changes only after `hysteresis_k` consecutive
// estimates agree on the new class at or above a confidence floor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/monitor.hpp"

namespace droppkt::alert {

/// Sentinel class for "no stable verdict yet".
inline constexpr int kNoVerdict = -1;

struct SessionFilterConfig {
  /// Consecutive agreeing confident estimates required to change (or
  /// first establish) a session's stable verdict.
  std::size_t hysteresis_k = 3;
  /// Estimates whose forest probability is below this neither advance nor
  /// reset a run — the forest itself is unsure, so they carry no signal.
  double min_confidence = 0.5;
};

/// One stable-verdict change for a session, ready for location-level
/// aggregation. Owns its client string (transitions are rare relative to
/// estimates, so the copy is off the hot path and lets callers buffer).
struct VerdictTransition {
  std::string client;
  int from_class = kNoVerdict;  // kNoVerdict on the first verdict
  int to_class = 0;
  double confidence = 0.0;  // of the estimate that completed the flip
  /// Feed time of the deciding event (provisional last_activity_s, or the
  /// session's detected_s for final verdicts).
  double time_s = 0.0;
  /// Feed time at which `from_class` was established — the evidence a
  /// windowed detector must retract when applying this transition.
  double prev_time_s = 0.0;
  /// True when emitted by the session's final (completed-session)
  /// verdict; final verdicts are authoritative and bypass hysteresis.
  bool final_verdict = false;
};

/// Result of feeding one provisional estimate.
struct FilterOutcome {
  std::optional<VerdictTransition> transition;
  /// The estimate disagreed with the stable verdict but hysteresis
  /// absorbed it (run not yet at k).
  bool suppressed = false;
};

/// Per-client verdict hysteresis. Single-threaded; the sharded pipeline
/// keeps one filter per shard lane so each is only touched by its shard's
/// worker.
class SessionAlertFilter {
 public:
  explicit SessionAlertFilter(SessionFilterConfig config = {});

  /// Feed one in-flight estimate for a still-open session.
  FilterOutcome on_provisional(const core::ProvisionalEstimate& estimate);

  /// Feed a completed session's final verdict. Always yields exactly one
  /// transition — from the stable provisional verdict when one formed
  /// (even if equal: the transition re-times the evidence from the
  /// provisional's clock to detected_s), from kNoVerdict otherwise — and
  /// forgets the client, so every session contributes final evidence
  /// exactly once.
  VerdictTransition on_session(std::string_view client, int predicted_class,
                               double confidence, double detected_s);

  std::size_t open_clients() const { return clients_.size(); }

 private:
  struct State {
    int stable = kNoVerdict;
    double stable_time_s = 0.0;  // when `stable` was established
    int run_class = kNoVerdict;  // candidate class of the current run
    std::size_t run_len = 0;
  };

  SessionFilterConfig config_;
  std::unordered_map<std::string, State> clients_;
};

}  // namespace droppkt::alert
