// Windowed location-level incident detection — the second stage of the
// alerting pipeline.
//
// core::LocationAggregator answers "which locations were degraded over the
// whole run"; an operator needs "which locations are degraded *now*". The
// detector generalizes it with time windows: each verdict is a Bernoulli
// observation of a location's live low-QoE rate that either decays
// exponentially (half-life) or expires from a sliding window, and a
// location is degraded when the Wilson lower bound over the *effective*
// (real-valued) counts credibly exceeds the alert rate — the same
// credibility test, on fractional sample sizes (wilson_interval_real).
//
// Evidence is retractable: when a session's stable verdict flips (see
// SessionAlertFilter), the detector removes the superseded verdict's
// contribution and adds the new one, so each session counts exactly once
// at any instant no matter how often early-horizon noise re-classified it.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/aggregator.hpp"

namespace droppkt::alert {

enum class WindowKind {
  /// Exponential decay: an observation's weight halves every half_life_s.
  /// O(1) state per location; old evidence fades smoothly.
  kDecay,
  /// Hard sliding window: observations older than window_s vanish.
  /// O(events-in-window) state per location; old evidence drops sharply.
  kSliding,
};

struct DetectorConfig {
  WindowKind window = WindowKind::kDecay;
  /// Decay mode: time for an observation's weight to halve.
  double half_life_s = 300.0;
  /// Sliding mode: observations older than this are discarded.
  double window_s = 600.0;
  /// Degraded when the Wilson lower bound of the windowed low-QoE rate
  /// exceeds this (same semantics as core::AggregatorConfig::alert_rate).
  double alert_rate = 0.5;
  double z = 1.96;  // ~95% interval
  /// Locations with fewer effective sessions than this in the window are
  /// never degraded — the windowed analogue of min_sessions.
  double min_effective_sessions = 8.0;
};

/// A location's windowed state at some evaluation time.
struct LocationWindow {
  double effective_sessions = 0.0;  // decayed/windowed trial count
  double effective_low = 0.0;       // decayed/windowed low-QoE count
  core::Interval interval;          // Wilson interval over the above
  bool degraded = false;
};

/// Sliding/decaying per-location low-QoE rate tracking with a credibility
/// gate. Single-threaded: the alert pipeline drives it from behind one
/// mutex, in deterministic event order, which makes every float in here
/// reproducible bit-for-bit.
///
/// Event times must be fed non-decreasing per location (the pipeline's
/// watermark merge guarantees a globally non-decreasing order).
class LocationDetector {
 public:
  explicit LocationDetector(DetectorConfig config = {});

  /// Record one verdict for a location: a session currently believed to be
  /// low QoE (or not) as of `time_s`.
  void observe(const std::string& location, double time_s, bool low_qoe);

  /// Remove a previously observed verdict whose evidence was recorded at
  /// `evidence_time_s`, as of `time_s` (>= evidence_time_s). Decay mode
  /// subtracts the decayed weight; sliding mode erases the matching event
  /// if it has not already expired. A retraction of evidence that has
  /// fully aged out is a no-op.
  void retract(const std::string& location, double time_s,
               double evidence_time_s, bool low_qoe);

  /// The location's windowed counts, interval, and degraded verdict as of
  /// `time_s` (>= every previously fed event time for that location).
  /// Unseen locations report zero evidence, a vacuous (0,1) interval, and
  /// degraded = false. Const: evaluation never mutates stored state, so
  /// evaluating at time t then feeding an event at t is well-defined.
  LocationWindow window(const std::string& location, double time_s) const;

  /// Locations currently degraded as of `time_s`, worst (highest lower
  /// bound) first; ties broken by effective sessions desc, then name asc,
  /// so the order is total and stable run-to-run.
  std::vector<std::pair<std::string, LocationWindow>> degraded(
      double time_s) const;

  /// Every tracked location's window as of `time_s`, in name order — the
  /// sweep input for lifecycle evaluation (clears must fire for locations
  /// that stopped producing events, which degraded() would hide).
  /// Equivalent to snapshot_at(time_s).
  std::vector<std::pair<std::string, LocationWindow>> snapshot(
      double time_s) const;

  /// Every tracked location's window evaluated at `time_s`, which may lie
  /// in the FUTURE of the last fed event: evaluation is a const pure
  /// function of the stored evidence (decay / window expiry applied at
  /// evaluation time, never mutating state), so projecting forward answers
  /// "what will this location's window look like at t if no further
  /// verdicts arrive" — the eviction-aware sweep the ROADMAP alerting
  /// follow-ons asked for, and the basis of the dashboard horizon curves.
  std::vector<std::pair<std::string, LocationWindow>> snapshot_at(
      double time_s) const;

  /// One location's projected window at `steps` evenly spaced times across
  /// [from_s, from_s + horizon_s] (inclusive endpoints; steps >= 2): the
  /// horizon curve a dashboard renders to show how fast a degraded
  /// location's evidence decays toward its clear threshold. Unseen
  /// locations yield all-zero windows.
  std::vector<LocationWindow> horizon_curve(const std::string& location,
                                            double from_s, double horizon_s,
                                            std::size_t steps) const;

  const DetectorConfig& config() const { return config_; }
  std::size_t tracked_locations() const { return locations_.size(); }

  /// Drop locations whose windowed evidence has decayed/expired below
  /// `min_weight` as of `time_s` — the eviction hook that bounds state on
  /// long feeds. Locations for which `keep` returns true survive
  /// regardless (the pipeline pins locations with an open alert, whose
  /// lifecycle still needs sweep evaluations). Returns the number of
  /// locations dropped.
  std::size_t evict_stale(double time_s, double min_weight = 1e-6,
                          const std::function<bool(const std::string&)>& keep =
                              {});

 private:
  struct SlidingEvent {
    double time_s = 0.0;
    bool low = false;
  };
  struct State {
    // Decay mode: counts decayed to `as_of_s`.
    double sessions = 0.0;
    double low = 0.0;
    double as_of_s = 0.0;
    // Sliding mode: in-window events, oldest first.
    std::deque<SlidingEvent> events;
  };

  double decay_factor(double dt_s) const;
  /// Decay `st` in place up to `time_s` (decay mode) or expire events
  /// older than the window (sliding mode).
  void roll_forward(State& st, double time_s) const;
  LocationWindow evaluate(const State& st, double time_s) const;

  DetectorConfig config_;
  // Ordered map: degraded() iterates it, and a deterministic iteration
  // order is part of the bit-identical-alert-sequence contract.
  std::map<std::string, State> locations_;
};

}  // namespace droppkt::alert
