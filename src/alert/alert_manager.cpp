#include "alert/alert_manager.hpp"

#include "util/expect.hpp"

namespace droppkt::alert {

namespace {

void validate(const AlertThresholds& t, const char* what) {
  DROPPKT_EXPECT(t.raise_rate > 0.0 && t.raise_rate < 1.0,
                 std::string("AlertManager: ") + what +
                     ": raise_rate must be in (0,1)");
  DROPPKT_EXPECT(t.clear_rate >= 0.0 && t.clear_rate <= t.raise_rate,
                 std::string("AlertManager: ") + what +
                     ": clear_rate must be in [0, raise_rate]");
  DROPPKT_EXPECT(t.clear_cooldown_s >= 0.0,
                 std::string("AlertManager: ") + what +
                     ": clear_cooldown_s must be >= 0");
}

}  // namespace

AlertManager::AlertManager(ManagerConfig config)
    : config_(std::move(config)) {
  validate(config_.defaults, "defaults");
  for (const auto& [svc, t] : config_.per_service) validate(t, svc.c_str());
  DROPPKT_EXPECT(config_.max_log >= 1, "AlertManager: max_log must be >= 1");
}

const AlertThresholds& AlertManager::thresholds_for(
    std::string_view location) const {
  if (config_.service_of) {
    const auto it = config_.per_service.find(config_.service_of(location));
    if (it != config_.per_service.end()) return it->second;
  }
  return config_.defaults;
}

const AlertEvent* AlertManager::append(AlertEvent::Kind kind,
                                       const std::string& location,
                                       const LocationWindow& window,
                                       double time_s) {
  AlertEvent ev;
  ev.id = next_id_++;
  ev.kind = kind;
  ev.location = location;
  ev.time_s = time_s;
  ev.rate_low = window.interval.low;
  ev.rate_high = window.interval.high;
  ev.effective_sessions = window.effective_sessions;
  log_.push_back(std::move(ev));
  while (log_.size() > config_.max_log) log_.pop_front();
  return &log_.back();
}

const AlertEvent* AlertManager::update(const std::string& location,
                                       const LocationWindow& window,
                                       double time_s) {
  DROPPKT_EXPECT(!location.empty(),
                 "AlertManager: location must be non-empty");
  const AlertThresholds& t = thresholds_for(location);
  State& st = states_[location];

  // `degraded` already folds in the detector's evidence floor; the
  // manager re-tests the rate against its own (possibly per-service)
  // raise threshold so services can be stricter or laxer than the
  // detector-wide default.
  const bool raise_now =
      window.degraded && window.interval.low > t.raise_rate;

  if (!st.raised) {
    if (raise_now) {
      st.raised = true;
      st.healthy_since_s = -1.0;
      ++open_;
      ++total_raised_;
      return append(AlertEvent::Kind::kRaised, location, window, time_s);
    }
    return nullptr;
  }

  // Raised: decide between staying raised, starting/continuing the clear
  // cooldown, or clearing.
  const bool healthy = window.interval.low <= t.clear_rate;
  if (!healthy) {
    st.healthy_since_s = -1.0;  // still (or again) degraded; reset cooldown
    return nullptr;
  }
  if (st.healthy_since_s < 0.0) st.healthy_since_s = time_s;
  if (time_s - st.healthy_since_s >= t.clear_cooldown_s) {
    st.raised = false;
    st.healthy_since_s = -1.0;
    --open_;
    ++total_cleared_;
    return append(AlertEvent::Kind::kCleared, location, window, time_s);
  }
  return nullptr;
}

bool AlertManager::is_raised(const std::string& location) const {
  const auto it = states_.find(location);
  return it != states_.end() && it->second.raised;
}

}  // namespace droppkt::alert
