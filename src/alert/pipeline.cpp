#include "alert/pipeline.hpp"

#include <algorithm>
#include <limits>

#include "util/expect.hpp"

namespace droppkt::alert {

namespace {

constexpr double kNeverSeen = -std::numeric_limits<double>::infinity();

/// The total merge order: time, then client (distinct clients never need a
/// further tie-break; one client's transitions keep their lane order via
/// stable sort, because a client lives on exactly one shard).
bool merge_before(const VerdictTransition& a, const VerdictTransition& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  return a.client < b.client;
}

}  // namespace

std::string default_location_of(std::string_view client) {
  const auto slash = client.find('/');
  if (slash == std::string_view::npos) return std::string(client);
  return std::string(client.substr(0, slash));
}

AlertPipeline::AlertPipeline(AlertPipelineConfig config)
    : config_(std::move(config)),
      detector_(config_.detector),
      manager_(config_.manager) {
  if (!config_.location_of) config_.location_of = default_location_of;
}

AlertPipeline::~AlertPipeline() = default;

void AlertPipeline::bind(std::size_t num_shards) {
  DROPPKT_EXPECT(num_shards >= 1, "AlertPipeline: need at least one shard");
  DROPPKT_EXPECT(filters_.empty(),
                 "AlertPipeline: bind() must be called exactly once "
                 "(use a fresh pipeline per engine)");
  filters_.assign(num_shards, SessionAlertFilter(config_.filter));
  const util::MutexLock lock(mutex_);
  lane_buffers_.resize(num_shards);
  for (auto& lane : lane_buffers_) lane.watermark_s = kNeverSeen;
  merged_up_to_s_ = kNeverSeen;
}

void AlertPipeline::bind_telemetry(telemetry::MetricRegistry& registry) {
  const util::MutexLock lock(mutex_);
  DROPPKT_EXPECT(transitions_ctr_->value() == 0 && manager_.total_raised() == 0,
                 "AlertPipeline: telemetry must be bound before any event");
  transitions_ctr_ = &registry.counter("alert.transitions");
  suppressed_ctr_ = &registry.counter("alert.suppressed");
  raised_ctr_ = &registry.counter("alert.raised");
  cleared_ctr_ = &registry.counter("alert.cleared");
  locations_evicted_ctr_ = &registry.counter("alert.locations_evicted");
  open_alerts_gauge_ = &registry.gauge("alert.open_alerts");
  tracked_locations_gauge_ = &registry.gauge("alert.tracked_locations");
}

void AlertPipeline::note_update(const AlertEvent* event) {
  if (event == nullptr) return;
  if (event->kind == AlertEvent::Kind::kRaised) {
    raised_ctr_->inc();
  } else {
    cleared_ctr_->inc();
  }
}

void AlertPipeline::enqueue(std::size_t shard, VerdictTransition t,
                            bool at_close) {
  transitions_ctr_->inc();
  Pending p;
  p.location = config_.location_of(t.client);
  p.transition = std::move(t);
  const util::MutexLock lock(mutex_);
  LaneBuffers& lane = lane_buffers_[shard];
  (at_close ? lane.at_close : lane.buffer).push_back(std::move(p));
}

void AlertPipeline::on_provisional(std::size_t shard,
                                   const core::ProvisionalEstimate& estimate) {
  DROPPKT_EXPECT(shard < filters_.size(), "AlertPipeline: shard out of range");
  // The filter is lane-local state touched only by the shard's own worker;
  // no lock until a transition survives hysteresis.
  FilterOutcome out = filters_[shard].on_provisional(estimate);
  if (out.suppressed) suppressed_ctr_->inc();
  if (out.transition) {
    enqueue(shard, std::move(*out.transition), /*at_close=*/false);
  }
}

void AlertPipeline::on_session(std::size_t shard,
                               const core::MonitoredSessionView& session,
                               bool at_close) {
  DROPPKT_EXPECT(shard < filters_.size(), "AlertPipeline: shard out of range");
  VerdictTransition t = filters_[shard].on_session(
      session.client, session.predicted_class, session.confidence,
      session.detected_s);
  enqueue(shard, std::move(t), at_close);
}

void AlertPipeline::on_watermark(std::size_t shard, double watermark_s) {
  DROPPKT_EXPECT(shard < filters_.size(), "AlertPipeline: shard out of range");
  const util::MutexLock lock(mutex_);
  lane_buffers_[shard].watermark_s = watermark_s;
  // Every lane receives the same broadcast sequence; recording shard 0's
  // arrivals records it exactly once, in order.
  if (shard == 0) pending_sweeps_.push_back(watermark_s);
  double min_w = lane_buffers_[0].watermark_s;
  for (const auto& lane : lane_buffers_) {
    min_w = std::min(min_w, lane.watermark_s);
  }
  if (min_w > merged_up_to_s_) merge_and_apply(min_w);
}

void AlertPipeline::merge_and_apply(double up_to_s) {
  // Every transition with time < up_to_s is already buffered: each lane
  // has acknowledged a watermark >= up_to_s, and a shard's later events
  // carry times at or after its acknowledged watermark.
  std::vector<Pending> batch;
  for (auto& lane : lane_buffers_) {
    auto& buf = lane.buffer;
    auto split = buf.begin();
    while (split != buf.end() && split->transition.time_s < up_to_s) ++split;
    batch.insert(batch.end(), std::make_move_iterator(buf.begin()),
                 std::make_move_iterator(split));
    buf.erase(buf.begin(), split);
  }
  apply_batch(std::move(batch), up_to_s);
}

void AlertPipeline::apply_batch(std::vector<Pending> batch, double up_to_s) {
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Pending& a, const Pending& b) {
                     return merge_before(a.transition, b.transition);
                   });
  // Interleave lifecycle sweeps at the broadcast watermark instants so a
  // cooldown clear fires at the same (shard-count-independent) time no
  // matter how releases batched up.
  auto next = batch.begin();
  while (!pending_sweeps_.empty() && pending_sweeps_.front() <= up_to_s) {
    const double sweep_s = pending_sweeps_.front();
    pending_sweeps_.pop_front();
    while (next != batch.end() && next->transition.time_s < sweep_s) {
      apply_transition(*next);
      ++next;
    }
    sweep(sweep_s);
  }
  for (; next != batch.end(); ++next) apply_transition(*next);
  merged_up_to_s_ = std::max(merged_up_to_s_, up_to_s);
  open_alerts_gauge_->set(manager_.open_alerts());
  tracked_locations_gauge_->set(detector_.tracked_locations());
}

void AlertPipeline::apply_transition(const Pending& p) {
  const VerdictTransition& t = p.transition;
  if (config_.on_transition) config_.on_transition(t, p.location);
  if (t.from_class != kNoVerdict) {
    detector_.retract(p.location, t.time_s, t.prev_time_s,
                      /*low_qoe=*/t.from_class == 0);
  }
  detector_.observe(p.location, t.time_s, /*low_qoe=*/t.to_class == 0);
  note_update(manager_.update(p.location,
                              detector_.window(p.location, t.time_s),
                              t.time_s));
}

void AlertPipeline::sweep(double time_s) {
  for (const auto& [location, window] : detector_.snapshot(time_s)) {
    note_update(manager_.update(location, window, time_s));
  }
  if (config_.evict_below_weight > 0.0) {
    // The keep-predicate runs synchronously inside evict_stale while the
    // caller holds mutex_; aliasing the guarded member through a local
    // reference keeps the lambda's body checkable (thread-safety analysis
    // examines lambdas without the enclosing REQUIRES context).
    AlertManager& mgr = manager_;
    locations_evicted_ctr_->add(detector_.evict_stale(
        time_s, config_.evict_below_weight,
        [&mgr](const std::string& loc) { return mgr.is_raised(loc); }));
  }
}

void AlertPipeline::on_finish() {
  const util::MutexLock lock(mutex_);
  if (finished_) return;
  finished_ = true;
  // Tail flush: everything still buffered, plus the engine-shutdown
  // sessions that had no watermark position. Concatenating buffer before
  // at_close per lane keeps each client's internal order (a client's
  // at_close verdict never precedes its buffered transitions in time).
  std::vector<Pending> batch;
  for (auto& lane : lane_buffers_) {
    batch.insert(batch.end(),
                 std::make_move_iterator(lane.buffer.begin()),
                 std::make_move_iterator(lane.buffer.end()));
    lane.buffer.clear();
    batch.insert(batch.end(),
                 std::make_move_iterator(lane.at_close.begin()),
                 std::make_move_iterator(lane.at_close.end()));
    lane.at_close.clear();
  }
  // Close at the latest instant any buffered evidence or pending sweep
  // refers to — a FINITE time, covering everything left (so the drain is
  // total, exactly as an infinite bound would be) while keeping
  // merged_up_to_s_ usable as the evaluation time for post-shutdown
  // location snapshots (at +inf every window decays to vacuous).
  double up_to_s = merged_up_to_s_;
  for (const Pending& p : batch) {
    up_to_s = std::max(up_to_s, p.transition.time_s);
  }
  if (!pending_sweeps_.empty()) {
    up_to_s = std::max(up_to_s, pending_sweeps_.back());
  }
  apply_batch(std::move(batch), up_to_s);
}

engine::AlertCounts AlertPipeline::counts() const {
  // Every field is a relaxed-atomic telemetry counter now (raise/clear
  // are counted where manager_.update reports them), so a stats snapshot
  // no longer contends with the merge mutex.
  engine::AlertCounts c;
  c.transitions = transitions_ctr_->value();
  c.suppressed = suppressed_ctr_->value();
  c.alerts_raised = raised_ctr_->value();
  c.alerts_cleared = cleared_ctr_->value();
  return c;
}

std::vector<AlertEvent> AlertPipeline::log_snapshot() const {
  const util::MutexLock lock(mutex_);
  return {manager_.log().begin(), manager_.log().end()};
}

std::size_t AlertPipeline::open_alerts() const {
  const util::MutexLock lock(mutex_);
  return manager_.open_alerts();
}

std::size_t AlertPipeline::tracked_locations() const {
  const util::MutexLock lock(mutex_);
  return detector_.tracked_locations();
}

std::size_t AlertPipeline::locations_evicted() const {
  return static_cast<std::size_t>(locations_evicted_ctr_->value());
}

double AlertPipeline::merged_up_to_s() const {
  const util::MutexLock lock(mutex_);
  return merged_up_to_s_;
}

std::vector<std::pair<std::string, LocationWindow>>
AlertPipeline::location_snapshot() const {
  const util::MutexLock lock(mutex_);
  return detector_.snapshot_at(merged_up_to_s_);
}

std::vector<LocationWindow> AlertPipeline::location_horizon(
    const std::string& location, double horizon_s, std::size_t steps) const {
  const util::MutexLock lock(mutex_);
  return detector_.horizon_curve(location, merged_up_to_s_, horizon_s, steps);
}

}  // namespace droppkt::alert
