#include "alert/location_detector.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::alert {

LocationDetector::LocationDetector(DetectorConfig config) : config_(config) {
  DROPPKT_EXPECT(config_.half_life_s > 0.0,
                 "LocationDetector: half_life_s must be positive");
  DROPPKT_EXPECT(config_.window_s > 0.0,
                 "LocationDetector: window_s must be positive");
  DROPPKT_EXPECT(config_.alert_rate > 0.0 && config_.alert_rate < 1.0,
                 "LocationDetector: alert_rate must be in (0,1)");
  DROPPKT_EXPECT(config_.z > 0.0, "LocationDetector: z must be positive");
  DROPPKT_EXPECT(config_.min_effective_sessions >= 0.0,
                 "LocationDetector: min_effective_sessions must be >= 0");
}

double LocationDetector::decay_factor(double dt_s) const {
  if (dt_s <= 0.0) return 1.0;
  return std::exp2(-dt_s / config_.half_life_s);
}

void LocationDetector::roll_forward(State& st, double time_s) const {
  if (config_.window == WindowKind::kDecay) {
    // Tolerate a stale event time (engine-shutdown flushes can surface
    // sessions slightly behind the merge frontier): never roll backward.
    if (time_s > st.as_of_s) {
      const double f = decay_factor(time_s - st.as_of_s);
      st.sessions *= f;
      st.low *= f;
      st.as_of_s = time_s;
    }
  } else {
    const double cutoff = time_s - config_.window_s;
    while (!st.events.empty() && st.events.front().time_s <= cutoff) {
      st.events.pop_front();
    }
  }
}

void LocationDetector::observe(const std::string& location, double time_s,
                               bool low_qoe) {
  DROPPKT_EXPECT(!location.empty(),
                 "LocationDetector: location must be non-empty");
  State& st = locations_[location];
  roll_forward(st, time_s);
  if (config_.window == WindowKind::kDecay) {
    st.sessions += 1.0;
    if (low_qoe) st.low += 1.0;
  } else {
    st.events.push_back({time_s, low_qoe});
  }
}

void LocationDetector::retract(const std::string& location, double time_s,
                               double evidence_time_s, bool low_qoe) {
  DROPPKT_EXPECT(evidence_time_s <= time_s,
                 "LocationDetector: retraction cannot precede its evidence");
  const auto it = locations_.find(location);
  if (it == locations_.end()) return;
  State& st = it->second;
  roll_forward(st, time_s);
  if (config_.window == WindowKind::kDecay) {
    const double w = decay_factor(time_s - evidence_time_s);
    // Clamp at zero: retraction weight is computed independently of the
    // accumulated product of per-event factors, so the last retraction of
    // a location's evidence can undershoot by an ulp or two.
    st.sessions = std::max(0.0, st.sessions - w);
    if (low_qoe) st.low = std::max(0.0, st.low - w);
    st.low = std::min(st.low, st.sessions);
  } else {
    for (auto ev = st.events.begin(); ev != st.events.end(); ++ev) {
      if (ev->time_s == evidence_time_s && ev->low == low_qoe) {
        st.events.erase(ev);
        break;
      }
    }
  }
}

LocationWindow LocationDetector::evaluate(const State& st,
                                          double time_s) const {
  LocationWindow out;
  if (config_.window == WindowKind::kDecay) {
    const double f = decay_factor(time_s - st.as_of_s);
    out.effective_sessions = st.sessions * f;
    out.effective_low = st.low * f;
  } else {
    const double cutoff = time_s - config_.window_s;
    for (const auto& ev : st.events) {
      if (ev.time_s <= cutoff) continue;
      out.effective_sessions += 1.0;
      if (ev.low) out.effective_low += 1.0;
    }
  }
  out.interval = core::wilson_interval_real(out.effective_low,
                                            out.effective_sessions, config_.z);
  out.degraded = out.effective_sessions >= config_.min_effective_sessions &&
                 out.interval.low > config_.alert_rate;
  return out;
}

LocationWindow LocationDetector::window(const std::string& location,
                                        double time_s) const {
  const auto it = locations_.find(location);
  if (it == locations_.end()) return {};
  return evaluate(it->second, time_s);
}

std::vector<std::pair<std::string, LocationWindow>> LocationDetector::degraded(
    double time_s) const {
  std::vector<std::pair<std::string, LocationWindow>> out;
  for (const auto& [name, st] : locations_) {
    auto w = evaluate(st, time_s);
    if (w.degraded) out.emplace_back(name, w);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.interval.low != b.second.interval.low) {
      return a.second.interval.low > b.second.interval.low;
    }
    if (a.second.effective_sessions != b.second.effective_sessions) {
      return a.second.effective_sessions > b.second.effective_sessions;
    }
    return a.first < b.first;
  });
  return out;
}

std::vector<std::pair<std::string, LocationWindow>> LocationDetector::snapshot(
    double time_s) const {
  return snapshot_at(time_s);
}

std::vector<std::pair<std::string, LocationWindow>>
LocationDetector::snapshot_at(double time_s) const {
  std::vector<std::pair<std::string, LocationWindow>> out;
  out.reserve(locations_.size());
  for (const auto& [name, st] : locations_) {
    out.emplace_back(name, evaluate(st, time_s));
  }
  return out;
}

std::vector<LocationWindow> LocationDetector::horizon_curve(
    const std::string& location, double from_s, double horizon_s,
    std::size_t steps) const {
  DROPPKT_EXPECT(steps >= 2, "horizon_curve: need at least two steps");
  DROPPKT_EXPECT(horizon_s >= 0.0, "horizon_curve: horizon must be >= 0");
  std::vector<LocationWindow> out;
  out.reserve(steps);
  const auto it = locations_.find(location);
  for (std::size_t i = 0; i < steps; ++i) {
    const double t =
        from_s + horizon_s * static_cast<double>(i) /
                     static_cast<double>(steps - 1);
    if (it == locations_.end()) {
      out.push_back(LocationWindow{});
    } else {
      out.push_back(evaluate(it->second, t));
    }
  }
  return out;
}

std::size_t LocationDetector::evict_stale(
    double time_s, double min_weight,
    const std::function<bool(const std::string&)>& keep) {
  std::size_t dropped = 0;
  for (auto it = locations_.begin(); it != locations_.end();) {
    const auto w = evaluate(it->second, time_s);
    if (w.effective_sessions < min_weight && !(keep && keep(it->first))) {
      it = locations_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace droppkt::alert
