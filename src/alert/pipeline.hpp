// AlertPipeline: the engine-facing assembly of the alerting subsystem —
// hysteresis filter -> windowed location detector -> alert lifecycle —
// implementing engine::AlertSink.
//
// The hard requirement is determinism: for a fixed feed and config, the
// alert event sequence (ids, locations, times, evidence — every float)
// must be bit-identical whether the engine runs 1 shard or 16. Shard
// workers call in concurrently and in nondeterministic relative order, so
// the pipeline is split into two stages:
//
//   Shard lanes (lock-free w.r.t. each other): each shard owns a
//   SessionAlertFilter — hysteresis is per-client state, and a client's
//   estimates all arrive on its one owning shard in deterministic order —
//   plus a buffer of the stable-verdict transitions that survive it.
//   A lane's buffer is ordered by transition time (feed order).
//
//   Watermark merge (one mutex): the engine broadcasts every low-watermark
//   value to every shard. Once all lanes have acknowledged watermark W,
//   every transition with time < W is already buffered (a shard cannot
//   later produce one: its records beyond its acknowledged watermark start
//   at or after it). The pipeline drains those prefixes, orders them by
//   (time, client) — total, because one client's transitions keep their
//   lane order and distinct clients never tie further — and feeds the
//   detector and manager. Periodic evaluation sweeps run at the broadcast
//   watermark values themselves (interleaved into the same time order),
//   NOT at drain time, so cooldown clears fire at shard-count-independent
//   instants.
//
// Release boundaries may batch differently across shard counts (a slow
// lane can hold the minimum back through several watermarks), but batches
// partition the same time-ordered sequence, so the concatenation — and
// therefore every detector float and every alert id — is identical.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "alert/alert_manager.hpp"
#include "alert/location_detector.hpp"
#include "alert/session_filter.hpp"
#include "engine/alert_sink.hpp"
#include "telemetry/registry.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace droppkt::alert {

struct AlertPipelineConfig {
  SessionFilterConfig filter;
  DetectorConfig detector;
  ManagerConfig manager;
  /// Maps a client id to its network location (cell, CMTS port, OLT...).
  /// Default: the prefix before the first '/', or the whole client id —
  /// matching the "location/subscriber" naming the feed builders use.
  std::function<std::string(std::string_view client)> location_of;
  /// Optional tap on the deterministic merged transition stream (called
  /// under the pipeline mutex, in the exact order the detector sees).
  /// `location` is the resolved location of the transition's client.
  std::function<void(const VerdictTransition&, const std::string& location)>
      on_transition;
  /// Bound detector state on long feeds: at every lifecycle sweep, evict
  /// locations whose windowed evidence has decayed/expired below this
  /// weight (0 = never evict, the default). Locations with an open alert
  /// are always kept — their cooldown clear still needs sweep
  /// evaluations. Eviction runs at the broadcast watermark instants on
  /// the merged deterministic stream, so which locations drop — and every
  /// float after they re-appear — is still shard-count-independent.
  double evict_below_weight = 0.0;
};

/// Everything-by-default location mapping: "cell-3/sub-17" -> "cell-3".
std::string default_location_of(std::string_view client);

class AlertPipeline final : public engine::AlertSink {
 public:
  explicit AlertPipeline(AlertPipelineConfig config = {});
  ~AlertPipeline() override;

  // engine::AlertSink (see its header for the threading contract).
  void bind(std::size_t num_shards) override;
  /// Registers "alert.*" counters/gauges in the registry and reports
  /// through them from then on; must run before any event (the engine
  /// calls it right after bind()).
  void bind_telemetry(telemetry::MetricRegistry& registry) override;
  void on_provisional(std::size_t shard,
                      const core::ProvisionalEstimate& estimate) override;
  void on_session(std::size_t shard,
                  const core::MonitoredSessionView& session,
                  bool at_close) override;
  void on_watermark(std::size_t shard, double watermark_s) override;
  void on_finish() override;
  engine::AlertCounts counts() const override;

  /// Copy of the alert log (bounded, oldest first). Safe to call while the
  /// engine runs; the deterministic full sequence is only guaranteed after
  /// on_finish().
  std::vector<AlertEvent> log_snapshot() const;

  /// Alerts currently open. Like log_snapshot(), settles after on_finish().
  std::size_t open_alerts() const;

  /// Locations the detector currently tracks (bounded by stale eviction
  /// when evict_below_weight > 0).
  std::size_t tracked_locations() const;

  /// Locations stale-evicted so far (0 unless evict_below_weight > 0).
  std::size_t locations_evicted() const;

  /// Feed time the deterministic merge has reached (-inf before the first
  /// complete watermark round).
  double merged_up_to_s() const;

  /// Every tracked location's window projected at the merged watermark —
  /// the dashboard's per-location table (LocationDetector::snapshot_at on
  /// the deterministic merged state).
  std::vector<std::pair<std::string, LocationWindow>> location_snapshot()
      const;

  /// One location's horizon curve from the merged watermark forward (see
  /// LocationDetector::horizon_curve).
  std::vector<LocationWindow> location_horizon(const std::string& location,
                                               double horizon_s,
                                               std::size_t steps) const;

 private:
  struct Pending {
    VerdictTransition transition;
    std::string location;
  };
  /// The merge-visible half of a shard lane. Kept in a pipeline-owned
  /// vector (rather than inside a per-lane struct next to the filter) so
  /// the whole thing carries one DROPPKT_GUARDED_BY(mutex_) the compiler
  /// can enforce; the hysteresis filters stay outside the mutex because
  /// each is touched only by its shard's own worker.
  struct LaneBuffers {
    /// Transitions not yet merged, time-ordered (feed order per shard);
    /// appended by the owning shard, drained by merges.
    std::vector<Pending> buffer;
    /// Force-flushed (engine shutdown) sessions: no watermark position,
    /// surfaced only at on_finish.
    std::vector<Pending> at_close;
    double watermark_s = -1.0;
  };

  void enqueue(std::size_t shard, VerdictTransition t, bool at_close)
      DROPPKT_EXCLUDES(mutex_);
  /// Drain every lane's < up_to_s prefix, merge, and apply.
  void merge_and_apply(double up_to_s) DROPPKT_REQUIRES(mutex_);
  /// Apply one merged batch (already ordered) interleaved with pending
  /// sweeps up to `up_to_s`.
  void apply_batch(std::vector<Pending> batch, double up_to_s)
      DROPPKT_REQUIRES(mutex_);
  void apply_transition(const Pending& p) DROPPKT_REQUIRES(mutex_);
  /// Re-evaluate every tracked location at `time_s` (cooldown clears for
  /// locations with no fresh events).
  void sweep(double time_s) DROPPKT_REQUIRES(mutex_);
  /// Count a manager update's outcome (raise/clear) into the telemetry
  /// counters; nullptr (no transition) is a no-op.
  void note_update(const AlertEvent* event);

  AlertPipelineConfig config_;
  /// Per-shard hysteresis state, indexed by shard; filters_[i] is touched
  /// only by shard i's worker thread (the engine serializes calls per
  /// shard), so it needs no capability. Sized once in bind().
  std::vector<SessionAlertFilter> filters_;

  mutable util::Mutex mutex_;
  std::vector<LaneBuffers> lane_buffers_ DROPPKT_GUARDED_BY(mutex_);
  LocationDetector detector_ DROPPKT_GUARDED_BY(mutex_);
  AlertManager manager_ DROPPKT_GUARDED_BY(mutex_);
  /// Broadcast watermark values not yet swept, in broadcast order (every
  /// lane sees the same sequence; lane 0's arrivals define it — with one
  /// shard that is trivially the broadcast order, with N shards it is the
  /// same values in the same order).
  std::deque<double> pending_sweeps_ DROPPKT_GUARDED_BY(mutex_);
  double merged_up_to_s_ DROPPKT_GUARDED_BY(mutex_) = -1.0;
  bool finished_ DROPPKT_GUARDED_BY(mutex_) = false;

  // Telemetry: standalone pipelines count into their own instruments;
  // bind_telemetry() repoints these at registry-backed ones so the alert
  // layer shares the engine's metrics plane. The counters are relaxed
  // atomics and need no mutex; the gauges are refreshed at the end of
  // each merged batch (under the mutex that guards their sources).
  telemetry::Counter own_transitions_;
  telemetry::Counter own_suppressed_;
  telemetry::Counter own_raised_;
  telemetry::Counter own_cleared_;
  telemetry::Counter own_locations_evicted_;
  telemetry::Gauge own_open_alerts_;
  telemetry::Gauge own_tracked_locations_;
  telemetry::Counter* transitions_ctr_ = &own_transitions_;
  telemetry::Counter* suppressed_ctr_ = &own_suppressed_;
  telemetry::Counter* raised_ctr_ = &own_raised_;
  telemetry::Counter* cleared_ctr_ = &own_cleared_;
  telemetry::Counter* locations_evicted_ctr_ = &own_locations_evicted_;
  telemetry::Gauge* open_alerts_gauge_ = &own_open_alerts_;
  telemetry::Gauge* tracked_locations_gauge_ = &own_tracked_locations_;
};

}  // namespace droppkt::alert
