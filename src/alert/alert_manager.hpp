// Alert lifecycle — the operator-facing stage of the alerting pipeline.
//
// The detector answers "is this location credibly degraded right now";
// the manager turns that instantaneous predicate into incidents an
// operator can act on: a raise/clear state machine per location with
// asymmetric thresholds (clear below a lower rate than raise, so the
// boundary doesn't chatter), a clear cooldown (the location must look
// healthy continuously for cooldown_s before the incident closes), and a
// bounded append-only log of raise/clear events for sinks to read.
//
// Thresholds can differ per service class: a premium live-sports service
// may warrant raising at a 30% low-QoE rate while a background-download
// heavy one tolerates 60%. The manager maps a location to its service via
// a caller-provided classifier over the location name.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "alert/location_detector.hpp"

namespace droppkt::alert {

/// Raise/clear decision thresholds for one service class.
struct AlertThresholds {
  /// Raise when the Wilson lower bound of the windowed low-QoE rate
  /// exceeds this (and effective sessions meet the detector's floor).
  double raise_rate = 0.5;
  /// An open alert starts clearing only once the lower bound falls to or
  /// below this. Must be <= raise_rate; the gap is the flap margin.
  double clear_rate = 0.35;
  /// The location must look healthy (lower bound <= clear_rate, or
  /// evidence below the floor) continuously this long before the alert
  /// clears. 0 clears on the first healthy evaluation.
  double clear_cooldown_s = 300.0;
};

struct ManagerConfig {
  AlertThresholds defaults;
  /// Overrides keyed by service name; a location resolves to a service via
  /// service_of. Locations whose service has no entry use `defaults`.
  std::map<std::string, AlertThresholds> per_service;
  /// Maps a location to its service-class name (e.g. parse a "svc2:cell-7"
  /// prefix). Unset: every location uses `defaults`.
  std::function<std::string(std::string_view location)> service_of;
  /// Maximum retained log entries; the oldest are dropped beyond this.
  std::size_t max_log = 4096;
};

struct AlertEvent {
  enum class Kind : std::uint8_t { kRaised, kCleared };
  std::uint64_t id = 0;  // monotone across the run, never reused
  Kind kind = Kind::kRaised;
  std::string location;
  double time_s = 0.0;
  /// Windowed evidence at the transition: the rate interval and effective
  /// sample size that justified it.
  double rate_low = 0.0;   // Wilson lower bound
  double rate_high = 0.0;  // Wilson upper bound
  double effective_sessions = 0.0;
};

/// Per-location incident state machine over detector evaluations.
/// Single-threaded, like the detector: driven in deterministic event order
/// from behind the pipeline's mutex.
class AlertManager {
 public:
  explicit AlertManager(ManagerConfig config = {});

  /// Evaluate one location at `time_s` given its current windowed
  /// evidence. Returns the event if this evaluation raised or cleared an
  /// alert, nullptr otherwise (the pointer aliases the log; valid until
  /// the next update). Evaluation times must be non-decreasing.
  const AlertEvent* update(const std::string& location,
                           const LocationWindow& window, double time_s);

  bool is_raised(const std::string& location) const;
  std::size_t open_alerts() const { return open_; }
  std::uint64_t total_raised() const { return total_raised_; }
  std::uint64_t total_cleared() const { return total_cleared_; }

  /// The bounded append-only event log, oldest first. Entries beyond
  /// config.max_log have been dropped from the front; ids reveal the gap.
  const std::deque<AlertEvent>& log() const { return log_; }

  /// Thresholds a location resolves to (service override or defaults).
  const AlertThresholds& thresholds_for(std::string_view location) const;

 private:
  struct State {
    bool raised = false;
    /// Time the location first looked healthy while raised; reset on any
    /// degraded evaluation. Negative: not currently clearing.
    double healthy_since_s = -1.0;
  };

  const AlertEvent* append(AlertEvent::Kind kind, const std::string& location,
                           const LocationWindow& window, double time_s);

  ManagerConfig config_;
  // Ordered for the same reason as the detector's map: iteration order is
  // observable through sweeps and must not depend on hash layout.
  std::map<std::string, State> states_;
  std::deque<AlertEvent> log_;
  std::size_t open_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t total_raised_ = 0;
  std::uint64_t total_cleared_ = 0;
};

}  // namespace droppkt::alert
