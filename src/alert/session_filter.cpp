#include "alert/session_filter.hpp"

#include "util/expect.hpp"

namespace droppkt::alert {

SessionAlertFilter::SessionAlertFilter(SessionFilterConfig config)
    : config_(config) {
  DROPPKT_EXPECT(config_.hysteresis_k >= 1,
                 "SessionAlertFilter: hysteresis_k must be >= 1");
  DROPPKT_EXPECT(config_.min_confidence >= 0.0 && config_.min_confidence <= 1.0,
                 "SessionAlertFilter: min_confidence must be in [0,1]");
}

FilterOutcome SessionAlertFilter::on_provisional(
    const core::ProvisionalEstimate& estimate) {
  FilterOutcome out;
  if (estimate.confidence < config_.min_confidence) return out;

  State& st = clients_[std::string(estimate.client)];
  if (estimate.predicted_class == st.stable) {
    // Reinforces the stable verdict; any contrary run restarts from zero.
    st.run_len = 0;
    st.run_class = kNoVerdict;
    return out;
  }
  if (estimate.predicted_class == st.run_class) {
    ++st.run_len;
  } else {
    st.run_class = estimate.predicted_class;
    st.run_len = 1;
  }
  if (st.run_len < config_.hysteresis_k) {
    out.suppressed = true;
    return out;
  }
  VerdictTransition t;
  t.client = std::string(estimate.client);
  t.from_class = st.stable;
  t.to_class = st.run_class;
  t.confidence = estimate.confidence;
  t.time_s = estimate.last_activity_s;
  t.prev_time_s = st.stable_time_s;
  st.stable = st.run_class;
  st.stable_time_s = estimate.last_activity_s;
  st.run_len = 0;
  st.run_class = kNoVerdict;
  out.transition = std::move(t);
  return out;
}

VerdictTransition SessionAlertFilter::on_session(std::string_view client,
                                                 int predicted_class,
                                                 double confidence,
                                                 double detected_s) {
  VerdictTransition t;
  t.client = std::string(client);
  t.to_class = predicted_class;
  t.confidence = confidence;
  t.time_s = detected_s;
  t.final_verdict = true;
  const auto it = clients_.find(t.client);
  if (it != clients_.end()) {
    t.from_class = it->second.stable;
    t.prev_time_s = it->second.stable_time_s;
    clients_.erase(it);
  }
  return t;
}

}  // namespace droppkt::alert
