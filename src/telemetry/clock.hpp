// The telemetry plane's single clock seam. Interval sampling needs a
// monotonic time source, but the determinism rules (tools/droppkt_analyze)
// forbid wall clocks in the analytical layers — so all of telemetry reads
// time through a NowFn, and the one real steady_clock call in the entire
// subsystem lives behind monotonic_now_ns() in clock.cpp (allowlisted in
// tools/droppkt_analyze.allow). Tests and the replay driver substitute a
// ManualClock so sampled intervals are fully deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

namespace droppkt::telemetry {

/// Nanoseconds from an arbitrary monotonic epoch.
using NowFn = std::function<std::uint64_t()>;

/// The process monotonic clock (std::chrono::steady_clock). The only
/// sanctioned wall-time read in src/telemetry/.
std::uint64_t monotonic_now_ns();

/// A NowFn reading the real monotonic clock.
NowFn monotonic_clock();

/// Hand-cranked clock for tests and deterministic replay: time moves only
/// when advance()/set() is called. Thread-safe (relaxed atomic — readers
/// see some recent value, which is the same guarantee a real clock gives
/// across threads).
class ManualClock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : now_ns_(start_ns) {}

  void advance(std::uint64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  void set(std::uint64_t now_ns) {
    now_ns_.store(now_ns, std::memory_order_relaxed);
  }
  std::uint64_t now_ns() const {
    return now_ns_.load(std::memory_order_relaxed);
  }

  /// A NowFn view over this clock. The clock must outlive the function.
  NowFn fn() {
    return [this] { return now_ns(); };
  }

 private:
  std::atomic<std::uint64_t> now_ns_;
};

}  // namespace droppkt::telemetry
