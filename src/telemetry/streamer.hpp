// IntervalStreamer: the producer/consumer seam between the hot pipeline
// and telemetry consumers. The producer side (tick(), called from
// whatever thread drives interval sampling) samples the registry, encodes
// one droppkt-tm interval frame, and hands it to a bounded SPSC queue
// with try_push — it NEVER blocks the pipeline. When the consumer falls
// behind and the queue is full, the frame is dropped and
// "telemetry.dropped_intervals" (registered by the streamer in the same
// registry it observes) is incremented, so the loss is itself visible on
// the wire. bench_engine_throughput asserts this counter stays 0 in the
// default configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/wire.hpp"
#include "util/spsc_queue.hpp"

namespace droppkt::telemetry {

struct StreamerConfig {
  /// Bounded frame queue depth between tick() and poll().
  std::size_t queue_frames = 64;
};

/// Single-producer (tick) / single-consumer (poll) interval frame stream.
/// Construct AFTER every other metric is registered: the streamer
/// registers its own drop counter and then freezes the directory by
/// creating the sampler.
class IntervalStreamer {
 public:
  IntervalStreamer(MetricRegistry& registry, NowFn now,
                   StreamerConfig config = {});

  /// The stream prologue a consumer needs before any interval frame:
  /// magic + version + directory frame. Prepending this to the
  /// concatenated poll() output yields a valid droppkt-tm stream.
  std::vector<std::uint8_t> header_frame() const;

  /// Sample one interval and enqueue it as an interval frame. Drops (and
  /// counts) the frame when the consumer is behind; never blocks.
  void tick(std::span<const TmLocation> locations = {});

  /// Drain every queued frame into `out` (appended). Returns the number
  /// of frames appended.
  std::size_t poll(std::vector<std::uint8_t>& out);

  /// Frames dropped because the queue was full (also on the wire as
  /// "telemetry.dropped_intervals").
  std::uint64_t dropped_intervals() const { return dropped_->value(); }

  std::uint64_t intervals_sampled() const {
    return sampler_.intervals_sampled();
  }

 private:
  const MetricRegistry& registry_;
  Counter* dropped_;  // registered before sampler_ freezes the directory
  IntervalSampler sampler_;
  util::SpscQueue<std::vector<std::uint8_t>> queue_;
  IntervalSample scratch_sample_;
  std::vector<std::uint8_t> scratch_frame_;
};

}  // namespace droppkt::telemetry
