#include "telemetry/wire.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/expect.hpp"

namespace droppkt::telemetry {

namespace {

constexpr char kMagic[4] = {'D', 'P', 'T', 'M'};
constexpr std::uint32_t kVersion = 1;

constexpr std::uint8_t kTagHeader = 1;
constexpr std::uint8_t kTagScalars = 2;
constexpr std::uint8_t kTagHistogram = 3;
constexpr std::uint8_t kTagLocations = 4;

// Smallest possible wire footprint per element — the denominators of the
// count-versus-remaining checks that reject allocation bombs before any
// reserve.
constexpr std::uint64_t kMinDirectoryEntryBytes = 4 + 1 + 2 + 2;
constexpr std::uint64_t kMinScalarPairBytes = 4 + 8;
constexpr std::uint64_t kMinHistogramPairBytes = 1 + 8;
constexpr std::uint64_t kMinLocationBytes = 2 + 1 + 3 * 8 + 1;

[[noreturn]] void parse_fail(const std::string& what) {
  throw ParseError("tm_decode: " + what);
}

/// Bounds-checked cursor over the untrusted buffer; same contract as the
/// DPTL reader in trace/serialize.cpp — every length is widened to u64
/// before comparison so narrow attacker-supplied fields cannot wrap.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::uint64_t remaining() const { return buf_.size() - pos_; }

  void bytes(void* out, std::uint64_t n, const char* what) {
    if (n > remaining()) {
      parse_fail(std::string("truncated input reading ") + what);
    }
    std::memcpy(out, buf_.data() + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
  }

  std::uint8_t u8(const char* what) {
    std::uint8_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::uint16_t u16(const char* what) {
    std::uint16_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::uint64_t u64(const char* what) {
    std::uint64_t v = 0;
    bytes(&v, sizeof v, what);
    return v;
  }

  double f64(const char* what) {
    double v = 0.0;
    bytes(&v, sizeof v, what);
    return v;
  }

  std::string str(std::uint64_t n, const char* what) {
    if (n > remaining()) {
      parse_fail(std::string("truncated input reading ") + what);
    }
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// A sub-reader over the next `n` bytes, consuming them from this one.
  ByteReader slice(std::uint64_t n, const char* what) {
    if (n > remaining()) {
      parse_fail(std::string("truncated input reading ") + what);
    }
    ByteReader sub(buf_.subspan(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return sub;
  }

  void skip(std::uint64_t n, const char* what) {
    if (n > remaining()) {
      parse_fail(std::string("truncated input skipping ") + what);
    }
    pos_ += static_cast<std::size_t>(n);
  }

  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

void append_raw(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  if (n == 0) return;
  const std::size_t old = out.size();
  out.resize(old + n);
  std::memcpy(out.data() + old, p, n);
}

void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  append_raw(out, &v, sizeof v);
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  append_raw(out, &v, sizeof v);
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_raw(out, &v, sizeof v);
}

void append_f64(std::vector<std::uint8_t>& out, double v) {
  append_raw(out, &v, sizeof v);
}

void append_str16(std::vector<std::uint8_t>& out, const std::string& s,
                  const char* what) {
  DROPPKT_EXPECT(s.size() <= kTmMaxNameBytes,
                 std::string("tm_write: ") + what + " exceeds the name limit");
  append_u16(out, static_cast<std::uint16_t>(s.size()));
  append_raw(out, s.data(), s.size());
}

/// Patch a placeholder u32 length at `at` with the bytes appended since.
void patch_len(std::vector<std::uint8_t>& out, std::size_t at) {
  const auto len = static_cast<std::uint32_t>(out.size() - (at + 4));
  std::memcpy(out.data() + at, &len, sizeof len);
}

void append_location(std::vector<std::uint8_t>& out, const TmLocation& loc) {
  DROPPKT_EXPECT(loc.class_counts.size() <= kTmMaxClasses,
                 "tm_write: location class count exceeds the wire limit");
  DROPPKT_EXPECT(std::isfinite(loc.rate_low) && std::isfinite(loc.rate_high) &&
                     std::isfinite(loc.effective_sessions),
                 "tm_write: location rates must be finite");
  append_str16(out, loc.name, "location name");
  append_u8(out, loc.degraded ? 1 : 0);
  append_f64(out, loc.rate_low);
  append_f64(out, loc.rate_high);
  append_f64(out, loc.effective_sessions);
  append_u8(out, static_cast<std::uint8_t>(loc.class_counts.size()));
  for (const std::uint64_t c : loc.class_counts) append_u64(out, c);
}

TmLocation decode_location(ByteReader& r) {
  TmLocation loc;
  const std::uint64_t name_len = r.u16("location name length");
  if (name_len > kTmMaxNameBytes) {
    parse_fail("location name length exceeds limit");
  }
  loc.name = r.str(name_len, "location name");
  const std::uint8_t degraded = r.u8("degraded flag");
  if (degraded > 1) parse_fail("degraded flag must be 0 or 1");
  loc.degraded = degraded == 1;
  loc.rate_low = r.f64("rate_low");
  loc.rate_high = r.f64("rate_high");
  loc.effective_sessions = r.f64("effective_sessions");
  if (!std::isfinite(loc.rate_low) || !std::isfinite(loc.rate_high) ||
      !std::isfinite(loc.effective_sessions)) {
    parse_fail("non-finite location rates");
  }
  const std::uint64_t classes = r.u8("class count");
  if (classes > kTmMaxClasses) parse_fail("class count exceeds limit");
  loc.class_counts.resize(static_cast<std::size_t>(classes));
  for (auto& c : loc.class_counts) c = r.u64("class count value");
  return loc;
}

void decode_directory_payload(ByteReader& r, std::vector<TmDirectoryEntry>& out) {
  const std::uint64_t count = r.u32("directory count");
  if (count > r.remaining() / kMinDirectoryEntryBytes) {
    parse_fail("directory count " + std::to_string(count) +
               " exceeds what the frame can hold");
  }
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TmDirectoryEntry e;
    e.id = r.u32("metric id");
    const std::uint8_t kind = r.u8("metric kind");
    if (kind > static_cast<std::uint8_t>(MetricKind::kHistogram)) {
      parse_fail("unknown metric kind " + std::to_string(kind));
    }
    e.kind = static_cast<MetricKind>(kind);
    const std::uint64_t name_len = r.u16("metric name length");
    if (name_len > kTmMaxNameBytes) parse_fail("metric name length exceeds limit");
    e.name = r.str(name_len, "metric name");
    const std::uint64_t unit_len = r.u16("metric unit length");
    if (unit_len > kTmMaxNameBytes) parse_fail("metric unit length exceeds limit");
    e.unit = r.str(unit_len, "metric unit");
    out.push_back(std::move(e));
  }
  if (r.remaining() != 0) parse_fail("trailing bytes in directory frame");
}

void decode_interval_payload(ByteReader& r, TmInterval& out) {
  out = TmInterval{};
  while (r.remaining() > 0) {
    const std::uint8_t tag = r.u8("field tag");
    const std::uint64_t field_len = r.u32("field length");
    ByteReader f = r.slice(field_len, "field payload");
    switch (tag) {
      case kTagHeader: {
        out.seq = f.u64("seq");
        out.t0_ns = f.u64("t0_ns");
        out.t1_ns = f.u64("t1_ns");
        if (out.t1_ns < out.t0_ns) parse_fail("interval end precedes start");
        break;
      }
      case kTagScalars: {
        const std::uint64_t count = f.u32("scalar count");
        if (count > f.remaining() / kMinScalarPairBytes) {
          parse_fail("scalar count " + std::to_string(count) +
                     " exceeds what the field can hold");
        }
        out.scalars.reserve(out.scalars.size() +
                            static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          const MetricId id = f.u32("scalar id");
          const std::uint64_t value = f.u64("scalar value");
          out.scalars.emplace_back(id, value);
        }
        break;
      }
      case kTagHistogram: {
        TmHistogramDelta h;
        h.id = f.u32("histogram id");
        const std::uint64_t pairs = f.u16("histogram pair count");
        if (pairs > f.remaining() / kMinHistogramPairBytes) {
          parse_fail("histogram pair count exceeds what the field can hold");
        }
        for (std::uint64_t i = 0; i < pairs; ++i) {
          const std::uint8_t bucket = f.u8("histogram bucket");
          if (bucket >= Histogram::kBuckets) {
            parse_fail("histogram bucket index out of range");
          }
          h.deltas[bucket] += f.u64("histogram delta");
        }
        out.hist_deltas.push_back(h);
        break;
      }
      case kTagLocations: {
        const std::uint64_t count = f.u16("location count");
        if (count > f.remaining() / kMinLocationBytes) {
          parse_fail("location count exceeds what the field can hold");
        }
        out.locations.reserve(out.locations.size() +
                              static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          out.locations.push_back(decode_location(f));
        }
        break;
      }
      default:
        // Forward compatibility: unknown tags skip via their length.
        f.skip(f.remaining(), "unknown field");
        break;
    }
    if (f.remaining() != 0) {
      parse_fail("trailing bytes in interval field tag " + std::to_string(tag));
    }
  }
}

}  // namespace

std::uint64_t TmInterval::scalar(MetricId id) const {
  for (const auto& [sid, value] : scalars) {
    if (sid == id) return value;
  }
  return 0;
}

void tm_write_header(std::vector<std::uint8_t>& out) {
  append_raw(out, kMagic, sizeof kMagic);
  append_u32(out, kVersion);
}

void tm_write_directory(std::vector<std::uint8_t>& out,
                        std::span<const TmDirectoryEntry> directory) {
  append_u8(out, static_cast<std::uint8_t>(TmFrame::Kind::kDirectory));
  const std::size_t len_at = out.size();
  append_u32(out, 0);  // patched below
  append_u32(out, static_cast<std::uint32_t>(directory.size()));
  for (const TmDirectoryEntry& e : directory) {
    append_u32(out, e.id);
    append_u8(out, static_cast<std::uint8_t>(e.kind));
    append_str16(out, e.name, "metric name");
    append_str16(out, e.unit, "metric unit");
  }
  patch_len(out, len_at);
}

std::vector<TmDirectoryEntry> tm_directory_of(const MetricRegistry& registry) {
  std::vector<TmDirectoryEntry> out;
  out.reserve(registry.size());
  for (const MetricDesc& desc : registry.directory()) {
    TmDirectoryEntry e;
    e.id = desc.id;
    e.kind = desc.kind;
    e.name = desc.name;
    e.unit = desc.unit;
    out.push_back(std::move(e));
  }
  return out;
}

void tm_write_interval(std::vector<std::uint8_t>& out,
                       const TmInterval& interval) {
  append_u8(out, static_cast<std::uint8_t>(TmFrame::Kind::kInterval));
  const std::size_t frame_len_at = out.size();
  append_u32(out, 0);

  append_u8(out, kTagHeader);
  const std::size_t header_len_at = out.size();
  append_u32(out, 0);
  append_u64(out, interval.seq);
  append_u64(out, interval.t0_ns);
  append_u64(out, interval.t1_ns);
  patch_len(out, header_len_at);

  if (!interval.scalars.empty()) {
    append_u8(out, kTagScalars);
    const std::size_t len_at = out.size();
    append_u32(out, 0);
    append_u32(out, static_cast<std::uint32_t>(interval.scalars.size()));
    for (const auto& [id, value] : interval.scalars) {
      append_u32(out, id);
      append_u64(out, value);
    }
    patch_len(out, len_at);
  }

  for (const TmHistogramDelta& h : interval.hist_deltas) {
    append_u8(out, kTagHistogram);
    const std::size_t len_at = out.size();
    append_u32(out, 0);
    append_u32(out, h.id);
    std::uint16_t pairs = 0;
    for (const std::uint64_t d : h.deltas) pairs += d != 0 ? 1 : 0;
    append_u16(out, pairs);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.deltas[b] == 0) continue;
      append_u8(out, static_cast<std::uint8_t>(b));
      append_u64(out, h.deltas[b]);
    }
    patch_len(out, len_at);
  }

  if (!interval.locations.empty()) {
    DROPPKT_EXPECT(interval.locations.size() <=
                       std::numeric_limits<std::uint16_t>::max(),
                   "tm_write: too many locations for one interval frame");
    append_u8(out, kTagLocations);
    const std::size_t len_at = out.size();
    append_u32(out, 0);
    append_u16(out, static_cast<std::uint16_t>(interval.locations.size()));
    for (const TmLocation& loc : interval.locations) {
      append_location(out, loc);
    }
    patch_len(out, len_at);
  }

  patch_len(out, frame_len_at);
}

void tm_write_interval(std::vector<std::uint8_t>& out,
                       const IntervalSample& sample,
                       std::span<const TmLocation> locations) {
  TmInterval iv;
  iv.seq = sample.seq;
  iv.t0_ns = sample.t0_ns;
  iv.t1_ns = sample.t1_ns;
  for (MetricId id = 0; id < sample.scalars.size(); ++id) {
    if (sample.scalars[id] != 0) iv.scalars.emplace_back(id, sample.scalars[id]);
  }
  for (const auto& [id, deltas] : sample.hist_deltas) {
    bool any = false;
    for (const std::uint64_t d : deltas) any = any || d != 0;
    if (!any) continue;
    TmHistogramDelta h;
    h.id = id;
    h.deltas = deltas;
    iv.hist_deltas.push_back(h);
  }
  iv.locations.assign(locations.begin(), locations.end());
  tm_write_interval(out, iv);
}

std::vector<std::uint8_t> tm_encode_frames(std::span<const TmFrame> frames) {
  std::vector<std::uint8_t> out;
  tm_write_header(out);
  for (const TmFrame& frame : frames) {
    if (frame.kind == TmFrame::Kind::kDirectory) {
      tm_write_directory(out, frame.directory);
    } else {
      tm_write_interval(out, frame.interval);
    }
  }
  return out;
}

void tm_decode_header(std::span<const std::uint8_t> buf, std::size_t& offset) {
  if (offset > buf.size()) parse_fail("offset past end of buffer");
  ByteReader r(buf.subspan(offset));
  char magic[4] = {};
  r.bytes(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    parse_fail("bad magic (not a droppkt-tm stream)");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kVersion) {
    parse_fail("unsupported version " + std::to_string(version));
  }
  offset += r.pos();
}

bool tm_decode_frame(std::span<const std::uint8_t> buf, std::size_t& offset,
                     TmFrame& out) {
  if (offset > buf.size()) parse_fail("offset past end of buffer");
  ByteReader r(buf.subspan(offset));
  while (r.remaining() > 0) {
    const std::uint8_t type = r.u8("frame type");
    const std::uint64_t payload_len = r.u32("frame length");
    ByteReader payload = r.slice(payload_len, "frame payload");
    if (type == static_cast<std::uint8_t>(TmFrame::Kind::kDirectory)) {
      out.kind = TmFrame::Kind::kDirectory;
      out.interval = TmInterval{};
      decode_directory_payload(payload, out.directory);
    } else if (type == static_cast<std::uint8_t>(TmFrame::Kind::kInterval)) {
      out.kind = TmFrame::Kind::kInterval;
      out.directory.clear();
      decode_interval_payload(payload, out.interval);
    } else {
      // Forward compatibility: unknown frame types skip via their length.
      continue;
    }
    offset += r.pos();
    return true;
  }
  offset += r.pos();
  return false;
}

std::vector<TmFrame> tm_decode_stream(std::span<const std::uint8_t> buf) {
  std::size_t offset = 0;
  tm_decode_header(buf, offset);
  std::vector<TmFrame> frames;
  TmFrame frame;
  while (tm_decode_frame(buf, offset, frame)) {
    frames.push_back(frame);
  }
  return frames;
}

}  // namespace droppkt::telemetry
