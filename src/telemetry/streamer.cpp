#include "telemetry/streamer.hpp"

#include <utility>

#include "util/expect.hpp"

namespace droppkt::telemetry {

IntervalStreamer::IntervalStreamer(MetricRegistry& registry, NowFn now,
                                   StreamerConfig config)
    // The drop counter registers first so the sampler (whose construction
    // freezes the directory) already sees it — drops are then reportable
    // over the same wire that loses the frames.
    : registry_(registry),
      dropped_(&registry.counter("telemetry.dropped_intervals", "frames")),
      sampler_(registry, std::move(now)),
      queue_(config.queue_frames, util::BackpressurePolicy::kBlock) {
  DROPPKT_EXPECT(config.queue_frames >= 2,
                 "IntervalStreamer: queue_frames must be at least 2");
}

std::vector<std::uint8_t> IntervalStreamer::header_frame() const {
  std::vector<std::uint8_t> out;
  tm_write_header(out);
  const std::vector<TmDirectoryEntry> dir = tm_directory_of(registry_);
  tm_write_directory(out, dir);
  return out;
}

void IntervalStreamer::tick(std::span<const TmLocation> locations) {
  sampler_.sample(scratch_sample_);
  scratch_frame_.clear();
  tm_write_interval(scratch_frame_, scratch_sample_, locations);
  // try_push moves from the lvalue on success, leaving scratch_frame_
  // empty-but-reusable; on a full queue the frame stays put and is
  // discarded by the next tick's clear(). Either way the pipeline never
  // waits on the consumer.
  std::vector<std::uint8_t> frame = std::move(scratch_frame_);
  if (queue_.try_push(frame)) {
    scratch_frame_ = std::move(frame);  // moved-from donor, reuse capacity
  } else {
    scratch_frame_ = std::move(frame);  // frame intact; drop it, count it
    dropped_->inc();
  }
}

std::size_t IntervalStreamer::poll(std::vector<std::uint8_t>& out) {
  std::size_t frames = 0;
  std::vector<std::uint8_t> frame;
  while (queue_.try_pop(frame)) {
    out.insert(out.end(), frame.begin(), frame.end());
    ++frames;
  }
  return frames;
}

}  // namespace droppkt::telemetry
