#include "telemetry/registry.hpp"

#include <bit>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::telemetry {

void Histogram::record(std::uint64_t value) {
  // Bucket b holds values in [2^b, 2^(b+1)); 0 lands in bucket 0.
  const int b = value == 0 ? 0 : std::bit_width(value) - 1;
  buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Counts Histogram::counts() const {
  Counts out{};
  add_to(out);
  return out;
}

void Histogram::add_to(Counts& into) const {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    into[b] += buckets_[b].load(std::memory_order_relaxed);
  }
}

double histogram_quantile(const Histogram::Counts& counts, double q) {
  DROPPKT_EXPECT(q >= 0.0 && q <= 1.0,
                 "histogram_quantile: q must be in [0,1]");
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    seen += counts[b];
    if (seen > rank) {
      // Geometric midpoint of [2^b, 2^(b+1)): 2^b * sqrt(2).
      return std::ldexp(std::sqrt(2.0), static_cast<int>(b));
    }
  }
  return std::ldexp(std::sqrt(2.0), static_cast<int>(Histogram::kBuckets - 1));
}

MetricRegistry::Slot& MetricRegistry::register_slot(std::string_view name,
                                                    std::string_view unit,
                                                    MetricKind kind) {
  DROPPKT_EXPECT(!name.empty(), "MetricRegistry: metric name must be non-empty");
  const auto [it, inserted] = by_name_.emplace(
      std::string(name), static_cast<MetricId>(directory_.size()));
  DROPPKT_EXPECT(inserted, "MetricRegistry: duplicate metric name: " + it->first);
  MetricDesc desc;
  desc.id = it->second;
  desc.kind = kind;
  desc.name = it->first;
  desc.unit = std::string(unit);
  directory_.push_back(std::move(desc));
  Slot slot;
  slot.kind = kind;
  slots_.push_back(slot);
  return slots_.back();
}

Counter& MetricRegistry::counter(std::string_view name, std::string_view unit) {
  Slot& slot = register_slot(name, unit, MetricKind::kCounter);
  slot.index = counters_.size();
  counters_.emplace_back();
  return counters_.back();
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view unit) {
  Slot& slot = register_slot(name, unit, MetricKind::kGauge);
  slot.index = gauges_.size();
  gauges_.emplace_back();
  return gauges_.back();
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::string_view unit) {
  Slot& slot = register_slot(name, unit, MetricKind::kHistogram);
  slot.index = histograms_.size();
  histograms_.emplace_back();
  return histograms_.back();
}

const MetricDesc* MetricRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &directory_[it->second];
}

std::uint64_t MetricRegistry::scalar_value(MetricId id) const {
  DROPPKT_EXPECT(id < directory_.size(), "MetricRegistry: metric id out of range");
  const Slot& slot = slots_[id];
  switch (slot.kind) {
    case MetricKind::kCounter:
      return counters_[slot.index].value();
    case MetricKind::kGauge:
      return gauges_[slot.index].value();
    case MetricKind::kHistogram:
      return 0;
  }
  return 0;
}

std::uint64_t MetricRegistry::value(std::string_view name) const {
  const MetricDesc* desc = find(name);
  DROPPKT_EXPECT(desc != nullptr,
                 "MetricRegistry: unknown metric name: " + std::string(name));
  return scalar_value(desc->id);
}

const Histogram* MetricRegistry::histogram_at(MetricId id) const {
  DROPPKT_EXPECT(id < directory_.size(), "MetricRegistry: metric id out of range");
  const Slot& slot = slots_[id];
  if (slot.kind != MetricKind::kHistogram) return nullptr;
  return &histograms_[slot.index];
}

void MetricRegistry::snapshot_scalars(std::vector<std::uint64_t>& out) const {
  out.assign(directory_.size(), 0);
  for (MetricId id = 0; id < directory_.size(); ++id) {
    const Slot& slot = slots_[id];
    if (slot.kind == MetricKind::kCounter) {
      out[id] = counters_[slot.index].value();
    } else if (slot.kind == MetricKind::kGauge) {
      out[id] = gauges_[slot.index].value();
    }
  }
}

}  // namespace droppkt::telemetry
