// Interval sampling over a MetricRegistry: the jittertrap-style seam that
// turns monotonically growing counters into per-interval deltas. The
// sampler snapshots every scalar and histogram at construction, then each
// sample() call diffs the current registry state against the previous
// snapshot — counters and histograms become interval deltas, gauges pass
// through as last-value.
//
// Threading: sample() is called from one thread (the streamer's producer
// side); the instruments it reads may be updated concurrently from any
// thread (relaxed reads, per-value coherence — see registry.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/registry.hpp"

namespace droppkt::telemetry {

/// One sampled interval: deltas for counters/histograms, levels for
/// gauges, bracketed by monotonic timestamps.
struct IntervalSample {
  std::uint64_t seq = 0;    // 0-based interval index
  std::uint64_t t0_ns = 0;  // interval start (previous sample time)
  std::uint64_t t1_ns = 0;  // interval end (this sample time)
  /// Indexed by MetricId. Counters: delta over the interval. Gauges:
  /// value at t1. Histogram ids: 0 (their deltas live below).
  std::vector<std::uint64_t> scalars;
  /// Per-histogram bucket deltas over the interval, in id order.
  std::vector<std::pair<MetricId, Histogram::Counts>> hist_deltas;

  double seconds() const {
    return static_cast<double>(t1_ns - t0_ns) * 1e-9;
  }
};

/// Diffs registry snapshots on a caller-supplied monotonic clock.
/// The full metric directory must be registered before the sampler is
/// constructed — it sizes its baselines once and never re-reads the
/// directory.
class IntervalSampler {
 public:
  IntervalSampler(const MetricRegistry& registry, NowFn now);

  /// Sample the next interval into `out` (buffers reused). Counter deltas
  /// use wrap-safe u64 subtraction, so a single-writer store() that goes
  /// backwards (which the contract forbids) shows up as a huge delta
  /// rather than UB.
  void sample(IntervalSample& out);

  /// Readable from any thread (relaxed — the count is a progress signal,
  /// not a synchronization point; sample() itself stays single-caller).
  std::uint64_t intervals_sampled() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

 private:
  const MetricRegistry& registry_;
  NowFn now_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::uint64_t prev_t_ns_ = 0;
  std::vector<std::uint64_t> prev_scalars_;
  std::vector<std::uint64_t> cur_scalars_;
  std::vector<std::pair<MetricId, Histogram::Counts>> prev_hists_;
};

}  // namespace droppkt::telemetry
