// droppkt-tm v1 — the compact binary wire format for streaming telemetry
// intervals to out-of-process consumers (the droppkt_top dashboard, file
// captures). Framing is built for forward compatibility and hostile
// input alike: every frame and every field inside an interval frame is
// length-prefixed, so decoders skip what they do not understand and
// reject what does not fit. The full byte-level spec lives in
// DESIGN.md §5g.
//
// Stream layout:
//   header  := "DPTM" u32 version(=1)
//   frame   := u8 type, u32 payload_len, payload[payload_len]
//     type 1 (directory): u32 count, then per metric
//       u32 id, u8 kind, u16 name_len, name, u16 unit_len, unit
//     type 2 (interval): tagged fields, each
//       u8 tag, u32 field_len, field[field_len]
//         tag 1 (header):    u64 seq, u64 t0_ns, u64 t1_ns
//         tag 2 (scalars):   u32 count, then (u32 id, u64 value) pairs
//         tag 3 (histogram): u32 id, u16 pairs, then (u8 bucket, u64 delta)
//         tag 4 (locations): u16 count, then per location
//           u16 name_len, name, u8 degraded, f64 rate_low, f64 rate_high,
//           f64 effective_sessions, u8 class_count, class_count × u64
//     unknown tags and unknown frame types are skipped via their length
//     prefix; anything truncated or over-limit raises ParseError.
//
// All integers are little-endian (the native layout of every platform the
// repo targets; matches the DPTL record format in trace/serialize).
//
// Decoders follow the PR-3 hardening rules: u64-widened bounds checks,
// count-versus-remaining-bytes validation before any reserve, typed
// ParseError (never a crash or unbounded allocation) — fuzzed by
// fuzz/fuzz_telemetry_wire.cpp via the decode → re-encode → re-decode
// round-trip oracle tm_encode_frames().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"

namespace droppkt::telemetry {

/// One directory row: the id→(kind, name, unit) binding consumers need to
/// interpret interval frames.
struct TmDirectoryEntry {
  MetricId id = 0;
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  std::string unit;

  bool operator==(const TmDirectoryEntry&) const = default;
};

/// Per-location QoE state carried in interval frames: the detector's
/// Wilson rate window plus the interval's predicted-class distribution.
struct TmLocation {
  std::string name;
  bool degraded = false;
  double rate_low = 0.0;
  double rate_high = 0.0;
  double effective_sessions = 0.0;
  /// Predicted QoE class counts over the interval, indexed by class.
  std::vector<std::uint64_t> class_counts;

  bool operator==(const TmLocation&) const = default;
};

struct TmHistogramDelta {
  MetricId id = 0;
  Histogram::Counts deltas{};

  bool operator==(const TmHistogramDelta&) const = default;
};

/// A decoded interval frame.
struct TmInterval {
  std::uint64_t seq = 0;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  /// Sparse (id, value) pairs exactly as they appeared on the wire.
  std::vector<std::pair<MetricId, std::uint64_t>> scalars;
  std::vector<TmHistogramDelta> hist_deltas;
  std::vector<TmLocation> locations;

  bool operator==(const TmInterval&) const = default;

  double seconds() const { return static_cast<double>(t1_ns - t0_ns) * 1e-9; }

  /// The scalar for `id`, or 0 when absent (absent == no change for
  /// counter deltas).
  std::uint64_t scalar(MetricId id) const;
};

struct TmFrame {
  enum class Kind : std::uint8_t {
    kDirectory = 1,
    kInterval = 2,
  };

  Kind kind = Kind::kDirectory;
  std::vector<TmDirectoryEntry> directory;  // when kind == kDirectory
  TmInterval interval;                      // when kind == kInterval

  bool operator==(const TmFrame&) const = default;
};

/// Longest metric / location name the format accepts.
inline constexpr std::uint64_t kTmMaxNameBytes = 4096;
/// Per-location class distributions carry at most this many classes.
inline constexpr std::uint64_t kTmMaxClasses = 64;

// --- Encoders (append to `out`) ---

/// Stream header: magic + version.
void tm_write_header(std::vector<std::uint8_t>& out);

/// A directory frame.
void tm_write_directory(std::vector<std::uint8_t>& out,
                        std::span<const TmDirectoryEntry> directory);

/// The registry's directory as wire entries.
std::vector<TmDirectoryEntry> tm_directory_of(const MetricRegistry& registry);

/// An interval frame, encoded faithfully from the decoded representation
/// (every listed scalar pair and histogram entry is emitted as-is).
void tm_write_interval(std::vector<std::uint8_t>& out,
                       const TmInterval& interval);

/// Convenience: a sampled interval + locations as a compact interval
/// frame (zero scalar deltas and all-zero histogram buckets elided).
void tm_write_interval(std::vector<std::uint8_t>& out,
                       const IntervalSample& sample,
                       std::span<const TmLocation> locations);

/// Re-encode decoded frames as a full stream (header + frames): the fuzz
/// round-trip oracle, and the way captures of decoded streams are saved.
std::vector<std::uint8_t> tm_encode_frames(std::span<const TmFrame> frames);

// --- Decoders (throw ParseError on malformed input) ---

/// Validate the stream header at `offset`, advancing it past the header.
void tm_decode_header(std::span<const std::uint8_t> buf, std::size_t& offset);

/// Decode the next known frame at `offset` into `out`, skipping unknown
/// frame types. Returns false at clean end-of-buffer.
bool tm_decode_frame(std::span<const std::uint8_t> buf, std::size_t& offset,
                     TmFrame& out);

/// Decode a whole stream (header + every frame).
std::vector<TmFrame> tm_decode_stream(std::span<const std::uint8_t> buf);

}  // namespace droppkt::telemetry
