#include "telemetry/sampler.hpp"

#include "util/expect.hpp"

namespace droppkt::telemetry {

IntervalSampler::IntervalSampler(const MetricRegistry& registry, NowFn now)
    : registry_(registry), now_(std::move(now)) {
  DROPPKT_EXPECT(now_ != nullptr, "IntervalSampler: now function required");
  registry_.snapshot_scalars(prev_scalars_);
  for (const MetricDesc& desc : registry_.directory()) {
    if (desc.kind == MetricKind::kHistogram) {
      prev_hists_.emplace_back(desc.id,
                               registry_.histogram_at(desc.id)->counts());
    }
  }
  prev_t_ns_ = now_();
}

void IntervalSampler::sample(IntervalSample& out) {
  DROPPKT_EXPECT(registry_.size() == prev_scalars_.size(),
                 "IntervalSampler: metrics registered after sampler creation");
  registry_.snapshot_scalars(cur_scalars_);
  const std::uint64_t t1 = now_();

  out.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  out.t0_ns = prev_t_ns_;
  out.t1_ns = t1;
  out.scalars.resize(cur_scalars_.size());

  const std::vector<MetricDesc>& dir = registry_.directory();
  for (MetricId id = 0; id < dir.size(); ++id) {
    if (dir[id].kind == MetricKind::kCounter) {
      out.scalars[id] = cur_scalars_[id] - prev_scalars_[id];  // wrap-safe
    } else {
      out.scalars[id] = cur_scalars_[id];  // gauge level; histogram 0
    }
  }

  out.hist_deltas.resize(prev_hists_.size());
  for (std::size_t h = 0; h < prev_hists_.size(); ++h) {
    const MetricId id = prev_hists_[h].first;
    const Histogram::Counts cur = registry_.histogram_at(id)->counts();
    out.hist_deltas[h].first = id;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      out.hist_deltas[h].second[b] = cur[b] - prev_hists_[h].second[b];
    }
    prev_hists_[h].second = cur;
  }

  prev_scalars_.swap(cur_scalars_);
  prev_t_ns_ = t1;
}

}  // namespace droppkt::telemetry
