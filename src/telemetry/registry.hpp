// The unified telemetry plane's metric registry: one home for every
// counter, gauge and histogram the engine, monitor, alert and ML layers
// used to keep in scattered per-layer stats structs.
//
// Design contract (what makes this safe to put on the ingest hot path):
//   * Instruments are plain relaxed atomics. An update is one
//     fetch_add/store — no lock, no allocation, no fence stronger than
//     relaxed — so DROPPKT_NOALLOC record paths can bump them freely.
//   * Registration is a setup-phase operation: all counter()/gauge()/
//     histogram() calls happen single-threaded before any concurrent
//     reader or writer touches the registry (the engine registers in its
//     constructor, sinks in bind_telemetry()). After setup the directory
//     is immutable, which is why lookups and snapshots need no lock.
//   * Instrument references are stable for the registry's lifetime
//     (deque-backed storage), so hot paths hold raw pointers.
//
// Snapshots read every instrument with relaxed loads: each value is
// individually coherent, which is all interval diffing (telemetry/
// sampler.hpp) and the stats views need.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace droppkt::telemetry {

/// Monotonic event count. Single or multi writer; wait-free updates.
class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Publish an absolute total — the block-drain idiom where one owning
  /// thread accumulates locally and stores the running total once per
  /// block instead of one RMW per event. Single-writer only.
  void store(std::uint64_t total) { v_.store(total, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value instrument (queue depth, tracked locations, ...).
class Gauge {
 public:
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Log2-bucketed histogram of u64 samples (nanosecond latencies in
/// practice). record() is wait-free; counts() can be read concurrently —
/// each bucket is individually coherent, which is all a percentile
/// estimate needs. Generalizes the engine's former LatencyHistogram.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  using Counts = std::array<std::uint64_t, kBuckets>;

  void record(std::uint64_t value);

  /// Current bucket counts.
  Counts counts() const;

  /// Accumulate this histogram's counts into `into` (cross-shard merge).
  void add_to(Counts& into) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Quantile estimate (q in [0,1]) over merged bucket counts: the
/// geometric midpoint of the bucket holding the q-th sample. 0 when the
/// histogram is empty.
double histogram_quantile(const Histogram::Counts& counts, double q);

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// Dense id assigned in registration order — the wire protocol's key.
using MetricId = std::uint32_t;

struct MetricDesc {
  MetricId id = 0;
  MetricKind kind = MetricKind::kCounter;
  std::string name;  // dotted path, e.g. "engine.shard0.records"
  std::string unit;  // "" for plain counts
};

/// The typed instrument directory. See the header comment for the
/// registration/update threading contract.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Register (setup phase, single-threaded). Names must be unique across
  /// all kinds; a duplicate registration throws ContractViolation.
  Counter& counter(std::string_view name, std::string_view unit = "");
  Gauge& gauge(std::string_view name, std::string_view unit = "");
  Histogram& histogram(std::string_view name, std::string_view unit = "");

  /// Every registered metric, in id order (ids are dense, 0..size()-1).
  const std::vector<MetricDesc>& directory() const { return directory_; }
  std::size_t size() const { return directory_.size(); }

  /// Descriptor by name; nullptr when unregistered.
  const MetricDesc* find(std::string_view name) const;

  /// Scalar value of a counter or gauge by id; 0 for histogram ids.
  std::uint64_t scalar_value(MetricId id) const;

  /// Scalar value by name. Throws ContractViolation for unknown names.
  std::uint64_t value(std::string_view name) const;

  /// The histogram behind `id`, nullptr for scalar ids.
  const Histogram* histogram_at(MetricId id) const;

  /// Relaxed snapshot of every scalar into `out[id]` (histogram slots 0).
  /// `out` is resized to size().
  void snapshot_scalars(std::vector<std::uint64_t>& out) const;

 private:
  struct Slot {
    MetricKind kind = MetricKind::kCounter;
    std::size_t index = 0;  // into the kind's deque
  };

  Slot& register_slot(std::string_view name, std::string_view unit,
                      MetricKind kind);

  // Deques: instrument addresses are stable as the directory grows.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<MetricDesc> directory_;
  std::vector<Slot> slots_;  // parallel to directory_
  // Ordered map (not unordered): registration is cold, and the telemetry
  // layer honors the same determinism rules as the layers it serves.
  std::map<std::string, MetricId, std::less<>> by_name_;
};

}  // namespace droppkt::telemetry
