#include "telemetry/clock.hpp"

#include <chrono>

namespace droppkt::telemetry {

std::uint64_t monotonic_now_ns() {
  const auto tp = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp).count());
}

NowFn monotonic_clock() { return [] { return monotonic_now_ns(); }; }

}  // namespace droppkt::telemetry
