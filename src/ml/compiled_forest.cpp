#include "ml/compiled_forest.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace droppkt::ml {

namespace {

// Rows per cache tile in the batch path: 256 rows x 38 features x 8 bytes
// ≈ 76 KiB of input plus the output slab stay cache-resident while each
// tree's node arrays are reused across the whole tile.
constexpr std::size_t kRowTile = 256;

// Independent descent chains walked in lockstep through one tree. The
// fixed-trip-count descent has no early exit, so the chains issue
// back-to-back loads with no branch between them — the out-of-order core
// overlaps their latencies instead of serializing one chain per row.
constexpr std::size_t kLanes = 8;

// Sanity caps for load(): reject hostile dimensions from a model file
// before they drive allocations. Classes/features/trees match
// RandomForest::load; nodes and leaf-pool length are bounded well below
// the int32 offset range.
constexpr std::size_t kMaxLoadClasses = 4096;
constexpr std::size_t kMaxLoadFeatures = 1 << 20;
constexpr std::size_t kMaxLoadTrees = 1 << 16;
constexpr std::size_t kMaxLoadNodes = 1 << 26;

constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void cf_parse_fail(const std::string& what) {
  throw ParseError("CompiledForest::load: " + what);
}

}  // namespace

void CompiledForest::append_sentinel() {
  feature_.push_back(0);
  threshold_.push_back(kInf);
  left_.push_back(static_cast<std::int32_t>(left_.size()));
  leaf_off_.push_back(0);
}

void CompiledForest::compute_depths() {
  // Forward pass: children always follow their parent, so one ascending
  // sweep labels every reachable node with its tree and depth. Called
  // before the sentinel is appended; leaves are already self-loops.
  const std::size_t n = feature_.size();
  depth_.assign(roots_.size(), 0);
  std::vector<std::int32_t> tree_of(n, -1);
  std::vector<std::int32_t> node_depth(n, 0);
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    tree_of[static_cast<std::size_t>(roots_[t])] = static_cast<std::int32_t>(t);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t t = tree_of[i];
    if (t < 0 || left_[i] == static_cast<std::int32_t>(i)) continue;
    const auto l = static_cast<std::size_t>(left_[i]);
    tree_of[l] = tree_of[l + 1] = t;
    node_depth[l] = node_depth[l + 1] = node_depth[i] + 1;
    depth_[static_cast<std::size_t>(t)] =
        std::max(depth_[static_cast<std::size_t>(t)], node_depth[i] + 1);
  }
}

CompiledForest CompiledForest::compile(const RandomForest& forest) {
  DROPPKT_EXPECT(forest.num_trees() > 0,
                 "CompiledForest::compile: forest is not fitted");
  const std::size_t n_trees = forest.num_trees();
  std::size_t total_nodes = 0;
  for (std::size_t t = 0; t < n_trees; ++t) {
    total_nodes += forest.tree(t).node_count();
  }
  DROPPKT_EXPECT(total_nodes <= kMaxLoadNodes,
                 "CompiledForest::compile: forest too large for int32 offsets");

  CompiledForest cf;
  cf.num_classes_ = forest.num_classes();
  cf.num_features_ = static_cast<std::int32_t>(forest.num_features());
  cf.feature_.reserve(total_nodes + 1);
  cf.threshold_.reserve(total_nodes + 1);
  cf.left_.reserve(total_nodes + 1);
  cf.leaf_off_.reserve(total_nodes + 1);
  cf.roots_.reserve(n_trees);

  const auto c_count = static_cast<std::size_t>(cf.num_classes_);
  auto alloc_node = [&cf]() {
    const auto idx = static_cast<std::int32_t>(cf.feature_.size());
    cf.feature_.push_back(0);
    cf.threshold_.push_back(kInf);
    cf.left_.push_back(idx);
    cf.leaf_off_.push_back(0);
    return idx;
  };

  // (source node, destination slot) pairs; both children's slots are
  // allocated when the parent is emitted so siblings land adjacent and
  // children always follow their parent.
  std::vector<std::pair<std::int32_t, std::int32_t>> stack;
  for (std::size_t t = 0; t < n_trees; ++t) {
    const DecisionTree& tree = forest.tree(t);
    cf.roots_.push_back(alloc_node());
    stack.push_back({0, cf.roots_.back()});
    while (!stack.empty()) {
      const auto [src, dst] = stack.back();
      stack.pop_back();
      const auto dsti = static_cast<std::size_t>(dst);
      const auto nv = tree.node_view(static_cast<std::size_t>(src));
      if (nv.feature < 0) {
        DROPPKT_EXPECT(nv.class_probs.size() == c_count,
                       "CompiledForest::compile: leaf distribution width");
        // Leaf: keep the self-loop alloc_node installed; record where its
        // distribution lives.
        cf.leaf_off_[dsti] = static_cast<std::int32_t>(cf.leaf_probs_.size());
        cf.leaf_probs_.insert(cf.leaf_probs_.end(), nv.class_probs.begin(),
                              nv.class_probs.end());
      } else {
        cf.feature_[dsti] = nv.feature;
        cf.threshold_[dsti] = nv.threshold;
        const std::int32_t l = alloc_node();
        alloc_node();  // right sibling, adjacent by construction
        cf.left_[dsti] = l;
        // Left pushed last so it pops first: depth-first pre-order keeps
        // each subtree contiguous in the arrays.
        stack.push_back({nv.right, l + 1});
        stack.push_back({nv.left, l});
      }
    }
  }
  cf.compute_depths();
  cf.append_sentinel();
  return cf;
}

void CompiledForest::predict_proba_into(std::span<const double> features,
                                        std::span<double> out) const {
  DROPPKT_EXPECT(compiled(), "CompiledForest: predict before compile/load");
  DROPPKT_EXPECT(
      features.size() == static_cast<std::size_t>(num_features_) &&
          out.size() == static_cast<std::size_t>(num_classes_),
      "CompiledForest::predict_proba_into: bad buffer size");
  std::fill(out.begin(), out.end(), 0.0);
  const double* x = features.data();
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    std::int32_t i = roots_[t];
    for (std::int32_t d = depth_[t]; d > 0; --d) i = step(i, x);
    const double* p =
        leaf_probs_.data() + static_cast<std::size_t>(leaf_off_[
            static_cast<std::size_t>(i)]);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(roots_.size());
  for (auto& v : out) v *= inv;
  if (rows_predicted_ != nullptr) rows_predicted_->inc();
}

int CompiledForest::predict(std::span<const double> features) const {
  std::vector<double> proba(static_cast<std::size_t>(num_classes_));
  predict_proba_into(features, proba);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

void CompiledForest::batch_rows(std::span<const double> matrix,
                                std::span<double> out,
                                std::size_t num_threads) const {
  const auto width = static_cast<std::size_t>(num_features_);
  const auto c_count = static_cast<std::size_t>(num_classes_);
  const std::size_t rows = matrix.size() / width;
  const double inv = 1.0 / static_cast<double>(roots_.size());
  if (rows_predicted_ != nullptr) rows_predicted_->add(rows);
  auto one_tile = [&](std::size_t tile) {
    const std::size_t lo = tile * kRowTile;
    const std::size_t hi = std::min(lo + kRowTile, rows);
    double* const slab = out.data() + lo * c_count;
    std::fill(slab, slab + (hi - lo) * c_count, 0.0);
    // Tree-major over the tile: per row the additions still happen in
    // tree order, so the result is byte-identical to predict_proba_row.
    for (std::size_t t = 0; t < roots_.size(); ++t) {
      const std::int32_t root = roots_[t];
      const std::int32_t dep = depth_[t];
      std::size_t r = lo;
      for (; r + kLanes <= hi; r += kLanes) {
        const double* x[kLanes];
        std::int32_t idx[kLanes];
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          x[lane] = matrix.data() + (r + lane) * width;
          idx[lane] = root;
        }
        for (std::int32_t d = dep; d > 0; --d) {
          for (std::size_t lane = 0; lane < kLanes; ++lane) {
            idx[lane] = step(idx[lane], x[lane]);
          }
        }
        double* o = out.data() + r * c_count;
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          const double* p = leaf_probs_.data() +
                            static_cast<std::size_t>(
                                leaf_off_[static_cast<std::size_t>(idx[lane])]);
          for (std::size_t c = 0; c < c_count; ++c) {
            o[lane * c_count + c] += p[c];
          }
        }
      }
      for (; r < hi; ++r) {
        const double* x = matrix.data() + r * width;
        std::int32_t i = root;
        for (std::int32_t d = dep; d > 0; --d) i = step(i, x);
        const double* p = leaf_probs_.data() +
                          static_cast<std::size_t>(
                              leaf_off_[static_cast<std::size_t>(i)]);
        double* o = out.data() + r * c_count;
        for (std::size_t c = 0; c < c_count; ++c) o[c] += p[c];
      }
    }
    for (std::size_t k = 0; k < (hi - lo) * c_count; ++k) slab[k] *= inv;
  };
  const std::size_t tiles = (rows + kRowTile - 1) / kRowTile;
  const std::size_t threads =
      std::min(util::ThreadPool::resolve_threads(num_threads),
               std::max<std::size_t>(1, tiles));
  if (threads <= 1 || tiles <= 1) {
    for (std::size_t tile = 0; tile < tiles; ++tile) one_tile(tile);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(0, tiles, one_tile);
  }
}

void CompiledForest::predict_proba_batch(std::span<const double> matrix,
                                         std::span<double> out,
                                         std::size_t num_threads) const {
  DROPPKT_EXPECT(compiled(), "CompiledForest: predict before compile/load");
  const auto width = static_cast<std::size_t>(num_features_);
  DROPPKT_EXPECT(width >= 1 && matrix.size() % width == 0,
                 "CompiledForest::predict_proba_batch: matrix width mismatch");
  const std::size_t rows = matrix.size() / width;
  DROPPKT_EXPECT(
      out.size() == rows * static_cast<std::size_t>(num_classes_),
      "CompiledForest::predict_proba_batch: bad output buffer size");
  batch_rows(matrix, out, num_threads);
}

void CompiledForest::predict_proba_batch(const Dataset& data,
                                         std::span<double> out,
                                         std::size_t num_threads) const {
  DROPPKT_EXPECT(compiled(), "CompiledForest: predict before compile/load");
  DROPPKT_EXPECT(
      data.num_features() == static_cast<std::size_t>(num_features_),
      "CompiledForest::predict_proba_batch: dataset width mismatch");
  DROPPKT_EXPECT(
      out.size() == data.size() * static_cast<std::size_t>(num_classes_),
      "CompiledForest::predict_proba_batch: bad output buffer size");
  if (data.size() == 0) return;
  // Dataset storage is row-major and contiguous, so its rows form one
  // matrix span starting at row 0.
  batch_rows({data.row(0).data(), data.size() * data.num_features()}, out,
             num_threads);
}

void CompiledForest::save(std::ostream& os) const {
  DROPPKT_EXPECT(compiled(), "CompiledForest::save: not compiled");
  os.precision(std::numeric_limits<double>::max_digits10);
  const std::size_t n = num_nodes();  // logical nodes, sentinel excluded
  os << "droppkt-cf v1\n";
  os << num_classes_ << ' ' << num_features_ << ' ' << roots_.size() << ' '
     << n << ' ' << leaf_probs_.size() << '\n';
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    os << roots_[t] << (t + 1 == roots_.size() ? '\n' : ' ');
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (left_[i] == static_cast<std::int32_t>(i)) {
      // Leaf, stored logically: feature -1, offset into the prob pool.
      os << "-1 0 " << leaf_off_[i] << '\n';
    } else {
      os << feature_[i] << ' ' << threshold_[i] << ' ' << left_[i] << '\n';
    }
  }
  const auto c_count = static_cast<std::size_t>(num_classes_);
  for (std::size_t i = 0; i < leaf_probs_.size(); ++i) {
    os << leaf_probs_[i] << ((i + 1) % c_count == 0 ? '\n' : ' ');
  }
}

void CompiledForest::save_file(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("CompiledForest: cannot open " + path);
  save(ofs);
  if (!ofs) throw std::runtime_error("CompiledForest: write failed " + path);
}

CompiledForest CompiledForest::load(std::istream& is) {
  std::string header;
  std::getline(is, header);
  if (header != "droppkt-cf v1") {
    cf_parse_fail("unrecognized header '" + header + "'");
  }
  std::size_t n_features = 0, n_trees = 0, n_nodes = 0, n_leaf = 0;
  CompiledForest cf;
  is >> cf.num_classes_ >> n_features >> n_trees >> n_nodes >> n_leaf;
  if (!is.good()) cf_parse_fail("truncated dimensions");
  const auto c_count = static_cast<std::size_t>(cf.num_classes_);
  if (cf.num_classes_ < 1 || c_count > kMaxLoadClasses || n_features < 1 ||
      n_features > kMaxLoadFeatures || n_trees < 1 ||
      n_trees > kMaxLoadTrees || n_nodes < 1 || n_nodes > kMaxLoadNodes ||
      n_leaf < c_count || n_leaf > kMaxLoadNodes * 2 ||
      n_leaf % c_count != 0) {
    cf_parse_fail("implausible dimensions");
  }
  cf.num_features_ = static_cast<std::int32_t>(n_features);
  cf.roots_.resize(n_trees);
  for (auto& root : cf.roots_) {
    is >> root;
    if (is.fail()) cf_parse_fail("truncated roots");
    if (root < 0 || static_cast<std::size_t>(root) >= n_nodes) {
      cf_parse_fail("root index out of range");
    }
  }
  cf.feature_.resize(n_nodes);
  cf.threshold_.resize(n_nodes);
  cf.left_.resize(n_nodes);
  cf.leaf_off_.assign(n_nodes, 0);
  // In-degree guard: every node may be the child of at most one internal
  // node and roots of none — together with "children follow parents"
  // this forces a forest of proper disjoint trees, so the fixed-depth
  // descent computed below reaches a leaf on every path.
  std::vector<std::uint8_t> indegree(n_nodes, 0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    std::int32_t feature = 0, left = 0;
    double threshold = 0.0;
    is >> feature >> threshold >> left;
    if (is.fail()) cf_parse_fail("truncated node " + std::to_string(i));
    if (feature >= 0) {
      // Internal: children must exist and strictly follow the parent.
      if (static_cast<std::size_t>(feature) >= n_features ||
          !std::isfinite(threshold) || left <= static_cast<std::int32_t>(i) ||
          static_cast<std::size_t>(left) + 2 > n_nodes) {
        cf_parse_fail("malformed internal node " + std::to_string(i));
      }
      const auto l = static_cast<std::size_t>(left);
      if (++indegree[l] > 1 || ++indegree[l + 1] > 1) {
        cf_parse_fail("node with multiple parents");
      }
      cf.feature_[i] = feature;
      cf.threshold_[i] = threshold;
      cf.left_[i] = left;
    } else if (feature != -1 || left < 0 ||
               static_cast<std::size_t>(left) % c_count != 0 ||
               static_cast<std::size_t>(left) + c_count > n_leaf) {
      cf_parse_fail("malformed leaf node " + std::to_string(i));
    } else {
      // Leaf: install the self-loop hot form directly.
      cf.feature_[i] = 0;
      cf.threshold_[i] = kInf;
      cf.left_[i] = static_cast<std::int32_t>(i);
      cf.leaf_off_[i] = left;
    }
  }
  for (const std::int32_t root : cf.roots_) {
    if (indegree[static_cast<std::size_t>(root)] != 0) {
      cf_parse_fail("root is another node's child");
    }
  }
  cf.leaf_probs_.resize(n_leaf);
  for (std::size_t i = 0; i < n_leaf; ++i) {
    is >> cf.leaf_probs_[i];
    if (is.fail()) cf_parse_fail("truncated leaf distributions");
    if (!std::isfinite(cf.leaf_probs_[i]) || cf.leaf_probs_[i] < 0.0) {
      cf_parse_fail("invalid leaf probability");
    }
  }
  cf.compute_depths();
  cf.append_sentinel();
  return cf;
}

CompiledForest CompiledForest::load_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("CompiledForest: cannot open " + path);
  return load(ifs);
}

}  // namespace droppkt::ml
