#include "ml/dataset.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>

#include "util/csv.hpp"
#include "util/expect.hpp"

namespace droppkt::ml {

Dataset::Dataset(std::vector<std::string> feature_names, int num_classes)
    : feature_names_(std::move(feature_names)), num_classes_(num_classes) {
  DROPPKT_EXPECT(!feature_names_.empty(), "Dataset: need at least one feature");
  DROPPKT_EXPECT(num_classes_ >= 1, "Dataset: need at least one class");
}

void Dataset::reserve(std::size_t n_rows) {
  data_.reserve(n_rows * feature_names_.size());
  labels_.reserve(n_rows);
}

void Dataset::add_row(std::span<const double> features, int label) {
  DROPPKT_EXPECT(features.size() == feature_names_.size(),
                 "Dataset::add_row: row width must match feature names");
  DROPPKT_EXPECT(label >= 0 && label < num_classes_,
                 "Dataset::add_row: label out of range");
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::add_row(std::vector<double> features, int label) {
  add_row(std::span<const double>(features), label);
}

std::span<const double> Dataset::row(std::size_t i) const {
  DROPPKT_EXPECT(i < labels_.size(), "Dataset::row: index out of range");
  return {data_.data() + i * feature_names_.size(), feature_names_.size()};
}

int Dataset::label(std::size_t i) const {
  DROPPKT_EXPECT(i < labels_.size(), "Dataset::label: index out of range");
  return labels_[i];
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (int l : labels_) ++counts[static_cast<std::size_t>(l)];
  return counts;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_, num_classes_);
  out.reserve(indices.size());
  for (std::size_t i : indices) {
    auto r = row(i);
    out.add_row(std::vector<double>(r.begin(), r.end()), label(i));
  }
  return out;
}

Dataset Dataset::select_features(const std::vector<std::string>& names) const {
  std::vector<std::size_t> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    auto it = std::find(feature_names_.begin(), feature_names_.end(), name);
    DROPPKT_EXPECT(it != feature_names_.end(),
                   "Dataset::select_features: unknown feature '" + name + "'");
    cols.push_back(static_cast<std::size_t>(it - feature_names_.begin()));
  }
  Dataset out(names, num_classes_);
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    auto r = row(i);
    std::vector<double> sel;
    sel.reserve(cols.size());
    for (std::size_t c : cols) sel.push_back(r[c]);
    out.add_row(std::move(sel), label(i));
  }
  return out;
}

ColumnMatrix::ColumnMatrix(const Dataset& data)
    : num_rows_(data.size()), num_features_(data.num_features()) {
  data_.resize(num_rows_ * num_features_);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const auto r = data.row(i);
    for (std::size_t f = 0; f < num_features_; ++f) {
      data_[f * num_rows_ + i] = r[f];
    }
  }

  sorted_rows_.resize(num_rows_ * num_features_);
  sorted_vals_.resize(num_rows_ * num_features_);
  for (std::size_t f = 0; f < num_features_; ++f) {
    const double* col = data_.data() + f * num_rows_;
    std::uint32_t* rows = sorted_rows_.data() + f * num_rows_;
    double* vals = sorted_vals_.data() + f * num_rows_;
    std::iota(rows, rows + num_rows_, std::uint32_t{0});
    std::sort(rows, rows + num_rows_, [col](std::uint32_t a, std::uint32_t b) {
      return col[a] != col[b] ? col[a] < col[b] : a < b;
    });
    for (std::size_t i = 0; i < num_rows_; ++i) vals[i] = col[rows[i]];
  }
}

void ColumnMatrix::build_bins(std::size_t max_bins) {
  DROPPKT_EXPECT(max_bins >= 2 && max_bins <= kMaxBins,
                 "ColumnMatrix::build_bins: max_bins must be in [2, 256]");
  DROPPKT_EXPECT(num_rows_ >= 1, "ColumnMatrix::build_bins: empty matrix");
  binned_.assign(num_rows_ * num_features_, 0);
  bin_count_.assign(num_features_, 0);
  bin_thresholds_.assign(num_features_ * kMaxBins,
                         std::numeric_limits<double>::infinity());

  for (std::size_t f = 0; f < num_features_; ++f) {
    const double* vals = sorted_vals_.data() + f * num_rows_;
    const std::uint32_t* rows = sorted_rows_.data() + f * num_rows_;
    std::uint8_t* bins = binned_.data() + f * num_rows_;
    double* thresholds = bin_thresholds_.data() + f * kMaxBins;

    // Walk the sorted column, closing a bin at the first distinct-value
    // boundary at or past each equal-frequency target. Integer targets
    // (cum * max_bins >= (made + 1) * N) keep the cuts exact and
    // deterministic; a feature with <= max_bins distinct values gets one
    // bin per value.
    std::size_t bin = 0;
    std::size_t i = 0;
    while (i < num_rows_) {
      // Group of equal values [i, j).
      std::size_t j = i + 1;
      while (j < num_rows_ && vals[j] == vals[i]) ++j;
      for (std::size_t k = i; k < j; ++k) {
        bins[rows[k]] = static_cast<std::uint8_t>(bin);
      }
      const bool last_group = j == num_rows_;
      // Close this bin once the equal-frequency quota is met (and a bin
      // remains to open); otherwise later groups keep joining it.
      const bool quota = j * max_bins >= (bin + 1) * num_rows_;
      if (!last_group && quota && bin + 1 < max_bins) {
        // Boundary between vals[j-1] and vals[j]: midpoint, with the
        // same collapse guard as the exact split search (adjacent
        // doubles can round onto the upper value).
        double thr = 0.5 * (vals[j - 1] + vals[j]);
        if (!(thr >= vals[j - 1] && thr < vals[j])) thr = vals[j - 1];
        thresholds[bin] = thr;
        ++bin;
      }
      i = j;
    }
    bin_count_[f] = static_cast<std::uint32_t>(bin + 1);
  }
}

int Dataset::majority_class() const {
  const auto counts = class_counts();
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

void Dataset::write_csv(std::ostream& os) const {
  auto header = feature_names_;
  header.push_back("label");
  util::CsvTable table(std::move(header));
  // Full precision so a round-trip reproduces the matrix exactly.
  auto precise = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (std::size_t i = 0; i < size(); ++i) {
    std::vector<std::string> cells;
    cells.reserve(num_features() + 1);
    for (double v : row(i)) cells.push_back(precise(v));
    cells.push_back(std::to_string(label(i)));
    table.add_row(std::move(cells));
  }
  table.write(os);
}

void Dataset::write_csv_file(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("Dataset: cannot open " + path);
  write_csv(ofs);
  if (!ofs) throw std::runtime_error("Dataset: write failed " + path);
}

Dataset Dataset::read_csv(std::istream& is, int num_classes) {
  const auto table = util::CsvTable::read(is);
  DROPPKT_EXPECT(table.num_cols() >= 2,
                 "Dataset::read_csv: need features plus a label column");
  DROPPKT_EXPECT(table.header().back() == "label",
                 "Dataset::read_csv: last column must be 'label'");
  std::vector<std::string> names(table.header().begin(),
                                 table.header().end() - 1);
  const std::size_t label_col = table.num_cols() - 1;
  int max_label = 0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    max_label = std::max(max_label,
                         static_cast<int>(table.at_double(r, label_col)));
  }
  Dataset data(std::move(names),
               num_classes > 0 ? num_classes : max_label + 1);
  data.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<double> row;
    row.reserve(label_col);
    for (std::size_t c = 0; c < label_col; ++c) {
      row.push_back(table.at_double(r, c));
    }
    data.add_row(std::move(row), static_cast<int>(table.at_double(r, label_col)));
  }
  return data;
}

Dataset Dataset::read_csv_file(const std::string& path, int num_classes) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("Dataset: cannot open " + path);
  return read_csv(ifs, num_classes);
}

std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       std::size_t k,
                                                       util::Rng& rng) {
  DROPPKT_EXPECT(k >= 2, "stratified_folds: need at least 2 folds");
  DROPPKT_EXPECT(data.size() >= k, "stratified_folds: need at least k rows");
  // Group indices by class, shuffle within class, deal round-robin.
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(data.num_classes()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.label(i))].push_back(i);
  }
  std::vector<std::vector<std::size_t>> folds(k);
  for (auto& cls : by_class) {
    const auto perm = rng.permutation(cls.size());
    for (std::size_t j = 0; j < cls.size(); ++j) {
      folds[j % k].push_back(cls[perm[j]]);
    }
  }
  for (auto& f : folds) std::sort(f.begin(), f.end());
  return folds;
}

std::vector<std::size_t> fold_complement(std::size_t n,
                                         std::span<const std::size_t> fold) {
  std::vector<bool> in_fold(n, false);
  for (std::size_t i : fold) {
    DROPPKT_EXPECT(i < n, "fold_complement: index out of range");
    in_fold[i] = true;
  }
  std::vector<std::size_t> out;
  out.reserve(n - fold.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_fold[i]) out.push_back(i);
  }
  return out;
}

}  // namespace droppkt::ml
