#include "ml/preprocess.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace droppkt::ml {

void Standardizer::fit(const Dataset& data) {
  DROPPKT_EXPECT(data.size() > 0, "Standardizer: cannot fit on empty data");
  const std::size_t f = data.num_features();
  mean_.assign(f, 0.0);
  scale_.assign(f, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) mean_[j] += row[j];
  }
  for (auto& m : mean_) m /= static_cast<double>(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) {
      const double d = row[j] - mean_[j];
      scale_[j] += d * d;
    }
  }
  for (auto& s : scale_) {
    s = std::sqrt(s / static_cast<double>(data.size()));
    if (s < 1e-12) s = 1.0;  // constant feature: pass through
  }
}

std::vector<double> Standardizer::transform(std::span<const double> row) const {
  DROPPKT_EXPECT(fitted(), "Standardizer: transform before fit");
  DROPPKT_EXPECT(row.size() == mean_.size(),
                 "Standardizer: row width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / scale_[j];
  }
  return out;
}

Dataset Standardizer::transform(const Dataset& data) const {
  Dataset out(data.feature_names(), data.num_classes());
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.add_row(transform(data.row(i)), data.label(i));
  }
  return out;
}

}  // namespace droppkt::ml
