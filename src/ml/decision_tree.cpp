#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "util/expect.hpp"

namespace droppkt::ml {

namespace {

double gini(const std::vector<double>& weighted_counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : weighted_counts) {
    const double p = c / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeParams params)
    : params_(std::move(params)) {
  DROPPKT_EXPECT(params_.max_depth >= 1, "DecisionTree: max_depth must be >= 1");
  DROPPKT_EXPECT(params_.min_samples_leaf >= 1,
                 "DecisionTree: min_samples_leaf must be >= 1");
  for (double w : params_.class_weights) {
    DROPPKT_EXPECT(w > 0.0, "DecisionTree: class weights must be positive");
  }
}

double DecisionTree::class_weight(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  return c < params_.class_weights.size() ? params_.class_weights[c] : 1.0;
}

void DecisionTree::fit(const Dataset& train) {
  std::vector<std::size_t> all(train.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  fit_on(train, all);
}

void DecisionTree::fit_on(const Dataset& train,
                          std::span<const std::size_t> indices) {
  DROPPKT_EXPECT(!indices.empty(), "DecisionTree: cannot fit on empty sample");
  nodes_.clear();
  num_classes_ = train.num_classes();
  num_features_ = train.num_features();
  fit_sample_count_ = indices.size();
  importance_.assign(num_features_, 0.0);
  util::Rng rng(params_.seed);
  std::vector<std::size_t> idx(indices.begin(), indices.end());
  build(train, idx, 0, rng);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& indices, int depth,
                                 util::Rng& rng) {
  // Weighted class distribution at this node.
  std::vector<double> counts(static_cast<std::size_t>(num_classes_), 0.0);
  double total_weight = 0.0;
  for (std::size_t i : indices) {
    const double w = class_weight(data.label(i));
    counts[static_cast<std::size_t>(data.label(i))] += w;
    total_weight += w;
  }
  const double node_gini = gini(counts, total_weight);

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.feature = -1;
    leaf.leaf_class = static_cast<std::int32_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    leaf.class_probs.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      leaf.class_probs[c] = counts[c] / total_weight;
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool pure = node_gini <= 1e-12;
  if (pure || depth >= params_.max_depth ||
      indices.size() < params_.min_samples_split) {
    return make_leaf();
  }

  // Candidate features: all, or a fresh random subset per split.
  std::vector<std::size_t> features;
  if (params_.max_features == 0 || params_.max_features >= num_features_) {
    features.resize(num_features_);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    const auto perm = rng.permutation(num_features_);
    features.assign(perm.begin(),
                    perm.begin() + static_cast<std::ptrdiff_t>(params_.max_features));
  }

  // Best split search.
  struct Best {
    double impurity = 1e18;
    int feature = -1;
    double threshold = 0.0;
  } best;

  std::vector<std::pair<double, int>> sorted;  // (value, label)
  sorted.reserve(indices.size());
  std::vector<double> left_counts(static_cast<std::size_t>(num_classes_));

  for (std::size_t f : features) {
    sorted.clear();
    for (std::size_t i : indices) {
      sorted.emplace_back(data.row(i)[f], data.label(i));
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double w_left = 0.0;
    std::size_t n_left = 0;
    const std::size_t n = sorted.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double w = class_weight(sorted[i].second);
      left_counts[static_cast<std::size_t>(sorted[i].second)] += w;
      w_left += w;
      ++n_left;
      if (sorted[i].first == sorted[i + 1].first) continue;  // not a boundary
      const std::size_t n_right = n - n_left;
      if (n_left < params_.min_samples_leaf || n_right < params_.min_samples_leaf)
        continue;
      const double w_right = total_weight - w_left;
      if (w_right <= 0.0) continue;
      // Right counts = node counts - left counts.
      double right_gini_sum = 0.0;
      double left_gini_sum = 0.0;
      for (std::size_t c = 0; c < left_counts.size(); ++c) {
        const double pl = left_counts[c] / w_left;
        left_gini_sum += pl * pl;
        const double pr = (counts[c] - left_counts[c]) / w_right;
        right_gini_sum += pr * pr;
      }
      const double weighted =
          (w_left * (1.0 - left_gini_sum) + w_right * (1.0 - right_gini_sum)) /
          total_weight;
      if (weighted < best.impurity) {
        best.impurity = weighted;
        best.feature = static_cast<int>(f);
        // Midpoint, unless rounding collapses it onto the upper value (for
        // adjacent doubles) — then split exactly at the lower value.
        double thr = 0.5 * (sorted[i].first + sorted[i + 1].first);
        if (!(thr >= sorted[i].first && thr < sorted[i + 1].first)) {
          thr = sorted[i].first;
        }
        best.threshold = thr;
      }
    }
  }

  if (best.feature < 0 || best.impurity >= node_gini - 1e-12) {
    return make_leaf();
  }

  // Gini importance: impurity decrease weighted by the node's share of the
  // training sample.
  importance_[static_cast<std::size_t>(best.feature)] +=
      (node_gini - best.impurity) * static_cast<double>(indices.size()) /
      static_cast<double>(fit_sample_count_);

  // Partition indices.
  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    if (data.row(i)[static_cast<std::size_t>(best.feature)] <= best.threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  DROPPKT_ENSURE(!left_idx.empty() && !right_idx.empty(),
                 "DecisionTree: degenerate split");
  indices.clear();
  indices.shrink_to_fit();

  Node node;
  node.feature = best.feature;
  node.threshold = best.threshold;
  nodes_.push_back(std::move(node));
  const auto me = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t l = build(data, left_idx, depth + 1, rng);
  const std::int32_t r = build(data, right_idx, depth + 1, rng);
  nodes_[static_cast<std::size_t>(me)].left = l;
  nodes_[static_cast<std::size_t>(me)].right = r;
  return me;
}

const DecisionTree::Node& DecisionTree::descend(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!nodes_.empty(), "DecisionTree: predict before fit");
  DROPPKT_EXPECT(features.size() == num_features_,
                 "DecisionTree: feature width mismatch");
  std::size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = static_cast<std::size_t>(
        features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right);
  }
  return nodes_[cur];
}

int DecisionTree::predict(std::span<const double> features) const {
  return descend(features).leaf_class;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  return descend(features).class_probs;
}

void DecisionTree::save(std::ostream& os) const {
  DROPPKT_EXPECT(!nodes_.empty(), "DecisionTree::save: tree is not fitted");
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "tree " << num_classes_ << ' ' << num_features_ << ' ' << nodes_.size()
     << '\n';
  for (const auto& n : nodes_) {
    os << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
       << ' ' << n.leaf_class;
    os << ' ' << n.class_probs.size();
    for (double p : n.class_probs) os << ' ' << p;
    os << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& is) {
  std::string tag;
  DecisionTree tree;
  std::size_t node_count = 0;
  is >> tag >> tree.num_classes_ >> tree.num_features_ >> node_count;
  DROPPKT_EXPECT(is.good() && tag == "tree",
                 "DecisionTree::load: bad header");
  DROPPKT_EXPECT(tree.num_classes_ >= 1 && tree.num_features_ >= 1 &&
                     node_count >= 1,
                 "DecisionTree::load: implausible dimensions");
  tree.nodes_.resize(node_count);
  for (auto& n : tree.nodes_) {
    std::size_t n_probs = 0;
    is >> n.feature >> n.threshold >> n.left >> n.right >> n.leaf_class >>
        n_probs;
    DROPPKT_EXPECT(is.good(), "DecisionTree::load: truncated node");
    DROPPKT_EXPECT(n.feature < static_cast<int>(tree.num_features_),
                   "DecisionTree::load: feature index out of range");
    n.class_probs.resize(n_probs);
    for (auto& p : n.class_probs) is >> p;
    if (n.feature >= 0) {
      DROPPKT_EXPECT(
          n.left >= 0 && n.right >= 0 &&
              n.left < static_cast<std::int32_t>(node_count) &&
              n.right < static_cast<std::int32_t>(node_count),
          "DecisionTree::load: child index out of range");
    }
  }
  DROPPKT_EXPECT(!is.fail(), "DecisionTree::load: truncated input");
  tree.importance_.assign(tree.num_features_, 0.0);
  tree.fit_sample_count_ = 0;
  return tree;
}

int DecisionTree::depth() const {
  // Iterative depth via parent-less traversal: root is node 0.
  if (nodes_.empty()) return 0;
  int max_depth = 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[i];
    if (n.feature >= 0) {
      stack.push_back({static_cast<std::size_t>(n.left), d + 1});
      stack.push_back({static_cast<std::size_t>(n.right), d + 1});
    }
  }
  return max_depth;
}

}  // namespace droppkt::ml
