#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "util/expect.hpp"

namespace droppkt::ml {

namespace {

double gini(const std::vector<double>& weighted_counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : weighted_counts) {
    const double p = c / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

// Window size at or above which a histogram node carries a full
// (all-features x kMaxBins) histogram, enabling parent-minus-sibling
// subtraction for the larger child. Below it, full-histogram zeroing and
// subtraction (O(F x bins)) would dwarf the node's own O(F x W) work, so
// small nodes accumulate compact candidate-only histograms instead, with
// clears and scans bounded by the window's occupied bins.
constexpr std::size_t kFullHistWindow = 2 * droppkt::ml::ColumnMatrix::kMaxBins;

}  // namespace

// Presorted split-search state, built once per fit_on and partitioned down
// the tree (scikit-learn style). Sample *positions* (0..n-1, one per
// bootstrap draw) are the unit of bookkeeping so repeated row indices stay
// distinct. Every node owns the same window [begin, end) in each feature's
// order/value arrays; `vals` mirrors `order` so the scan is sequential.
struct DecisionTree::FitContext {
  explicit FitContext(const ColumnMatrix& cols) : columns(cols) {}

  const ColumnMatrix& columns;
  std::size_t n = 0;              // sample count (positions)
  std::size_t num_features = 0;

  std::vector<std::uint32_t> order;  // num_features x n: positions by value
  std::vector<double> vals;          // num_features x n: value at order[...]
  std::vector<std::uint32_t> row_of_pos;
  std::vector<std::int32_t> label_of_pos;
  std::vector<double> weight_of_pos;

  // Per-node scratch (reused; no allocation inside build()).
  std::vector<std::uint8_t> goes_left;   // indexed by position
  std::vector<std::uint32_t> tmp_order;
  std::vector<double> tmp_vals;
  std::vector<double> counts;       // per-class, node distribution
  std::vector<double> left_counts;  // per-class, split scan

  std::uint32_t* feature_order(std::size_t f) { return order.data() + f * n; }
  double* feature_vals(std::size_t f) { return vals.data() + f * n; }
};

// Histogram split-search state (SplitMethod::kHistogram), built once per
// fit_on. Unlike the presorted FitContext, only ONE position array is
// partitioned down the tree — O(W) per node instead of O(F·W) — and each
// node's candidate scan reads per-feature class histograms accumulated
// over its window in O(W).
//
// Histogram memory: "full" histograms (all features x kMaxBins x stride)
// live in a slot stack, two slots per depth, so the larger child's
// histogram is derived from the parent's by subtracting the
// directly-accumulated smaller sibling (the LightGBM trick); slots deeper
// in the stack are untouched by a sibling's subtree, which is what makes
// the per-depth pair safe. Nodes whose larger child would fall below
// kFullHistWindow stop carrying full histograms; their descendants
// accumulate compact candidate-only histograms whose clears and scans are
// bounded by the window's occupied bins, not the bin count.
struct DecisionTree::HistContext {
  explicit HistContext(const ColumnMatrix& cols) : columns(cols) {}

  const ColumnMatrix& columns;
  std::size_t n = 0;
  std::size_t num_features = 0;
  std::size_t num_classes = 0;
  std::size_t stride = 0;     // num_classes weights + 1 sample count
  std::size_t full_size = 0;  // num_features x kMaxBins x stride

  std::vector<std::uint32_t> pos;      // positions, partitioned down tree
  std::vector<std::uint32_t> tmp_pos;  // partition scratch
  std::vector<std::uint32_t> row_of_pos;
  std::vector<std::int32_t> label_of_pos;
  std::vector<double> weight_of_pos;

  std::vector<double> counts;                   // node class distribution
  std::vector<double> left_counts;              // split-scan cumulative
  std::vector<std::vector<double>> full_slots;  // indexed by slot id
  std::vector<double> compact;         // candidates x kMaxBins x stride
  std::vector<std::uint32_t> occupied; // compact scan: bins in window
  std::vector<std::size_t> features;   // candidate scratch

  /// Size slot `s` on first use (outer vector may reallocate — re-fetch
  /// references after calling).
  void ensure_slot(std::size_t s) {
    if (full_slots.size() <= s) full_slots.resize(s + 1);
    if (full_slots[s].size() != full_size) full_slots[s].resize(full_size);
  }

  /// Zero + accumulate every feature's histogram over the window.
  void accumulate_full(std::size_t begin, std::size_t end,
                       std::vector<double>& hist) {
    std::fill(hist.begin(), hist.end(), 0.0);
    for (std::size_t f = 0; f < num_features; ++f) {
      const std::uint8_t* bins = columns.bin_column(f).data();
      double* h = hist.data() + f * ColumnMatrix::kMaxBins * stride;
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t p = pos[i];
        double* cell =
            h + static_cast<std::size_t>(bins[row_of_pos[p]]) * stride;
        cell[static_cast<std::size_t>(label_of_pos[p])] += weight_of_pos[p];
        cell[num_classes] += 1.0;
      }
    }
  }

  /// out = parent - small, elementwise. Exact for the integer-valued
  /// sample counts; weighted class cells can carry rounding dust, which
  /// the gini math tolerates (and leaf probabilities never come from
  /// histograms — they are re-accumulated per node from positions).
  void subtract_full(const std::vector<double>& parent,
                     const std::vector<double>& small,
                     std::vector<double>& out) {
    for (std::size_t i = 0; i < full_size; ++i) out[i] = parent[i] - small[i];
  }
};

DecisionTree::DecisionTree(DecisionTreeParams params)
    : params_(std::move(params)) {
  DROPPKT_EXPECT(params_.max_depth >= 1, "DecisionTree: max_depth must be >= 1");
  DROPPKT_EXPECT(params_.min_samples_leaf >= 1,
                 "DecisionTree: min_samples_leaf must be >= 1");
  for (double w : params_.class_weights) {
    DROPPKT_EXPECT(w > 0.0, "DecisionTree: class weights must be positive");
  }
}

double DecisionTree::class_weight(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  return c < params_.class_weights.size() ? params_.class_weights[c] : 1.0;
}

void DecisionTree::fit(const Dataset& train) {
  std::vector<std::size_t> all(train.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  fit_on(train, all);
}

void DecisionTree::fit_on(const Dataset& train,
                          std::span<const std::size_t> indices) {
  ColumnMatrix columns(train);
  if (params_.split_method == SplitMethod::kHistogram) columns.build_bins();
  fit_on(train, indices, columns);
}

void DecisionTree::fit_on(const Dataset& train,
                          std::span<const std::size_t> indices,
                          const ColumnMatrix& columns) {
  DROPPKT_EXPECT(!indices.empty(), "DecisionTree: cannot fit on empty sample");
  DROPPKT_EXPECT(columns.num_rows() == train.size() &&
                     columns.num_features() == train.num_features(),
                 "DecisionTree: column matrix does not match dataset");
  nodes_.clear();
  num_classes_ = train.num_classes();
  num_features_ = train.num_features();
  fit_sample_count_ = indices.size();
  importance_.assign(num_features_, 0.0);
  util::Rng rng(params_.seed);

  if (params_.split_method == SplitMethod::kHistogram) {
    fit_histogram(train, indices, columns, rng);
    return;
  }

  FitContext ctx(columns);
  const std::size_t n = indices.size();
  ctx.n = n;
  ctx.num_features = num_features_;
  ctx.row_of_pos.resize(n);
  ctx.label_of_pos.resize(n);
  ctx.weight_of_pos.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    const auto row = static_cast<std::uint32_t>(indices[p]);
    ctx.row_of_pos[p] = row;
    ctx.label_of_pos[p] = train.label(row);
    ctx.weight_of_pos[p] = class_weight(ctx.label_of_pos[p]);
  }

  // Derive this sample's sorted layout from the ColumnMatrix's global
  // presort with a counting merge: walk each feature's rows in value order
  // and expand every row into the positions that drew it. O(F * (N + n))
  // instead of re-sorting each feature per tree, and deterministic — ties
  // in value follow (row, position) order, which never affects the chosen
  // splits (boundaries only exist between distinct values).
  ctx.order.resize(num_features_ * n);
  ctx.vals.resize(num_features_ * n);
  const std::size_t num_rows = columns.num_rows();
  std::vector<std::uint32_t> row_start(num_rows + 1, 0);
  for (std::size_t p = 0; p < n; ++p) ++row_start[ctx.row_of_pos[p] + 1];
  for (std::size_t r = 0; r < num_rows; ++r) row_start[r + 1] += row_start[r];
  std::vector<std::uint32_t> pos_by_row(n);
  {
    std::vector<std::uint32_t> cursor(row_start.begin(), row_start.end() - 1);
    for (std::size_t p = 0; p < n; ++p) {
      pos_by_row[cursor[ctx.row_of_pos[p]]++] = static_cast<std::uint32_t>(p);
    }
  }
  for (std::size_t f = 0; f < num_features_; ++f) {
    const auto sorted_rows = columns.sorted_rows(f);
    const auto sorted_vals = columns.sorted_values(f);
    auto* order = ctx.feature_order(f);
    auto* vals = ctx.feature_vals(f);
    std::size_t k = 0;
    for (std::size_t i = 0; i < num_rows; ++i) {
      const std::uint32_t r = sorted_rows[i];
      for (std::uint32_t j = row_start[r]; j < row_start[r + 1]; ++j) {
        order[k] = pos_by_row[j];
        vals[k] = sorted_vals[i];
        ++k;
      }
    }
  }

  ctx.goes_left.resize(n);
  ctx.tmp_order.resize(n);
  ctx.tmp_vals.resize(n);
  ctx.counts.resize(static_cast<std::size_t>(num_classes_));
  ctx.left_counts.resize(static_cast<std::size_t>(num_classes_));

  build(ctx, 0, n, 0, rng);
}

std::int32_t DecisionTree::build(FitContext& ctx, std::size_t begin,
                                 std::size_t end, int depth, util::Rng& rng) {
  const std::size_t window = end - begin;
  // Weighted class distribution at this node; any feature's window holds
  // the same position set, so enumerate via feature 0.
  std::vector<double>& counts = ctx.counts;
  std::fill(counts.begin(), counts.end(), 0.0);
  double total_weight = 0.0;
  {
    const auto* order = ctx.feature_order(0) + begin;
    for (std::size_t i = 0; i < window; ++i) {
      const std::uint32_t pos = order[i];
      counts[static_cast<std::size_t>(ctx.label_of_pos[pos])] +=
          ctx.weight_of_pos[pos];
      total_weight += ctx.weight_of_pos[pos];
    }
  }
  const double node_gini = gini(counts, total_weight);

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.feature = -1;
    leaf.leaf_class = static_cast<std::int32_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    leaf.class_probs.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      leaf.class_probs[c] = counts[c] / total_weight;
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool pure = node_gini <= 1e-12;
  if (pure || depth >= params_.max_depth ||
      window < params_.min_samples_split) {
    return make_leaf();
  }

  // Candidate features: all, or a fresh random subset per split.
  std::vector<std::size_t> features;
  if (params_.max_features == 0 || params_.max_features >= num_features_) {
    features.resize(num_features_);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    const auto perm = rng.permutation(num_features_);
    features.assign(perm.begin(),
                    perm.begin() + static_cast<std::ptrdiff_t>(params_.max_features));
  }

  // Best split search: one linear scan per candidate feature over its
  // presorted window.
  struct Best {
    double impurity = 1e18;
    int feature = -1;
    double threshold = 0.0;
  } best;

  std::vector<double>& left_counts = ctx.left_counts;

  for (std::size_t f : features) {
    const double* vals = ctx.feature_vals(f) + begin;
    const std::uint32_t* order = ctx.feature_order(f) + begin;
    if (vals[0] == vals[window - 1]) continue;  // constant in this node

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double w_left = 0.0;
    std::size_t n_left = 0;
    for (std::size_t i = 0; i + 1 < window; ++i) {
      const std::uint32_t pos = order[i];
      const double w = ctx.weight_of_pos[pos];
      left_counts[static_cast<std::size_t>(ctx.label_of_pos[pos])] += w;
      w_left += w;
      ++n_left;
      if (vals[i] == vals[i + 1]) continue;  // not a boundary
      const std::size_t n_right = window - n_left;
      if (n_left < params_.min_samples_leaf || n_right < params_.min_samples_leaf)
        continue;
      const double w_right = total_weight - w_left;
      if (w_right <= 0.0) continue;
      // Right counts = node counts - left counts.
      double right_gini_sum = 0.0;
      double left_gini_sum = 0.0;
      for (std::size_t c = 0; c < left_counts.size(); ++c) {
        const double pl = left_counts[c] / w_left;
        left_gini_sum += pl * pl;
        const double pr = (counts[c] - left_counts[c]) / w_right;
        right_gini_sum += pr * pr;
      }
      const double weighted =
          (w_left * (1.0 - left_gini_sum) + w_right * (1.0 - right_gini_sum)) /
          total_weight;
      if (weighted < best.impurity) {
        best.impurity = weighted;
        best.feature = static_cast<int>(f);
        // Midpoint, unless rounding collapses it onto the upper value (for
        // adjacent doubles) — then split exactly at the lower value.
        double thr = 0.5 * (vals[i] + vals[i + 1]);
        if (!(thr >= vals[i] && thr < vals[i + 1])) {
          thr = vals[i];
        }
        best.threshold = thr;
      }
    }
  }

  if (best.feature < 0 || best.impurity >= node_gini - 1e-12) {
    return make_leaf();
  }

  // Gini importance: impurity decrease weighted by the node's share of the
  // training sample.
  importance_[static_cast<std::size_t>(best.feature)] +=
      (node_gini - best.impurity) * static_cast<double>(window) /
      static_cast<double>(fit_sample_count_);

  // Mark each position's side using the winning feature's window (values
  // are aligned with positions there).
  std::size_t n_left = 0;
  {
    const double* vals = ctx.feature_vals(best.feature) + begin;
    const std::uint32_t* order =
        ctx.feature_order(static_cast<std::size_t>(best.feature)) + begin;
    for (std::size_t i = 0; i < window; ++i) {
      const bool left = vals[i] <= best.threshold;
      ctx.goes_left[order[i]] = left ? 1 : 0;
      n_left += left ? 1 : 0;
    }
  }
  DROPPKT_ENSURE(n_left > 0 && n_left < window,
                 "DecisionTree: degenerate split");

  // Stable-partition every feature's window into [left | right], preserving
  // sort order within each side — children windows stay presorted.
  for (std::size_t f = 0; f < num_features_; ++f) {
    std::uint32_t* order = ctx.feature_order(f) + begin;
    double* vals = ctx.feature_vals(f) + begin;
    std::size_t lw = 0, rw = 0;
    for (std::size_t i = 0; i < window; ++i) {
      if (ctx.goes_left[order[i]]) {
        order[lw] = order[i];
        vals[lw] = vals[i];
        ++lw;
      } else {
        ctx.tmp_order[rw] = order[i];
        ctx.tmp_vals[rw] = vals[i];
        ++rw;
      }
    }
    std::copy(ctx.tmp_order.begin(),
              ctx.tmp_order.begin() + static_cast<std::ptrdiff_t>(rw),
              order + lw);
    std::copy(ctx.tmp_vals.begin(),
              ctx.tmp_vals.begin() + static_cast<std::ptrdiff_t>(rw),
              vals + lw);
  }

  Node node;
  node.feature = best.feature;
  node.threshold = best.threshold;
  nodes_.push_back(std::move(node));
  const auto me = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t l = build(ctx, begin, begin + n_left, depth + 1, rng);
  const std::int32_t r = build(ctx, begin + n_left, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(me)].left = l;
  nodes_[static_cast<std::size_t>(me)].right = r;
  return me;
}

void DecisionTree::fit_histogram(const Dataset& train,
                                 std::span<const std::size_t> indices,
                                 const ColumnMatrix& columns,
                                 util::Rng& rng) {
  DROPPKT_EXPECT(columns.bins_built(),
                 "DecisionTree: histogram split requires binned columns "
                 "(ColumnMatrix::build_bins)");
  HistContext ctx(columns);
  const std::size_t n = indices.size();
  ctx.n = n;
  ctx.num_features = num_features_;
  ctx.num_classes = static_cast<std::size_t>(num_classes_);
  ctx.stride = ctx.num_classes + 1;
  ctx.full_size = num_features_ * ColumnMatrix::kMaxBins * ctx.stride;
  ctx.pos.resize(n);
  ctx.tmp_pos.resize(n);
  ctx.row_of_pos.resize(n);
  ctx.label_of_pos.resize(n);
  ctx.weight_of_pos.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    const auto row = static_cast<std::uint32_t>(indices[p]);
    ctx.pos[p] = static_cast<std::uint32_t>(p);
    ctx.row_of_pos[p] = row;
    ctx.label_of_pos[p] = train.label(row);
    ctx.weight_of_pos[p] = class_weight(ctx.label_of_pos[p]);
  }
  ctx.counts.resize(ctx.num_classes);
  ctx.left_counts.resize(ctx.num_classes);
  const std::size_t max_cand =
      params_.max_features == 0 || params_.max_features >= num_features_
          ? num_features_
          : params_.max_features;
  ctx.compact.assign(max_cand * ColumnMatrix::kMaxBins * ctx.stride, 0.0);

  int root_slot = -1;
  if (n >= kFullHistWindow) {
    root_slot = 0;
    ctx.ensure_slot(0);
    ctx.accumulate_full(0, n, ctx.full_slots[0]);
  }
  build_hist(ctx, 0, n, 0, root_slot, rng);
}

std::int32_t DecisionTree::build_hist(HistContext& ctx, std::size_t begin,
                                      std::size_t end, int depth,
                                      int hist_slot, util::Rng& rng) {
  const std::size_t window = end - begin;
  // Node class distribution, accumulated directly from the positions:
  // clean zeros for leaf probabilities even when the slot histogram was
  // derived by subtraction.
  std::vector<double>& counts = ctx.counts;
  std::fill(counts.begin(), counts.end(), 0.0);
  double total_weight = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t p = ctx.pos[i];
    counts[static_cast<std::size_t>(ctx.label_of_pos[p])] +=
        ctx.weight_of_pos[p];
    total_weight += ctx.weight_of_pos[p];
  }
  const double node_gini = gini(counts, total_weight);

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.feature = -1;
    leaf.leaf_class = static_cast<std::int32_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    leaf.class_probs.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      leaf.class_probs[c] = counts[c] / total_weight;
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool pure = node_gini <= 1e-12;
  if (pure || depth >= params_.max_depth ||
      window < params_.min_samples_split) {
    return make_leaf();
  }

  // Candidate features: same selection protocol as the exact path, so a
  // given seed explores the same feature subsets under either method.
  std::vector<std::size_t>& features = ctx.features;
  if (params_.max_features == 0 || params_.max_features >= num_features_) {
    features.resize(num_features_);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    const auto perm = rng.permutation(num_features_);
    features.assign(
        perm.begin(),
        perm.begin() + static_cast<std::ptrdiff_t>(params_.max_features));
  }

  struct Best {
    double impurity = 1e18;
    int feature = -1;
    int bin = -1;  // split after this bin: bin index <= bin goes left
  } best;

  std::vector<double>& left_counts = ctx.left_counts;
  const auto min_leaf_d = static_cast<double>(params_.min_samples_leaf);
  const auto window_d = static_cast<double>(window);
  const std::size_t stride = ctx.stride;

  // Evaluate the boundary after bin `b` given cumulative left stats.
  auto evaluate = [&](std::size_t f, std::size_t b, double w_left,
                      double n_left_d) {
    const double n_right_d = window_d - n_left_d;
    if (n_left_d < min_leaf_d || n_right_d < min_leaf_d) return;
    const double w_right = total_weight - w_left;
    if (w_left <= 0.0 || w_right <= 0.0) return;
    double left_gini_sum = 0.0;
    double right_gini_sum = 0.0;
    for (std::size_t c = 0; c < left_counts.size(); ++c) {
      const double pl = left_counts[c] / w_left;
      left_gini_sum += pl * pl;
      const double pr = (counts[c] - left_counts[c]) / w_right;
      right_gini_sum += pr * pr;
    }
    const double weighted = (w_left * (1.0 - left_gini_sum) +
                             w_right * (1.0 - right_gini_sum)) /
                            total_weight;
    if (weighted < best.impurity) {
      best.impurity = weighted;
      best.feature = static_cast<int>(f);
      best.bin = static_cast<int>(b);
    }
  };

  if (hist_slot >= 0) {
    // Full histogram available (accumulated or subtraction-derived):
    // cumulative scan over each candidate's bins, skipping empty ones —
    // a boundary after an empty bin repeats the previous partition.
    const std::vector<double>& hist =
        ctx.full_slots[static_cast<std::size_t>(hist_slot)];
    for (std::size_t f : features) {
      const double* h = hist.data() + f * ColumnMatrix::kMaxBins * stride;
      const std::size_t nb = ctx.columns.num_bins(f);
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      double w_left = 0.0;
      double n_left_d = 0.0;
      for (std::size_t b = 0; b < nb; ++b) {
        const double* cell = h + b * stride;
        const double cnt = cell[ctx.num_classes];
        if (cnt == 0.0) continue;
        for (std::size_t c = 0; c < left_counts.size(); ++c) {
          left_counts[c] += cell[c];
          w_left += cell[c];
        }
        n_left_d += cnt;
        evaluate(f, b, w_left, n_left_d);
      }
    }
  } else {
    // Compact path: accumulate only the candidate features, clear only
    // the cells this window touches (stale from earlier nodes), and scan
    // only the occupied bins in ascending order — every cost is bounded
    // by the window, not the bin count.
    for (std::size_t ci = 0; ci < features.size(); ++ci) {
      const std::size_t f = features[ci];
      double* h = ctx.compact.data() + ci * ColumnMatrix::kMaxBins * stride;
      const std::uint8_t* bins = ctx.columns.bin_column(f).data();
      for (std::size_t i = begin; i < end; ++i) {
        double* cell =
            h + static_cast<std::size_t>(bins[ctx.row_of_pos[ctx.pos[i]]]) *
                    stride;
        for (std::size_t s = 0; s < stride; ++s) cell[s] = 0.0;
      }
      ctx.occupied.clear();
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t p = ctx.pos[i];
        const auto b = static_cast<std::size_t>(bins[ctx.row_of_pos[p]]);
        double* cell = h + b * stride;
        if (cell[ctx.num_classes] == 0.0) {
          ctx.occupied.push_back(static_cast<std::uint32_t>(b));
        }
        cell[static_cast<std::size_t>(ctx.label_of_pos[p])] +=
            ctx.weight_of_pos[p];
        cell[ctx.num_classes] += 1.0;
      }
      std::sort(ctx.occupied.begin(), ctx.occupied.end());
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      double w_left = 0.0;
      double n_left_d = 0.0;
      for (const std::uint32_t b : ctx.occupied) {
        const double* cell = h + static_cast<std::size_t>(b) * stride;
        for (std::size_t c = 0; c < left_counts.size(); ++c) {
          left_counts[c] += cell[c];
          w_left += cell[c];
        }
        n_left_d += cell[ctx.num_classes];
        evaluate(f, b, w_left, n_left_d);
      }
    }
  }

  if (best.feature < 0 || best.impurity >= node_gini - 1e-12) {
    return make_leaf();
  }

  importance_[static_cast<std::size_t>(best.feature)] +=
      (node_gini - best.impurity) * static_cast<double>(window) /
      static_cast<double>(fit_sample_count_);

  // Stable-partition the position window by bin index — left keeps its
  // order in place, right goes through the scratch buffer.
  const std::uint8_t* best_bins =
      ctx.columns.bin_column(static_cast<std::size_t>(best.feature)).data();
  std::size_t lw = 0;
  std::size_t rw = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t p = ctx.pos[i];
    if (best_bins[ctx.row_of_pos[p]] <= best.bin) {
      ctx.pos[begin + lw] = p;
      ++lw;
    } else {
      ctx.tmp_pos[rw] = p;
      ++rw;
    }
  }
  std::copy(ctx.tmp_pos.begin(),
            ctx.tmp_pos.begin() + static_cast<std::ptrdiff_t>(rw),
            ctx.pos.begin() + static_cast<std::ptrdiff_t>(begin + lw));
  const std::size_t n_left = lw;
  DROPPKT_ENSURE(n_left > 0 && n_left < window,
                 "DecisionTree: degenerate histogram split");

  Node node;
  node.feature = best.feature;
  node.threshold = ctx.columns.bin_threshold(
      static_cast<std::size_t>(best.feature),
      static_cast<std::size_t>(best.bin));
  nodes_.push_back(std::move(node));
  const auto me = static_cast<std::int32_t>(nodes_.size() - 1);

  // Children histograms: when this node carried a full histogram and a
  // child is large enough to profit, accumulate the smaller child
  // directly and derive the larger by parent-minus-sibling subtraction.
  // The smaller child's slot is passed down too — it is already paid for.
  int left_slot = -1;
  int right_slot = -1;
  const std::size_t right_w = window - n_left;
  if (hist_slot >= 0 && std::max(n_left, right_w) >= kFullHistWindow) {
    const int small_slot = 2 * (depth + 1);
    const int large_slot = small_slot + 1;
    const bool left_is_small = n_left <= right_w;
    const std::size_t sb = left_is_small ? begin : begin + n_left;
    const std::size_t se = left_is_small ? begin + n_left : end;
    ctx.ensure_slot(static_cast<std::size_t>(small_slot));
    ctx.ensure_slot(static_cast<std::size_t>(large_slot));
    ctx.accumulate_full(sb, se,
                        ctx.full_slots[static_cast<std::size_t>(small_slot)]);
    ctx.subtract_full(ctx.full_slots[static_cast<std::size_t>(hist_slot)],
                      ctx.full_slots[static_cast<std::size_t>(small_slot)],
                      ctx.full_slots[static_cast<std::size_t>(large_slot)]);
    left_slot = left_is_small ? small_slot : large_slot;
    right_slot = left_is_small ? large_slot : small_slot;
  }
  const std::int32_t l =
      build_hist(ctx, begin, begin + n_left, depth + 1, left_slot, rng);
  const std::int32_t r =
      build_hist(ctx, begin + n_left, end, depth + 1, right_slot, rng);
  nodes_[static_cast<std::size_t>(me)].left = l;
  nodes_[static_cast<std::size_t>(me)].right = r;
  return me;
}

const DecisionTree::Node& DecisionTree::descend(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!nodes_.empty(), "DecisionTree: predict before fit");
  DROPPKT_EXPECT(features.size() == num_features_,
                 "DecisionTree: feature width mismatch");
  std::size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = static_cast<std::size_t>(
        features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right);
    // Per-hop on the prediction hot path, so debug-only; load() validates
    // child indices up front and fit() emits them by construction.
    DROPPKT_ASSERT(cur < nodes_.size(),
                   "DecisionTree: descend left the node array");
  }
  return nodes_[cur];
}

int DecisionTree::predict(std::span<const double> features) const {
  return descend(features).leaf_class;
}

std::span<const double> DecisionTree::predict_proba_ref(
    std::span<const double> features) const {
  return descend(features).class_probs;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  const auto probs = predict_proba_ref(features);
  return {probs.begin(), probs.end()};
}

void DecisionTree::save(std::ostream& os) const {
  DROPPKT_EXPECT(!nodes_.empty(), "DecisionTree::save: tree is not fitted");
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "tree " << num_classes_ << ' ' << num_features_ << ' ' << nodes_.size()
     << '\n';
  for (const auto& n : nodes_) {
    os << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
       << ' ' << n.leaf_class;
    os << ' ' << n.class_probs.size();
    for (double p : n.class_probs) os << ' ' << p;
    os << '\n';
  }
}

namespace {

// Deserialization sanity caps — a model file is operator-supplied input,
// and a claimed dimension past these is hostile or corrupt. Rejecting it
// before allocating is what turns the fuzzers' "absurd length" crashes
// (multi-GiB resize from one 16-byte header) into typed errors.
constexpr std::size_t kMaxLoadClasses = 4096;
constexpr std::size_t kMaxLoadFeatures = 1 << 20;
constexpr std::size_t kMaxLoadNodes = 1 << 24;

[[noreturn]] void tree_parse_fail(const std::string& what) {
  throw ParseError("DecisionTree::load: " + what);
}

}  // namespace

DecisionTree DecisionTree::load(std::istream& is) {
  std::string tag;
  DecisionTree tree;
  std::size_t node_count = 0;
  is >> tag >> tree.num_classes_ >> tree.num_features_ >> node_count;
  if (!is.good() || tag != "tree") tree_parse_fail("bad header");
  if (tree.num_classes_ < 1 ||
      static_cast<std::size_t>(tree.num_classes_) > kMaxLoadClasses ||
      tree.num_features_ < 1 || tree.num_features_ > kMaxLoadFeatures ||
      node_count < 1 || node_count > kMaxLoadNodes) {
    tree_parse_fail("implausible dimensions");
  }
  // Grow incrementally: a hostile node count can only allocate as many
  // nodes as the stream actually provides before hitting truncation.
  tree.nodes_.reserve(std::min<std::size_t>(node_count, 4096));
  for (std::size_t i = 0; i < node_count; ++i) {
    Node n;
    std::size_t n_probs = 0;
    is >> n.feature >> n.threshold >> n.left >> n.right >> n.leaf_class >>
        n_probs;
    if (!is.good()) tree_parse_fail("truncated node");
    if (n.feature >= static_cast<int>(tree.num_features_)) {
      tree_parse_fail("feature index out of range");
    }
    if (n.feature >= 0) {
      // Internal node: children must point strictly past this node (the
      // order save() emits), which both bounds them and proves traversal
      // terminates — a crafted file cannot smuggle in a cycle.
      const auto self = static_cast<std::int32_t>(i);
      if (n.left <= self || n.right <= self ||
          n.left >= static_cast<std::int32_t>(node_count) ||
          n.right >= static_cast<std::int32_t>(node_count)) {
        tree_parse_fail("child indices out of order or out of range");
      }
      if (n_probs != 0) tree_parse_fail("internal node carries class probs");
    } else {
      // Leaf: the distribution must cover every class exactly.
      if (n_probs != static_cast<std::size_t>(tree.num_classes_)) {
        tree_parse_fail("leaf prob count != num_classes");
      }
      if (n.leaf_class < 0 ||
          n.leaf_class >= static_cast<std::int32_t>(tree.num_classes_)) {
        tree_parse_fail("leaf class out of range");
      }
    }
    n.class_probs.resize(n_probs);
    for (auto& p : n.class_probs) {
      is >> p;
      if (is.fail()) tree_parse_fail("truncated class probs");
    }
    tree.nodes_.push_back(std::move(n));
  }
  if (is.fail()) tree_parse_fail("truncated input");
  tree.importance_.assign(tree.num_features_, 0.0);
  tree.fit_sample_count_ = 0;
  return tree;
}

int DecisionTree::depth() const {
  // Iterative depth via parent-less traversal: root is node 0.
  if (nodes_.empty()) return 0;
  int max_depth = 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[i];
    if (n.feature >= 0) {
      stack.push_back({static_cast<std::size_t>(n.left), d + 1});
      stack.push_back({static_cast<std::size_t>(n.right), d + 1});
    }
  }
  return max_depth;
}

}  // namespace droppkt::ml
