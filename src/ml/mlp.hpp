// Multilayer perceptron (comparison model): one ReLU hidden layer,
// softmax output, mini-batch SGD with momentum on standardized features.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace droppkt::ml {

struct MlpParams {
  std::size_t hidden_units = 64;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double l2 = 1e-5;
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  std::uint64_t seed = 23;
};

class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(MlpParams params = {});

  void fit(const Dataset& train) override;
  int predict(std::span<const double> features) const override;
  std::vector<double> predict_proba(std::span<const double> features) const override;

 private:
  std::vector<double> forward(const std::vector<double>& x,
                              std::vector<double>* hidden_out) const;

  MlpParams params_;
  Standardizer scaler_;
  // w1: hidden x (in+1), w2: out x (hidden+1); bias folded into last column.
  std::vector<std::vector<double>> w1_, w2_;
  std::size_t in_dim_ = 0;
  int num_classes_ = 0;
};

}  // namespace droppkt::ml
