#include "ml/baseline.hpp"

#include "util/expect.hpp"

namespace droppkt::ml {

void MajorityClassifier::fit(const Dataset& train) {
  DROPPKT_EXPECT(train.size() > 0, "MajorityClassifier: empty training set");
  majority_ = train.majority_class();
  const auto counts = train.class_counts();
  prior_.resize(counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    prior_[c] = static_cast<double>(counts[c]) /
                static_cast<double>(train.size());
  }
}

int MajorityClassifier::predict(std::span<const double> /*features*/) const {
  DROPPKT_EXPECT(!prior_.empty(), "MajorityClassifier: predict before fit");
  return majority_;
}

std::vector<double> MajorityClassifier::predict_proba(
    std::span<const double> /*features*/) const {
  DROPPKT_EXPECT(!prior_.empty(), "MajorityClassifier: predict before fit");
  return prior_;
}

}  // namespace droppkt::ml
