#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {

MlpClassifier::MlpClassifier(MlpParams params) : params_(params) {
  DROPPKT_EXPECT(params_.hidden_units >= 1, "Mlp: need >= 1 hidden unit");
  DROPPKT_EXPECT(params_.batch_size >= 1, "Mlp: batch size must be >= 1");
}

std::vector<double> MlpClassifier::forward(const std::vector<double>& x,
                                           std::vector<double>* hidden_out) const {
  std::vector<double> h(params_.hidden_units);
  for (std::size_t u = 0; u < params_.hidden_units; ++u) {
    const auto& w = w1_[u];
    double a = w[in_dim_];  // bias
    for (std::size_t j = 0; j < in_dim_; ++j) a += w[j] * x[j];
    h[u] = a > 0.0 ? a : 0.0;  // ReLU
  }
  if (hidden_out != nullptr) *hidden_out = h;
  std::vector<double> z(static_cast<std::size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) {
    const auto& w = w2_[static_cast<std::size_t>(c)];
    double a = w[params_.hidden_units];
    for (std::size_t u = 0; u < params_.hidden_units; ++u) a += w[u] * h[u];
    z[static_cast<std::size_t>(c)] = a;
  }
  // Softmax.
  const double mx = *std::max_element(z.begin(), z.end());
  double total = 0.0;
  for (auto& v : z) {
    v = std::exp(v - mx);
    total += v;
  }
  for (auto& v : z) v /= total;
  return z;
}

void MlpClassifier::fit(const Dataset& train) {
  DROPPKT_EXPECT(train.size() >= 2, "Mlp: need >= 2 rows");
  scaler_.fit(train);
  num_classes_ = train.num_classes();
  in_dim_ = train.num_features();

  util::Rng rng(params_.seed);
  const double init1 = std::sqrt(2.0 / static_cast<double>(in_dim_));
  const double init2 = std::sqrt(2.0 / static_cast<double>(params_.hidden_units));
  w1_.assign(params_.hidden_units, std::vector<double>(in_dim_ + 1, 0.0));
  w2_.assign(static_cast<std::size_t>(num_classes_),
             std::vector<double>(params_.hidden_units + 1, 0.0));
  for (auto& row : w1_) {
    for (std::size_t j = 0; j < in_dim_; ++j) row[j] = rng.normal(0.0, init1);
  }
  for (auto& row : w2_) {
    for (std::size_t u = 0; u < params_.hidden_units; ++u) {
      row[u] = rng.normal(0.0, init2);
    }
  }

  std::vector<std::vector<double>> x;
  x.reserve(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    x.push_back(scaler_.transform(train.row(i)));
  }

  auto v1 = w1_;  // momentum buffers, zero-initialized below
  auto v2 = w2_;
  for (auto& r : v1) std::fill(r.begin(), r.end(), 0.0);
  for (auto& r : v2) std::fill(r.begin(), r.end(), 0.0);

  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    const double lr =
        params_.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    const auto order = rng.permutation(train.size());
    for (std::size_t start = 0; start < order.size();
         start += params_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + params_.batch_size);
      // Gradient accumulators.
      auto g1 = w1_;
      auto g2 = w2_;
      for (auto& r : g1) std::fill(r.begin(), r.end(), 0.0);
      for (auto& r : g2) std::fill(r.begin(), r.end(), 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t i = order[bi];
        std::vector<double> h;
        const auto p = forward(x[i], &h);
        // dL/dz = p - y (softmax + cross-entropy).
        std::vector<double> dz(p);
        dz[static_cast<std::size_t>(train.label(i))] -= 1.0;
        // Output layer gradients + backprop into hidden.
        std::vector<double> dh(params_.hidden_units, 0.0);
        for (int c = 0; c < num_classes_; ++c) {
          const double d = dz[static_cast<std::size_t>(c)];
          auto& g = g2[static_cast<std::size_t>(c)];
          const auto& w = w2_[static_cast<std::size_t>(c)];
          for (std::size_t u = 0; u < params_.hidden_units; ++u) {
            g[u] += d * h[u];
            dh[u] += d * w[u];
          }
          g[params_.hidden_units] += d;
        }
        for (std::size_t u = 0; u < params_.hidden_units; ++u) {
          if (h[u] <= 0.0) continue;  // ReLU gate
          auto& g = g1[u];
          for (std::size_t j = 0; j < in_dim_; ++j) g[j] += dh[u] * x[i][j];
          g[in_dim_] += dh[u];
        }
      }

      const double scale = 1.0 / static_cast<double>(end - start);
      auto apply = [&](std::vector<std::vector<double>>& w,
                       std::vector<std::vector<double>>& v,
                       std::vector<std::vector<double>>& g) {
        for (std::size_t r = 0; r < w.size(); ++r) {
          for (std::size_t c = 0; c < w[r].size(); ++c) {
            const double grad = g[r][c] * scale + params_.l2 * w[r][c];
            v[r][c] = params_.momentum * v[r][c] - lr * grad;
            w[r][c] += v[r][c];
          }
        }
      };
      apply(w1_, v1, g1);
      apply(w2_, v2, g2);
    }
  }
}

std::vector<double> MlpClassifier::predict_proba(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!w1_.empty(), "Mlp: predict before fit");
  return forward(scaler_.transform(features), nullptr);
}

int MlpClassifier::predict(std::span<const double> features) const {
  const auto p = predict_proba(features);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace droppkt::ml
