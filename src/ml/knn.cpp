#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::ml {

KnnClassifier::KnnClassifier(KnnParams params) : params_(params) {
  DROPPKT_EXPECT(params_.k >= 1, "KnnClassifier: k must be >= 1");
}

void KnnClassifier::fit(const Dataset& train) {
  DROPPKT_EXPECT(train.size() >= 1, "KnnClassifier: empty training set");
  scaler_.fit(train);
  points_.clear();
  points_.reserve(train.size());
  labels_.clear();
  labels_.reserve(train.size());
  num_classes_ = train.num_classes();
  for (std::size_t i = 0; i < train.size(); ++i) {
    points_.push_back(scaler_.transform(train.row(i)));
    labels_.push_back(train.label(i));
  }
}

std::vector<std::pair<double, int>> KnnClassifier::neighbours(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!points_.empty(), "KnnClassifier: predict before fit");
  const auto q = scaler_.transform(features);
  std::vector<std::pair<double, int>> dist;
  dist.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    double d2 = 0.0;
    const auto& p = points_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      const double d = p[j] - q[j];
      d2 += d * d;
    }
    dist.emplace_back(d2, labels_[i]);
  }
  const std::size_t k = std::min(params_.k, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  dist.resize(k);
  return dist;
}

std::vector<double> KnnClassifier::predict_proba(
    std::span<const double> features) const {
  const auto nn = neighbours(features);
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& [d2, label] : nn) {
    votes[static_cast<std::size_t>(label)] += 1.0 / (1.0 + std::sqrt(d2));
  }
  double total = 0.0;
  for (double v : votes) total += v;
  if (total > 0.0) {
    for (auto& v : votes) v /= total;
  }
  return votes;
}

int KnnClassifier::predict(std::span<const double> features) const {
  const auto p = predict_proba(features);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace droppkt::ml
