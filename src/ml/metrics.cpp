#include "ml/metrics.hpp"

#include "util/expect.hpp"
#include "util/render.hpp"

namespace droppkt::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<std::size_t>(num_classes) *
                 static_cast<std::size_t>(num_classes),
             0) {
  DROPPKT_EXPECT(num_classes_ >= 1, "ConfusionMatrix: need >= 1 class");
}

void ConfusionMatrix::add(int actual, int predicted) {
  DROPPKT_EXPECT(actual >= 0 && actual < num_classes_,
                 "ConfusionMatrix::add: actual out of range");
  DROPPKT_EXPECT(predicted >= 0 && predicted < num_classes_,
                 "ConfusionMatrix::add: predicted out of range");
  ++cells_[static_cast<std::size_t>(actual) *
               static_cast<std::size_t>(num_classes_) +
           static_cast<std::size_t>(predicted)];
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  DROPPKT_EXPECT(other.num_classes_ == num_classes_,
                 "ConfusionMatrix::merge: class-count mismatch");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

std::size_t ConfusionMatrix::count(int actual, int predicted) const {
  DROPPKT_EXPECT(actual >= 0 && actual < num_classes_ && predicted >= 0 &&
                     predicted < num_classes_,
                 "ConfusionMatrix::count: index out of range");
  return cells_[static_cast<std::size_t>(actual) *
                    static_cast<std::size_t>(num_classes_) +
                static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::total() const {
  std::size_t t = 0;
  for (auto c : cells_) t += c;
  return t;
}

std::size_t ConfusionMatrix::actual_total(int cls) const {
  std::size_t t = 0;
  for (int p = 0; p < num_classes_; ++p) t += count(cls, p);
  return t;
}

std::size_t ConfusionMatrix::predicted_total(int cls) const {
  std::size_t t = 0;
  for (int a = 0; a < num_classes_; ++a) t += count(a, cls);
  return t;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(n);
}

double ConfusionMatrix::precision(int cls) const {
  const std::size_t denom = predicted_total(cls);
  if (denom == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(denom);
}

double ConfusionMatrix::recall(int cls) const {
  const std::size_t denom = actual_total(cls);
  if (denom == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(denom);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_recall() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) sum += recall(c);
  return sum / num_classes_;
}

double ConfusionMatrix::macro_precision() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) sum += precision(c);
  return sum / num_classes_;
}

std::string ConfusionMatrix::render(
    const std::vector<std::string>& class_names) const {
  DROPPKT_EXPECT(class_names.size() == static_cast<std::size_t>(num_classes_),
                 "ConfusionMatrix::render: one name per class");
  std::vector<std::string> header{"actual", "#sessions"};
  for (const auto& n : class_names) header.push_back("-> " + n);
  util::TextTable table(std::move(header));
  for (int a = 0; a < num_classes_; ++a) {
    const std::size_t row_total = actual_total(a);
    std::vector<std::string> row{class_names[static_cast<std::size_t>(a)],
                                 std::to_string(row_total)};
    for (int p = 0; p < num_classes_; ++p) {
      const double frac =
          row_total ? static_cast<double>(count(a, p)) /
                          static_cast<double>(row_total)
                    : 0.0;
      row.push_back(util::pct(frac));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace droppkt::ml
