// Stratified k-fold cross-validation — the paper's evaluation protocol
// ("we use 5-fold cross validation for evaluating accuracy").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace droppkt::ml {

struct CrossValidationResult {
  ConfusionMatrix pooled;             // predictions pooled over all folds
  std::vector<double> fold_accuracy;  // per-fold accuracy

  explicit CrossValidationResult(int num_classes) : pooled(num_classes) {}

  double accuracy() const { return pooled.accuracy(); }
  double recall(int cls) const { return pooled.recall(cls); }
  double precision(int cls) const { return pooled.precision(cls); }
};

/// Run stratified k-fold CV. `make_model` is invoked once per fold so every
/// fold trains a fresh, identically-configured classifier.
///
/// `num_threads` sets the worker count of ONE shared util::ThreadPool
/// (0 = hardware concurrency, 1 = sequential; for pool-trainable models
/// the pool is capped at physical concurrency — extra CPU-bound workers
/// only add scheduler churn). PoolTrainable models (the
/// random forest) train fold after fold in order, each fit fanning its
/// trees out across every worker — fold x tree granularity, so the pool
/// stays busy through the end of each fold instead of idling behind the
/// slowest of k fold-sized tasks, and the thread count is never multiplied
/// by the model's own. Other models fall back to one fold per worker.
/// Factories run sequentially before any fold starts (they may share
/// state), fold results merge in fold order, and the fold split is drawn
/// once up front — so the result is bit-identical for every thread count
/// and both granularities.
CrossValidationResult cross_validate(
    const Dataset& data,
    const std::function<std::unique_ptr<Classifier>()>& make_model,
    std::size_t k = 5, std::uint64_t seed = 1234,
    std::size_t num_threads = 1);

}  // namespace droppkt::ml
