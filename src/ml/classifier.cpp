#include "ml/classifier.hpp"

namespace droppkt::ml {

std::vector<double> Classifier::predict_proba(
    std::span<const double> features) const {
  // Fallback one-hot; concrete models override with real probabilities.
  std::vector<double> proba;
  const int cls = predict(features);
  proba.resize(static_cast<std::size_t>(cls) + 1, 0.0);
  proba[static_cast<std::size_t>(cls)] = 1.0;
  return proba;
}

std::vector<int> Classifier::predict_all(const Dataset& data) const {
  std::vector<int> preds;
  preds.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    preds.push_back(predict(data.row(i)));
  }
  return preds;
}

}  // namespace droppkt::ml
