// k-nearest-neighbours classifier (one of the paper's comparison models).
#pragma once

#include <vector>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace droppkt::ml {

struct KnnParams {
  std::size_t k = 7;
};

/// Brute-force k-NN on standardized features with majority voting
/// (distance-weighted to break ties deterministically).
class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnParams params = {});

  void fit(const Dataset& train) override;
  int predict(std::span<const double> features) const override;
  std::vector<double> predict_proba(std::span<const double> features) const override;

 private:
  std::vector<std::pair<double, int>> neighbours(
      std::span<const double> features) const;

  KnnParams params_;
  Standardizer scaler_;
  std::vector<std::vector<double>> points_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

}  // namespace droppkt::ml
