// CART decision-tree classifier (Gini impurity).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {

/// How fit_on searches for the best split at each node.
enum class SplitMethod {
  /// Presorted exact search over every distinct-value boundary.
  kExact,
  /// Histogram search over quantized feature bins (requires a
  /// ColumnMatrix with build_bins() called). O(rows) accumulation per
  /// node instead of presorted O(features x rows) scans, with
  /// parent-minus-sibling histogram subtraction for the larger child.
  /// Split quality is approximate (boundaries only exist between bins);
  /// the training bench gates the accuracy delta against kExact.
  kHistogram,
};

struct DecisionTreeParams {
  int max_depth = 24;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Features considered per split; 0 means all (plain CART). Random
  /// forests pass ~sqrt(num_features).
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
  /// Per-class sample weights for impurity and leaf probabilities; empty
  /// means uniform. Up-weighting a class trades precision for recall on
  /// it (e.g. an ISP chasing low-QoE sessions).
  std::vector<double> class_weights;
  /// Split search algorithm; kHistogram needs binned columns (the
  /// three-argument fit_on overload with ColumnMatrix::build_bins done).
  SplitMethod split_method = SplitMethod::kExact;
};

/// Single CART tree. Supports fitting on a row subset (indices may repeat —
/// bootstrap sample) and reports per-feature impurity decrease for Gini
/// importance.
///
/// Split search uses a presorted column-index structure: each feature's
/// sample order is sorted once per fit (O(F·N log N)) and then partitioned
/// down the tree, so every node's search is a linear scan — O(F·W) for a
/// window of W samples instead of the naive O(F·W log W) re-sort.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeParams params = {});

  void fit(const Dataset& train) override;

  /// Fit on a subset of rows (indices may repeat — bootstrap sample).
  void fit_on(const Dataset& train, std::span<const std::size_t> indices);

  /// Same, reusing a caller-built column-major copy of `train` — a forest
  /// transposes once and shares it (read-only) across all trees/threads.
  void fit_on(const Dataset& train, std::span<const std::size_t> indices,
              const ColumnMatrix& columns);

  int predict(std::span<const double> features) const override;
  std::vector<double> predict_proba(std::span<const double> features) const override;

  /// Allocation-free probability lookup: a view of the leaf's stored
  /// distribution, valid while the tree is alive and unmodified.
  std::span<const double> predict_proba_ref(std::span<const double> features) const;

  /// Total impurity decrease attributed to each feature (unnormalized).
  const std::vector<double>& impurity_decrease() const { return importance_; }

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// Dimensions the tree was fitted (or loaded) with; 0 before either.
  /// RandomForest::load uses these to reject model files whose trees
  /// disagree with the forest header.
  int num_classes() const { return num_classes_; }
  std::size_t num_features() const { return num_features_; }

  /// Serialize the fitted tree (text, line-based). Importances are not
  /// persisted — a loaded tree predicts but reports no importances.
  void save(std::ostream& os) const;
  /// Rebuild a tree from `save` output. Throws on malformed input.
  static DecisionTree load(std::istream& is);

  /// Read-only flat view of one node, for forest compilation/export.
  /// feature == -1 marks a leaf (class_probs valid, children unset);
  /// otherwise left/right index other nodes of the same tree. `i` must be
  /// < node_count(); node 0 is the root.
  struct NodeView {
    int feature;
    double threshold;  // go left if x[feature] <= threshold
    std::int32_t left;
    std::int32_t right;
    std::span<const double> class_probs;
  };
  NodeView node_view(std::size_t i) const {
    const Node& n = nodes_[i];
    return {n.feature, n.threshold, n.left, n.right,
            {n.class_probs.data(), n.class_probs.size()}};
  }

 private:
  struct Node {
    // Internal node: feature >= 0; leaf: feature == -1.
    int feature = -1;
    double threshold = 0.0;      // go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t leaf_class = 0;
    std::vector<double> class_probs;  // leaf only
  };

  struct FitContext;   // presorted per-feature orders; see decision_tree.cpp
  struct HistContext;  // binned histogram state; see decision_tree.cpp

  std::int32_t build(FitContext& ctx, std::size_t begin, std::size_t end,
                     int depth, util::Rng& rng);
  void fit_histogram(const Dataset& train,
                     std::span<const std::size_t> indices,
                     const ColumnMatrix& columns, util::Rng& rng);
  std::int32_t build_hist(HistContext& ctx, std::size_t begin,
                          std::size_t end, int depth, int hist_slot,
                          util::Rng& rng);
  const Node& descend(std::span<const double> features) const;
  double class_weight(int cls) const;

  DecisionTreeParams params_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::size_t fit_sample_count_ = 0;
};

}  // namespace droppkt::ml
