// Linear SVM (one-vs-rest, hinge loss, SGD) — comparison model.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace droppkt::ml {

// (comparison model used by the models-ablation bench)
struct LinearSvmParams {
  double learning_rate = 0.01;
  double l2 = 1e-4;
  std::size_t epochs = 60;
  std::uint64_t seed = 7;
};

/// One-vs-rest linear SVM trained with stochastic subgradient descent on
/// standardized features.
class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(LinearSvmParams params = {});

  void fit(const Dataset& train) override;
  int predict(std::span<const double> features) const override;
  std::vector<double> predict_proba(std::span<const double> features) const override;

  /// Raw decision margins per class.
  std::vector<double> decision_function(std::span<const double> features) const;

 private:
  LinearSvmParams params_;
  Standardizer scaler_;
  std::vector<std::vector<double>> weights_;  // per class, + bias at end
  int num_classes_ = 0;
};

}  // namespace droppkt::ml
