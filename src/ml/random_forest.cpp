#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {

RandomForest::RandomForest(RandomForestParams params) : params_(params) {
  DROPPKT_EXPECT(params_.num_trees >= 1, "RandomForest: need >= 1 tree");
}

void RandomForest::fit(const Dataset& train) {
  DROPPKT_EXPECT(train.size() >= 2, "RandomForest: need >= 2 training rows");
  trees_.clear();
  trees_.reserve(params_.num_trees);
  feature_names_ = train.feature_names();
  num_classes_ = train.num_classes();

  const std::size_t mtry =
      params_.max_features > 0
          ? params_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::floor(std::sqrt(static_cast<double>(
                           train.num_features())))));

  util::Rng rng(params_.seed);
  const std::size_t n = train.size();

  // OOB vote accumulation: votes[row][class].
  std::vector<std::vector<double>> oob_votes(
      n, std::vector<double>(static_cast<std::size_t>(num_classes_), 0.0));
  std::vector<bool> ever_oob(n, false);

  for (std::size_t t = 0; t < params_.num_trees; ++t) {
    // Bootstrap sample with replacement.
    std::vector<std::size_t> sample(n);
    std::vector<bool> in_bag(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      sample[i] = j;
      in_bag[j] = true;
    }
    DecisionTreeParams tp;
    tp.max_depth = params_.max_depth;
    tp.min_samples_leaf = params_.min_samples_leaf;
    tp.max_features = mtry;
    tp.seed = rng();
    tp.class_weights = params_.class_weights;
    DecisionTree tree(tp);
    tree.fit_on(train, sample);

    for (std::size_t i = 0; i < n; ++i) {
      if (in_bag[i]) continue;
      ever_oob[i] = true;
      const auto proba = tree.predict_proba(train.row(i));
      for (std::size_t c = 0; c < proba.size(); ++c) oob_votes[i][c] += proba[c];
    }
    trees_.push_back(std::move(tree));
  }

  // OOB error over rows that were out-of-bag at least once.
  std::size_t counted = 0, wrong = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!ever_oob[i]) continue;
    ++counted;
    const auto& v = oob_votes[i];
    const int pred = static_cast<int>(
        std::max_element(v.begin(), v.end()) - v.begin());
    if (pred != train.label(i)) ++wrong;
  }
  oob_error_ = counted
                   ? std::optional<double>(static_cast<double>(wrong) /
                                           static_cast<double>(counted))
                   : std::nullopt;
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest: predict before fit");
  std::vector<double> agg(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(features);
    for (std::size_t c = 0; c < p.size(); ++c) agg[c] += p[c];
  }
  const double total = static_cast<double>(trees_.size());
  for (auto& v : agg) v /= total;
  return agg;
}

int RandomForest::predict(std::span<const double> features) const {
  const auto p = predict_proba(features);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> RandomForest::feature_importances() const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest: importances before fit");
  std::vector<double> total(feature_names_.size(), 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.impurity_decrease();
    for (std::size_t f = 0; f < imp.size(); ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (auto& v : total) v /= sum;
  }
  return total;
}

void RandomForest::save(std::ostream& os) const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest::save: forest is not fitted");
  os << "droppkt-rf v1\n";
  os << num_classes_ << ' ' << feature_names_.size() << ' ' << trees_.size()
     << '\n';
  for (const auto& name : feature_names_) {
    os << util::csv_escape(name) << '\n';
  }
  for (const auto& tree : trees_) tree.save(os);
}

void RandomForest::save_file(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("RandomForest: cannot open " + path);
  save(ofs);
  if (!ofs) throw std::runtime_error("RandomForest: write failed " + path);
}

RandomForest RandomForest::load(std::istream& is) {
  std::string header;
  std::getline(is, header);
  DROPPKT_EXPECT(header == "droppkt-rf v1",
                 "RandomForest::load: unrecognized header '" + header + "'");
  std::size_t n_features = 0, n_trees = 0;
  RandomForest forest;
  is >> forest.num_classes_ >> n_features >> n_trees;
  DROPPKT_EXPECT(is.good() && forest.num_classes_ >= 1 && n_features >= 1 &&
                     n_trees >= 1,
                 "RandomForest::load: implausible dimensions");
  is.ignore(1, '\n');
  forest.feature_names_.reserve(n_features);
  for (std::size_t i = 0; i < n_features; ++i) {
    std::string line;
    std::getline(is, line);
    DROPPKT_EXPECT(is.good(), "RandomForest::load: truncated feature names");
    const auto fields = util::csv_split_line(line);
    DROPPKT_EXPECT(fields.size() == 1,
                   "RandomForest::load: malformed feature name line");
    forest.feature_names_.push_back(fields[0]);
  }
  forest.trees_.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    forest.trees_.push_back(DecisionTree::load(is));
  }
  forest.oob_error_ = std::nullopt;
  return forest;
}

RandomForest RandomForest::load_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("RandomForest: cannot open " + path);
  return load(ifs);
}

std::vector<std::pair<std::string, double>> RandomForest::ranked_importances()
    const {
  const auto imp = feature_importances();
  std::vector<std::pair<std::string, double>> ranked;
  ranked.reserve(imp.size());
  for (std::size_t f = 0; f < imp.size(); ++f) {
    ranked.emplace_back(feature_names_[f], imp[f]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

}  // namespace droppkt::ml
