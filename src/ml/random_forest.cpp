#include "ml/random_forest.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace droppkt::ml {

namespace {

// Stats-only phase clock for RandomForestParams::collect_timing: reads
// feed RandomForestFitTiming and never influence the fitted model (the
// analyzer's wallclock allowlist records this justification).
double timing_now_s(bool enabled) {
  if (!enabled) return 0.0;
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RandomForest::RandomForest(RandomForestParams params)
    : params_(std::move(params)) {
  DROPPKT_EXPECT(params_.num_trees >= 1, "RandomForest: need >= 1 tree");
  DROPPKT_EXPECT(params_.max_bins >= 2 &&
                     params_.max_bins <= ColumnMatrix::kMaxBins,
                 "RandomForest: max_bins must be in [2, 256]");
}

void RandomForest::fit(const Dataset& train) {
  const std::size_t threads = std::min(
      util::ThreadPool::resolve_threads(params_.num_threads),
      params_.num_trees);
  if (threads <= 1) {
    fit_impl(train, nullptr);
  } else {
    util::ThreadPool pool(threads);
    fit_impl(train, &pool);
  }
}

void RandomForest::fit_on_pool(const Dataset& train, util::ThreadPool& pool) {
  fit_impl(train, &pool);
}

void RandomForest::fit_impl(const Dataset& train, util::ThreadPool* pool) {
  DROPPKT_EXPECT(train.size() >= 2, "RandomForest: need >= 2 training rows");
  feature_names_ = train.feature_names();
  num_classes_ = train.num_classes();

  const std::size_t mtry =
      params_.max_features > 0
          ? params_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::floor(std::sqrt(static_cast<double>(
                           train.num_features())))));

  const std::size_t n = train.size();
  const std::size_t num_trees = params_.num_trees;
  const auto c_count = static_cast<std::size_t>(num_classes_);

  // Draw every random decision sequentially from the forest RNG — the
  // bootstrap sample and tree seed for tree t depend only on t, never on
  // scheduling — so the fitted forest is bit-identical for any thread
  // count (and matches a fully sequential fit).
  struct TreeJob {
    std::vector<std::size_t> sample;      // bootstrap rows (with repeats)
    std::vector<std::uint32_t> oob_rows;  // rows not drawn by this tree
    std::uint64_t tree_seed = 0;
    std::vector<double> oob_probs;  // oob_rows.size() x num_classes
  };
  const bool timing = params_.collect_timing;
  fit_timing_ = RandomForestFitTiming{};
  if (timing) fit_timing_.tree_seconds.assign(num_trees, 0.0);
  const double t_draw0 = timing_now_s(timing);

  std::vector<TreeJob> jobs(num_trees);
  util::Rng rng(params_.seed);
  std::vector<bool> in_bag(n);
  for (auto& job : jobs) {
    job.sample.resize(n);
    std::fill(in_bag.begin(), in_bag.end(), false);
    for (std::size_t i = 0; i < n; ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      job.sample[i] = j;
      in_bag[j] = true;
    }
    job.tree_seed = rng();
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_bag[i]) job.oob_rows.push_back(static_cast<std::uint32_t>(i));
    }
  }

  const double t_columns0 = timing_now_s(timing);
  if (timing) fit_timing_.bootstrap_draw_s = t_columns0 - t_draw0;

  // One shared column-major transpose for every tree's split presort —
  // and, in histogram mode, one shared quantization of every feature.
  ColumnMatrix columns(train);
  if (params_.split_method == SplitMethod::kHistogram) {
    columns.build_bins(params_.max_bins);
  }

  const double t_trees0 = timing_now_s(timing);
  if (timing) fit_timing_.column_build_s = t_trees0 - t_columns0;

  trees_.assign(num_trees, DecisionTree{});
  auto train_one = [&](std::size_t t) {
    const double t_tree0 = timing_now_s(timing);
    TreeJob& job = jobs[t];
    DecisionTreeParams tp;
    tp.max_depth = params_.max_depth;
    tp.min_samples_leaf = params_.min_samples_leaf;
    tp.max_features = mtry;
    tp.seed = job.tree_seed;
    tp.class_weights = params_.class_weights;
    tp.split_method = params_.split_method;
    DecisionTree tree(tp);
    tree.fit_on(train, job.sample, columns);
    job.sample = {};  // bootstrap no longer needed; free it early
    job.oob_probs.resize(job.oob_rows.size() * c_count);
    for (std::size_t k = 0; k < job.oob_rows.size(); ++k) {
      const auto proba = tree.predict_proba_ref(train.row(job.oob_rows[k]));
      std::copy(proba.begin(), proba.end(),
                job.oob_probs.begin() + static_cast<std::ptrdiff_t>(k * c_count));
    }
    trees_[t] = std::move(tree);
    if (timing) fit_timing_.tree_seconds[t] = timing_now_s(timing) - t_tree0;
  };

  if (pool == nullptr) {
    for (std::size_t t = 0; t < num_trees; ++t) train_one(t);
  } else {
    pool->parallel_for(0, num_trees, train_one);
  }

  const double t_merge0 = timing_now_s(timing);
  if (timing) fit_timing_.trees_wall_s = t_merge0 - t_trees0;

  // OOB votes merge in tree order, so the sums (and the error) are
  // independent of which thread finished first.
  std::vector<double> votes(n * c_count, 0.0);
  std::vector<bool> ever_oob(n, false);
  for (const auto& job : jobs) {
    for (std::size_t k = 0; k < job.oob_rows.size(); ++k) {
      const std::size_t row = job.oob_rows[k];
      ever_oob[row] = true;
      for (std::size_t c = 0; c < c_count; ++c) {
        votes[row * c_count + c] += job.oob_probs[k * c_count + c];
      }
    }
  }

  // OOB error over rows that were out-of-bag at least once.
  std::size_t counted = 0, wrong = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!ever_oob[i]) continue;
    ++counted;
    const double* v = votes.data() + i * c_count;
    const int pred = static_cast<int>(
        std::max_element(v, v + c_count) - v);
    if (pred != train.label(i)) ++wrong;
  }
  oob_error_ = counted
                   ? std::optional<double>(static_cast<double>(wrong) /
                                           static_cast<double>(counted))
                   : std::nullopt;
  if (timing) fit_timing_.oob_merge_s = timing_now_s(timing) - t_merge0;
}

void RandomForest::predict_proba_row(std::span<const double> features,
                                     std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba_ref(features);
    for (std::size_t c = 0; c < p.size(); ++c) out[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (auto& v : out) v *= inv;
}

void RandomForest::predict_proba_into(std::span<const double> features,
                                      std::span<double> out) const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest: predict before fit");
  DROPPKT_EXPECT(out.size() == static_cast<std::size_t>(num_classes_),
                 "RandomForest::predict_proba_into: bad output buffer size");
  predict_proba_row(features, out);
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest: predict before fit");
  std::vector<double> agg(static_cast<std::size_t>(num_classes_), 0.0);
  predict_proba_row(features, agg);
  return agg;
}

int RandomForest::predict(std::span<const double> features) const {
  const auto p = predict_proba(features);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

void RandomForest::predict_proba_batch(std::span<const double> matrix,
                                       std::span<double> out,
                                       std::size_t num_threads) const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest: predict before fit");
  const std::size_t width = feature_names_.size();
  DROPPKT_EXPECT(width >= 1 && matrix.size() % width == 0,
                 "RandomForest::predict_proba_batch: matrix width mismatch");
  const std::size_t rows = matrix.size() / width;
  const auto c_count = static_cast<std::size_t>(num_classes_);
  DROPPKT_EXPECT(out.size() == rows * c_count,
                 "RandomForest::predict_proba_batch: bad output buffer size");
  auto one_row = [&](std::size_t r) {
    predict_proba_row(matrix.subspan(r * width, width),
                      out.subspan(r * c_count, c_count));
  };
  const std::size_t threads =
      std::min(util::ThreadPool::resolve_threads(num_threads),
               std::max<std::size_t>(1, rows));
  if (threads <= 1 || rows <= 1) {
    for (std::size_t r = 0; r < rows; ++r) one_row(r);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(0, rows, one_row);
  }
}

void RandomForest::predict_proba_batch(const Dataset& data,
                                       std::span<double> out,
                                       std::size_t num_threads) const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest: predict before fit");
  const auto c_count = static_cast<std::size_t>(num_classes_);
  DROPPKT_EXPECT(out.size() == data.size() * c_count,
                 "RandomForest::predict_proba_batch: bad output buffer size");
  auto one_row = [&](std::size_t r) {
    predict_proba_row(data.row(r), out.subspan(r * c_count, c_count));
  };
  const std::size_t threads =
      std::min(util::ThreadPool::resolve_threads(num_threads),
               std::max<std::size_t>(1, data.size()));
  if (threads <= 1 || data.size() <= 1) {
    for (std::size_t r = 0; r < data.size(); ++r) one_row(r);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(0, data.size(), one_row);
  }
}

std::vector<int> RandomForest::predict_batch(const Dataset& data,
                                             std::size_t num_threads) const {
  const auto c_count = static_cast<std::size_t>(num_classes_);
  std::vector<double> proba(data.size() * c_count);
  predict_proba_batch(data, proba, num_threads);
  std::vector<int> preds(data.size());
  for (std::size_t r = 0; r < data.size(); ++r) {
    const double* p = proba.data() + r * c_count;
    preds[r] = static_cast<int>(std::max_element(p, p + c_count) - p);
  }
  return preds;
}

std::vector<double> RandomForest::feature_importances() const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest: importances before fit");
  std::vector<double> total(feature_names_.size(), 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.impurity_decrease();
    for (std::size_t f = 0; f < imp.size(); ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (auto& v : total) v /= sum;
  }
  return total;
}

void RandomForest::save(std::ostream& os) const {
  DROPPKT_EXPECT(!trees_.empty(), "RandomForest::save: forest is not fitted");
  os << "droppkt-rf v1\n";
  os << num_classes_ << ' ' << feature_names_.size() << ' ' << trees_.size()
     << '\n';
  for (const auto& name : feature_names_) {
    os << util::csv_escape(name) << '\n';
  }
  for (const auto& tree : trees_) tree.save(os);
}

void RandomForest::save_file(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("RandomForest: cannot open " + path);
  save(ofs);
  if (!ofs) throw std::runtime_error("RandomForest: write failed " + path);
}

namespace {

// Same sanity caps as DecisionTree::load: reject hostile dimensions from a
// model file before they drive allocations.
constexpr std::size_t kMaxLoadFeatures = 1 << 20;
constexpr std::size_t kMaxLoadTrees = 1 << 16;

[[noreturn]] void forest_parse_fail(const std::string& what) {
  throw ParseError("RandomForest::load: " + what);
}

}  // namespace

RandomForest RandomForest::load(std::istream& is) {
  std::string header;
  std::getline(is, header);
  if (header != "droppkt-rf v1") {
    forest_parse_fail("unrecognized header '" + header + "'");
  }
  std::size_t n_features = 0, n_trees = 0;
  RandomForest forest;
  is >> forest.num_classes_ >> n_features >> n_trees;
  if (!is.good()) forest_parse_fail("truncated dimensions");
  if (forest.num_classes_ < 1 ||
      static_cast<std::size_t>(forest.num_classes_) > 4096 ||
      n_features < 1 || n_features > kMaxLoadFeatures || n_trees < 1 ||
      n_trees > kMaxLoadTrees) {
    forest_parse_fail("implausible dimensions");
  }
  is.ignore(1, '\n');
  forest.feature_names_.reserve(std::min<std::size_t>(n_features, 4096));
  for (std::size_t i = 0; i < n_features; ++i) {
    std::string line;
    std::getline(is, line);
    if (!is.good()) forest_parse_fail("truncated feature names");
    const auto fields = util::csv_split_line(line);
    if (fields.size() != 1) forest_parse_fail("malformed feature name line");
    forest.feature_names_.push_back(fields[0]);
  }
  forest.trees_.reserve(std::min<std::size_t>(n_trees, 4096));
  for (std::size_t t = 0; t < n_trees; ++t) {
    DecisionTree tree = DecisionTree::load(is);
    // Every tree must agree with the forest header. Without this, a file
    // whose tree claims more classes than the forest makes
    // predict_proba_row write past the caller's buffer (ASan-confirmed by
    // fuzz/fuzz_model.cpp before this check existed).
    if (tree.num_classes() != forest.num_classes_ ||
        tree.num_features() != n_features) {
      forest_parse_fail("tree " + std::to_string(t) +
                        " disagrees with forest dimensions");
    }
    forest.trees_.push_back(std::move(tree));
  }
  forest.oob_error_ = std::nullopt;
  return forest;
}

RandomForest RandomForest::load_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("RandomForest: cannot open " + path);
  return load(ifs);
}

std::vector<std::pair<std::string, double>> RandomForest::ranked_importances()
    const {
  const auto imp = feature_importances();
  std::vector<std::pair<std::string, double>> ranked;
  ranked.reserve(imp.size());
  for (std::size_t f = 0; f < imp.size(); ++f) {
    ranked.emplace_back(feature_names_[f], imp[f]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

}  // namespace droppkt::ml
