// Flattened random-forest inference: structure-of-arrays node storage
// with branch-light fixed-depth descent for batch prediction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace droppkt::ml {

class Dataset;
class RandomForest;

/// A fitted RandomForest compiled into contiguous flat arrays.
///
/// RandomForest keeps each tree as a vector of Node structs whose leaves
/// own their probability vectors — pointer-chasing three levels deep per
/// lookup. CompiledForest lays every node of every tree into shared SoA
/// arrays (feature index, raw threshold, left-child offset, leaf-prob
/// offset) with sibling pairs adjacent, so one descent step is
/// `i = left[i] + (x[feature[i]] > threshold[i])` — a data-dependent add,
/// no branch on the comparison. Leaves self-loop (left[i] == i with a
/// +infinity threshold), which makes the step total: descent runs a FIXED
/// number of iterations (the tree's depth) instead of testing for a leaf
/// each level. That removes the only unpredictable branch and lets the
/// batch path walk several rows through one tree in lockstep — four
/// independent load chains in flight instead of one, hiding most of the
/// per-level load latency that bounds the pointer-walk design.
///
/// Predictions are numerically byte-identical to the source forest's
/// predict_proba* family: per row, leaf distributions accumulate in tree
/// order and are scaled by 1/num_trees, the exact op order of
/// RandomForest::predict_proba_row. The batch path additionally blocks
/// rows into cache-sized tiles and sweeps all trees per tile, keeping
/// each tile's feature rows and output slab resident while the node
/// arrays stream through once per tile.
///
/// Input contract: feature values must not be NaN (the source forest
/// routes NaN right; compiled descent keeps it memory-safe but the
/// returned distribution is unspecified). Finite values, including
/// infinities, agree with the tree walk exactly.
class CompiledForest {
 public:
  CompiledForest() = default;

  /// Flatten a fitted forest. The result is self-contained — the source
  /// forest may be destroyed afterwards.
  static CompiledForest compile(const RandomForest& forest);

  bool compiled() const { return !roots_.empty(); }
  int num_classes() const { return num_classes_; }
  std::size_t num_features() const {
    return static_cast<std::size_t>(num_features_);
  }
  std::size_t num_trees() const { return roots_.size(); }
  /// Total nodes across all trees (excluding the internal sentinel).
  std::size_t num_nodes() const {
    return feature_.empty() ? 0 : feature_.size() - 1;
  }

  /// Single-row probabilities into a caller buffer (size num_classes).
  /// Allocation-free — safe on the monitor's zero-alloc emit path.
  void predict_proba_into(std::span<const double> features,
                          std::span<double> out) const;

  /// Argmax class of one feature vector (allocates the probability
  /// buffer; hot paths use predict_proba_into with a reusable span).
  int predict(std::span<const double> features) const;

  /// Batch prediction over a row-major feature matrix (num_rows x
  /// num_features, contiguous); writes mean per-class probabilities into
  /// `out` (num_rows x num_classes). Rows are processed in cache-blocked
  /// tiles split across `num_threads` workers (0 = hardware concurrency);
  /// output is identical for any thread count and byte-identical to
  /// RandomForest::predict_proba_batch on the source forest.
  void predict_proba_batch(std::span<const double> matrix,
                           std::span<double> out,
                           std::size_t num_threads = 1) const;

  /// Same over a Dataset's rows.
  void predict_proba_batch(const Dataset& data, std::span<double> out,
                           std::size_t num_threads = 1) const;

  /// Count every predicted row into `rows` (a telemetry counter; nullptr
  /// unbinds). One relaxed add per single-row call, one per batch — the
  /// zero-alloc inference paths stay zero-alloc. Rebind after compile()
  /// assignment: a freshly compiled forest starts unbound.
  void bind_telemetry(telemetry::Counter* rows) { rows_predicted_ = rows; }

  /// Serialize the compiled forest (text format, versioned header; leaves
  /// are written in logical form, not as self-loops).
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  /// Rebuild from `save` output. Throws droppkt::ParseError on malformed
  /// input; validates every child offset, leaf offset and the
  /// one-parent-per-node tree shape so a hostile file cannot drive
  /// descent out of bounds or into a cycle.
  static CompiledForest load(std::istream& is);
  static CompiledForest load_file(const std::string& path);

 private:
  // One descent step; total for every node because leaves self-loop.
  std::int32_t step(std::int32_t i, const double* x) const {
    const auto u = static_cast<std::size_t>(i);
    // Mirror of the tree-walk rule "left if x[f] <= threshold", negated
    // so the right child is a +1 offset.
    return left_[u] +
           static_cast<std::int32_t>(!(x[feature_[u]] <= threshold_[u]));
  }

  void batch_rows(std::span<const double> matrix, std::span<double> out,
                  std::size_t num_threads) const;
  void compute_depths();
  void append_sentinel();

  // Parallel per-node arrays across all trees, plus one trailing sentinel
  // node so a (contract-violating) NaN step from the last leaf stays in
  // bounds. Internal node: feature_[i] >= 0, left_[i] is the left child
  // and left_[i] + 1 the right, both strictly after i. Leaf: self-loop —
  // left_[i] == i, feature_[i] == 0, threshold_[i] == +infinity — with
  // the offset of its num_classes_ probabilities in leaf_off_[i]
  // (leaf_off_ is 0 at non-leaves; only leaves are ever read from).
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> leaf_off_;
  std::vector<std::int32_t> roots_;   // root node index per tree
  std::vector<std::int32_t> depth_;   // descent iterations per tree
  std::vector<double> leaf_probs_;    // num_classes_ per leaf, contiguous
  std::int32_t num_classes_ = 0;
  std::int32_t num_features_ = 0;
  /// Borrowed prediction-throughput counter; see bind_telemetry().
  telemetry::Counter* rows_predicted_ = nullptr;
};

}  // namespace droppkt::ml
