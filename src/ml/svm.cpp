#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {

LinearSvm::LinearSvm(LinearSvmParams params) : params_(params) {
  DROPPKT_EXPECT(params_.learning_rate > 0.0, "LinearSvm: lr must be > 0");
  DROPPKT_EXPECT(params_.epochs >= 1, "LinearSvm: need >= 1 epoch");
}

void LinearSvm::fit(const Dataset& train) {
  DROPPKT_EXPECT(train.size() >= 2, "LinearSvm: need >= 2 rows");
  scaler_.fit(train);
  num_classes_ = train.num_classes();
  const std::size_t f = train.num_features();
  weights_.assign(static_cast<std::size_t>(num_classes_),
                  std::vector<double>(f + 1, 0.0));

  // Pre-standardize once.
  std::vector<std::vector<double>> x;
  x.reserve(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    x.push_back(scaler_.transform(train.row(i)));
  }

  util::Rng rng(params_.seed);
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    const double lr =
        params_.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    const auto order = rng.permutation(train.size());
    for (std::size_t i : order) {
      for (int c = 0; c < num_classes_; ++c) {
        auto& w = weights_[static_cast<std::size_t>(c)];
        const double y = train.label(i) == c ? 1.0 : -1.0;
        double margin = w[f];  // bias
        for (std::size_t j = 0; j < f; ++j) margin += w[j] * x[i][j];
        // L2 shrink (not applied to bias).
        for (std::size_t j = 0; j < f; ++j) w[j] *= (1.0 - lr * params_.l2);
        if (y * margin < 1.0) {
          for (std::size_t j = 0; j < f; ++j) w[j] += lr * y * x[i][j];
          w[f] += lr * y;
        }
      }
    }
  }
}

std::vector<double> LinearSvm::decision_function(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!weights_.empty(), "LinearSvm: predict before fit");
  const auto x = scaler_.transform(features);
  std::vector<double> margins(static_cast<std::size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) {
    const auto& w = weights_[static_cast<std::size_t>(c)];
    double m = w[x.size()];
    for (std::size_t j = 0; j < x.size(); ++j) m += w[j] * x[j];
    margins[static_cast<std::size_t>(c)] = m;
  }
  return margins;
}

std::vector<double> LinearSvm::predict_proba(
    std::span<const double> features) const {
  // Softmax over margins: not calibrated, but orderable and sums to 1.
  auto m = decision_function(features);
  const double mx = *std::max_element(m.begin(), m.end());
  double total = 0.0;
  for (auto& v : m) {
    v = std::exp(v - mx);
    total += v;
  }
  for (auto& v : m) v /= total;
  return m;
}

int LinearSvm::predict(std::span<const double> features) const {
  const auto m = decision_function(features);
  return static_cast<int>(std::max_element(m.begin(), m.end()) - m.begin());
}

}  // namespace droppkt::ml
