// Gradient-boosted trees (XGBoost-style comparison model).
//
// One-vs-rest logistic boosting: per class, shallow regression trees are
// fit to the negative gradient of the log loss and leaf values take a
// Newton step, as in Friedman's classic GBM.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace droppkt::ml {

struct GradientBoostingParams {
  std::size_t num_rounds = 80;
  double learning_rate = 0.15;
  int max_depth = 3;
  std::size_t min_samples_leaf = 5;
  double subsample = 0.8;  // row subsampling per round
  std::uint64_t seed = 11;
};

/// Regression tree used internally by boosting (squared-error splits).
/// Exposed for testing.
class RegressionTree {
 public:
  RegressionTree(int max_depth, std::size_t min_samples_leaf);

  /// Serialize the fitted tree (text, line-based).
  void save(std::ostream& os) const;
  /// Rebuild from `save` output, validating every node (feature index
  /// within `num_features`, children in range and strictly descending so
  /// traversal terminates). Throws droppkt::ParseError on malformed input.
  static RegressionTree load(std::istream& is, std::size_t num_features);

  /// Fit targets[i] over rows[i] of `data` restricted to `indices`.
  void fit(const Dataset& data, const std::vector<double>& targets,
           std::span<const std::size_t> indices);

  double predict(std::span<const double> features) const;

  /// Index of the leaf a row lands in (for Newton leaf re-fitting).
  std::size_t leaf_id(std::span<const double> features) const;
  std::size_t leaf_count() const { return leaf_ids_.size(); }

  /// Overwrite a leaf's value (Newton step).
  void set_leaf_value(std::size_t leaf, double value);

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;
    std::size_t leaf_index = 0;
  };
  RegressionTree() = default;  // deserialization only
  std::int32_t build(const Dataset& data, const std::vector<double>& targets,
                     std::vector<std::size_t>& indices, int depth);
  const Node& descend(std::span<const double> features) const;

  int max_depth_ = 1;
  std::size_t min_samples_leaf_ = 1;
  std::vector<Node> nodes_;
  std::vector<std::int32_t> leaf_ids_;  // leaf index -> node index
};

/// One-vs-rest gradient-boosted classifier.
class GradientBoosting final : public Classifier {
 public:
  explicit GradientBoosting(GradientBoostingParams params = {});

  void fit(const Dataset& train) override;
  int predict(std::span<const double> features) const override;
  std::vector<double> predict_proba(std::span<const double> features) const override;

  /// Per-class probabilities for every row of `data`, written into `out`
  /// (size rows x num_classes) with no per-row allocations. Rows are
  /// split across `num_threads` workers (0 = hardware concurrency);
  /// output is identical for any thread count.
  void predict_proba_batch(const Dataset& data, std::span<double> out,
                           std::size_t num_threads = 1) const;

  /// Argmax labels for every row of `data`.
  std::vector<int> predict_batch(const Dataset& data,
                                 std::size_t num_threads = 1) const;

  int num_classes() const { return num_classes_; }
  std::size_t num_features() const { return num_features_; }

  /// Serialize the fitted model (text; header "droppkt-gbt v1"), so a
  /// monitoring node can load a trained comparison model without the
  /// training corpus — the same deployment story as RandomForest::save.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  /// Rebuild from `save` output. The stream is untrusted (a model file is
  /// operator-supplied input); throws droppkt::ParseError on malformed
  /// dimensions, truncation, or structurally invalid trees.
  static GradientBoosting load(std::istream& is);
  static GradientBoosting load_file(const std::string& path);

 private:
  void predict_proba_row(std::span<const double> features,
                         std::span<double> out) const;
  double raw_score(std::span<const double> features, int cls) const;

  GradientBoostingParams params_;
  std::vector<std::vector<RegressionTree>> ensembles_;  // per class
  std::vector<double> base_score_;                      // per-class prior
  int num_classes_ = 0;
  std::size_t num_features_ = 0;  // 0 until fit/load
};

}  // namespace droppkt::ml
