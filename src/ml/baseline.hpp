// Trivial baselines that any real model must beat.
#pragma once

#include "ml/classifier.hpp"

namespace droppkt::ml {

/// Always predicts the training set's most frequent class. The floor any
/// QoE estimator is measured against.
class MajorityClassifier final : public Classifier {
 public:
  void fit(const Dataset& train) override;
  int predict(std::span<const double> features) const override;
  std::vector<double> predict_proba(std::span<const double> features) const override;

 private:
  int majority_ = 0;
  std::vector<double> prior_;
};

}  // namespace droppkt::ml
