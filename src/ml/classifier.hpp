// Common interface for all classifiers in droppkt::ml.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace droppkt::util {
class ThreadPool;
}

namespace droppkt::ml {

/// Supervised multi-class classifier.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on the given dataset. May be called again to retrain.
  virtual void fit(const Dataset& train) = 0;

  /// Predict the class of one feature vector (width must match training).
  virtual int predict(std::span<const double> features) const = 0;

  /// Per-class probabilities; default implementation is a one-hot of
  /// predict(). Sums to 1.
  virtual std::vector<double> predict_proba(std::span<const double> features) const;

  /// Predict every row of a dataset.
  std::vector<int> predict_all(const Dataset& data) const;
};

/// Factory: cross-validation needs a fresh, identically-configured model
/// per fold.
using ClassifierFactory = std::unique_ptr<Classifier> (*)();

/// Mixin for classifiers whose training can fan out over a caller-owned
/// thread pool. cross_validate uses it to schedule work at fold x tree
/// granularity on ONE shared pool instead of a pool per fold — the model
/// fitted via fit_on_pool must be bit-identical to fit().
class PoolTrainable {
 public:
  virtual ~PoolTrainable() = default;
  virtual void fit_on_pool(const Dataset& train, util::ThreadPool& pool) = 0;
};

}  // namespace droppkt::ml
