// Random Forest classifier — the paper's model of choice ("we present
// results using Random Forest ... as it yielded the highest accuracy").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"

namespace droppkt::ml {

struct RandomForestParams {
  std::size_t num_trees = 100;
  int max_depth = 24;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 means floor(sqrt(num_features)).
  std::size_t max_features = 0;
  std::uint64_t seed = 42;
  /// Per-class weights (empty = uniform); see DecisionTreeParams.
  std::vector<double> class_weights;
  /// Worker threads for fit(); 0 means hardware concurrency, 1 trains
  /// sequentially. The trained forest (trees, OOB error, importances) is
  /// bit-identical for every value — all randomness is drawn up front and
  /// results merge in tree order.
  std::size_t num_threads = 0;
};

/// Bagged CART ensemble with per-split feature subsampling, soft voting,
/// Gini feature importance and out-of-bag error. Trees train concurrently
/// on a util::ThreadPool; see RandomForestParams::num_threads.
class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestParams params = {});

  void fit(const Dataset& train) override;
  int predict(std::span<const double> features) const override;
  std::vector<double> predict_proba(std::span<const double> features) const override;

  /// Batch prediction over a row-major feature matrix (num_rows x
  /// num_features, contiguous). Writes mean per-class probabilities into
  /// `out` (size num_rows x num_classes) with no per-row or per-tree
  /// allocations. Rows are split across `num_threads` workers (0 =
  /// hardware concurrency); output is identical for any thread count.
  void predict_proba_batch(std::span<const double> matrix,
                           std::span<double> out,
                           std::size_t num_threads = 1) const;

  /// Same over a Dataset's rows.
  void predict_proba_batch(const Dataset& data, std::span<double> out,
                           std::size_t num_threads = 1) const;

  /// Single-row probabilities into a caller buffer (size num_classes) —
  /// the zero-allocation path streaming callers pair with a reusable
  /// feature span.
  void predict_proba_into(std::span<const double> features,
                          std::span<double> out) const;

  /// Argmax labels for every row of `data`.
  std::vector<int> predict_batch(const Dataset& data,
                                 std::size_t num_threads = 1) const;

  /// Mean decrease in Gini impurity per feature, normalized to sum to 1.
  std::vector<double> feature_importances() const;

  /// Importances paired with names, sorted descending.
  std::vector<std::pair<std::string, double>> ranked_importances() const;

  /// Out-of-bag error estimate from the last fit (empty if every row was
  /// in-bag for all trees).
  std::optional<double> oob_error() const { return oob_error_; }

  std::size_t num_trees() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }
  std::size_t num_features() const { return feature_names_.size(); }

  /// Serialize the fitted forest (text format, versioned header). Trained
  /// models can be shipped to monitoring nodes without the training data.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  /// Rebuild a forest from `save` output. Throws on malformed input.
  static RandomForest load(std::istream& is);
  static RandomForest load_file(const std::string& path);

 private:
  void predict_proba_row(std::span<const double> features,
                         std::span<double> out) const;

  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
  std::vector<std::string> feature_names_;
  int num_classes_ = 0;
  std::optional<double> oob_error_;
};

}  // namespace droppkt::ml
