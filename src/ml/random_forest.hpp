// Random Forest classifier — the paper's model of choice ("we present
// results using Random Forest ... as it yielded the highest accuracy").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"

namespace droppkt::ml {

struct RandomForestParams {
  std::size_t num_trees = 100;
  int max_depth = 24;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 means floor(sqrt(num_features)).
  std::size_t max_features = 0;
  std::uint64_t seed = 42;
  /// Per-class weights (empty = uniform); see DecisionTreeParams.
  std::vector<double> class_weights;
  /// Worker threads for fit(); 0 means hardware concurrency, 1 trains
  /// sequentially. The trained forest (trees, OOB error, importances) is
  /// bit-identical for every value — all randomness is drawn up front and
  /// results merge in tree order.
  std::size_t num_threads = 0;
  /// Split search: kExact (presorted, every distinct-value boundary) or
  /// kHistogram (quantized bins, O(rows) accumulation per node with
  /// parent-minus-sibling subtraction — see SplitMethod). Histogram
  /// training is likewise bit-identical for any num_threads.
  SplitMethod split_method = SplitMethod::kExact;
  /// Bins per feature for kHistogram (2..ColumnMatrix::kMaxBins).
  std::size_t max_bins = 256;
  /// Record per-phase wall timings of fit() (see last_fit_timing()).
  /// Off by default: the clock reads are stats-only and never affect the
  /// fitted model, but they cost a syscall per tree.
  bool collect_timing = false;
};

/// Per-phase wall timings of the last fit(), populated when
/// RandomForestParams::collect_timing is set. Purely observational — the
/// fitted model is byte-identical with collection on or off.
struct RandomForestFitTiming {
  double bootstrap_draw_s = 0.0;  // sequential up-front RNG phase
  double column_build_s = 0.0;    // transpose + presort (+ binning)
  double trees_wall_s = 0.0;      // parallel tree-training region
  double oob_merge_s = 0.0;       // sequential OOB vote merge + error
  /// Per-tree training seconds (split search + OOB predictions), indexed
  /// by tree. Workers write disjoint slots, so the vector is exact for
  /// any thread count; together with the pool's contiguous chunking it
  /// reconstructs per-worker busy time.
  std::vector<double> tree_seconds;
};

/// Bagged CART ensemble with per-split feature subsampling, soft voting,
/// Gini feature importance and out-of-bag error. Trees train concurrently
/// on a util::ThreadPool; see RandomForestParams::num_threads.
class RandomForest final : public Classifier, public PoolTrainable {
 public:
  explicit RandomForest(RandomForestParams params = {});

  void fit(const Dataset& train) override;

  /// Train on a caller-owned pool (tree-granular tasks); bit-identical to
  /// fit() — cross_validate shares one pool across all folds this way.
  void fit_on_pool(const Dataset& train, util::ThreadPool& pool) override;
  int predict(std::span<const double> features) const override;
  std::vector<double> predict_proba(std::span<const double> features) const override;

  /// Batch prediction over a row-major feature matrix (num_rows x
  /// num_features, contiguous). Writes mean per-class probabilities into
  /// `out` (size num_rows x num_classes) with no per-row or per-tree
  /// allocations. Rows are split across `num_threads` workers (0 =
  /// hardware concurrency); output is identical for any thread count.
  void predict_proba_batch(std::span<const double> matrix,
                           std::span<double> out,
                           std::size_t num_threads = 1) const;

  /// Same over a Dataset's rows.
  void predict_proba_batch(const Dataset& data, std::span<double> out,
                           std::size_t num_threads = 1) const;

  /// Single-row probabilities into a caller buffer (size num_classes) —
  /// the zero-allocation path streaming callers pair with a reusable
  /// feature span.
  void predict_proba_into(std::span<const double> features,
                          std::span<double> out) const;

  /// Argmax labels for every row of `data`.
  std::vector<int> predict_batch(const Dataset& data,
                                 std::size_t num_threads = 1) const;

  /// Mean decrease in Gini impurity per feature, normalized to sum to 1.
  std::vector<double> feature_importances() const;

  /// Importances paired with names, sorted descending.
  std::vector<std::pair<std::string, double>> ranked_importances() const;

  /// Out-of-bag error estimate from the last fit (empty if every row was
  /// in-bag for all trees).
  std::optional<double> oob_error() const { return oob_error_; }

  /// Phase timings of the last fit(); nullptr before any fit, or unless
  /// RandomForestParams::collect_timing was set.
  const RandomForestFitTiming* last_fit_timing() const {
    return params_.collect_timing && !fit_timing_.tree_seconds.empty()
               ? &fit_timing_
               : nullptr;
  }

  std::size_t num_trees() const { return trees_.size(); }
  /// Read access to one fitted tree (t < num_trees()) — CompiledForest
  /// flattens the ensemble through this.
  const DecisionTree& tree(std::size_t t) const { return trees_[t]; }
  int num_classes() const { return num_classes_; }
  std::size_t num_features() const { return feature_names_.size(); }

  /// Serialize the fitted forest (text format, versioned header). Trained
  /// models can be shipped to monitoring nodes without the training data.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  /// Rebuild a forest from `save` output. Throws on malformed input.
  static RandomForest load(std::istream& is);
  static RandomForest load_file(const std::string& path);

 private:
  void predict_proba_row(std::span<const double> features,
                         std::span<double> out) const;
  void fit_impl(const Dataset& train, util::ThreadPool* pool);

  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
  std::vector<std::string> feature_names_;
  int num_classes_ = 0;
  std::optional<double> oob_error_;
  RandomForestFitTiming fit_timing_;
};

}  // namespace droppkt::ml
