// Tabular dataset for supervised classification.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace droppkt::ml {

/// Dense feature matrix with integer class labels in [0, num_classes).
///
/// Invariants: all rows have the same width as the feature-name list;
/// labels are within range; num_classes >= 1.
class Dataset {
 public:
  Dataset(std::vector<std::string> feature_names, int num_classes);

  void add_row(std::vector<double> features, int label);

  std::size_t size() const { return labels_.size(); }
  std::size_t num_features() const { return feature_names_.size(); }
  int num_classes() const { return num_classes_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  std::span<const double> row(std::size_t i) const;
  int label(std::size_t i) const;
  const std::vector<int>& labels() const { return labels_; }

  /// Count of each class in the dataset.
  std::vector<std::size_t> class_counts() const;

  /// New dataset containing the given rows (indices may repeat: bootstrap).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// New dataset keeping only the named feature columns, in that order.
  Dataset select_features(const std::vector<std::string>& names) const;

  /// Most frequent class (ties: lowest index).
  int majority_class() const;

  /// Export as CSV (feature columns + a final "label" column) — for
  /// analysis in external tools.
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  /// Import from `write_csv` output. `num_classes` is inferred as
  /// max(label)+1 unless given.
  static Dataset read_csv(std::istream& is, int num_classes = 0);
  static Dataset read_csv_file(const std::string& path, int num_classes = 0);

 private:
  std::vector<std::string> feature_names_;
  int num_classes_;
  std::vector<double> data_;  // row-major
  std::vector<int> labels_;
};

/// Stratified k-fold split: each fold's class mix matches the dataset's.
/// Returns `k` disjoint index lists covering [0, n).
std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       std::size_t k,
                                                       util::Rng& rng);

/// Complement of a fold: all indices not in `fold` (training split).
std::vector<std::size_t> fold_complement(std::size_t n,
                                         std::span<const std::size_t> fold);

}  // namespace droppkt::ml
