// Tabular dataset for supervised classification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {

/// Dense feature matrix with integer class labels in [0, num_classes).
///
/// Invariants: all rows have the same width as the feature-name list;
/// labels are within range; num_classes >= 1.
class Dataset {
 public:
  Dataset(std::vector<std::string> feature_names, int num_classes);

  /// Pre-size the backing storage for `n_rows` total rows. Dataset builders
  /// almost always know the row count up front (one row per session, per
  /// fold index, per window); without this hint add_row grows the
  /// row-major matrix geometrically — log2(n) reallocations each copying
  /// the whole corpus.
  void reserve(std::size_t n_rows);

  void add_row(std::span<const double> features, int label);
  /// Same, from an owned vector (kept for call sites that build a fresh
  /// row anyway; batch loops should reuse one buffer via the span
  /// overload instead of allocating per row).
  void add_row(std::vector<double> features, int label);

  std::size_t size() const { return labels_.size(); }
  std::size_t num_features() const { return feature_names_.size(); }
  int num_classes() const { return num_classes_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  std::span<const double> row(std::size_t i) const;
  int label(std::size_t i) const;
  const std::vector<int>& labels() const { return labels_; }

  /// Count of each class in the dataset.
  std::vector<std::size_t> class_counts() const;

  /// New dataset containing the given rows (indices may repeat: bootstrap).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// New dataset keeping only the named feature columns, in that order.
  Dataset select_features(const std::vector<std::string>& names) const;

  /// Most frequent class (ties: lowest index).
  int majority_class() const;

  /// Export as CSV (feature columns + a final "label" column) — for
  /// analysis in external tools.
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  /// Import from `write_csv` output. `num_classes` is inferred as
  /// max(label)+1 unless given.
  static Dataset read_csv(std::istream& is, int num_classes = 0);
  static Dataset read_csv_file(const std::string& path, int num_classes = 0);

 private:
  std::vector<std::string> feature_names_;
  int num_classes_;
  std::vector<double> data_;  // row-major
  std::vector<int> labels_;
};

/// Column-major copy of a Dataset's feature matrix, plus a per-feature
/// presort of the rows.
///
/// The split search in tree training scans one feature across many rows;
/// the row-major Dataset makes that a strided walk (cache-hostile), so
/// training transposes once up front and every tree of a forest shares
/// the same read-only copy — safe to use from many threads concurrently.
/// The sorted row orders let each tree derive its bootstrap sample's
/// sorted layout with a linear counting merge instead of re-sorting —
/// the F column sorts are paid once per forest, not once per tree.
///
/// For histogram-based split finding (SplitMethod::kHistogram),
/// build_bins() additionally quantizes every feature into at most
/// kMaxBins value ranges — LightGBM-style equal-frequency cuts over the
/// global sorted order — and materializes a per-row bin index column per
/// feature. Like the presort, binning is paid once per forest and shared
/// read-only across all trees and threads.
class ColumnMatrix {
 public:
  /// Hard ceiling on bins per feature: bin indices are stored as uint8_t.
  static constexpr std::size_t kMaxBins = 256;

  explicit ColumnMatrix(const Dataset& data);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_features() const { return num_features_; }

  /// All rows' values of one feature, contiguous.
  std::span<const double> column(std::size_t f) const {
    DROPPKT_EXPECT(f < num_features_, "ColumnMatrix::column: out of range");
    return {data_.data() + f * num_rows_, num_rows_};
  }

  double value(std::size_t row, std::size_t f) const {
    DROPPKT_EXPECT(row < num_rows_ && f < num_features_,
                   "ColumnMatrix::value: out of range");
    return data_[f * num_rows_ + row];
  }

  /// Row indices of one feature, ascending by (value, row).
  std::span<const std::uint32_t> sorted_rows(std::size_t f) const {
    DROPPKT_EXPECT(f < num_features_, "ColumnMatrix::sorted_rows: out of range");
    return {sorted_rows_.data() + f * num_rows_, num_rows_};
  }

  /// The feature's values in the `sorted_rows(f)` order (ascending).
  std::span<const double> sorted_values(std::size_t f) const {
    DROPPKT_EXPECT(f < num_features_,
                   "ColumnMatrix::sorted_values: out of range");
    return {sorted_vals_.data() + f * num_rows_, num_rows_};
  }

  /// Quantize every feature into at most `max_bins` (<= kMaxBins) bins
  /// with equal-frequency cut points over the sorted values; features
  /// with fewer distinct values get one bin per value. Idempotent for a
  /// given `max_bins`; must be called before the bin accessors below.
  void build_bins(std::size_t max_bins = kMaxBins);

  bool bins_built() const { return !bin_count_.empty(); }

  /// Number of bins feature `f` was quantized into (>= 1).
  std::size_t num_bins(std::size_t f) const {
    DROPPKT_EXPECT(bins_built() && f < num_features_,
                   "ColumnMatrix::num_bins: bins not built or out of range");
    return bin_count_[f];
  }

  /// All rows' bin indices for one feature, contiguous (row-indexed).
  std::span<const std::uint8_t> bin_column(std::size_t f) const {
    DROPPKT_EXPECT(bins_built() && f < num_features_,
                   "ColumnMatrix::bin_column: bins not built or out of range");
    return {binned_.data() + f * num_rows_, num_rows_};
  }

  /// Raw-value threshold realizing "split after bin b": for every row,
  /// value <= threshold  iff  bin <= b. The last bin's threshold is
  /// +infinity (no right side — never a valid split).
  double bin_threshold(std::size_t f, std::size_t b) const {
    DROPPKT_EXPECT(bins_built() && f < num_features_ && b < bin_count_[f],
                   "ColumnMatrix::bin_threshold: out of range");
    return bin_thresholds_[f * kMaxBins + b];
  }

 private:
  std::size_t num_rows_;
  std::size_t num_features_;
  std::vector<double> data_;                 // column-major
  std::vector<std::uint32_t> sorted_rows_;   // per feature, by (value, row)
  std::vector<double> sorted_vals_;          // values in sorted_rows_ order
  // Histogram quantization (build_bins): per-row bin index per feature,
  // bin counts, and per-boundary raw thresholds (kMaxBins stride).
  std::vector<std::uint8_t> binned_;
  std::vector<std::uint32_t> bin_count_;
  std::vector<double> bin_thresholds_;
};

/// Stratified k-fold split: each fold's class mix matches the dataset's.
/// Returns `k` disjoint index lists covering [0, n).
std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       std::size_t k,
                                                       util::Rng& rng);

/// Complement of a fold: all indices not in `fold` (training split).
std::vector<std::size_t> fold_complement(std::size_t n,
                                         std::span<const std::size_t> fold);

}  // namespace droppkt::ml
