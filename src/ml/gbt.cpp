#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace droppkt::ml {

namespace {

// Deserialization sanity caps: a model file claiming more than this is
// hostile or corrupt, and rejecting it up front keeps attacker-chosen
// dimensions from driving allocations (the "absurd length" fuzz class).
constexpr std::size_t kMaxLoadClasses = 4096;
constexpr std::size_t kMaxLoadFeatures = 1 << 20;
constexpr std::size_t kMaxLoadRounds = 1 << 20;
constexpr std::size_t kMaxLoadNodes = 1 << 22;

[[noreturn]] void gbt_parse_fail(const std::string& what) {
  throw ParseError("GradientBoosting::load: " + what);
}

}  // namespace

RegressionTree::RegressionTree(int max_depth, std::size_t min_samples_leaf)
    : max_depth_(max_depth), min_samples_leaf_(min_samples_leaf) {
  DROPPKT_EXPECT(max_depth_ >= 1, "RegressionTree: max_depth must be >= 1");
  DROPPKT_EXPECT(min_samples_leaf_ >= 1,
                 "RegressionTree: min_samples_leaf must be >= 1");
}

void RegressionTree::fit(const Dataset& data, const std::vector<double>& targets,
                         std::span<const std::size_t> indices) {
  DROPPKT_EXPECT(targets.size() == data.size(),
                 "RegressionTree: one target per dataset row");
  DROPPKT_EXPECT(!indices.empty(), "RegressionTree: empty sample");
  nodes_.clear();
  leaf_ids_.clear();
  std::vector<std::size_t> idx(indices.begin(), indices.end());
  build(data, targets, idx, 0);
}

std::int32_t RegressionTree::build(const Dataset& data,
                                   const std::vector<double>& targets,
                                   std::vector<std::size_t>& indices,
                                   int depth) {
  double sum = 0.0;
  for (std::size_t i : indices) sum += targets[i];
  const double node_mean = sum / static_cast<double>(indices.size());

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.feature = -1;
    leaf.value = node_mean;
    leaf.leaf_index = leaf_ids_.size();
    nodes_.push_back(leaf);
    const auto id = static_cast<std::int32_t>(nodes_.size() - 1);
    leaf_ids_.push_back(id);
    return id;
  };

  if (depth >= max_depth_ || indices.size() < 2 * min_samples_leaf_) {
    return make_leaf();
  }

  // Best squared-error split: maximize sum^2/n reduction.
  double node_score =
      sum * sum / static_cast<double>(indices.size());
  struct Best {
    double gain = 1e-12;
    int feature = -1;
    double threshold = 0.0;
  } best;

  std::vector<std::pair<double, double>> sorted;  // (value, target)
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    sorted.clear();
    for (std::size_t i : indices) {
      sorted.emplace_back(data.row(i)[f], targets[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;
    double left_sum = 0.0;
    const std::size_t n = sorted.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_sum += sorted[i].second;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < min_samples_leaf_ || nr < min_samples_leaf_) continue;
      const double right_sum = sum - left_sum;
      const double score = left_sum * left_sum / static_cast<double>(nl) +
                           right_sum * right_sum / static_cast<double>(nr);
      const double gain = score - node_score;
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = static_cast<int>(f);
        double thr = 0.5 * (sorted[i].first + sorted[i + 1].first);
        if (!(thr >= sorted[i].first && thr < sorted[i + 1].first)) {
          thr = sorted[i].first;
        }
        best.threshold = thr;
      }
    }
  }

  if (best.feature < 0) return make_leaf();

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    if (data.row(i)[static_cast<std::size_t>(best.feature)] <= best.threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  indices.clear();
  indices.shrink_to_fit();

  Node node;
  node.feature = best.feature;
  node.threshold = best.threshold;
  nodes_.push_back(node);
  const auto me = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t l = build(data, targets, left_idx, depth + 1);
  const std::int32_t r = build(data, targets, right_idx, depth + 1);
  nodes_[static_cast<std::size_t>(me)].left = l;
  nodes_[static_cast<std::size_t>(me)].right = r;
  return me;
}

const RegressionTree::Node& RegressionTree::descend(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!nodes_.empty(), "RegressionTree: predict before fit");
  std::size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = static_cast<std::size_t>(
        features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right);
  }
  return nodes_[cur];
}

double RegressionTree::predict(std::span<const double> features) const {
  return descend(features).value;
}

std::size_t RegressionTree::leaf_id(std::span<const double> features) const {
  return descend(features).leaf_index;
}

void RegressionTree::set_leaf_value(std::size_t leaf, double value) {
  DROPPKT_EXPECT(leaf < leaf_ids_.size(),
                 "RegressionTree: leaf index out of range");
  nodes_[static_cast<std::size_t>(leaf_ids_[leaf])].value = value;
}

void RegressionTree::save(std::ostream& os) const {
  DROPPKT_EXPECT(!nodes_.empty(), "RegressionTree::save: tree is not fitted");
  os << "rtree " << nodes_.size() << '\n';
  for (const auto& n : nodes_) {
    os << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
       << ' ' << n.value << '\n';
  }
}

RegressionTree RegressionTree::load(std::istream& is,
                                    std::size_t num_features) {
  std::string tag;
  std::size_t node_count = 0;
  is >> tag >> node_count;
  if (!is.good() || tag != "rtree") gbt_parse_fail("bad rtree header");
  if (node_count < 1 || node_count > kMaxLoadNodes) {
    gbt_parse_fail("implausible rtree node count " +
                   std::to_string(node_count));
  }
  RegressionTree tree;
  // Grow incrementally: a hostile count inflates no allocation beyond the
  // nodes the stream actually contains.
  tree.nodes_.reserve(std::min<std::size_t>(node_count, 4096));
  for (std::size_t i = 0; i < node_count; ++i) {
    Node n;
    is >> n.feature >> n.threshold >> n.left >> n.right >> n.value;
    if (is.fail()) gbt_parse_fail("truncated rtree node");
    if (n.feature >= 0) {
      if (static_cast<std::size_t>(n.feature) >= num_features) {
        gbt_parse_fail("rtree feature index out of range");
      }
      // Children strictly after the parent: build() emits nodes in that
      // order, and enforcing it here makes loaded-tree traversal provably
      // terminate (no cycles from a crafted file).
      const auto self = static_cast<std::int32_t>(i);
      if (n.left <= self || n.right <= self ||
          n.left >= static_cast<std::int32_t>(node_count) ||
          n.right >= static_cast<std::int32_t>(node_count)) {
        gbt_parse_fail("rtree child indices out of order or out of range");
      }
    } else {
      n.leaf_index = tree.leaf_ids_.size();
      tree.leaf_ids_.push_back(static_cast<std::int32_t>(i));
    }
    tree.nodes_.push_back(n);
  }
  return tree;
}

GradientBoosting::GradientBoosting(GradientBoostingParams params)
    : params_(params) {
  DROPPKT_EXPECT(params_.num_rounds >= 1, "GradientBoosting: need >= 1 round");
  DROPPKT_EXPECT(params_.subsample > 0.0 && params_.subsample <= 1.0,
                 "GradientBoosting: subsample must be in (0,1]");
}

void GradientBoosting::fit(const Dataset& train) {
  DROPPKT_EXPECT(train.size() >= 4, "GradientBoosting: need >= 4 rows");
  num_classes_ = train.num_classes();
  num_features_ = train.num_features();
  ensembles_.assign(static_cast<std::size_t>(num_classes_), {});
  base_score_.assign(static_cast<std::size_t>(num_classes_), 0.0);

  const std::size_t n = train.size();
  util::Rng rng(params_.seed);

  for (int cls = 0; cls < num_classes_; ++cls) {
    auto& ensemble = ensembles_[static_cast<std::size_t>(cls)];
    ensemble.reserve(params_.num_rounds);

    // Prior log-odds of the class.
    std::size_t positives = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (train.label(i) == cls) ++positives;
    }
    const double p0 = std::clamp(
        static_cast<double>(positives) / static_cast<double>(n), 1e-4,
        1.0 - 1e-4);
    base_score_[static_cast<std::size_t>(cls)] = std::log(p0 / (1.0 - p0));

    std::vector<double> raw(n, base_score_[static_cast<std::size_t>(cls)]);
    std::vector<double> residual(n);

    for (std::size_t round = 0; round < params_.num_rounds; ++round) {
      // Negative gradient of the logistic loss: y - p.
      for (std::size_t i = 0; i < n; ++i) {
        const double p = 1.0 / (1.0 + std::exp(-raw[i]));
        const double y = train.label(i) == cls ? 1.0 : 0.0;
        residual[i] = y - p;
      }
      // Row subsampling (stochastic gradient boosting).
      std::vector<std::size_t> sample;
      if (params_.subsample < 1.0) {
        for (std::size_t i = 0; i < n; ++i) {
          if (rng.bernoulli(params_.subsample)) sample.push_back(i);
        }
        if (sample.size() < 2 * params_.min_samples_leaf) {
          sample.resize(n);
          std::iota(sample.begin(), sample.end(), std::size_t{0});
        }
      } else {
        sample.resize(n);
        std::iota(sample.begin(), sample.end(), std::size_t{0});
      }

      RegressionTree tree(params_.max_depth, params_.min_samples_leaf);
      tree.fit(train, residual, sample);

      // Newton leaf values: sum(residual) / sum(p(1-p)) per leaf.
      std::vector<double> num(tree.leaf_count(), 0.0);
      std::vector<double> den(tree.leaf_count(), 1e-9);
      for (std::size_t i : sample) {
        const std::size_t leaf = tree.leaf_id(train.row(i));
        const double p = 1.0 / (1.0 + std::exp(-raw[i]));
        num[leaf] += residual[i];
        den[leaf] += p * (1.0 - p);
      }
      for (std::size_t leaf = 0; leaf < tree.leaf_count(); ++leaf) {
        tree.set_leaf_value(leaf, num[leaf] / den[leaf]);
      }

      for (std::size_t i = 0; i < n; ++i) {
        raw[i] += params_.learning_rate * tree.predict(train.row(i));
      }
      ensemble.push_back(std::move(tree));
    }
  }
}

double GradientBoosting::raw_score(std::span<const double> features,
                                   int cls) const {
  double score = base_score_[static_cast<std::size_t>(cls)];
  for (const auto& tree : ensembles_[static_cast<std::size_t>(cls)]) {
    score += params_.learning_rate * tree.predict(features);
  }
  return score;
}

void GradientBoosting::predict_proba_row(std::span<const double> features,
                                         std::span<double> out) const {
  double total = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    const double s = raw_score(features, c);
    out[static_cast<std::size_t>(c)] = 1.0 / (1.0 + std::exp(-s));
    total += out[static_cast<std::size_t>(c)];
  }
  if (total > 0.0) {
    for (auto& p : out) p /= total;
  }
}

std::vector<double> GradientBoosting::predict_proba(
    std::span<const double> features) const {
  DROPPKT_EXPECT(!ensembles_.empty(), "GradientBoosting: predict before fit");
  DROPPKT_EXPECT(features.size() == num_features_,
                 "GradientBoosting: feature width mismatch");
  std::vector<double> proba(static_cast<std::size_t>(num_classes_));
  predict_proba_row(features, proba);
  return proba;
}

void GradientBoosting::predict_proba_batch(const Dataset& data,
                                           std::span<double> out,
                                           std::size_t num_threads) const {
  DROPPKT_EXPECT(!ensembles_.empty(), "GradientBoosting: predict before fit");
  const auto c_count = static_cast<std::size_t>(num_classes_);
  DROPPKT_EXPECT(out.size() == data.size() * c_count,
                 "GradientBoosting::predict_proba_batch: bad output buffer");
  auto one_row = [&](std::size_t r) {
    predict_proba_row(data.row(r), out.subspan(r * c_count, c_count));
  };
  const std::size_t threads =
      std::min(util::ThreadPool::resolve_threads(num_threads),
               std::max<std::size_t>(1, data.size()));
  if (threads <= 1 || data.size() <= 1) {
    for (std::size_t r = 0; r < data.size(); ++r) one_row(r);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(0, data.size(), one_row);
  }
}

std::vector<int> GradientBoosting::predict_batch(const Dataset& data,
                                                 std::size_t num_threads) const {
  const auto c_count = static_cast<std::size_t>(num_classes_);
  std::vector<double> proba(data.size() * c_count);
  predict_proba_batch(data, proba, num_threads);
  std::vector<int> preds(data.size());
  for (std::size_t r = 0; r < data.size(); ++r) {
    const double* p = proba.data() + r * c_count;
    preds[r] = static_cast<int>(std::max_element(p, p + c_count) - p);
  }
  return preds;
}

int GradientBoosting::predict(std::span<const double> features) const {
  const auto p = predict_proba(features);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

void GradientBoosting::save(std::ostream& os) const {
  DROPPKT_EXPECT(!ensembles_.empty(),
                 "GradientBoosting::save: model is not fitted");
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "droppkt-gbt v1\n";
  os << num_classes_ << ' ' << num_features_ << ' ' << params_.learning_rate
     << '\n';
  for (int c = 0; c < num_classes_; ++c) {
    const auto& ensemble = ensembles_[static_cast<std::size_t>(c)];
    os << "class " << ensemble.size() << ' '
       << base_score_[static_cast<std::size_t>(c)] << '\n';
    for (const auto& tree : ensemble) tree.save(os);
  }
}

void GradientBoosting::save_file(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("GradientBoosting: cannot open " + path);
  save(ofs);
  if (!ofs) throw std::runtime_error("GradientBoosting: write failed " + path);
}

GradientBoosting GradientBoosting::load(std::istream& is) {
  std::string header;
  std::getline(is, header);
  if (header != "droppkt-gbt v1") {
    gbt_parse_fail("unrecognized header '" + header + "'");
  }
  GradientBoosting model;
  std::size_t n_features = 0;
  double learning_rate = 0.0;
  is >> model.num_classes_ >> n_features >> learning_rate;
  if (is.fail()) gbt_parse_fail("truncated model dimensions");
  if (model.num_classes_ < 2 ||
      static_cast<std::size_t>(model.num_classes_) > kMaxLoadClasses ||
      n_features < 1 || n_features > kMaxLoadFeatures) {
    gbt_parse_fail("implausible model dimensions");
  }
  if (!std::isfinite(learning_rate) || learning_rate <= 0.0 ||
      learning_rate > 10.0) {
    gbt_parse_fail("implausible learning rate");
  }
  model.num_features_ = n_features;
  model.params_.learning_rate = learning_rate;
  model.ensembles_.resize(static_cast<std::size_t>(model.num_classes_));
  model.base_score_.resize(static_cast<std::size_t>(model.num_classes_));
  for (int c = 0; c < model.num_classes_; ++c) {
    std::string tag;
    std::size_t rounds = 0;
    double base = 0.0;
    is >> tag >> rounds >> base;
    if (is.fail() || tag != "class") gbt_parse_fail("bad class header");
    if (rounds < 1 || rounds > kMaxLoadRounds) {
      gbt_parse_fail("implausible round count " + std::to_string(rounds));
    }
    if (!std::isfinite(base)) gbt_parse_fail("non-finite base score");
    model.base_score_[static_cast<std::size_t>(c)] = base;
    auto& ensemble = model.ensembles_[static_cast<std::size_t>(c)];
    ensemble.reserve(std::min<std::size_t>(rounds, 4096));
    for (std::size_t r = 0; r < rounds; ++r) {
      ensemble.push_back(RegressionTree::load(is, n_features));
    }
  }
  return model;
}

GradientBoosting GradientBoosting::load_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("GradientBoosting: cannot open " + path);
  return load(ifs);
}

}  // namespace droppkt::ml
