#include "ml/cross_validation.hpp"

#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace droppkt::ml {

CrossValidationResult cross_validate(
    const Dataset& data,
    const std::function<std::unique_ptr<Classifier>()>& make_model,
    std::size_t k, std::uint64_t seed, std::size_t num_threads) {
  DROPPKT_EXPECT(static_cast<bool>(make_model),
                 "cross_validate: model factory must be callable");
  util::Rng rng(seed);
  const auto folds = stratified_folds(data, k, rng);

  // Factories may capture shared state, so call them before going wide.
  std::vector<std::unique_ptr<Classifier>> models;
  models.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    models.push_back(make_model());
    DROPPKT_ENSURE(models.back() != nullptr,
                   "cross_validate: factory returned null");
  }

  std::vector<ConfusionMatrix> fold_cms(k, ConfusionMatrix(data.num_classes()));
  auto run_fold = [&](std::size_t f, util::ThreadPool* shared_pool) {
    const auto& test_idx = folds[f];
    const auto train_idx = fold_complement(data.size(), test_idx);
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(test_idx);

    Classifier& model = *models[f];
    if (shared_pool != nullptr) {
      dynamic_cast<PoolTrainable&>(model).fit_on_pool(train, *shared_pool);
    } else {
      model.fit(train);
    }

    ConfusionMatrix& cm = fold_cms[f];
    for (std::size_t i = 0; i < test.size(); ++i) {
      cm.add(test.label(i), model.predict(test.row(i)));
    }
  };

  const std::size_t threads = util::ThreadPool::resolve_threads(num_threads);
  if (threads <= 1) {
    for (std::size_t f = 0; f < k; ++f) run_fold(f, nullptr);
  } else if (dynamic_cast<PoolTrainable*>(models[0].get()) != nullptr) {
    // Fold x tree granularity: folds run in order, each fit fans its
    // trees across ALL workers of one shared pool. Fold-per-worker
    // scheduling ran each multi-minute fit single-threaded and finished
    // only when the slowest fold did; here the pool drains every fold's
    // tree queue at full width, and nested pool construction (k pools x
    // model threads) never happens. fit_on_pool is bit-identical to
    // fit(), so the result matches the sequential path exactly — which
    // also makes it safe to cap the pool at physical concurrency: tree
    // tasks are CPU-bound, so workers beyond the core count only add
    // scheduler churn (measurably so on 1-core containers).
    util::ThreadPool pool(
        std::min(threads, util::ThreadPool::recommended_threads()));
    for (std::size_t f = 0; f < k; ++f) run_fold(f, &pool);
  } else {
    util::ThreadPool pool(std::min(threads, k));
    pool.parallel_for(0, k,
                      [&run_fold](std::size_t f) { run_fold(f, nullptr); });
  }

  // Merge in fold order: pooled counts and fold_accuracy are independent
  // of which fold finished first.
  CrossValidationResult result(data.num_classes());
  for (std::size_t f = 0; f < k; ++f) {
    result.fold_accuracy.push_back(fold_cms[f].accuracy());
    result.pooled.merge(fold_cms[f]);
  }
  return result;
}

}  // namespace droppkt::ml
