#include "ml/cross_validation.hpp"

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {

CrossValidationResult cross_validate(
    const Dataset& data,
    const std::function<std::unique_ptr<Classifier>()>& make_model,
    std::size_t k, std::uint64_t seed) {
  DROPPKT_EXPECT(static_cast<bool>(make_model),
                 "cross_validate: model factory must be callable");
  util::Rng rng(seed);
  const auto folds = stratified_folds(data, k, rng);

  CrossValidationResult result(data.num_classes());
  for (const auto& test_idx : folds) {
    const auto train_idx = fold_complement(data.size(), test_idx);
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(test_idx);

    auto model = make_model();
    DROPPKT_ENSURE(model != nullptr, "cross_validate: factory returned null");
    model->fit(train);

    ConfusionMatrix fold_cm(data.num_classes());
    for (std::size_t i = 0; i < test.size(); ++i) {
      fold_cm.add(test.label(i), model->predict(test.row(i)));
    }
    result.fold_accuracy.push_back(fold_cm.accuracy());
    result.pooled.merge(fold_cm);
  }
  return result;
}

}  // namespace droppkt::ml
