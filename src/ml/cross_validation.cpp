#include "ml/cross_validation.hpp"

#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace droppkt::ml {

CrossValidationResult cross_validate(
    const Dataset& data,
    const std::function<std::unique_ptr<Classifier>()>& make_model,
    std::size_t k, std::uint64_t seed, std::size_t num_threads) {
  DROPPKT_EXPECT(static_cast<bool>(make_model),
                 "cross_validate: model factory must be callable");
  util::Rng rng(seed);
  const auto folds = stratified_folds(data, k, rng);

  // Factories may capture shared state, so call them before going wide.
  std::vector<std::unique_ptr<Classifier>> models;
  models.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    models.push_back(make_model());
    DROPPKT_ENSURE(models.back() != nullptr,
                   "cross_validate: factory returned null");
  }

  std::vector<ConfusionMatrix> fold_cms(k, ConfusionMatrix(data.num_classes()));
  auto run_fold = [&](std::size_t f) {
    const auto& test_idx = folds[f];
    const auto train_idx = fold_complement(data.size(), test_idx);
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(test_idx);

    Classifier& model = *models[f];
    model.fit(train);

    ConfusionMatrix& cm = fold_cms[f];
    for (std::size_t i = 0; i < test.size(); ++i) {
      cm.add(test.label(i), model.predict(test.row(i)));
    }
  };

  const std::size_t threads =
      std::min(util::ThreadPool::resolve_threads(num_threads), k);
  if (threads <= 1) {
    for (std::size_t f = 0; f < k; ++f) run_fold(f);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(0, k, run_fold);
  }

  // Merge in fold order: pooled counts and fold_accuracy are independent
  // of which fold finished first.
  CrossValidationResult result(data.num_classes());
  for (std::size_t f = 0; f < k; ++f) {
    result.fold_accuracy.push_back(fold_cms[f].accuracy());
    result.pooled.merge(fold_cms[f]);
  }
  return result;
}

}  // namespace droppkt::ml
