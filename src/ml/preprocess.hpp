// Feature standardization (zero mean, unit variance) for the distance- and
// gradient-based models (k-NN, SVM, MLP). Tree models don't need it.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace droppkt::ml {

/// Per-feature z-score transform fitted on training data.
class Standardizer {
 public:
  /// Learn mean/sd per feature. Constant features get sd 1 (pass-through).
  void fit(const Dataset& data);

  bool fitted() const { return !mean_.empty(); }

  /// Transform one row (width must match the fitted data).
  std::vector<double> transform(std::span<const double> row) const;

  /// Transform a whole dataset (labels preserved).
  Dataset transform(const Dataset& data) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace droppkt::ml
