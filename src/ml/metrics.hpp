// Classification metrics: confusion matrix, accuracy, per-class
// precision/recall — the quantities every table in the paper reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace droppkt::ml {

/// Row = actual class, column = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int actual, int predicted);
  /// Merge another matrix (e.g. across CV folds).
  void merge(const ConfusionMatrix& other);

  int num_classes() const { return num_classes_; }
  std::size_t count(int actual, int predicted) const;
  std::size_t total() const;
  std::size_t actual_total(int cls) const;
  std::size_t predicted_total(int cls) const;

  double accuracy() const;
  /// Precision for one class: TP / (TP + FP); 0 when undefined.
  double precision(int cls) const;
  /// Recall for one class: TP / (TP + FN); 0 when undefined.
  double recall(int cls) const;
  double f1(int cls) const;
  double macro_recall() const;
  double macro_precision() const;

  /// Row-normalized percentages, rendered as a text table.
  std::string render(const std::vector<std::string>& class_names) const;

 private:
  int num_classes_;
  std::vector<std::size_t> cells_;  // row-major
};

}  // namespace droppkt::ml
