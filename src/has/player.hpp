// Event-driven HAS player simulator.
//
// Streams one video over a link model, driving the service's ABR algorithm
// and producing (a) per-second ground-truth QoE exactly as the paper's
// instrumented browser collects it, and (b) the HTTP transaction log that
// the measurement substrates (TLS collector, packet generator) consume.
#pragma once

#include <cstddef>
#include <vector>

#include "has/http_transaction.hpp"
#include "has/service_profile.hpp"
#include "has/video_catalog.hpp"
#include "net/link_model.hpp"
#include "util/rng.hpp"

namespace droppkt::has {

/// A contiguous playback stall on the wall clock (startup excluded).
struct StallInterval {
  double start_s = 0.0;
  double end_s = 0.0;
  double length() const { return end_s - start_s; }
};

/// User-interaction model (paper Section 4.3 lists interactions as future
/// work; this implements it). Rates are Poisson per minute of wall time;
/// zero rates disable interactions entirely.
struct InteractionModel {
  double pause_rate_per_min = 0.0;  // user pauses playback
  double pause_mean_s = 20.0;       // mean pause length
  double seek_rate_per_min = 0.0;   // user skips forward
  double seek_mean_s = 40.0;        // mean media seconds skipped

  bool enabled() const {
    return pause_rate_per_min > 0.0 || seek_rate_per_min > 0.0;
  }
};

/// Ground truth the paper gathers via injected JavaScript: per-second
/// playback quality plus stall timing.
struct GroundTruth {
  double startup_delay_s = 0.0;  // wall time until first frame
  double playback_s = 0.0;       // media seconds actually played
  double session_end_s = 0.0;    // wall time when the player closed
  std::size_t pause_count = 0;   // user interactions that occurred
  std::size_t seek_count = 0;
  std::vector<StallInterval> stalls;
  /// Ladder level of each played media second, in playback order.
  std::vector<std::size_t> played_level_per_s;
  /// Height (px) of each played media second.
  std::vector<int> played_height_per_s;

  double stall_time_s() const;
  /// Stall time as a fraction of playback time (paper's rr), in [0, inf).
  double rebuffer_ratio() const;
};

/// Everything one simulated session produced.
struct PlaybackResult {
  GroundTruth ground_truth;
  HttpLog http;  // sorted by request time
};

/// Simulates sessions. Stateless across calls; all randomness comes from
/// the caller's Rng so sessions are reproducible.
class PlayerSimulator {
 public:
  /// Stream `video` on `svc` over `link`, with the user closing the player
  /// after `watch_duration_s` of wall-clock time (or at end of content).
  /// Optional `interactions` add pauses (playhead frozen, buffering
  /// continues) and forward seeks (buffered media discarded).
  PlaybackResult play(const ServiceProfile& svc, const Video& video,
                      const net::LinkModel& link, double watch_duration_s,
                      util::Rng& rng,
                      const InteractionModel& interactions = {}) const;
};

}  // namespace droppkt::has
