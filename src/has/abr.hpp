// Adaptive bitrate (ABR) algorithms.
//
// Three families cover the behaviours the paper attributes to its three
// services: a conservative buffer-filling algorithm (Svc1: sacrifices
// quality to avoid stalls), a sticky rate-based algorithm (Svc2: holds
// quality until the buffer runs low, so poor networks cause stalls), and
// a hybrid in between (Svc3).
#pragma once

#include <cstddef>
#include <memory>

#include "has/quality_ladder.hpp"

namespace droppkt::has {

/// Everything an ABR decision may look at.
struct AbrContext {
  double buffer_s = 0.0;             // media seconds currently buffered
  double buffer_capacity_s = 0.0;    // maximum buffer the player fills to
  double throughput_kbps = 0.0;      // smoothed measured throughput
  std::size_t current_quality = 0;   // level of the previous segment
  bool startup = false;              // before playback has begun
  const QualityLadder* ladder = nullptr;
};

/// Strategy interface: choose the quality level for the next segment.
class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;
  virtual std::size_t choose(const AbrContext& ctx) = 0;
};

/// Buffer-filling ABR (BBA-family, Huang et al. SIGCOMM'14 flavour).
///
/// Quality is a function of buffered media seconds: at or below
/// `reservoir_s` stream the lowest level, at `cushion_s` and above the
/// rate-capped maximum, linear in between. During startup it always picks
/// the lowest level, which is exactly the paper's description of Svc1
/// ("attempts to avoid re-buffering by quickly filling the buffer at the
/// expense of streaming at low video quality").
class BufferFillAbr final : public AbrAlgorithm {
 public:
  BufferFillAbr(double reservoir_s, double cushion_s, double rate_safety);
  std::size_t choose(const AbrContext& ctx) override;

 private:
  double reservoir_s_;
  double cushion_s_;
  double rate_safety_;
};

/// Sticky rate-based ABR (FESTIVE-family flavour).
///
/// Picks the highest level sustainable at `rate_safety * throughput`, but
/// only switches down when the buffer drops below `panic_buffer_s`, and
/// switches up only when the estimate exceeds the next level by
/// `up_hysteresis`. Holding quality as the buffer drains reproduces the
/// paper's Svc2 ("switch video quality only when the video buffer runs
/// low"), converting poor networks into re-buffering.
class StickyRateAbr final : public AbrAlgorithm {
 public:
  StickyRateAbr(double rate_safety, double up_hysteresis, double panic_buffer_s);
  std::size_t choose(const AbrContext& ctx) override;

 private:
  double rate_safety_;
  double up_hysteresis_;
  double panic_buffer_s_;
};

/// Hybrid: rate-based target with buffer-based damping (Svc3).
class HybridAbr final : public AbrAlgorithm {
 public:
  HybridAbr(double rate_safety, double low_buffer_s, double high_buffer_s);
  std::size_t choose(const AbrContext& ctx) override;

 private:
  double rate_safety_;
  double low_buffer_s_;
  double high_buffer_s_;
};

/// Model-predictive ABR (robust-MPC flavour, Yin et al. SIGCOMM'15 [36]).
///
/// For each candidate level it simulates the next `horizon` segments at
/// that level against the (discounted) throughput estimate, scoring
/// utility = bitrate − stall penalty − switching penalty, and picks the
/// best. `segment_duration_s` must match the service's segments.
class MpcAbr final : public AbrAlgorithm {
 public:
  MpcAbr(double segment_duration_s, int horizon = 5,
         double stall_penalty_kbps = 3000.0, double switch_penalty = 1.0,
         double throughput_discount = 0.8);
  std::size_t choose(const AbrContext& ctx) override;

 private:
  double utility(const AbrContext& ctx, std::size_t level) const;

  double segment_duration_s_;
  int horizon_;
  double stall_penalty_kbps_;
  double switch_penalty_;
  double throughput_discount_;
};

/// Which family a service profile instantiates.
enum class AbrKind { kBufferFill, kStickyRate, kHybrid, kMpc };

/// Factory used by ServiceProfile.
std::unique_ptr<AbrAlgorithm> make_abr(AbrKind kind);

}  // namespace droppkt::has
