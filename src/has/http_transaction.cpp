// to_string(HttpKind) lives in player.cpp alongside the simulator that
// produces the records; this TU intentionally left as the module anchor.
#include "has/http_transaction.hpp"
