#include "has/service_profile.hpp"

#include "util/expect.hpp"

namespace droppkt::has {

double ServiceProfile::segment_bytes(std::size_t q) const {
  const double video = ladder.level(q).bitrate_kbps;
  const double audio = separate_audio ? 0.0 : audio_bitrate_kbps;
  return (video + audio) * 1000.0 / 8.0 * segment_duration_s;
}

ServiceProfile svc1_profile() {
  // Svc1 (paper: 240 s buffer; avoids re-buffering by filling the buffer at
  // low quality; poor networks -> low video quality). The ladder has no
  // 360p rung, matching the paper's low<=288p / med=480p / high>=720p
  // thresholds. Segments are fetched as bounded range requests, so one TLS
  // connection carries many HTTP transactions (paper: 12.1 on average).
  ServiceProfile p{
      .name = "Svc1",
      .ladder = QualityLadder({{144, 120.0, "144p"},
                               {240, 320.0, "240p"},
                               {288, 550.0, "288p"},
                               {480, 900.0, "480p"},
                               {720, 2200.0, "720p"},
                               {1080, 3800.0, "1080p"}}),
      .abr = AbrKind::kBufferFill,
      .buffer_capacity_s = 240.0,
      .startup_buffer_s = 4.0,
      .segment_duration_s = 5.0,
      .separate_audio = true,
      .audio_bitrate_kbps = 96.0,
      .max_request_bytes = 500.0 * 1024.0,
      .beacon_interval_s = 15.0,
      .connections = {.cdn_pool_size = 600,
                      .cdn_hosts_per_session = 3,
                      .max_requests_per_connection = 16,
                      .idle_timeout_s = 16.0,
                      .parallel_connections = 2,
                      .handshake_ul_bytes = 700.0,
                      .handshake_dl_bytes = 3000.0,
                      .cdn_host_format = "r%d.svc1video.example",
                      .api_host = "www.svc1video.example",
                      .beacon_host = "s.svc1video.example"},
      .low_max_px = 288,
      .med_max_px = 480};
  return p;
}

ServiceProfile svc2_profile() {
  // Svc2 (paper: switches quality only when the buffer runs low; poor
  // networks -> re-buffering). Moderate buffer, sticky rate-based ABR,
  // whole-segment requests on few long-lived connections.
  ServiceProfile p{
      .name = "Svc2",
      .ladder = QualityLadder({{240, 300.0, "240p"},
                               {360, 700.0, "360p"},
                               {480, 1200.0, "480p"},
                               {720, 2200.0, "720p"},
                               {1080, 4000.0, "1080p"}}),
      .abr = AbrKind::kStickyRate,
      .buffer_capacity_s = 60.0,
      .startup_buffer_s = 8.0,
      .segment_duration_s = 4.0,
      .separate_audio = true,
      .audio_bitrate_kbps = 96.0,
      .max_request_bytes = 0.0,
      .beacon_interval_s = 45.0,
      .connections = {.cdn_pool_size = 240,
                      .cdn_hosts_per_session = 2,
                      .max_requests_per_connection = 40,
                      .idle_timeout_s = 20.0,
                      .parallel_connections = 2,
                      .handshake_ul_bytes = 800.0,
                      .handshake_dl_bytes = 3600.0,
                      .cdn_host_format = "cdn%d.svc2films.example",
                      .api_host = "api.svc2films.example",
                      .beacon_host = "events.svc2films.example"},
      .low_max_px = 360,
      .med_max_px = 480};
  return p;
}

ServiceProfile svc3_profile() {
  // Svc3 (paper: only three quality levels observed; degradation mixes
  // stalls and quality drops, closer to Svc2 than Svc1).
  ServiceProfile p{
      .name = "Svc3",
      .ladder = QualityLadder({{480, 700.0, "480p"},
                               {720, 1800.0, "720p"},
                               {1080, 3600.0, "1080p"}}),
      .abr = AbrKind::kHybrid,
      .buffer_capacity_s = 90.0,
      .startup_buffer_s = 6.0,
      .segment_duration_s = 6.0,
      .separate_audio = false,
      .audio_bitrate_kbps = 128.0,
      .max_request_bytes = 0.0,
      .beacon_interval_s = 30.0,
      .connections = {.cdn_pool_size = 120,
                      .cdn_hosts_per_session = 2,
                      .max_requests_per_connection = 20,
                      .idle_timeout_s = 12.0,
                      .parallel_connections = 1,
                      .handshake_ul_bytes = 750.0,
                      .handshake_dl_bytes = 3300.0,
                      .cdn_host_format = "edge%d.svc3tv.example",
                      .api_host = "play.svc3tv.example",
                      .beacon_host = "beacon.svc3tv.example"},
      // Three ladder levels map 1:1 onto low/medium/high.
      .low_max_px = 480,
      .med_max_px = 720};
  return p;
}

ServiceProfile svc_live_profile() {
  // Live edge: the player can hold only a handful of segments, so
  // downloads pace themselves at real time and stalls hit immediately
  // when the network dips below the encoding rate.
  ServiceProfile p = svc1_profile();
  p.name = "Svc1-Live";
  // Buffer-occupancy ABR is useless when the cap is a few seconds; live
  // players pick quality from the measured rate.
  p.abr = AbrKind::kStickyRate;
  p.buffer_capacity_s = 12.0;
  p.startup_buffer_s = 2.0;
  p.segment_duration_s = 2.0;      // low-latency segments
  p.max_request_bytes = 0.0;       // one request per segment
  p.beacon_interval_s = 10.0;      // live players report more often
  p.connections.cdn_host_format = "live%d.svc1video.example";
  return p;
}

std::vector<ServiceProfile> all_services() {
  std::vector<ServiceProfile> v;
  v.push_back(svc1_profile());
  v.push_back(svc2_profile());
  v.push_back(svc3_profile());
  return v;
}

ServiceProfile service_by_name(const std::string& name) {
  if (name == "Svc1") return svc1_profile();
  if (name == "Svc2") return svc2_profile();
  if (name == "Svc3") return svc3_profile();
  throw ContractViolation("service_by_name: unknown service '" + name + "'");
}

}  // namespace droppkt::has
