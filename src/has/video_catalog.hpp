// Video catalog: the 50-75 videos per service the paper streams.
//
// Content genre modulates encoded segment sizes (animation compresses
// well, sports poorly), which gives sessions realistic size diversity
// beyond the quality ladder's nominal bitrates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace droppkt::has {

enum class Genre { kAnimation, kSports, kNews, kDrama, kDocumentary };

std::string to_string(Genre g);

/// One title in a service's catalog.
struct Video {
  std::string id;
  Genre genre = Genre::kDrama;
  double duration_s = 0.0;          // full content length
  double bitrate_factor = 1.0;      // genre+title multiplier on nominal bitrate
  double size_variability = 0.15;   // per-segment lognormal sigma
};

/// A fixed list of videos for one service.
class VideoCatalog {
 public:
  /// Generate a catalog of `count` titles (deterministic per seed).
  static VideoCatalog generate(const std::string& service_name,
                               std::size_t count, std::uint64_t seed);

  std::size_t size() const { return videos_.size(); }
  const Video& video(std::size_t i) const;

  /// Uniformly sample a title.
  const Video& sample(util::Rng& rng) const;

 private:
  std::vector<Video> videos_;
};

}  // namespace droppkt::has
