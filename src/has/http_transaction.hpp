// HTTP transaction records emitted by the player simulator.
//
// These are the "fine-grained" application-layer events that the paper's
// Figure 2 contrasts with TLS transactions; the TLS collector groups them
// onto connections and the packet generator expands them into packets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace droppkt::has {

/// What a request fetched.
enum class HttpKind {
  kManifest,      // media presentation description / playlist
  kInitSegment,   // codec init data
  kVideoSegment,  // a media (video or muxed) range/segment request
  kAudioSegment,  // separate audio rendition request
  kBeacon,        // telemetry / QoE ping (uplink-heavy, tiny downlink)
  kAsset,         // thumbnails / ad creative / UI assets — QoE-irrelevant
                  // bytes that share the video hosts and blur the features
};

std::string to_string(HttpKind kind);

/// One request/response exchange as the client experienced it.
struct HttpTransaction {
  double request_s = 0.0;         // request sent
  double response_start_s = 0.0;  // first response byte
  double response_end_s = 0.0;    // last response byte
  double ul_bytes = 0.0;          // request + headers on the wire
  double dl_bytes = 0.0;          // response bytes on the wire
  HttpKind kind = HttpKind::kVideoSegment;
  std::size_t quality = 0;        // ladder index, for segment requests
  std::string host;               // server the request went to
  double rtt_s = 0.0;             // RTT sampled for this exchange (packet gen)
  std::int32_t connection_id = -1;  // TLS connection carrying this exchange
                                    // (set by the connection manager)

  double duration_s() const { return response_end_s - request_s; }
};

using HttpLog = std::vector<HttpTransaction>;

}  // namespace droppkt::has
