#include "has/player.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::has {

double GroundTruth::stall_time_s() const {
  double total = 0.0;
  for (const auto& s : stalls) total += s.length();
  return total;
}

double GroundTruth::rebuffer_ratio() const {
  if (playback_s <= 0.0) return 0.0;
  return stall_time_s() / playback_s;
}

std::string to_string(HttpKind kind) {
  switch (kind) {
    case HttpKind::kManifest: return "manifest";
    case HttpKind::kInitSegment: return "init";
    case HttpKind::kVideoSegment: return "video";
    case HttpKind::kAudioSegment: return "audio";
    case HttpKind::kBeacon: return "beacon";
    case HttpKind::kAsset: return "asset";
  }
  return "unknown";
}

namespace {

/// Mutable playback state threaded through the simulation.
struct PlayState {
  double wall_s = 0.0;      // simulation clock
  double buffer_s = 0.0;    // buffered media seconds
  double close_s = 1e18;    // wall time the user closes the player
  double paused_until_s = -1.0;  // user pause in effect until this instant
  bool started = false;     // first frame shown
  bool playing = false;     // currently rendering (false during stalls)
  double stall_start_s = 0.0;
  GroundTruth gt;

  bool paused_at(double t) const { return t < paused_until_s; }
};

/// Advance the wall clock by dt, draining the buffer and recording stalls.
/// Nothing plays or stalls after the user closes the player (close_s) —
/// an in-flight transfer may still finish on the wire, but it no longer
/// contributes to QoE.
void advance(PlayState& st, double dt) {
  DROPPKT_ENSURE(dt >= -1e-9, "advance: time must not go backwards");
  if (dt <= 0.0) return;
  if (!st.started) {
    st.wall_s += dt;
    return;
  }
  if (st.paused_at(st.wall_s)) {
    // User pause: the playhead is frozen but buffering continues; this is
    // neither playback nor a stall. Skip ahead to the pause end (or
    // consume all of dt).
    const double frozen = std::min(dt, st.paused_until_s - st.wall_s);
    st.wall_s += frozen;
    advance(st, dt - frozen);
    return;
  }
  if (st.playing) {
    const double until_close = std::max(0.0, st.close_s - st.wall_s);
    const double played = std::min({st.buffer_s, dt, until_close});
    st.buffer_s -= played;
    st.gt.playback_s += played;
    st.wall_s += played;
    const double remaining = dt - played;
    if (remaining > 1e-9) {
      if (st.wall_s >= st.close_s - 1e-9) {
        st.wall_s += remaining;  // player closed: clock moves, no stall
      } else {
        // Buffer ran dry mid-interval: stall for the rest.
        st.playing = false;
        st.stall_start_s = st.wall_s;
        st.wall_s += remaining;
      }
    }
  } else {
    st.wall_s += dt;  // stalled: clock moves, nothing plays
  }
}

/// Resume playback after a stall (closes the stall interval). Stalls are
/// truncated at player close.
void resume(PlayState& st) {
  if (st.started && !st.playing) {
    const double end = std::min(st.wall_s, st.close_s);
    if (end > st.stall_start_s) {
      st.gt.stalls.push_back({st.stall_start_s, end});
    }
    st.playing = true;
  }
}

}  // namespace

PlaybackResult PlayerSimulator::play(const ServiceProfile& svc,
                                     const Video& video,
                                     const net::LinkModel& link,
                                     double watch_duration_s, util::Rng& rng,
                                     const InteractionModel& interactions) const {
  DROPPKT_EXPECT(watch_duration_s > 0.0,
                 "play: watch duration must be positive");

  PlaybackResult result;
  HttpLog& http = result.http;
  PlayState st;
  st.close_s = watch_duration_s;

  auto log_transfer = [&](double start, double ul, double dl, HttpKind kind,
                          std::size_t quality) -> net::TransferTiming {
    const net::TransferTiming t = link.transfer(start, ul, dl, rng);
    http.push_back({.request_s = t.request_sent_s,
                    .response_start_s = t.response_start_s,
                    .response_end_s = t.response_end_s,
                    .ul_bytes = ul,
                    .dl_bytes = dl,
                    .kind = kind,
                    .quality = quality,
                    .host = {},  // assigned by the connection manager
                    .rtt_s = t.rtt_s});
    return t;
  };

  // --- Startup: manifest, then init segments. -----------------------------
  double throughput_kbps = 0.0;
  auto update_throughput = [&throughput_kbps](double dl_bytes,
                                              const net::TransferTiming& t) {
    // Per-request rate the way players measure it: bytes over the full
    // request-to-last-byte window, smoothed with an EWMA.
    const double window = std::max(1e-3, t.response_end_s - t.request_sent_s);
    const double measured = dl_bytes * 8.0 / 1000.0 / window;
    throughput_kbps = throughput_kbps <= 0.0
                          ? measured
                          : 0.75 * throughput_kbps + 0.25 * measured;
  };
  {
    const double mani_ul = rng.uniform(700.0, 1400.0);
    const double mani_dl = rng.uniform(30e3, 120e3);
    const auto t = log_transfer(st.wall_s, mani_ul, mani_dl,
                                HttpKind::kManifest, 0);
    update_throughput(mani_dl, t);
    st.wall_s = t.response_end_s;

    const int inits = svc.separate_audio ? 2 : 1;
    for (int i = 0; i < inits; ++i) {
      const auto ti = log_transfer(st.wall_s, rng.uniform(400.0, 800.0),
                                   rng.uniform(1500.0, 5000.0),
                                   HttpKind::kInitSegment, 0);
      st.wall_s = ti.response_end_s;
    }

    // UI assets (thumbnails, artwork, ad creative) load alongside startup.
    // These bytes share the session's hosts but carry no QoE signal.
    const auto n_assets = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < n_assets; ++i) {
      log_transfer(st.wall_s + rng.uniform(0.0, 4.0),
                   rng.uniform(400.0, 900.0),
                   rng.lognormal(std::log(120e3), 0.9), HttpKind::kAsset, 0);
    }
  }

  // --- Main download loop. -------------------------------------------------
  const auto abr = make_abr(svc.abr);
  DROPPKT_ENSURE(abr != nullptr, "play: ABR factory returned null");

  // Per-session player heterogeneity invisible on the wire: throughput
  // estimators differ across player versions/devices (multiplicative bias),
  // and phones/tabs cap the resolution they request. Both decouple the
  // observable traffic from the QoE label, as in real deployments.
  const double abr_bias = rng.lognormal(0.0, 0.45);
  // Per-session request overhead (cookies, auth tokens, UA headers) and the
  // player build's range-request sizing both vary across sessions.
  const double ul_overhead = rng.uniform(150.0, 1400.0);
  const double range_scale = rng.uniform(0.5, 1.8);
  std::size_t max_level = svc.ladder.highest();
  if (rng.bernoulli(0.30)) {
    const int cap_px = rng.bernoulli(0.45) ? 480 : 720;
    while (max_level > 0 && svc.ladder.level(max_level).height_px > cap_px) {
      --max_level;
    }
  }

  double media_downloaded_s = 0.0;
  std::size_t current_quality = svc.ladder.lowest();
  double next_beacon_s = rng.uniform(1.0, 5.0);

  // User-interaction schedule (Poisson arrivals on the wall clock).
  double next_pause_s = interactions.pause_rate_per_min > 0.0
                            ? rng.exponential(interactions.pause_rate_per_min / 60.0)
                            : 1e18;
  double next_seek_s = interactions.seek_rate_per_min > 0.0
                           ? rng.exponential(interactions.seek_rate_per_min / 60.0)
                           : 1e18;
  auto maybe_interact = [&]() {
    while (next_pause_s <= st.wall_s && st.started) {
      st.paused_until_s = std::max(st.wall_s, st.paused_until_s) +
                          rng.exponential(1.0 / interactions.pause_mean_s);
      ++st.gt.pause_count;
      next_pause_s += rng.exponential(interactions.pause_rate_per_min / 60.0);
    }
    while (next_seek_s <= st.wall_s && st.started) {
      // Forward seek: buffered media past the new playhead is discarded.
      const double skip = rng.exponential(1.0 / interactions.seek_mean_s);
      st.buffer_s = std::max(0.0, st.buffer_s - skip);
      ++st.gt.seek_count;
      next_seek_s += rng.exponential(interactions.seek_rate_per_min / 60.0);
    }
  };

  double next_asset_s = rng.uniform(40.0, 150.0);
  auto maybe_beacon = [&]() {
    // Telemetry fires on its own timer, independent of the download loop.
    while (next_beacon_s <= st.wall_s) {
      log_transfer(next_beacon_s, rng.uniform(900.0, 2500.0),
                   rng.uniform(300.0, 900.0), HttpKind::kBeacon, 0);
      next_beacon_s += svc.beacon_interval_s * rng.uniform(0.85, 1.15);
    }
    // Occasional mid-session assets (ad creative, hover thumbnails).
    while (next_asset_s <= st.wall_s) {
      const auto burst = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < burst; ++i) {
        log_transfer(next_asset_s + rng.uniform(0.0, 2.0),
                     rng.uniform(400.0, 900.0),
                     rng.lognormal(std::log(200e3), 1.0), HttpKind::kAsset, 0);
      }
      next_asset_s += rng.uniform(60.0, 200.0);
    }
    maybe_interact();
  };

  // After a stall, playback resumes as soon as one segment is buffered.
  const double resume_buffer_s = svc.segment_duration_s;

  while (st.wall_s < watch_duration_s &&
         media_downloaded_s + svc.segment_duration_s <= video.duration_s) {
    // Buffer full: idle until there is room for one more segment.
    if (st.started &&
        st.buffer_s + svc.segment_duration_s > svc.buffer_capacity_s) {
      const double drain =
          st.buffer_s + svc.segment_duration_s - svc.buffer_capacity_s;
      advance(st, drain);
      maybe_beacon();
      continue;
    }

    AbrContext ctx{.buffer_s = st.buffer_s,
                   .buffer_capacity_s = svc.buffer_capacity_s,
                   .throughput_kbps = throughput_kbps * abr_bias,
                   .current_quality = current_quality,
                   .startup = !st.started,
                   .ladder = &svc.ladder};
    const std::size_t q = std::min(abr->choose(ctx), max_level);
    current_quality = q;

    // Encoded segment size: nominal bitrate x duration, modulated by the
    // title's genre factor and per-segment variability.
    const double size_mult =
        video.bitrate_factor * rng.lognormal(0.0, video.size_variability);
    double seg_bytes = svc.segment_bytes(q) * size_mult;
    seg_bytes = std::max(seg_bytes, 2000.0);

    // Fetch (possibly as multiple range requests). Range sizes vary per
    // request — players size ranges by buffer level and build heuristics.
    double fetched = 0.0;
    while (fetched < seg_bytes - 1.0) {
      const double chunk =
          svc.max_request_bytes > 0.0
              ? svc.max_request_bytes * range_scale * rng.uniform(0.6, 1.4)
              : seg_bytes;
      const double this_chunk = std::min(chunk, seg_bytes - fetched);
      const auto t = log_transfer(
          st.wall_s, ul_overhead + rng.uniform(350.0, 800.0), this_chunk,
          HttpKind::kVideoSegment, q);
      update_throughput(this_chunk, t);
      advance(st, t.response_end_s - st.wall_s);
      fetched += this_chunk;
      maybe_beacon();
    }

    // Separate audio rendition, if the service uses one.
    if (svc.separate_audio) {
      const double audio_bytes =
          svc.audio_bitrate_kbps * 1000.0 / 8.0 * svc.segment_duration_s *
          rng.lognormal(0.0, 0.05);
      const auto t =
          log_transfer(st.wall_s, ul_overhead + rng.uniform(300.0, 650.0),
                       audio_bytes, HttpKind::kAudioSegment, q);
      advance(st, t.response_end_s - st.wall_s);
      maybe_beacon();
    }

    // Segment complete: credit the buffer and the ground-truth timeline.
    st.buffer_s += svc.segment_duration_s;
    media_downloaded_s += svc.segment_duration_s;
    const auto whole_seconds =
        static_cast<std::size_t>(std::lround(svc.segment_duration_s));
    for (std::size_t i = 0; i < whole_seconds; ++i) {
      st.gt.played_level_per_s.push_back(q);
      st.gt.played_height_per_s.push_back(svc.ladder.level(q).height_px);
    }

    // Startup / stall-recovery transitions.
    if (!st.started && st.buffer_s >= svc.startup_buffer_s) {
      st.started = true;
      st.playing = true;
      st.gt.startup_delay_s = st.wall_s;
    } else if (st.started && !st.playing && st.buffer_s >= resume_buffer_s) {
      resume(st);
    }
  }

  // --- Wind-down: user keeps watching from the buffer until close. --------
  if (!st.started && st.buffer_s > 0.0) {
    // Very short watch windows can end before startup completed.
    st.started = true;
    st.playing = true;
    st.gt.startup_delay_s = st.wall_s;
  }
  if (st.started) {
    if (!st.playing && st.buffer_s > 0.0) resume(st);
    if (st.wall_s < watch_duration_s && st.playing) {
      const double remaining = watch_duration_s - st.wall_s;
      const double played = std::min(st.buffer_s, remaining);
      st.buffer_s -= played;
      st.gt.playback_s += played;
      st.wall_s += played;
    }
  }
  if (st.started && !st.playing) {
    // Close any open stall at player close (truncated there).
    const double end = std::min(st.wall_s, st.close_s);
    if (end > st.stall_start_s) {
      st.gt.stalls.push_back({st.stall_start_s, end});
    }
    st.playing = true;
  }

  st.gt.session_end_s = std::max(st.wall_s, watch_duration_s);

  // Played-quality vectors cover downloaded media; truncate to what was
  // actually played.
  const auto played =
      static_cast<std::size_t>(std::floor(st.gt.playback_s + 0.5));
  if (st.gt.played_level_per_s.size() > played) {
    st.gt.played_level_per_s.resize(played);
    st.gt.played_height_per_s.resize(played);
  }

  std::sort(http.begin(), http.end(),
            [](const HttpTransaction& a, const HttpTransaction& b) {
              return a.request_s < b.request_s;
            });
  result.ground_truth = std::move(st.gt);
  return result;
}

}  // namespace droppkt::has
