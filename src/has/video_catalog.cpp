#include "has/video_catalog.hpp"

#include "util/expect.hpp"

namespace droppkt::has {

std::string to_string(Genre g) {
  switch (g) {
    case Genre::kAnimation: return "animation";
    case Genre::kSports: return "sports";
    case Genre::kNews: return "news";
    case Genre::kDrama: return "drama";
    case Genre::kDocumentary: return "documentary";
  }
  return "unknown";
}

VideoCatalog VideoCatalog::generate(const std::string& service_name,
                                    std::size_t count, std::uint64_t seed) {
  DROPPKT_EXPECT(count > 0, "VideoCatalog: count must be positive");
  util::Rng rng(seed);
  VideoCatalog catalog;
  catalog.videos_.reserve(count);
  const Genre genres[] = {Genre::kAnimation, Genre::kSports, Genre::kNews,
                          Genre::kDrama, Genre::kDocumentary};
  for (std::size_t i = 0; i < count; ++i) {
    Video v;
    v.id = service_name + "-video-" + std::to_string(i);
    v.genre = genres[rng.uniform_int(0, 4)];
    // Content long enough that sessions end by user stop (paper watches
    // 10-1200 s of each title).
    v.duration_s = rng.uniform(1260.0, 7200.0);
    // Per-title encoding efficiency varies widely in practice: the same
    // ladder rung can cost 2-3x more bits for complex content (VBR ladders,
    // per-title encoding). This is what makes byte counts an imperfect
    // proxy for quality.
    switch (v.genre) {
      case Genre::kAnimation: v.bitrate_factor = rng.uniform(0.45, 1.00); break;
      case Genre::kSports: v.bitrate_factor = rng.uniform(1.00, 1.90); break;
      case Genre::kNews: v.bitrate_factor = rng.uniform(0.60, 1.20); break;
      case Genre::kDrama: v.bitrate_factor = rng.uniform(0.70, 1.50); break;
      case Genre::kDocumentary: v.bitrate_factor = rng.uniform(0.65, 1.35); break;
    }
    v.size_variability = rng.uniform(0.15, 0.35);
    catalog.videos_.push_back(std::move(v));
  }
  return catalog;
}

const Video& VideoCatalog::video(std::size_t i) const {
  DROPPKT_EXPECT(i < videos_.size(), "VideoCatalog::video: index out of range");
  return videos_[i];
}

const Video& VideoCatalog::sample(util::Rng& rng) const {
  return videos_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(videos_.size()) - 1))];
}

}  // namespace droppkt::has
