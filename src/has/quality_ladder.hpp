// Quality ladders: the discrete encoding levels a HAS service offers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace droppkt::has {

/// One rung of a service's encoding ladder.
struct QualityLevel {
  int height_px = 0;          // vertical resolution, e.g. 720
  double bitrate_kbps = 0.0;  // nominal video bitrate at this level
  std::string label;          // e.g. "720p"
};

/// An ascending-bitrate list of quality levels.
///
/// Invariants: non-empty; bitrates strictly increasing; heights
/// non-decreasing.
class QualityLadder {
 public:
  explicit QualityLadder(std::vector<QualityLevel> levels);

  std::size_t size() const { return levels_.size(); }
  const QualityLevel& level(std::size_t i) const;
  const std::vector<QualityLevel>& levels() const { return levels_; }

  std::size_t lowest() const { return 0; }
  std::size_t highest() const { return levels_.size() - 1; }

  /// Highest level whose bitrate is <= `kbps`; lowest level if none fits.
  std::size_t max_sustainable(double kbps) const;

 private:
  std::vector<QualityLevel> levels_;
};

}  // namespace droppkt::has
