#include "has/abr.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::has {

namespace {
void check_ctx(const AbrContext& ctx) {
  DROPPKT_EXPECT(ctx.ladder != nullptr, "AbrContext: ladder must be set");
  DROPPKT_EXPECT(ctx.buffer_capacity_s > 0.0,
                 "AbrContext: buffer capacity must be positive");
  DROPPKT_EXPECT(ctx.buffer_s >= 0.0, "AbrContext: buffer must be non-negative");
}
}  // namespace

BufferFillAbr::BufferFillAbr(double reservoir_s, double cushion_s,
                             double rate_safety)
    : reservoir_s_(reservoir_s), cushion_s_(cushion_s), rate_safety_(rate_safety) {
  DROPPKT_EXPECT(0.0 < reservoir_s_ && reservoir_s_ < cushion_s_,
                 "BufferFillAbr: need 0 < reservoir < cushion");
  DROPPKT_EXPECT(rate_safety_ > 0.0, "BufferFillAbr: rate_safety must be > 0");
}

std::size_t BufferFillAbr::choose(const AbrContext& ctx) {
  check_ctx(ctx);
  const QualityLadder& ladder = *ctx.ladder;
  if (ctx.startup) return ladder.lowest();

  // The rate cap prevents mapping a full buffer to a level the network
  // cannot possibly sustain.
  const std::size_t rate_cap =
      ladder.max_sustainable(rate_safety_ * ctx.throughput_kbps);

  if (ctx.buffer_s <= reservoir_s_) return ladder.lowest();
  std::size_t buffer_level;
  if (ctx.buffer_s >= cushion_s_) {
    buffer_level = ladder.highest();
  } else {
    const double frac =
        (ctx.buffer_s - reservoir_s_) / (cushion_s_ - reservoir_s_);
    buffer_level = static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(ladder.highest())));
  }
  return std::min(buffer_level, rate_cap);
}

StickyRateAbr::StickyRateAbr(double rate_safety, double up_hysteresis,
                             double panic_buffer_s)
    : rate_safety_(rate_safety),
      up_hysteresis_(up_hysteresis),
      panic_buffer_s_(panic_buffer_s) {
  DROPPKT_EXPECT(rate_safety_ > 0.0, "StickyRateAbr: rate_safety must be > 0");
  DROPPKT_EXPECT(up_hysteresis_ >= 1.0,
                 "StickyRateAbr: up hysteresis must be >= 1");
  DROPPKT_EXPECT(panic_buffer_s_ >= 0.0,
                 "StickyRateAbr: panic buffer must be non-negative");
}

std::size_t StickyRateAbr::choose(const AbrContext& ctx) {
  check_ctx(ctx);
  const QualityLadder& ladder = *ctx.ladder;
  const double est = rate_safety_ * ctx.throughput_kbps;

  if (ctx.startup) {
    // Start at the rate-based target straight away: the service prefers
    // quality over a fast start.
    return ladder.max_sustainable(est);
  }

  const std::size_t cur = std::min(ctx.current_quality, ladder.highest());

  // Panic: buffer nearly empty. The service still favours quality, so it
  // steps down one level at a time toward the sustainable rate rather than
  // dropping straight to it — which is why poor networks show up as stalls
  // here rather than as low quality.
  if (ctx.buffer_s < panic_buffer_s_) {
    const std::size_t target = ladder.max_sustainable(est);
    if (target < cur) return cur - 1;
    return cur;
  }

  // Upswitch only with clear headroom above the *next* level.
  if (cur < ladder.highest()) {
    const double next_rate = ladder.level(cur + 1).bitrate_kbps;
    if (est >= up_hysteresis_ * next_rate) return cur + 1;
  }
  // Otherwise hold: quality is sticky while the buffer is healthy.
  return cur;
}

HybridAbr::HybridAbr(double rate_safety, double low_buffer_s, double high_buffer_s)
    : rate_safety_(rate_safety),
      low_buffer_s_(low_buffer_s),
      high_buffer_s_(high_buffer_s) {
  DROPPKT_EXPECT(rate_safety_ > 0.0, "HybridAbr: rate_safety must be > 0");
  DROPPKT_EXPECT(0.0 <= low_buffer_s_ && low_buffer_s_ < high_buffer_s_,
                 "HybridAbr: need 0 <= low < high buffer thresholds");
}

std::size_t HybridAbr::choose(const AbrContext& ctx) {
  check_ctx(ctx);
  const QualityLadder& ladder = *ctx.ladder;
  const std::size_t rate_level =
      ladder.max_sustainable(rate_safety_ * ctx.throughput_kbps);
  if (ctx.startup) {
    // Moderate start: one below the rate target.
    return rate_level > 0 ? rate_level - 1 : 0;
  }
  const std::size_t cur = std::min(ctx.current_quality, ladder.highest());
  if (ctx.buffer_s < low_buffer_s_) {
    // Draining: step down toward the rate target, one level at a time.
    if (rate_level < cur) return cur - 1;
    return std::min(cur, rate_level);
  }
  if (ctx.buffer_s > high_buffer_s_) {
    // Comfortable: jump to the rate target.
    return rate_level;
  }
  // In between: step toward the rate target, one level at a time.
  if (rate_level > cur) return std::min(cur + 1, ladder.highest());
  return std::min(cur, rate_level);
}

MpcAbr::MpcAbr(double segment_duration_s, int horizon,
               double stall_penalty_kbps, double switch_penalty,
               double throughput_discount)
    : segment_duration_s_(segment_duration_s),
      horizon_(horizon),
      stall_penalty_kbps_(stall_penalty_kbps),
      switch_penalty_(switch_penalty),
      throughput_discount_(throughput_discount) {
  DROPPKT_EXPECT(segment_duration_s_ > 0.0,
                 "MpcAbr: segment duration must be positive");
  DROPPKT_EXPECT(horizon_ >= 1, "MpcAbr: horizon must be >= 1");
  DROPPKT_EXPECT(throughput_discount_ > 0.0 && throughput_discount_ <= 1.0,
                 "MpcAbr: throughput discount must be in (0,1]");
}

double MpcAbr::utility(const AbrContext& ctx, std::size_t level) const {
  // Robust MPC: plan against a pessimistic throughput estimate.
  const double tput =
      std::max(1.0, throughput_discount_ * ctx.throughput_kbps);
  const double seg_kbits =
      ctx.ladder->level(level).bitrate_kbps * segment_duration_s_;
  double buffer = ctx.buffer_s;
  double stall = 0.0;
  for (int k = 0; k < horizon_; ++k) {
    const double dl_time = seg_kbits / tput;
    if (dl_time > buffer) {
      stall += dl_time - buffer;
      buffer = 0.0;
    } else {
      buffer -= dl_time;
    }
    buffer = std::min(buffer + segment_duration_s_, ctx.buffer_capacity_s);
  }
  const double bitrate_term =
      static_cast<double>(horizon_) * ctx.ladder->level(level).bitrate_kbps;
  const double switch_term =
      switch_penalty_ *
      std::abs(ctx.ladder->level(level).bitrate_kbps -
               ctx.ladder->level(std::min(ctx.current_quality,
                                          ctx.ladder->highest()))
                   .bitrate_kbps);
  return bitrate_term - stall_penalty_kbps_ * stall - switch_term;
}

std::size_t MpcAbr::choose(const AbrContext& ctx) {
  check_ctx(ctx);
  const QualityLadder& ladder = *ctx.ladder;
  if (ctx.startup) {
    return ladder.max_sustainable(0.8 * ctx.throughput_kbps);
  }
  std::size_t best = 0;
  double best_utility = -1e18;
  for (std::size_t q = 0; q <= ladder.highest(); ++q) {
    const double u = utility(ctx, q);
    if (u > best_utility) {
      best_utility = u;
      best = q;
    }
  }
  return best;
}

std::unique_ptr<AbrAlgorithm> make_abr(AbrKind kind) {
  switch (kind) {
    case AbrKind::kBufferFill:
      return std::make_unique<BufferFillAbr>(4.0, 25.0, 0.9);
    case AbrKind::kStickyRate:
      return std::make_unique<StickyRateAbr>(1.0, 1.0, 3.0);
    case AbrKind::kHybrid:
      return std::make_unique<HybridAbr>(0.85, 14.0, 30.0);
    case AbrKind::kMpc:
      // 4 s segments by default (matches Svc2, the drift bench's subject).
      return std::make_unique<MpcAbr>(4.0);
  }
  return nullptr;
}

}  // namespace droppkt::has
