#include "has/quality_ladder.hpp"

#include "util/expect.hpp"

namespace droppkt::has {

QualityLadder::QualityLadder(std::vector<QualityLevel> levels)
    : levels_(std::move(levels)) {
  DROPPKT_EXPECT(!levels_.empty(), "QualityLadder: need at least one level");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    DROPPKT_EXPECT(levels_[i].bitrate_kbps > 0.0,
                   "QualityLadder: bitrates must be positive");
    DROPPKT_EXPECT(levels_[i].height_px > 0,
                   "QualityLadder: heights must be positive");
    if (i > 0) {
      DROPPKT_EXPECT(levels_[i].bitrate_kbps > levels_[i - 1].bitrate_kbps,
                     "QualityLadder: bitrates must be strictly increasing");
      DROPPKT_EXPECT(levels_[i].height_px >= levels_[i - 1].height_px,
                     "QualityLadder: heights must be non-decreasing");
    }
  }
}

const QualityLevel& QualityLadder::level(std::size_t i) const {
  DROPPKT_EXPECT(i < levels_.size(), "QualityLadder::level: index out of range");
  return levels_[i];
}

std::size_t QualityLadder::max_sustainable(double kbps) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].bitrate_kbps <= kbps) best = i;
  }
  return best;
}

}  // namespace droppkt::has
