// Service profiles: everything that distinguishes Svc1 / Svc2 / Svc3.
//
// The paper anonymizes three real services but describes the design
// differences that matter for inference: buffer capacity (Svc1 uses 240 s),
// ABR temperament (Svc1 sacrifices quality, Svc2 holds quality and stalls),
// quality ladders/thresholds (Section 4.1), and on-the-wire transaction
// behaviour (how many requests share one TLS connection — Svc1 averages
// 12.1 HTTP transactions per TLS transaction).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "has/abr.hpp"
#include "has/quality_ladder.hpp"

namespace droppkt::has {

/// Client connection-management policy: how HTTP transactions map onto TLS
/// connections, and how server hostnames are chosen.
struct ConnectionPolicy {
  int cdn_pool_size = 32;              // service-wide CDN hostname pool
  int cdn_hosts_per_session = 3;       // hosts a given session shards across
  int max_requests_per_connection = 15;
  double idle_timeout_s = 12.0;        // proxy/connection idle close
  int parallel_connections = 2;        // connections kept per host
  double handshake_ul_bytes = 750.0;   // ClientHello + key exchange
  double handshake_dl_bytes = 3200.0;  // ServerHello + cert chain
  std::string cdn_host_format;         // e.g. "cdn%d.svc1video.example"
  std::string api_host;                // manifest / playback API
  std::string beacon_host;             // telemetry sink
};

/// Full description of one streaming service.
struct ServiceProfile {
  std::string name;                // "Svc1" | "Svc2" | "Svc3"
  QualityLadder ladder;
  AbrKind abr = AbrKind::kHybrid;
  double buffer_capacity_s = 60.0;
  double startup_buffer_s = 5.0;   // media seconds before playback starts
  double segment_duration_s = 5.0;
  bool separate_audio = false;     // audio fetched as its own requests
  double audio_bitrate_kbps = 128.0;
  double max_request_bytes = 0.0;  // >0: segments split into range requests
  double beacon_interval_s = 30.0; // telemetry period
  ConnectionPolicy connections;

  // Label thresholds (paper Section 4.1): a played height <= low_max_px is
  // "low", <= med_max_px is "medium", above is "high".
  int low_max_px = 360;
  int med_max_px = 480;

  /// Nominal bytes of one media segment at ladder level `q`.
  double segment_bytes(std::size_t q) const;
};

/// The three services of the paper's evaluation.
ServiceProfile svc1_profile();  // large buffer, quality-sacrificing
ServiceProfile svc2_profile();  // sticky quality, stall-prone
ServiceProfile svc3_profile();  // three-level ladder, hybrid behaviour

/// Live-content variant of Svc1 (paper Section 5 future work: "service
/// types (e.g., live content)"). Live players cannot buffer ahead of the
/// broadcast edge, so the buffer cap is a few seconds and downloads are
/// paced at real time — which changes the traffic patterns the estimator
/// relies on.
ServiceProfile svc_live_profile();

/// All three, in order.
std::vector<ServiceProfile> all_services();

/// Lookup by name ("Svc1"...); throws on unknown name.
ServiceProfile service_by_name(const std::string& name);

}  // namespace droppkt::has
