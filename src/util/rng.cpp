#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace droppkt::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork() {
  // A fresh engine seeded from this one's stream; advancing the parent keeps
  // successive forks independent.
  return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

double Rng::uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DROPPKT_EXPECT(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DROPPKT_EXPECT(lo <= hi, "uniform_int: lo must be <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span);
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw > limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 must be > 0.
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sd) {
  DROPPKT_EXPECT(sd >= 0.0, "normal: sd must be non-negative");
  return mean + sd * normal();
}

double Rng::exponential(double lambda) {
  DROPPKT_EXPECT(lambda > 0.0, "exponential: lambda must be positive");
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  DROPPKT_EXPECT(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0,1]");
  return uniform01() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  DROPPKT_EXPECT(!weights.empty(), "weighted_index: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    DROPPKT_EXPECT(w >= 0.0, "weighted_index: weights must be non-negative");
    total += w;
  }
  DROPPKT_EXPECT(total > 0.0, "weighted_index: at least one weight must be > 0");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall back to last bucket
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace droppkt::util
