// Append-only string interner for the ingest engine's allocation-free
// record path.
//
// A proxy feed repeats the same client ids and SNI hostnames millions of
// times; carrying them as owning std::strings made every queued record
// heap-allocate. StringPool maps each distinct string to a dense
// std::uint32_t ref exactly once; afterwards the hot path moves 4-byte
// refs around and resolves them back to string_views only at session
// emission, which is orders of magnitude rarer than record arrival.
// Equality of refs is equivalent to equality of strings within one pool,
// so consumers (e.g. the session-boundary heuristic's fresh-server set)
// compare integers instead of strings.
//
// Threading contract — single writer, publish-then-read:
//   * intern() may be called by exactly one thread (the producer).
//   * view(ref) may be called from any thread that received `ref` through
//     a release/acquire edge after the intern() that created it — e.g. a
//     ref popped from util::SpscQueue (push() releases, pop() acquires).
//     The entry tables are chunked with atomically published chunk
//     pointers and entries are never moved, so concurrent intern() calls
//     by the producer cannot invalidate a reader's view.
//   * The producer-side hash index is touched only by intern(); readers
//     never consult it, so its rehashes need no synchronization.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"
#include "util/expect.hpp"

namespace droppkt::util {

/// FNV-1a over bytes with a SplitMix64 finalizer: stable and well-mixed on
/// every platform (std::hash<std::string_view> is not specified to mix
/// well). Shared by the pool's index and the engine's shard router.
inline std::uint64_t well_mixed_hash(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

class StringPool {
 public:
  /// Refs are dense: the first distinct string is 0, the next 1, ...
  using Ref = std::uint32_t;

  StringPool() : index_(kInitialIndexSlots, kEmptySlot) {}

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Producer only. Returns the ref of `s`, interning it on first sight.
  /// Steady state (string already present) performs no allocation.
  DROPPKT_NOALLOC Ref intern(std::string_view s) {
    const std::uint64_t hash = well_mixed_hash(s);
    std::size_t slot = static_cast<std::size_t>(hash) & index_mask();
    for (;;) {
      const Ref ref = index_[slot];
      if (ref == kEmptySlot) break;
      if (hashes_[ref] == hash && view(ref) == s) return ref;
      slot = (slot + 1) & index_mask();
    }
    return insert_new(s, hash, slot);
  }

  /// The interned string. Any thread, given the publication contract
  /// above; the returned view is stable for the pool's lifetime.
  DROPPKT_NOALLOC std::string_view view(Ref ref) const {
    const Chunk* chunk =
        chunks_[ref >> kChunkShift].load(std::memory_order_acquire);
    DROPPKT_ASSERT(chunk != nullptr, "StringPool: ref beyond published chunks");
    const Entry& e = chunk->entries[ref & kChunkMask];
    return {e.data, e.len};
  }

  /// Number of distinct strings interned so far (producer's view).
  std::size_t size() const { return count_; }

  /// Bytes of string payload held (producer's view; excludes index/tables).
  std::size_t payload_bytes() const { return payload_bytes_; }

  /// Hard cap on distinct strings per pool (chunk table geometry).
  static constexpr std::size_t capacity() { return kMaxChunks << kChunkShift; }

 private:
  struct Entry {
    const char* data = nullptr;
    std::uint32_t len = 0;
  };
  // 4096 chunks of 4096 entries: 16.7M distinct strings per pool. The
  // top-level table is a fixed array of atomic pointers so readers can
  // resolve refs while the producer appends chunks.
  static constexpr std::size_t kChunkShift = 12;
  static constexpr std::size_t kChunkMask = (1u << kChunkShift) - 1;
  static constexpr std::size_t kMaxChunks = 4096;
  static constexpr std::size_t kInitialIndexSlots = 1024;
  static constexpr Ref kEmptySlot = 0xffffffffu;
  static constexpr std::size_t kArenaBlockBytes = 1u << 16;

  struct Chunk {
    Entry entries[1u << kChunkShift];
  };

  std::size_t index_mask() const { return index_.size() - 1; }

  Ref insert_new(std::string_view s, std::uint64_t hash, std::size_t slot) {
    DROPPKT_EXPECT(count_ < capacity(), "StringPool: pool is full");
    const Ref ref = static_cast<Ref>(count_);
    const std::size_t chunk_i = ref >> kChunkShift;
    Chunk* chunk = chunks_[chunk_i].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      auto fresh = std::make_unique<Chunk>();
      chunk = fresh.get();
      chunk_storage_.push_back(std::move(fresh));
      // Publish the chunk before any ref pointing into it can escape.
      chunks_[chunk_i].store(chunk, std::memory_order_release);
    }
    Entry& e = chunk->entries[ref & kChunkMask];
    e.data = arena_copy(s);
    e.len = static_cast<std::uint32_t>(s.size());
    hashes_.push_back(hash);
    index_[slot] = ref;
    ++count_;
    payload_bytes_ += s.size();
    if (count_ * 2 >= index_.size()) grow_index();
    return ref;
  }

  const char* arena_copy(std::string_view s) {
    if (s.empty()) return "";
    if (s.size() > arena_left_) {
      const std::size_t block =
          s.size() > kArenaBlockBytes ? s.size() : kArenaBlockBytes;
      arena_.push_back(std::make_unique<char[]>(block));
      arena_next_ = arena_.back().get();
      arena_left_ = block;
    }
    char* dst = arena_next_;
    std::memcpy(dst, s.data(), s.size());
    arena_next_ += s.size();
    arena_left_ -= s.size();
    return dst;
  }

  void grow_index() {
    std::vector<Ref> bigger(index_.size() * 2, kEmptySlot);
    const std::size_t mask = bigger.size() - 1;
    for (const Ref ref : index_) {
      if (ref == kEmptySlot) continue;
      std::size_t slot = static_cast<std::size_t>(hashes_[ref]) & mask;
      while (bigger[slot] != kEmptySlot) slot = (slot + 1) & mask;
      bigger[slot] = ref;
    }
    index_ = std::move(bigger);
  }

  // Reader-visible tables: fixed array of atomically published chunks.
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  // Producer-only state.
  std::vector<std::unique_ptr<Chunk>> chunk_storage_;
  std::vector<std::unique_ptr<char[]>> arena_;
  char* arena_next_ = nullptr;
  std::size_t arena_left_ = 0;
  std::vector<Ref> index_;             // open addressing, linear probing
  std::vector<std::uint64_t> hashes_;  // per-ref, for probe short-circuit
  std::size_t count_ = 0;
  std::size_t payload_bytes_ = 0;
};

}  // namespace droppkt::util
