// Minimal CSV reading/writing for datasets and experiment outputs.
//
// Only what the repo needs: RFC-4180-style quoting for fields containing
// commas/quotes/newlines, header row handling, and string<->double helpers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace droppkt::util {

/// In-memory CSV table: a header plus uniform-width rows of strings.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Append a row; its width must equal the header width.
  void add_row(std::vector<std::string> row);

  const std::vector<std::string>& row(std::size_t i) const;

  /// Column index of a named header; throws if absent.
  std::size_t col(const std::string& name) const;

  /// Cell accessors.
  const std::string& at(std::size_t row, std::size_t col) const;
  double at_double(std::size_t row, std::size_t col) const;

  /// Serialize to an output stream with CRLF-free line endings.
  void write(std::ostream& os) const;

  /// Write to a file path; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

  /// Parse from a stream. First row is treated as the header.
  static CsvTable read(std::istream& is);

  /// Read from a file path; throws std::runtime_error on I/O failure.
  static CsvTable read_file(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single CSV field if needed.
std::string csv_escape(const std::string& field);

/// Split one CSV line honoring quotes. Exposed for testing.
std::vector<std::string> csv_split_line(const std::string& line);

/// Format a double compactly (up to 6 significant digits, no trailing zeros).
std::string format_double(double v);

}  // namespace droppkt::util
