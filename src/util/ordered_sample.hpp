// Sorted multiset of doubles for incremental order statistics.
//
// The feature accumulator needs exact (not sketched) min/median/max per
// transaction metric while records arrive one at a time, in any order.
// Every order statistic is a function of the value *multiset*, so the
// container only has to present a sorted view when queried — it does not
// have to keep the storage sorted between insertions. insert() therefore
// appends in O(1) and tracks whether the appends happened to arrive in
// order (chronological feeds usually do); the first query after an
// out-of-order insert sorts once. This makes the write path as cheap as a
// push_back while queries still read exact statistics straight off sorted
// data, and the view is identical no matter the insertion order.
//
// The lazy sort runs inside const queries (mutable storage): concurrent
// queries on one instance are not safe, matching the accumulator's
// one-writer-per-client use.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "util/expect.hpp"

namespace droppkt::util {

class OrderedSample {
 public:
  void insert(double x) {
    sorted_ = sorted_ && (values_.empty() || values_.back() <= x);
    values_.push_back(x);
  }

  /// Remove one element equal to `x`, which must be present. Used when an
  /// incrementally-maintained derived multiset (e.g. inter-arrival gaps)
  /// replaces one element with two refined ones.
  void erase_one(double x) {
    ensure_sorted();
    const auto it = std::lower_bound(values_.begin(), values_.end(), x);
    DROPPKT_EXPECT(it != values_.end() && *it == x,
                   "OrderedSample::erase_one: value not present");
    values_.erase(it);
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  void clear() {
    values_.clear();
    sorted_ = true;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  /// The sample, sorted ascending. Stable storage until the next mutation.
  std::span<const double> sorted() const {
    ensure_sorted();
    return values_;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace droppkt::util
