// Summary statistics used throughout feature extraction and reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace droppkt::util {

/// Five-number-style summary of a sample. Computed once, queried many times.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // population standard deviation
};

/// Compute a Summary over a sample. An empty sample yields an all-zero
/// Summary with count == 0 (features over empty transaction lists are 0).
Summary summarize(std::span<const double> values);

/// `summarize` over an already-sorted (ascending) sample: no copy, no
/// sort, no allocation. `summarize` delegates here after sorting a copy,
/// so for equal multisets both return bit-identical Summaries — the
/// incremental feature accumulator relies on this to match batch
/// extraction exactly. Sortedness is the caller's contract (checked in
/// debug builds only).
Summary summarize_sorted(std::span<const double> sorted);

/// Linear-interpolated percentile, p in [0, 100]. Empty input yields 0.
double percentile(std::span<const double> values, double p);

/// `percentile` over an already-sorted (ascending) sample; no allocation.
double percentile_sorted(std::span<const double> sorted, double p);

/// Median (50th percentile).
double median(std::span<const double> values);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values);

/// Population standard deviation; 0 for fewer than 2 values.
double stddev(std::span<const double> values);

/// Pearson correlation of two equal-length samples; 0 when undefined.
double pearson(std::span<const double> x, std::span<const double> y);

/// Empirical CDF evaluated at sorted sample points.
/// Returns pairs (value, fraction <= value) with values sorted ascending.
std::vector<std::pair<double, double>> empirical_cdf(std::span<const double> values);

/// Streaming mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace droppkt::util
