// Annotated locking primitives: thin wrappers over std::mutex /
// std::condition_variable that carry Clang Thread Safety Analysis
// capability attributes (util/annotations.hpp).
//
// std::mutex itself is not an annotated capability type under libstdc++,
// so GUARDED_BY(some_std_mutex) is invisible to -Wthread-safety. All
// library code therefore locks through these wrappers — droppkt_analyze's
// lock-discipline rule bans raw std::mutex/std::lock_guard in src/ — and
// the compiler statically proves that every access to a DROPPKT_GUARDED_BY
// member happens with its mutex held. TSan still runs in CI as the
// dynamic backstop for the lock-free code (SpscQueue, StringPool
// publication) that mutex capabilities cannot describe.
//
// The wrappers add no state and no behavior: Mutex is exactly std::mutex,
// MutexLock is exactly std::lock_guard, CondVar is std::condition_variable
// with the lock passed as a util::Mutex.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace droppkt::util {

class CondVar;

/// std::mutex as a Clang TSA capability.
class DROPPKT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DROPPKT_ACQUIRE() { mu_.lock(); }
  void unlock() DROPPKT_RELEASE() { mu_.unlock(); }
  bool try_lock() DROPPKT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over util::Mutex (std::lock_guard with a capability).
class DROPPKT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DROPPKT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DROPPKT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on a util::Mutex. wait() must be called with
/// the mutex held and returns with it held — exactly std::condition_variable
/// semantics, expressed as a REQUIRES so the analysis can check call sites.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) DROPPKT_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock without unlocking: ownership stays with the caller's
    // capability, which TSA tracks across the call.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace droppkt::util
