#include "util/thread_pool.hpp"

#include <algorithm>

namespace droppkt::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  DROPPKT_EXPECT(num_threads >= 1, "ThreadPool: need at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

std::size_t ThreadPool::recommended_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  return requested == 0 ? recommended_threads() : requested;
}

}  // namespace droppkt::util
