#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <iterator>
#include <sstream>

#include "util/expect.hpp"

namespace droppkt::util {

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {
  DROPPKT_EXPECT(!header_.empty(), "CsvTable: header must be non-empty");
}

void CsvTable::add_row(std::vector<std::string> row) {
  DROPPKT_EXPECT(row.size() == header_.size(),
                 "CsvTable::add_row: row width must match header");
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  DROPPKT_EXPECT(i < rows_.size(), "CsvTable::row: index out of range");
  return rows_[i];
}

std::size_t CsvTable::col(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw ContractViolation("CsvTable::col: no column named '" + name + "'");
}

const std::string& CsvTable::at(std::size_t r, std::size_t c) const {
  DROPPKT_EXPECT(r < rows_.size() && c < header_.size(),
                 "CsvTable::at: index out of range");
  return rows_[r][c];
}

double CsvTable::at_double(std::size_t r, std::size_t c) const {
  const std::string& s = at(r, c);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  DROPPKT_EXPECT(ec == std::errc() && ptr == s.data() + s.size(),
                 "CsvTable::at_double: cell is not a number: " + s);
  return value;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

void CsvTable::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    // A lone empty field would serialize to a blank line, which read()
    // skips — quote it so the row survives the round trip (fuzzer-found:
    // fuzz/regressions/csv/crash-single-empty-field).
    if (row.size() == 1 && row[0].empty()) {
      os << "\"\"\n";
      return;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& r : rows_) write_row(r);
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("CsvTable: cannot open for write: " + path);
  write(ofs);
  if (!ofs) throw std::runtime_error("CsvTable: write failed: " + path);
}

CsvTable CsvTable::read(std::istream& is) {
  // RFC-4180 record framing: records end at a newline *outside* quotes, so
  // a quoted field may span lines. The previous getline-based reader split
  // such fields mid-record — the writer escapes embedded newlines, so it
  // emitted output its own reader rejected (caught by the fuzz round-trip
  // in fuzz/fuzz_csv.cpp). Structural failures on this untrusted input
  // raise ParseError with the 1-based record number.
  const std::string text{std::istreambuf_iterator<char>(is),
                         std::istreambuf_iterator<char>()};
  CsvTable table;
  bool have_header = false;
  std::size_t record_no = 0;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    bool in_quotes = false;
    std::size_t j = i;
    for (; j < n; ++j) {
      const char c = text[j];
      if (in_quotes) {
        if (c == '"') {
          if (j + 1 < n && text[j + 1] == '"') {
            ++j;  // escaped quote
          } else {
            in_quotes = false;
          }
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == '\n') {
        break;
      }
    }
    if (in_quotes) {
      throw ParseError("CsvTable::read: unterminated quoted field in record " +
                       std::to_string(record_no + 1));
    }
    const std::string line = text.substr(i, j - i);
    i = j + 1;  // past the newline (or past the end)
    if (line.empty() || line == "\r") continue;
    ++record_no;
    auto fields = csv_split_line(line);
    if (!have_header) {
      table.header_ = std::move(fields);
      have_header = true;
    } else {
      if (fields.size() != table.header_.size()) {
        throw ParseError("CsvTable::read: record " + std::to_string(record_no) +
                         " has " + std::to_string(fields.size()) +
                         " fields, header has " +
                         std::to_string(table.header_.size()));
      }
      table.rows_.push_back(std::move(fields));
    }
  }
  if (!have_header) {
    throw ParseError("CsvTable::read: input had no header row");
  }
  return table;
}

CsvTable CsvTable::read_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("CsvTable: cannot open for read: " + path);
  return read(ifs);
}

std::string format_double(double v) {
  std::ostringstream oss;
  oss.precision(6);
  oss << v;
  return oss.str();
}

}  // namespace droppkt::util
