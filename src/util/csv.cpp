#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/expect.hpp"

namespace droppkt::util {

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {
  DROPPKT_EXPECT(!header_.empty(), "CsvTable: header must be non-empty");
}

void CsvTable::add_row(std::vector<std::string> row) {
  DROPPKT_EXPECT(row.size() == header_.size(),
                 "CsvTable::add_row: row width must match header");
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  DROPPKT_EXPECT(i < rows_.size(), "CsvTable::row: index out of range");
  return rows_[i];
}

std::size_t CsvTable::col(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw ContractViolation("CsvTable::col: no column named '" + name + "'");
}

const std::string& CsvTable::at(std::size_t r, std::size_t c) const {
  DROPPKT_EXPECT(r < rows_.size() && c < header_.size(),
                 "CsvTable::at: index out of range");
  return rows_[r][c];
}

double CsvTable::at_double(std::size_t r, std::size_t c) const {
  const std::string& s = at(r, c);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  DROPPKT_EXPECT(ec == std::errc() && ptr == s.data() + s.size(),
                 "CsvTable::at_double: cell is not a number: " + s);
  return value;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

void CsvTable::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& r : rows_) write_row(r);
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("CsvTable: cannot open for write: " + path);
  write(ofs);
  if (!ofs) throw std::runtime_error("CsvTable: write failed: " + path);
}

CsvTable CsvTable::read(std::istream& is) {
  std::string line;
  CsvTable table;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto fields = csv_split_line(line);
    if (!have_header) {
      table.header_ = std::move(fields);
      have_header = true;
    } else {
      table.add_row(std::move(fields));
    }
  }
  DROPPKT_EXPECT(have_header, "CsvTable::read: input had no header row");
  return table;
}

CsvTable CsvTable::read_file(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("CsvTable: cannot open for read: " + path);
  return read(ifs);
}

std::string format_double(double v) {
  std::ostringstream oss;
  oss.precision(6);
  oss << v;
  return oss.str();
}

}  // namespace droppkt::util
