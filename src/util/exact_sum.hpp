// Exactly-rounded running sum of doubles (Shewchuk's algorithm, the one
// behind Python's math.fsum).
//
// A plain `double acc; acc += x;` loop rounds at every step, so its result
// depends on the order the terms arrive in. The incremental feature
// accumulator must produce bit-identical feature vectors for *any*
// observation order, so its running byte totals and cumulative-interval
// counters cannot tolerate that: ExactSum keeps the uncommitted rounding
// error as a short list of non-overlapping partials whose exact sum equals
// the exact real-valued sum of everything added so far, and value() rounds
// that exact sum to the nearest double once. The correctly-rounded result
// is a function of the term *multiset* alone — insertion order cannot
// change it.
//
// Costs: a handful of adds/compares per add(). The partial list stays tiny
// for realistic data (~1-4 entries), so it lives in a fixed inline buffer —
// no heap traffic at all on that path; adversarial magnitude spreads that
// outgrow the buffer spill to a heap vector and keep working. Assumes
// round-to-nearest-even doubles and no -ffast-math (the repo builds with
// neither -Ofast nor -ffast-math; the error-free transforms below would be
// miscompiled under value-unsafe FP).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace droppkt::util {

class ExactSum {
 public:
  /// Add one term. Finite values only (infinities/NaNs would poison the
  /// partials without a way to report which term did it).
  void add(double x) {
    if (spill_.empty()) {
      std::size_t used = 0;
      for (std::size_t j = 0; j < n_inline_; ++j) {
        double y = inline_[j];
        if (std::abs(x) < std::abs(y)) {
          const double t = x;
          x = y;
          y = t;
        }
        // Error-free transform: hi + lo == x + y exactly, |lo| <= ulp(hi).
        const double hi = x + y;
        const double lo = y - (hi - x);
        if (lo != 0.0) inline_[used++] = lo;
        x = hi;
      }
      if (used < kInline) {
        inline_[used] = x;
        n_inline_ = used + 1;
        return;
      }
      // Every inline slot holds a residual; move to the heap and let the
      // vector path place the final carry.
      spill_.assign(inline_, inline_ + used);
      n_inline_ = 0;
      spill_.push_back(x);
      return;
    }
    std::size_t used = 0;
    for (std::size_t j = 0; j < spill_.size(); ++j) {
      double y = spill_[j];
      if (std::abs(x) < std::abs(y)) {
        const double t = x;
        x = y;
        y = t;
      }
      const double hi = x + y;
      const double lo = y - (hi - x);
      if (lo != 0.0) spill_[used++] = lo;
      x = hi;
    }
    spill_.resize(used);
    spill_.push_back(x);
  }

  /// The exact sum of all added terms, rounded once to the nearest double.
  /// Independent of the order the terms were added in.
  double value() const {
    const double* p = spill_.empty() ? inline_ : spill_.data();
    auto n = static_cast<std::ptrdiff_t>(spill_.empty() ? n_inline_
                                                        : spill_.size());
    // Partials are non-overlapping and sorted by increasing magnitude.
    // Sum from the largest down; the first non-zero residual decides the
    // half-ulp correction (this is CPython fsum's rounding tail).
    if (n == 0) return 0.0;
    double hi = p[--n];
    double lo = 0.0;
    while (n > 0) {
      const double x = hi;
      const double y = p[--n];
      hi = x + y;
      const double yr = hi - x;
      lo = y - yr;
      if (lo != 0.0) break;
    }
    // hi sits exactly halfway between two doubles iff doubling the
    // residual is itself exact; break the tie toward the remaining
    // partials' sign so the result is the correctly-rounded exact sum.
    if (n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0))) {
      const double y2 = lo * 2.0;
      const double x2 = hi + y2;
      if (y2 == x2 - hi) hi = x2;
    }
    return hi;
  }

  void clear() {
    n_inline_ = 0;
    spill_.clear();
  }
  bool empty() const { return n_inline_ == 0 && spill_.empty(); }

 private:
  static constexpr std::size_t kInline = 6;

  double inline_[kInline] = {};
  std::size_t n_inline_ = 0;
  std::vector<double> spill_;  // engaged only after inline overflow
};

}  // namespace droppkt::util
