// Bounded lock-free queue used as the per-shard mailbox of the ingest
// engine (src/engine/).
//
// The fast path is single-producer/single-consumer: the ingest thread
// pushes, one shard worker pops, and neither ever takes a lock. Each slot
// carries a sequence counter (Vyukov-style) instead of the classic
// head/tail-only SPSC design; the extra counter is what makes the
// kDropOldest backpressure policy safe — when the ring is full the
// *producer* may retire the oldest element itself, momentarily acting as a
// second consumer, without racing the worker on slot payloads.
//
// Backpressure policies:
//   kBlock      — push() spins (then yields) until the consumer frees a
//                 slot. Nothing is lost; the feed stalls.
//   kDropOldest — push() retires the oldest queued element and counts it
//                 in dropped(). The feed never stalls; a slow shard sheds
//                 its oldest backlog first, which for time-ordered
//                 monitoring data is the least valuable backlog.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "util/annotations.hpp"
#include "util/expect.hpp"

namespace droppkt::util {

/// What push() does when the ring is full.
enum class BackpressurePolicy { kBlock, kDropOldest };

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity,
                     BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : policy_(policy) {
    DROPPKT_EXPECT(capacity >= 2, "SpscQueue: capacity must be at least 2");
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }
  BackpressurePolicy policy() const { return policy_; }

  /// Producer: enqueue, applying the backpressure policy when full.
  DROPPKT_NOALLOC void push(T value) {
    std::size_t spins = 0;
    while (!try_push(value)) {
      if (policy_ == BackpressurePolicy::kDropOldest) {
        T discarded;
        if (try_pop(discarded)) dropped_.fetch_add(1, std::memory_order_relaxed);
      } else if (++spins >= kSpinLimit) {
        std::this_thread::yield();
      } else {
        backoff();
      }
    }
    note_high_water();
  }

  /// Producer: enqueue without blocking or dropping. On success `value` is
  /// moved from; on a full ring it is left intact and false is returned.
  DROPPKT_NOALLOC bool try_push(T& value) {
    Cell* cell = nullptr;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Consumer (or producer shedding backlog): dequeue without blocking.
  DROPPKT_NOALLOC bool try_pop(T& out) {
    Cell* cell = nullptr;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Producer: enqueue up to `n` items from `items`, stopping early when
  /// the ring fills. Returns the number enqueued; those elements are
  /// moved-from. One claim loop per element but a single high-water /
  /// occupancy update per call — the fastclick push_batch idiom applied to
  /// the mailbox: per-element function-call and bookkeeping overhead is
  /// paid once per block.
  DROPPKT_NOALLOC std::size_t try_push_bulk(T* items, std::size_t n) {
    std::size_t pushed = 0;
    while (pushed < n && try_push(items[pushed])) ++pushed;
    if (pushed > 0) note_high_water();
    return pushed;
  }

  /// Producer: enqueue all `n` items, applying the backpressure policy
  /// whenever the ring fills mid-block. kDropOldest may shed elements that
  /// were part of this same block (a block larger than the ring keeps only
  /// its newest ring-full suffix, all older elements counted in dropped()).
  DROPPKT_NOALLOC void push_bulk(T* items, std::size_t n) {
    std::size_t pushed = 0;
    std::size_t spins = 0;
    while (pushed < n) {
      const std::size_t got = try_push_bulk(items + pushed, n - pushed);
      pushed += got;
      if (pushed == n) break;
      if (policy_ == BackpressurePolicy::kDropOldest) {
        T discarded;
        if (try_pop(discarded)) dropped_.fetch_add(1, std::memory_order_relaxed);
      } else if (got == 0 && ++spins >= kSpinLimit) {
        std::this_thread::yield();
      } else if (got == 0) {
        backoff();
      }
    }
  }

  /// Consumer (or producer shedding backlog): dequeue up to `n` items into
  /// `out`. Returns the number dequeued (0 when empty).
  DROPPKT_NOALLOC std::size_t try_pop_bulk(T* out, std::size_t n) {
    std::size_t popped = 0;
    while (popped < n && try_pop(out[popped])) ++popped;
    return popped;
  }

  /// Consumer: dequeue between 1 and `n` items, waiting for the first.
  /// Returns 0 only once the queue has been close()d and fully drained.
  DROPPKT_NOALLOC std::size_t pop_wait_bulk(T* out, std::size_t n) {
    std::size_t spins = 0;
    for (;;) {
      const std::size_t got = try_pop_bulk(out, n);
      if (got > 0) return got;
      if (closed_.load(std::memory_order_acquire)) {
        return try_pop_bulk(out, n);  // drain pushes racing close()
      }
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
      }
    }
  }

  /// Consumer: dequeue, waiting for an element. Returns false only once the
  /// queue has been close()d and fully drained.
  DROPPKT_NOALLOC bool pop_wait(T& out) {
    std::size_t spins = 0;
    for (;;) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        return try_pop(out);  // drain anything pushed just before close()
      }
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
      }
    }
  }

  /// Producer: no more push() calls will follow; wakes pop_wait().
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate number of queued elements (exact when quiescent).
  std::size_t size() const {
    const std::size_t tail = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t head = dequeue_pos_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool empty() const { return size() == 0; }

  /// Elements retired by the kDropOldest policy.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Deepest occupancy ever observed by the producer.
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  static constexpr std::size_t kSpinLimit = 64;

  void note_high_water() {
    const std::size_t depth = size();
    // Per-push-call, so debug-only: a depth past capacity means the ring's
    // sequence bookkeeping corrupted (double-produce or a stomped slot).
    DROPPKT_ASSERT(depth <= capacity(),
                   "SpscQueue: occupancy exceeds capacity");
    if (depth > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(depth, std::memory_order_relaxed);
    }
  }

  static void backoff() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  BackpressurePolicy policy_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace droppkt::util
