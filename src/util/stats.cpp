#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::util {

Summary summarize(std::span<const double> values) {
  if (values.empty()) return {};
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return summarize_sorted(sorted);
}

Summary summarize_sorted(std::span<const double> sorted) {
  DROPPKT_ASSERT(std::is_sorted(sorted.begin(), sorted.end()),
                 "summarize_sorted: input must be sorted ascending");
  Summary s;
  s.count = sorted.size();
  if (sorted.empty()) return s;
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.median = percentile_sorted(sorted, 50.0);
  double ss = 0.0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(sorted.size()));
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return percentile_sorted(values, p);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> sorted, double p) {
  DROPPKT_EXPECT(p >= 0.0 && p <= 100.0, "percentile: p must be in [0,100]");
  DROPPKT_ASSERT(std::is_sorted(sorted.begin(), sorted.end()),
                 "percentile_sorted: input must be sorted ascending");
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size()));
}

double pearson(std::span<const double> x, std::span<const double> y) {
  DROPPKT_EXPECT(x.size() == y.size(), "pearson: samples must have equal length");
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<std::pair<double, double>> empirical_cdf(std::span<const double> values) {
  std::vector<std::pair<double, double>> cdf;
  if (values.empty()) return cdf;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  cdf.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.emplace_back(sorted[i], static_cast<double>(i + 1) / n);
  }
  return cdf;
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace droppkt::util
