#include "util/render.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace droppkt::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  DROPPKT_EXPECT(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  DROPPKT_EXPECT(row.size() == header_.size(),
                 "TextTable::add_row: row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? " | " : "| ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit(header_);
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string bar_chart(const std::vector<std::pair<std::string, double>>& entries,
                      int width, const std::string& unit) {
  DROPPKT_EXPECT(width > 0, "bar_chart: width must be positive");
  double max_v = 0.0;
  std::size_t max_label = 0;
  for (const auto& [label, v] : entries) {
    DROPPKT_EXPECT(v >= 0.0, "bar_chart: values must be non-negative");
    max_v = std::max(max_v, v);
    max_label = std::max(max_label, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, v] : entries) {
    const int bar =
        max_v > 0.0 ? static_cast<int>(std::lround(v / max_v * width)) : 0;
    out << "  " << label << std::string(max_label - label.size(), ' ') << " | "
        << std::string(static_cast<std::size_t>(bar), '#') << ' '
        << format_fixed_or_general(v) << unit << '\n';
  }
  return out.str();
}

namespace {
std::string trim_zeros(std::string s) {
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}
}  // namespace

std::string fixed(double v, int decimals) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(decimals);
  oss << v;
  return oss.str();
}

std::string pct(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  if (values.empty()) return "";
  static constexpr char kRamp[] = " .:-=+*#%@";
  static constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // top index
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const double v : values) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const std::size_t cells = width == 0 ? values.size() : width;
  std::string out;
  out.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    // Nearest-sample resampling keeps every cell an actual series value.
    const std::size_t idx =
        width == 0 ? c
                   : std::min(values.size() - 1,
                              (c * values.size() + cells / 2) / cells);
    const double v = values[idx];
    if (!std::isfinite(v)) {
      out.push_back('?');
    } else if (!(hi > lo)) {
      // Flat (or single-valued) series: mid-ramp, so "all zero" and "all
      // high" both read as a steady line rather than empty space.
      out.push_back(kRamp[kLevels / 2]);
    } else {
      const double t = (v - lo) / (hi - lo);
      out.push_back(kRamp[static_cast<std::size_t>(t * kLevels + 0.5)]);
    }
  }
  return out;
}

std::string cdf_chart(const std::vector<double>& values,
                      const std::vector<double>& at_fractions,
                      const std::string& x_label) {
  std::ostringstream out;
  out << "  CDF of " << x_label << " (n=" << values.size() << ")\n";
  for (double f : at_fractions) {
    DROPPKT_EXPECT(f >= 0.0 && f <= 1.0, "cdf_chart: fractions must be in [0,1]");
    const double x = percentile(values, f * 100.0);
    const int bar = static_cast<int>(std::lround(f * 40));
    out << "  p" << fixed(f * 100.0, 0) << (f * 100.0 < 10 ? "  " : f * 100.0 < 100 ? " " : "")
        << " | " << std::string(static_cast<std::size_t>(bar), '#')
        << std::string(static_cast<std::size_t>(40 - bar), ' ') << " | "
        << trim_zeros(fixed(x, 1)) << '\n';
  }
  return out.str();
}

std::string histogram(const std::vector<double>& values,
                      const std::vector<double>& edges,
                      const std::vector<std::string>& bin_labels,
                      const std::string& title) {
  DROPPKT_EXPECT(edges.size() >= 2, "histogram: need at least two edges");
  DROPPKT_EXPECT(bin_labels.size() == edges.size() - 1,
                 "histogram: one label per bin");
  std::vector<std::size_t> counts(bin_labels.size(), 0);
  for (double v : values) {
    for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
      const bool last = (b + 2 == edges.size());
      if (v >= edges[b] && (v < edges[b + 1] || (last && v <= edges[b + 1]))) {
        ++counts[b];
        break;
      }
    }
  }
  const double n = values.empty() ? 1.0 : static_cast<double>(values.size());
  std::vector<std::pair<std::string, double>> entries;
  entries.reserve(bin_labels.size());
  for (std::size_t b = 0; b < bin_labels.size(); ++b) {
    entries.emplace_back(bin_labels[b], 100.0 * static_cast<double>(counts[b]) / n);
  }
  return "  " + title + " (% of sessions)\n" + bar_chart(entries, 40, "%");
}

std::string box_plot(
    const std::vector<std::pair<std::string, std::vector<double>>>& groups,
    const std::string& value_label) {
  TextTable t({"group", "n", "min", "q25", "median", "q75", "max"});
  for (const auto& [name, vals] : groups) {
    t.add_row({name, std::to_string(vals.size()), trim_zeros(fixed(percentile(vals, 0), 2)),
               trim_zeros(fixed(percentile(vals, 25), 2)),
               trim_zeros(fixed(percentile(vals, 50), 2)),
               trim_zeros(fixed(percentile(vals, 75), 2)),
               trim_zeros(fixed(percentile(vals, 100), 2))});
  }
  return "  " + value_label + "\n" + t.render();
}

std::string format_fixed_or_general(double v) {
  if (std::abs(v) >= 1000.0 || v == std::floor(v)) return trim_zeros(fixed(v, 0));
  return trim_zeros(fixed(v, 2));
}

}  // namespace droppkt::util
