// Static-analysis annotation macros — the vocabulary tools/droppkt_analyze
// and Clang's Thread Safety Analysis check over the whole tree.
//
// Two families live here:
//
//   * DROPPKT_NOALLOC marks a function as part of the allocation-free
//     ingest hot path (DESIGN.md §5d). It expands to nothing — the marker
//     is consumed textually by tools/droppkt_analyze, which walks the
//     intra-repo call graph from every annotated function and fails on any
//     transitively reachable allocation site that is not justified in
//     tools/droppkt_analyze.allow. The dynamic counterpart is
//     test_zero_alloc's counting allocator; the static gate covers the
//     paths a test run happens not to execute.
//
//   * DROPPKT_CAPABILITY / DROPPKT_GUARDED_BY / DROPPKT_REQUIRES / ... map
//     onto Clang's thread-safety attributes (no-ops on other compilers),
//     so -Wthread-safety proves lock discipline at compile time where TSan
//     can only observe it dynamically. Use them through util/mutex.hpp's
//     annotated Mutex/MutexLock/CondVar wrappers — droppkt_analyze bans
//     raw std::mutex in src/ precisely so every lock is visible to the
//     analysis.
#pragma once

// Marker for the allocation-free hot path. Place before the declaration:
//   DROPPKT_NOALLOC void observe_ref(Ref client_ref, const TlsRecord& rec);
// Annotating either the declaration or the definition is enough; the
// analyzer links them by qualified name.
#define DROPPKT_NOALLOC

#if defined(__clang__) && !defined(SWIG)
#define DROPPKT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DROPPKT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// A type that is a lockable capability (e.g. util::Mutex).
#define DROPPKT_CAPABILITY(x) DROPPKT_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability in its constructor and releases
/// it in its destructor (e.g. util::MutexLock).
#define DROPPKT_SCOPED_CAPABILITY DROPPKT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define DROPPKT_GUARDED_BY(x) DROPPKT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define DROPPKT_PT_GUARDED_BY(x) DROPPKT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held (and does not
/// release it).
#define DROPPKT_REQUIRES(...) \
  DROPPKT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define DROPPKT_ACQUIRE(...) \
  DROPPKT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define DROPPKT_RELEASE(...) \
  DROPPKT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define DROPPKT_TRY_ACQUIRE(ret, ...) \
  DROPPKT_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called with the capability held (it acquires
/// it itself; calling with it held would deadlock).
#define DROPPKT_EXCLUDES(...) \
  DROPPKT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disable the analysis for one function. Every use needs a
/// comment explaining why the analysis cannot see the invariant.
#define DROPPKT_NO_THREAD_SAFETY_ANALYSIS \
  DROPPKT_THREAD_ANNOTATION(no_thread_safety_analysis)
