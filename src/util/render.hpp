// ASCII rendering of experiment outputs: aligned tables, bar charts, CDFs
// and box plots. The bench binaries regenerate the paper's tables/figures
// as text, so "plotting" here means producing readable terminal output.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace droppkt::util {

/// A padded, pipe-separated text table with a header rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with each column padded to its widest cell.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal bar chart: one labelled bar per entry, scaled to `width` chars.
/// Values must be non-negative.
std::string bar_chart(const std::vector<std::pair<std::string, double>>& entries,
                      int width = 40, const std::string& unit = "");

/// Render an empirical CDF as rows of (x, F(x)) sampled at the given
/// fractions (e.g. deciles), with a bar visualization.
std::string cdf_chart(const std::vector<double>& values,
                      const std::vector<double>& at_fractions,
                      const std::string& x_label);

/// Histogram over explicit bin edges; renders percentage per bin.
std::string histogram(const std::vector<double>& values,
                      const std::vector<double>& edges,
                      const std::vector<std::string>& bin_labels,
                      const std::string& title);

/// Box-plot summary line (min, q25, median, q75, max, n) per group.
std::string box_plot(const std::vector<std::pair<std::string, std::vector<double>>>& groups,
                     const std::string& value_label);

/// One-line ASCII sparkline of a value series, min-max normalized onto a
/// ten-level ramp (" .:-=+*#%@"). `width` 0 renders one cell per value;
/// otherwise the series is resampled (nearest sample) to `width` cells.
/// Non-finite values render as '?'; an empty series renders "".
std::string sparkline(const std::vector<double>& values,
                      std::size_t width = 0);

/// Format a fraction as a percent string like "72%".
std::string pct(double fraction, int decimals = 0);

/// Format "12.3" style fixed-point.
std::string fixed(double v, int decimals);

/// Compact numeric formatting for chart annotations: integers and large
/// values rounded, small values with two decimals.
std::string format_fixed_or_general(double v);

}  // namespace droppkt::util
