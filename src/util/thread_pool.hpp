// Fixed-size worker pool for CPU-bound fan-out (tree training, fold
// evaluation, batch prediction).
//
// Complements util/spsc_queue.hpp: the SPSC ring is the streaming mailbox
// of the ingest engine, while ThreadPool is the compute-side primitive —
// a mutex/condvar task deque feeding N workers, with std::future handoff
// of results and exceptions. Throughput per task is irrelevant here
// (tasks are milliseconds, not nanoseconds), so the simple locked deque
// beats a lock-free design on clarity and TSan-verifiability.
//
// Determinism contract: the pool never *creates* nondeterminism — tasks
// run in unspecified order on unspecified workers, so callers that need
// reproducible results must (a) draw all randomness before submitting and
// (b) merge results in a fixed order (e.g. by task index). RandomForest,
// cross_validate and the batch predictors all follow this recipe, which
// is why their output is bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/expect.hpp"
#include "util/mutex.hpp"

namespace droppkt::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1). Use `recommended_threads()` to
  /// size a pool for the machine.
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const MutexLock lock(mutex_);
      DROPPKT_EXPECT(!stopping_, "ThreadPool: submit after shutdown began");
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `body(i)` for every i in [begin, end), spread over the workers in
  /// contiguous chunks; blocks until all iterations finish. The first
  /// exception thrown by any chunk is rethrown after all chunks complete.
  /// With end <= begin this is a no-op.
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& body) {
    if (end <= begin) return;
    const std::size_t n = end - begin;
    const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size()));
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;  // first `extra` chunks get +1
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    std::size_t lo = begin;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t hi = lo + base + (c < extra ? 1 : 0);
      futures.push_back(submit([lo, hi, &body] {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }));
      lo = hi;
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Hardware concurrency with a floor of 1 (some containers report 0).
  static std::size_t recommended_threads();

  /// Resolve a user-facing `num_threads` knob: 0 means "use the machine",
  /// anything else is taken literally (floor 1).
  static std::size_t resolve_threads(std::size_t requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ DROPPKT_GUARDED_BY(mutex_);
  bool stopping_ DROPPKT_GUARDED_BY(mutex_) = false;
};

}  // namespace droppkt::util
