// Deterministic random number generation.
//
// Everything in droppkt that draws randomness takes an explicit Rng&, so a
// whole experiment (trace pool, catalog, player, ML model) is reproducible
// from one seed. The engine is xoshiro256**, seeded via SplitMix64 — fast,
// high quality, and independent of libstdc++'s unspecified distributions
// (we implement our own so results are bit-identical across platforms).
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"

namespace droppkt::util {

/// Deterministic xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Raw 64 random bits.
  result_type operator()() { return next(); }

  /// Derive an independent child generator (for parallel substreams).
  Rng fork();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Exponential with given rate lambda > 0.
  double exponential(double lambda);

  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p in [0,1].
  bool bernoulli(double p);

  /// Sample an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t next();

  std::uint64_t state_[4]{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace droppkt::util
