// Lightweight precondition / invariant checking for droppkt.
//
// The library is used both from experiment harnesses (where a violated
// precondition is a programming error and should terminate loudly) and from
// tests (which exercise error paths). We therefore throw a dedicated
// exception type rather than calling std::abort, so tests can assert on it.
#pragma once

#include <stdexcept>
#include <string>

namespace droppkt {

/// Thrown when a documented precondition or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when untrusted external input (a serialized record stream, a feed
/// line, a model file) fails validation. Distinct from ContractViolation so
/// callers can tell "bad bytes off the wire" from "bug in this program":
/// decoders reject attacker-controllable input with ParseError and never
/// crash, leak, or loop on it — that property is what fuzz/ exercises.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace droppkt

/// Check a caller-facing precondition. Throws ContractViolation on failure.
#define DROPPKT_EXPECT(cond, msg)                                               \
  do {                                                                          \
    if (!(cond))                                                                \
      ::droppkt::detail::contract_fail("precondition", #cond, __FILE__,         \
                                       __LINE__, (msg));                        \
  } while (false)

/// Check an internal invariant. Throws ContractViolation on failure.
#define DROPPKT_ENSURE(cond, msg)                                               \
  do {                                                                          \
    if (!(cond))                                                                \
      ::droppkt::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,  \
                                       (msg));                                  \
  } while (false)

/// Debug-only invariant check for hot per-packet / per-node paths where an
/// always-on throwing check would be measurable. Compiled out in Release
/// (NDEBUG) builds; sanitizer and Debug CI builds keep it armed, so the
/// fuzzers and the ASan/UBSan matrix still see violations.
#ifdef NDEBUG
#define DROPPKT_ASSERT(cond, msg) \
  do {                            \
  } while (false)
#else
#define DROPPKT_ASSERT(cond, msg)                                               \
  do {                                                                          \
    if (!(cond))                                                                \
      ::droppkt::detail::contract_fail("debug invariant", #cond, __FILE__,      \
                                       __LINE__, (msg));                        \
  } while (false)
#endif
