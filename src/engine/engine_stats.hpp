// Observability for the ingest engine: per-shard counters and a lock-free
// latency histogram, all snapshotable while the engine is running.
//
// Counters are plain atomics written by exactly one thread each (the
// ingest thread for enqueue-side counts, the shard worker for
// processing-side counts), so snapshots need no locks and cost nothing on
// the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace droppkt::engine {

/// Log2-bucketed histogram of nanosecond latencies. record() is wait-free;
/// counts() can be read concurrently (each bucket individually coherent,
/// which is all a percentile estimate needs).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  using Counts = std::array<std::uint64_t, kBuckets>;

  void record(std::uint64_t ns);

  /// Current bucket counts.
  Counts counts() const;

  /// Accumulate this histogram's counts into `into` (for cross-shard merge).
  void add_to(Counts& into) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Quantile estimate (q in [0,1]) over merged bucket counts, in
/// nanoseconds: the geometric midpoint of the bucket holding the q-th
/// sample. 0 when the histogram is empty.
double histogram_quantile_ns(const LatencyHistogram::Counts& counts, double q);

/// Live counters owned by one shard. Single-writer per field.
struct ShardCounters {
  std::atomic<std::uint64_t> enqueued{0};    // ingest thread
  std::atomic<std::uint64_t> records{0};     // shard worker
  std::atomic<std::uint64_t> watermarks{0};  // shard worker
  std::atomic<std::uint64_t> sessions{0};    // shard worker
  std::atomic<std::uint64_t> provisionals{0};  // shard worker
  LatencyHistogram latency;                  // observe-to-classify, ns
};

/// Point-in-time copy of one shard's counters.
struct ShardStatsSnapshot {
  std::size_t shard = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t records = 0;
  std::uint64_t watermarks = 0;
  std::uint64_t sessions = 0;
  std::uint64_t provisionals = 0;
  std::uint64_t dropped = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::size_t interned_clients = 0;  // distinct clients in the shard pool
  std::size_t interned_snis = 0;     // distinct SNIs in the shard pool
};

/// Aggregate view across all shards.
struct EngineStatsSnapshot {
  std::vector<ShardStatsSnapshot> shards;
  std::uint64_t records_ingested = 0;   // accepted by ingest()
  std::uint64_t records_processed = 0;  // observed by shard monitors
  std::uint64_t records_dropped = 0;    // shed by kDropOldest backpressure
  std::uint64_t sessions_reported = 0;
  std::uint64_t provisionals_reported = 0;  // in-flight estimates emitted
  std::size_t interned_clients = 0;  // distinct clients across shard pools
  std::size_t interned_snis = 0;     // distinct SNIs across shard pools
  std::size_t max_queue_high_water = 0;
  double latency_p50_us = 0.0;  // observe-to-classify latency percentiles
  double latency_p99_us = 0.0;
  /// Alerting totals, populated only when an AlertSink is configured.
  bool alerting = false;
  std::uint64_t verdict_transitions = 0;  // passed hysteresis
  std::uint64_t verdicts_suppressed = 0;  // absorbed by hysteresis
  std::uint64_t alerts_raised = 0;
  std::uint64_t alerts_cleared = 0;

  /// Multi-line human-readable table.
  std::string to_string() const;
};

}  // namespace droppkt::engine
