// Observability for the ingest engine, as a view over the unified
// telemetry plane (src/telemetry/): every per-shard counter, gauge and
// latency histogram lives in a telemetry::MetricRegistry under
// "engine.shard<i>.*" names, and the snapshot structs here are
// point-in-time copies of those instruments.
//
// Counters stay single-writer per field (the ingest thread for
// enqueue-side counts, the shard worker for processing-side counts), so
// snapshots need no locks and cost nothing on the hot path — the same
// contract the pre-registry per-shard atomics had.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace droppkt::engine {

/// The engine's latency histogram IS the telemetry plane's histogram
/// (log2-bucketed, wait-free record, concurrently readable counts).
using LatencyHistogram = telemetry::Histogram;

/// Quantile estimate (q in [0,1]) over merged bucket counts, in
/// nanoseconds: the geometric midpoint of the bucket holding the q-th
/// sample. 0 when the histogram is empty. Thin wrapper kept for the
/// engine's historical call sites (benches, tests).
inline double histogram_quantile_ns(const LatencyHistogram::Counts& counts,
                                    double q) {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  return telemetry::histogram_quantile(counts, q);
}

/// One shard's registry-backed instruments ("engine.shard<i>.*"). The
/// pointers are stable for the registry's lifetime; hot paths update
/// through them with relaxed atomics. Which thread writes each:
///   ingest thread: enqueued
///   shard worker:  records, watermarks, latency — and, via the monitor's
///                  MonitorMetrics binding: sessions, provisionals,
///                  clients_evicted, noise_dropped
///   refresh_gauges (any thread): dropped, queue_depth, queue_high_water,
///                  interned_clients, interned_snis — republished from
///                  their sources of truth (queue, pools).
struct ShardMetrics {
  telemetry::Counter* enqueued = nullptr;
  telemetry::Counter* records = nullptr;
  telemetry::Counter* watermarks = nullptr;
  telemetry::Counter* sessions = nullptr;
  telemetry::Counter* provisionals = nullptr;
  telemetry::Counter* clients_evicted = nullptr;
  telemetry::Counter* noise_dropped = nullptr;
  telemetry::Counter* dropped = nullptr;
  telemetry::Gauge* queue_depth = nullptr;
  telemetry::Gauge* queue_high_water = nullptr;
  telemetry::Gauge* interned_clients = nullptr;
  telemetry::Gauge* interned_snis = nullptr;
  telemetry::Histogram* latency = nullptr;  // observe-to-classify, ns
};

/// Point-in-time copy of one shard's counters.
struct ShardStatsSnapshot {
  std::size_t shard = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t records = 0;
  std::uint64_t watermarks = 0;
  std::uint64_t sessions = 0;
  std::uint64_t provisionals = 0;
  std::uint64_t clients_evicted = 0;         // idle-timeout evictions
  std::uint64_t sessions_noise_dropped = 0;  // below min_session_records
  std::uint64_t dropped = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::size_t interned_clients = 0;  // distinct clients in the shard pool
  std::size_t interned_snis = 0;     // distinct SNIs in the shard pool
};

/// Aggregate view across all shards.
struct EngineStatsSnapshot {
  std::vector<ShardStatsSnapshot> shards;
  std::uint64_t records_ingested = 0;   // accepted by ingest()
  std::uint64_t records_processed = 0;  // observed by shard monitors
  std::uint64_t records_dropped = 0;    // shed by kDropOldest backpressure
  std::uint64_t sessions_reported = 0;
  std::uint64_t provisionals_reported = 0;  // in-flight estimates emitted
  std::uint64_t clients_evicted = 0;        // idle-timeout client evictions
  std::uint64_t sessions_noise_dropped = 0;  // too short to report
  std::size_t interned_clients = 0;  // distinct clients across shard pools
  std::size_t interned_snis = 0;     // distinct SNIs across shard pools
  std::size_t max_queue_high_water = 0;
  double latency_p50_us = 0.0;  // observe-to-classify latency percentiles
  double latency_p99_us = 0.0;
  /// Alerting totals, populated only when an AlertSink is configured.
  bool alerting = false;
  std::uint64_t verdict_transitions = 0;  // passed hysteresis
  std::uint64_t verdicts_suppressed = 0;  // absorbed by hysteresis
  std::uint64_t alerts_raised = 0;
  std::uint64_t alerts_cleared = 0;

  /// Multi-line human-readable table.
  std::string to_string() const;
};

}  // namespace droppkt::engine
