// Proxy-feed construction helpers for the ingest engine's bench, tests
// and examples: one globally time-ordered stream of (client, transaction)
// records, as a transparent proxy would export it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "has/service_profile.hpp"
#include "trace/records.hpp"

namespace droppkt::engine {

/// One element of the interleaved proxy feed.
struct FeedRecord {
  std::string client;
  trace::TlsTransaction txn;
};

using Feed = std::vector<FeedRecord>;

/// Stable sort by transaction start time (the proxy's export order).
void sort_feed(Feed& feed);

/// Text wire format for a live proxy feed: one tab-separated line per
/// record — client, start_s, end_s, ul_bytes, dl_bytes, http_count, sni.
/// This is what a Squid-style proxy tails into the ingest engine, so the
/// parser treats every line as untrusted: malformed field counts, bad
/// numbers, oversized fields, or inverted timestamps raise
/// droppkt::ParseError (fuzz/fuzz_feed_line.cpp enforces crash-freedom).
void write_feed_line(const FeedRecord& record, std::ostream& os);
void write_feed(const Feed& feed, std::ostream& os);

/// Parse one feed line. Throws droppkt::ParseError on malformed input.
FeedRecord parse_feed_line(std::string_view line);

/// Parse a whole feed stream (blank lines skipped). Throws ParseError with
/// the 1-based line number on the first malformed line.
Feed read_feed(std::istream& is);

/// Simulation-backed feed: `num_clients` subscribers each stream
/// `sessions_per_client` back-to-back videos of `svc`, with staggered
/// start offsets, merged into proxy export order. Faithful to the paper's
/// traffic model but costs a full player simulation per session — use for
/// correctness tests and examples. Returns the feed and the true session
/// count via `true_sessions` (may be null).
Feed simulated_feed(const has::ServiceProfile& svc, std::size_t num_clients,
                    std::size_t sessions_per_client, std::uint64_t seed,
                    std::size_t* true_sessions = nullptr);

/// Configuration for the cheap synthetic feed used by the throughput bench.
struct SynthFeedConfig {
  std::size_t num_clients = 10000;
  std::size_t sessions_per_client = 2;
  std::size_t txns_per_session = 12;
  /// Gap between a client's sessions; exceed the monitor idle timeout to
  /// exercise both delimitation paths.
  double session_gap_s = 240.0;
  /// Clients start uniformly within this horizon.
  double horizon_s = 3600.0;
  std::uint64_t seed = 20201204;
};

/// Statistically plausible feed without running the player simulator:
/// bursty session opens against fresh server pools, lognormal transaction
/// sizes, chunked mid-session fetches. Orders of magnitude cheaper to
/// generate than simulated_feed(), which is what a million-client
/// throughput bench needs.
Feed synthetic_feed(const SynthFeedConfig& config);

/// Configuration for a feed with a ground-truth location incident — the
/// alerting subsystem's evaluation input.
struct IncidentFeedConfig {
  /// Locations; the last `degraded_locations` of them turn bad at
  /// incident_start_s. Clients are named "<location>/sub-<k>" so the alert
  /// pipeline's default location mapping recovers the location.
  std::size_t num_locations = 10;
  std::size_t degraded_locations = 3;
  std::size_t clients_per_location = 6;
  std::size_t sessions_per_client = 3;
  /// Feed time at which the degraded locations' congestion begins.
  /// Sessions *starting* at or after this at a degraded location stream
  /// through the congested link; earlier sessions are healthy everywhere.
  double incident_start_s = 900.0;
  /// Bandwidth squeeze applied to degraded sessions (fraction removed).
  double congestion = 0.9;
  /// Pre-simulated session pool size per condition. Composition samples
  /// (with replacement) from the pools instead of running the player per
  /// scheduled session, which keeps incident feeds cheap to generate.
  std::size_t pool_sessions = 24;
  /// Idle gap between a client's sessions; must exceed the monitor idle
  /// timeout for timeout-based delimitation.
  double session_gap_s = 240.0;
  /// Deterministic stagger between client start offsets.
  double client_stagger_s = 23.0;
  std::uint64_t seed = 20201204;
};

/// One scheduled session of an incident feed, for metric computation.
struct ScheduledSession {
  std::string client;
  std::string location;
  double start_s = 0.0;
  double end_s = 0.0;  // last transaction end
  /// Streamed through the congested link (degraded location, started at
  /// or after the incident).
  bool degraded = false;
};

/// What actually happened, for scoring detection latency and false alarms.
struct IncidentGroundTruth {
  double incident_start_s = 0.0;
  std::vector<std::string> degraded_locations;  // name order
  std::vector<std::string> healthy_locations;   // name order
  /// All scheduled sessions, feed-start order.
  std::vector<ScheduledSession> sessions;
};

/// Simulation-backed feed with an injected location incident: every client
/// streams pool-sampled sessions; at incident_start_s the degraded
/// locations' new sessions switch to a congested-link pool. Deterministic
/// from the config seed.
Feed incident_feed(const has::ServiceProfile& svc,
                   const IncidentFeedConfig& config,
                   IncidentGroundTruth* truth = nullptr);

}  // namespace droppkt::engine
