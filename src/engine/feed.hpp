// Proxy-feed construction helpers for the ingest engine's bench, tests
// and examples: one globally time-ordered stream of (client, transaction)
// records, as a transparent proxy would export it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "has/service_profile.hpp"
#include "trace/records.hpp"

namespace droppkt::engine {

/// One element of the interleaved proxy feed.
struct FeedRecord {
  std::string client;
  trace::TlsTransaction txn;
};

using Feed = std::vector<FeedRecord>;

/// Stable sort by transaction start time (the proxy's export order).
void sort_feed(Feed& feed);

/// Text wire format for a live proxy feed: one tab-separated line per
/// record — client, start_s, end_s, ul_bytes, dl_bytes, http_count, sni.
/// This is what a Squid-style proxy tails into the ingest engine, so the
/// parser treats every line as untrusted: malformed field counts, bad
/// numbers, oversized fields, or inverted timestamps raise
/// droppkt::ParseError (fuzz/fuzz_feed_line.cpp enforces crash-freedom).
void write_feed_line(const FeedRecord& record, std::ostream& os);
void write_feed(const Feed& feed, std::ostream& os);

/// Parse one feed line. Throws droppkt::ParseError on malformed input.
FeedRecord parse_feed_line(std::string_view line);

/// Parse a whole feed stream (blank lines skipped). Throws ParseError with
/// the 1-based line number on the first malformed line.
Feed read_feed(std::istream& is);

/// Simulation-backed feed: `num_clients` subscribers each stream
/// `sessions_per_client` back-to-back videos of `svc`, with staggered
/// start offsets, merged into proxy export order. Faithful to the paper's
/// traffic model but costs a full player simulation per session — use for
/// correctness tests and examples. Returns the feed and the true session
/// count via `true_sessions` (may be null).
Feed simulated_feed(const has::ServiceProfile& svc, std::size_t num_clients,
                    std::size_t sessions_per_client, std::uint64_t seed,
                    std::size_t* true_sessions = nullptr);

/// Configuration for the cheap synthetic feed used by the throughput bench.
struct SynthFeedConfig {
  std::size_t num_clients = 10000;
  std::size_t sessions_per_client = 2;
  std::size_t txns_per_session = 12;
  /// Gap between a client's sessions; exceed the monitor idle timeout to
  /// exercise both delimitation paths.
  double session_gap_s = 240.0;
  /// Clients start uniformly within this horizon.
  double horizon_s = 3600.0;
  std::uint64_t seed = 20201204;
};

/// Statistically plausible feed without running the player simulator:
/// bursty session opens against fresh server pools, lognormal transaction
/// sizes, chunked mid-session fetches. Orders of magnitude cheaper to
/// generate than simulated_feed(), which is what a million-client
/// throughput bench needs.
Feed synthetic_feed(const SynthFeedConfig& config);

}  // namespace droppkt::engine
