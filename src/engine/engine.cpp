#include "engine/engine.hpp"

#include <algorithm>

#include "engine/alert_sink.hpp"
#include "util/expect.hpp"

namespace droppkt::engine {

IngestEngine::IngestEngine(const core::QoeEstimator& estimator,
                           SessionSink sink, EngineConfig config)
    : IngestEngine(estimator, std::move(sink), ProvisionalSink{},
                   std::move(config)) {}

IngestEngine::IngestEngine(const core::QoeEstimator& estimator,
                           SessionSink sink, ProvisionalSink provisional,
                           EngineConfig config)
    : estimator_(&estimator),
      sink_(std::move(sink)),
      provisional_sink_(std::move(provisional)),
      config_(config) {
  DROPPKT_EXPECT(estimator.trained(), "IngestEngine: estimator must be trained");
  DROPPKT_EXPECT(static_cast<bool>(sink_), "IngestEngine: sink must be callable");
  DROPPKT_EXPECT(config_.watermark_interval_s > 0.0,
                 "IngestEngine: watermark interval must be positive");
  DROPPKT_EXPECT(config_.drain_block > 0,
                 "IngestEngine: drain block must be positive");
  std::size_t n = config_.num_shards;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (config_.registry != nullptr) {
    registry_ = config_.registry;
  } else {
    owned_registry_ = std::make_unique<telemetry::MetricRegistry>();
    registry_ = owned_registry_.get();
  }
  if (config_.alert_sink) {
    config_.alert_sink->bind(n);
    // Setup phase: the sink registers its "alert.*" instruments before any
    // worker thread exists, honoring the registry's threading contract.
    config_.alert_sink->bind_telemetry(*registry_);
  }
  // Captured as plain bools: the sink callables themselves are guarded by
  // sink_mutex_, and testing emptiness per event inside the worker lambdas
  // would either race the guard or take the global mutex even when only
  // the alert hook is installed.
  const bool has_provisional_sink = static_cast<bool>(provisional_sink_);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(config_.queue_capacity,
                                         config_.backpressure);
    Shard* sh = shard.get();
    sh->index = i;
    sh->staging.reserve(config_.drain_block);
    // The callback runs on the shard's worker thread; the sink mutex
    // serializes cross-shard emission. The alert hook stays outside the
    // mutex: its shard-side stage is per-shard state, so serializing it
    // globally would be pure contention.
    sh->monitor = std::make_unique<core::StreamingMonitor>(
        core::StreamingMonitor::ViewSinkTag{}, *estimator_,
        [this, sh](const core::MonitoredSessionView& s) {
          // The shard's session counter is bumped by the monitor itself
          // (bound below), exactly once per emitted session.
          if (config_.alert_sink) {
            config_.alert_sink->on_session(sh->index, s, sh->draining);
          }
          const util::MutexLock lock(sink_mutex_);
          sink_(s);
        },
        config_.monitor);
    // The ingest thread interns into the shard's pools; the worker's
    // monitor only resolves refs (publication rides the mailbox).
    sh->monitor->use_external_pools(&sh->clients, &sh->snis);
    register_shard_metrics(*sh);
    // The monitor reports session lifecycle (sessions, provisionals,
    // evictions, noise drops) straight into the shard's registry counters.
    sh->monitor->bind_telemetry(core::MonitorMetrics{
        sh->metrics.sessions, sh->metrics.provisionals,
        sh->metrics.clients_evicted, sh->metrics.noise_dropped});
    if (has_provisional_sink || config_.alert_sink) {
      // In-flight QoE fan-in mirrors the session sink: serialized across
      // shards by the same mutex (counting lives in the monitor).
      sh->monitor->set_provisional_callback(
          [this, sh, has_provisional_sink](const core::ProvisionalEstimate& e) {
            if (config_.alert_sink) {
              config_.alert_sink->on_provisional(sh->index, e);
            }
            if (has_provisional_sink) {
              const util::MutexLock lock(sink_mutex_);
              provisional_sink_(e);
            }
          });
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* sh = shard.get();
    sh->worker = std::thread([this, sh] { worker_loop(*sh); });
  }
}

IngestEngine::~IngestEngine() { finish(); }

std::size_t IngestEngine::shard_of(std::string_view client) const {
  return util::well_mixed_hash(client) % shards_.size();
}

IngestEngine::Msg IngestEngine::make_record_msg(
    Shard& sh, std::string_view client, const trace::TlsTransaction& txn) {
  Msg m;
  m.kind = Msg::Kind::kRecord;
  m.client_ref = sh.clients.intern(client);
  m.rec = core::to_tls_record(txn, sh.snis);
  // Sampled latency stamping: a clock read per record costs more than the
  // rest of this function; every k-th record per shard keeps the
  // histogram live at negligible cost.
  if (config_.latency_sample_every > 0 &&
      ++sh.stamp_phase >= config_.latency_sample_every) {
    sh.stamp_phase = 0;
    m.enqueue_tp = std::chrono::steady_clock::now();
  }
  return m;
}

void IngestEngine::maybe_broadcast_watermark(double start_s) {
  // Low-watermark broadcast: the global feed has reached start_s, so
  // every shard — including ones whose clients have gone quiet — may evict
  // clients idle past the timeout. Each shard's mailbox is FIFO, so the
  // watermark is processed after every record enqueued before it; staged
  // records are flushed first to keep that invariant under batching.
  if (saw_record_ &&
      start_s - last_watermark_s_ < config_.watermark_interval_s) {
    return;
  }
  last_watermark_s_ = start_s;
  saw_record_ = true;
  flush_all_staging();
  for (auto& shard : shards_) {
    Msg wm;
    wm.kind = Msg::Kind::kWatermark;
    wm.rec.start_s = start_s;
    shard->queue.push(wm);
  }
}

void IngestEngine::register_shard_metrics(Shard& sh) {
  const std::string prefix = "engine.shard" + std::to_string(sh.index) + ".";
  telemetry::MetricRegistry& r = *registry_;
  sh.metrics.enqueued = &r.counter(prefix + "enqueued", "records");
  sh.metrics.records = &r.counter(prefix + "records", "records");
  sh.metrics.watermarks = &r.counter(prefix + "watermarks");
  sh.metrics.sessions = &r.counter(prefix + "sessions");
  sh.metrics.provisionals = &r.counter(prefix + "provisionals");
  sh.metrics.clients_evicted = &r.counter(prefix + "clients_evicted");
  sh.metrics.noise_dropped = &r.counter(prefix + "noise_dropped");
  sh.metrics.dropped = &r.counter(prefix + "dropped", "records");
  sh.metrics.queue_depth = &r.gauge(prefix + "queue_depth", "records");
  sh.metrics.queue_high_water = &r.gauge(prefix + "queue_high_water", "records");
  sh.metrics.interned_clients = &r.gauge(prefix + "interned_clients");
  sh.metrics.interned_snis = &r.gauge(prefix + "interned_snis");
  sh.metrics.latency = &r.histogram(prefix + "latency", "ns");
}

void IngestEngine::flush_shard(Shard& sh) {
  if (sh.staging.empty()) return;
  sh.queue.push_bulk(sh.staging.data(), sh.staging.size());
  sh.metrics.enqueued->add(sh.staging.size());
  sh.staging.clear();
}

void IngestEngine::flush_all_staging() {
  for (auto& shard : shards_) flush_shard(*shard);
}

void IngestEngine::ingest(std::string_view client,
                          const trace::TlsTransaction& txn) {
  DROPPKT_EXPECT(!finished_, "IngestEngine: ingest after finish");
  DROPPKT_EXPECT(!client.empty(), "IngestEngine: client must be non-empty");
  maybe_broadcast_watermark(txn.start_s);
  Shard& sh = *shards_[shard_of(client)];
  Msg m = make_record_msg(sh, client, txn);
  sh.metrics.enqueued->inc();
  sh.queue.push(m);
}

void IngestEngine::ingest_batch(std::span<const FeedRecord> batch) {
  DROPPKT_EXPECT(!finished_, "IngestEngine: ingest after finish");
  for (const FeedRecord& r : batch) {
    DROPPKT_EXPECT(!r.client.empty(),
                   "IngestEngine: client must be non-empty");
    maybe_broadcast_watermark(r.txn.start_s);
    Shard& sh = *shards_[shard_of(r.client)];
    sh.staging.push_back(make_record_msg(sh, r.client, r.txn));
    if (sh.staging.size() >= config_.drain_block) flush_shard(sh);
  }
  flush_all_staging();
}

void IngestEngine::worker_loop(Shard& shard) {
  // Block-drained hot loop: one mailbox operation moves up to drain_block
  // POD messages, and the shared counters are published once per block —
  // per-record work is just the monitor call (plus a clock read for the
  // sampled subset carrying a stamp).
  std::vector<Msg> block(config_.drain_block);
  std::uint64_t records = 0;
  std::uint64_t watermarks = 0;
  for (;;) {
    const std::size_t got =
        shard.queue.pop_wait_bulk(block.data(), block.size());
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      const Msg& m = block[i];
      if (m.kind == Msg::Kind::kRecord) {
        shard.monitor->observe_ref(m.client_ref, m.rec);
        ++records;
        if (m.enqueue_tp.time_since_epoch().count() != 0) {
          const auto done = std::chrono::steady_clock::now();
          shard.metrics.latency->record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  done - m.enqueue_tp)
                  .count()));
        }
      } else {
        // advance_time first: sessions it evicts carry detected_s equal to
        // the watermark, and the sink must see them before it learns the
        // shard has reached that time.
        shard.monitor->advance_time(m.rec.start_s);
        ++watermarks;
        if (config_.alert_sink) {
          config_.alert_sink->on_watermark(shard.index, m.rec.start_s);
        }
      }
    }
    shard.metrics.records->store(records);
    shard.metrics.watermarks->store(watermarks);
  }
  shard.draining = true;
  shard.monitor->finish();
}

void IngestEngine::finish() {
  if (finished_) return;
  finished_ = true;
  flush_all_staging();
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // All workers have joined, so every on_* call has completed; the sink
  // may now flush its buffered tail single-threaded.
  if (config_.alert_sink) config_.alert_sink->on_finish();
}

void IngestEngine::refresh_gauges() const {
  for (const auto& shard : shards_) {
    const Shard& sh = *shard;
    sh.metrics.dropped->store(sh.queue.dropped());
    sh.metrics.queue_depth->set(sh.queue.size());
    sh.metrics.queue_high_water->set(sh.queue.high_water());
    sh.metrics.interned_clients->set(sh.clients.size());
    sh.metrics.interned_snis->set(sh.snis.size());
  }
}

EngineStatsSnapshot IngestEngine::stats() const {
  refresh_gauges();
  EngineStatsSnapshot snap;
  LatencyHistogram::Counts merged{};
  snap.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = *shards_[i];
    ShardStatsSnapshot s;
    s.shard = i;
    s.enqueued = sh.metrics.enqueued->value();
    s.records = sh.metrics.records->value();
    s.watermarks = sh.metrics.watermarks->value();
    s.sessions = sh.metrics.sessions->value();
    s.provisionals = sh.metrics.provisionals->value();
    s.clients_evicted = sh.metrics.clients_evicted->value();
    s.sessions_noise_dropped = sh.metrics.noise_dropped->value();
    s.dropped = sh.queue.dropped();
    s.queue_depth = sh.queue.size();
    s.queue_high_water = sh.queue.high_water();
    s.interned_clients = sh.clients.size();
    s.interned_snis = sh.snis.size();
    snap.records_ingested += s.enqueued;
    snap.records_processed += s.records;
    snap.records_dropped += s.dropped;
    snap.sessions_reported += s.sessions;
    snap.provisionals_reported += s.provisionals;
    snap.clients_evicted += s.clients_evicted;
    snap.sessions_noise_dropped += s.sessions_noise_dropped;
    snap.interned_clients += s.interned_clients;
    snap.interned_snis += s.interned_snis;
    snap.max_queue_high_water = std::max(snap.max_queue_high_water,
                                         s.queue_high_water);
    sh.metrics.latency->add_to(merged);
    snap.shards.push_back(s);
  }
  snap.latency_p50_us = histogram_quantile_ns(merged, 0.50) / 1000.0;
  snap.latency_p99_us = histogram_quantile_ns(merged, 0.99) / 1000.0;
  if (config_.alert_sink) {
    const AlertCounts ac = config_.alert_sink->counts();
    snap.alerting = true;
    snap.verdict_transitions = ac.transitions;
    snap.verdicts_suppressed = ac.suppressed;
    snap.alerts_raised = ac.alerts_raised;
    snap.alerts_cleared = ac.alerts_cleared;
  }
  return snap;
}

std::uint64_t IngestEngine::sessions_reported() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->metrics.sessions->value();
  }
  return total;
}

std::uint64_t IngestEngine::provisionals_reported() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->metrics.provisionals->value();
  }
  return total;
}

}  // namespace droppkt::engine
