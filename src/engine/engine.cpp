#include "engine/engine.hpp"

#include <algorithm>

#include "engine/alert_sink.hpp"
#include "util/expect.hpp"

namespace droppkt::engine {

namespace {

/// FNV-1a with a SplitMix64 finalizer. std::hash<std::string> is not
/// specified to mix well (libstdc++'s is fine, but shard balance should
/// not depend on the standard library); this gives a stable, well-mixed
/// client -> shard assignment on every platform.
std::uint64_t client_hash(const std::string& client) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : client) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

IngestEngine::IngestEngine(const core::QoeEstimator& estimator,
                           SessionSink sink, EngineConfig config)
    : IngestEngine(estimator, std::move(sink), ProvisionalSink{},
                   std::move(config)) {}

IngestEngine::IngestEngine(const core::QoeEstimator& estimator,
                           SessionSink sink, ProvisionalSink provisional,
                           EngineConfig config)
    : estimator_(&estimator),
      sink_(std::move(sink)),
      provisional_sink_(std::move(provisional)),
      config_(config) {
  DROPPKT_EXPECT(estimator.trained(), "IngestEngine: estimator must be trained");
  DROPPKT_EXPECT(static_cast<bool>(sink_), "IngestEngine: sink must be callable");
  DROPPKT_EXPECT(config_.watermark_interval_s > 0.0,
                 "IngestEngine: watermark interval must be positive");
  std::size_t n = config_.num_shards;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (config_.alert_sink) config_.alert_sink->bind(n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(config_.queue_capacity,
                                         config_.backpressure);
    Shard* sh = shard.get();
    sh->index = i;
    // The callback runs on the shard's worker thread; the sink mutex
    // serializes cross-shard emission. The alert hook stays outside the
    // mutex: its shard-side stage is per-shard state, so serializing it
    // globally would be pure contention.
    sh->monitor = std::make_unique<core::StreamingMonitor>(
        *estimator_,
        [this, sh](const core::MonitoredSession& s) {
          sh->counters.sessions.fetch_add(1, std::memory_order_relaxed);
          if (config_.alert_sink) {
            config_.alert_sink->on_session(sh->index, s, sh->draining);
          }
          const std::lock_guard<std::mutex> lock(sink_mutex_);
          sink_(s);
        },
        config_.monitor);
    if (provisional_sink_ || config_.alert_sink) {
      // In-flight QoE fan-in mirrors the session sink: counted on the
      // owning shard, serialized across shards by the same mutex.
      sh->monitor->set_provisional_callback(
          [this, sh](const core::ProvisionalEstimate& e) {
            sh->counters.provisionals.fetch_add(1, std::memory_order_relaxed);
            if (config_.alert_sink) {
              config_.alert_sink->on_provisional(sh->index, e);
            }
            if (provisional_sink_) {
              const std::lock_guard<std::mutex> lock(sink_mutex_);
              provisional_sink_(e);
            }
          });
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* sh = shard.get();
    sh->worker = std::thread([this, sh] { worker_loop(*sh); });
  }
}

IngestEngine::~IngestEngine() { finish(); }

std::size_t IngestEngine::shard_of(const std::string& client) const {
  return client_hash(client) % shards_.size();
}

void IngestEngine::ingest(const std::string& client,
                          const trace::TlsTransaction& txn) {
  DROPPKT_EXPECT(!finished_, "IngestEngine: ingest after finish");
  DROPPKT_EXPECT(!client.empty(), "IngestEngine: client must be non-empty");

  // Low-watermark broadcast: the global feed has reached txn.start_s, so
  // every shard — including ones whose clients have gone quiet — may evict
  // clients idle past the timeout. Each shard's mailbox is FIFO, so the
  // watermark is processed after every record enqueued before it.
  if (!saw_record_ ||
      txn.start_s - last_watermark_s_ >= config_.watermark_interval_s) {
    last_watermark_s_ = txn.start_s;
    saw_record_ = true;
    for (auto& shard : shards_) {
      Msg wm;
      wm.kind = Msg::Kind::kWatermark;
      wm.txn.start_s = txn.start_s;
      shard->queue.push(std::move(wm));
    }
  }

  Shard& sh = *shards_[shard_of(client)];
  Msg m;
  m.kind = Msg::Kind::kRecord;
  m.client = client;
  m.txn = txn;
  m.enqueue_tp = std::chrono::steady_clock::now();
  sh.counters.enqueued.fetch_add(1, std::memory_order_relaxed);
  sh.queue.push(std::move(m));
}

void IngestEngine::worker_loop(Shard& shard) {
  Msg m;
  while (shard.queue.pop_wait(m)) {
    if (m.kind == Msg::Kind::kRecord) {
      shard.monitor->observe(m.client, m.txn);
      shard.counters.records.fetch_add(1, std::memory_order_relaxed);
      const auto done = std::chrono::steady_clock::now();
      shard.counters.latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(done -
                                                               m.enqueue_tp)
              .count()));
    } else {
      // advance_time first: sessions it evicts carry detected_s equal to
      // the watermark, and the sink must see them before it learns the
      // shard has reached that time.
      shard.monitor->advance_time(m.txn.start_s);
      shard.counters.watermarks.fetch_add(1, std::memory_order_relaxed);
      if (config_.alert_sink) {
        config_.alert_sink->on_watermark(shard.index, m.txn.start_s);
      }
    }
  }
  shard.draining = true;
  shard.monitor->finish();
}

void IngestEngine::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // All workers have joined, so every on_* call has completed; the sink
  // may now flush its buffered tail single-threaded.
  if (config_.alert_sink) config_.alert_sink->on_finish();
}

EngineStatsSnapshot IngestEngine::stats() const {
  EngineStatsSnapshot snap;
  LatencyHistogram::Counts merged{};
  snap.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = *shards_[i];
    ShardStatsSnapshot s;
    s.shard = i;
    s.enqueued = sh.counters.enqueued.load(std::memory_order_relaxed);
    s.records = sh.counters.records.load(std::memory_order_relaxed);
    s.watermarks = sh.counters.watermarks.load(std::memory_order_relaxed);
    s.sessions = sh.counters.sessions.load(std::memory_order_relaxed);
    s.provisionals = sh.counters.provisionals.load(std::memory_order_relaxed);
    s.dropped = sh.queue.dropped();
    s.queue_depth = sh.queue.size();
    s.queue_high_water = sh.queue.high_water();
    snap.records_ingested += s.enqueued;
    snap.records_processed += s.records;
    snap.records_dropped += s.dropped;
    snap.sessions_reported += s.sessions;
    snap.provisionals_reported += s.provisionals;
    snap.max_queue_high_water = std::max(snap.max_queue_high_water,
                                         s.queue_high_water);
    sh.counters.latency.add_to(merged);
    snap.shards.push_back(s);
  }
  snap.latency_p50_us = histogram_quantile_ns(merged, 0.50) / 1000.0;
  snap.latency_p99_us = histogram_quantile_ns(merged, 0.99) / 1000.0;
  if (config_.alert_sink) {
    const AlertCounts ac = config_.alert_sink->counts();
    snap.alerting = true;
    snap.verdict_transitions = ac.transitions;
    snap.verdicts_suppressed = ac.suppressed;
    snap.alerts_raised = ac.alerts_raised;
    snap.alerts_cleared = ac.alerts_cleared;
  }
  return snap;
}

std::uint64_t IngestEngine::sessions_reported() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->counters.sessions.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t IngestEngine::provisionals_reported() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->counters.provisionals.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace droppkt::engine
