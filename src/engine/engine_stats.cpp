#include "engine/engine_stats.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace droppkt::engine {

void LatencyHistogram::record(std::uint64_t ns) {
  // Bucket b holds [2^b, 2^(b+1)) ns; 0 and 1 ns land in bucket 0.
  const std::size_t b = ns < 2 ? 0 : std::bit_width(ns) - 1;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram::Counts LatencyHistogram::counts() const {
  Counts out{};
  add_to(out);
  return out;
}

void LatencyHistogram::add_to(Counts& into) const {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    into[i] += buckets_[i].load(std::memory_order_relaxed);
  }
}

double histogram_quantile_ns(const LatencyHistogram::Counts& counts, double q) {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double seen = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += static_cast<double>(counts[b]);
    if (seen >= target) {
      // Geometric midpoint of [2^b, 2^(b+1)).
      return std::ldexp(std::sqrt(2.0), static_cast<int>(b));
    }
  }
  return std::ldexp(1.0, static_cast<int>(counts.size() - 1));
}

std::string EngineStatsSnapshot::to_string() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "shard   enqueued  processed  watermarks  sessions   dropped"
                "  depth  high-water\n");
  out += line;
  for (const auto& s : shards) {
    std::snprintf(line, sizeof(line),
                  "%5zu %10llu %10llu %11llu %9llu %9llu %6zu %11zu\n",
                  s.shard, static_cast<unsigned long long>(s.enqueued),
                  static_cast<unsigned long long>(s.records),
                  static_cast<unsigned long long>(s.watermarks),
                  static_cast<unsigned long long>(s.sessions),
                  static_cast<unsigned long long>(s.dropped), s.queue_depth,
                  s.queue_high_water);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu ingested, %llu processed, %llu dropped, "
                "%llu sessions, %llu provisionals\n",
                static_cast<unsigned long long>(records_ingested),
                static_cast<unsigned long long>(records_processed),
                static_cast<unsigned long long>(records_dropped),
                static_cast<unsigned long long>(sessions_reported),
                static_cast<unsigned long long>(provisionals_reported));
  out += line;
  std::snprintf(line, sizeof(line),
                "interned: %zu clients, %zu SNIs across shard pools\n",
                interned_clients, interned_snis);
  out += line;
  std::snprintf(line, sizeof(line),
                "observe-to-classify latency: p50 %.1f us, p99 %.1f us\n",
                latency_p50_us, latency_p99_us);
  out += line;
  if (alerting) {
    std::snprintf(line, sizeof(line),
                  "alerting: %llu transitions, %llu suppressed, "
                  "%llu raised, %llu cleared\n",
                  static_cast<unsigned long long>(verdict_transitions),
                  static_cast<unsigned long long>(verdicts_suppressed),
                  static_cast<unsigned long long>(alerts_raised),
                  static_cast<unsigned long long>(alerts_cleared));
    out += line;
  }
  return out;
}

}  // namespace droppkt::engine
