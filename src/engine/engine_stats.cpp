#include "engine/engine_stats.hpp"

#include <cstdio>

namespace droppkt::engine {

std::string EngineStatsSnapshot::to_string() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "shard   enqueued  processed  watermarks  sessions   dropped"
                "  depth  high-water\n");
  out += line;
  for (const auto& s : shards) {
    std::snprintf(line, sizeof(line),
                  "%5zu %10llu %10llu %11llu %9llu %9llu %6zu %11zu\n",
                  s.shard, static_cast<unsigned long long>(s.enqueued),
                  static_cast<unsigned long long>(s.records),
                  static_cast<unsigned long long>(s.watermarks),
                  static_cast<unsigned long long>(s.sessions),
                  static_cast<unsigned long long>(s.dropped), s.queue_depth,
                  s.queue_high_water);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu ingested, %llu processed, %llu dropped, "
                "%llu sessions, %llu provisionals\n",
                static_cast<unsigned long long>(records_ingested),
                static_cast<unsigned long long>(records_processed),
                static_cast<unsigned long long>(records_dropped),
                static_cast<unsigned long long>(sessions_reported),
                static_cast<unsigned long long>(provisionals_reported));
  out += line;
  std::snprintf(line, sizeof(line),
                "lifecycle: %llu clients evicted, %llu noise sessions "
                "dropped\n",
                static_cast<unsigned long long>(clients_evicted),
                static_cast<unsigned long long>(sessions_noise_dropped));
  out += line;
  std::snprintf(line, sizeof(line),
                "interned: %zu clients, %zu SNIs across shard pools\n",
                interned_clients, interned_snis);
  out += line;
  std::snprintf(line, sizeof(line),
                "observe-to-classify latency: p50 %.1f us, p99 %.1f us\n",
                latency_p50_us, latency_p99_us);
  out += line;
  if (alerting) {
    std::snprintf(line, sizeof(line),
                  "alerting: %llu transitions, %llu suppressed, "
                  "%llu raised, %llu cleared\n",
                  static_cast<unsigned long long>(verdict_transitions),
                  static_cast<unsigned long long>(verdicts_suppressed),
                  static_cast<unsigned long long>(alerts_raised),
                  static_cast<unsigned long long>(alerts_cleared));
    out += line;
  }
  return out;
}

}  // namespace droppkt::engine
