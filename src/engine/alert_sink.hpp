// The engine's alerting seam: an abstract sink the IngestEngine feeds with
// every verdict-bearing event it produces, tagged with enough ordering
// metadata (owning shard, low-watermark progress) for an implementation to
// reconstruct a deterministic global event order.
//
// The interface lives in the engine layer so the alert subsystem
// (src/alert/) can depend on the engine without the engine depending back
// on it — the engine only knows "something downstream wants verdicts".
//
// Threading contract: bind() is called once, before any worker starts.
// on_provisional / on_session / on_watermark are called from shard worker
// threads WITHOUT the engine's sink mutex held; calls for one shard index
// are serial (each shard has exactly one worker), calls for different
// shards are concurrent. on_finish() is called once, from the thread
// calling IngestEngine::finish(), after every worker has joined.
// counts() may be called from any thread at any time.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/monitor.hpp"
#include "telemetry/registry.hpp"

namespace droppkt::engine {

/// Monotonic totals an alert sink exposes back to EngineStats.
struct AlertCounts {
  /// Stable-verdict transitions the hysteresis stage let through.
  std::uint64_t transitions = 0;
  /// Verdict flips absorbed by hysteresis (never reached the detector).
  std::uint64_t suppressed = 0;
  std::uint64_t alerts_raised = 0;
  std::uint64_t alerts_cleared = 0;
};

/// Consumer of the engine's verdict stream (see threading contract above).
class AlertSink {
 public:
  virtual ~AlertSink() = default;

  /// Number of shards the engine will report events from. Shard indices in
  /// later calls are < num_shards.
  virtual void bind(std::size_t num_shards) = 0;

  /// Join the engine's telemetry plane: register this sink's counters and
  /// gauges in `registry` and report through them from now on. Called once
  /// by the engine right after bind(), before any worker starts; the
  /// registry outlives the sink's event stream. Sinks with no metrics keep
  /// the default no-op.
  virtual void bind_telemetry(telemetry::MetricRegistry& registry) {
    (void)registry;
  }

  /// An in-flight estimate for a still-open session. The estimate's
  /// `client` view is valid only during the call.
  virtual void on_provisional(std::size_t shard,
                              const core::ProvisionalEstimate& estimate) = 0;

  /// A completed session's final verdict. The view (and its `records`
  /// span) is valid only during the call; `transactions` may be empty when
  /// the engine runs with transaction materialization off. `at_close` is
  /// true when the session was force-flushed by engine shutdown (monitor
  /// finish()) rather than delimited by feed time; such sessions carry no
  /// meaningful position in the watermark order and must only be surfaced
  /// at on_finish().
  virtual void on_session(std::size_t shard,
                          const core::MonitoredSessionView& session,
                          bool at_close) = 0;

  /// This shard has processed every record with start time < watermark_s.
  /// Every shard receives every watermark value, in the same order.
  virtual void on_watermark(std::size_t shard, double watermark_s) = 0;

  /// The feed is done and all workers have joined; flush everything.
  virtual void on_finish() = 0;

  virtual AlertCounts counts() const = 0;
};

}  // namespace droppkt::engine
