#include "engine/replay.hpp"

#include <chrono>
#include <thread>

#include "util/expect.hpp"

namespace droppkt::engine {

trace::FeedCapture capture_feed(std::span<const FeedRecord> feed,
                                const CaptureConfig& config) {
  DROPPKT_EXPECT(config.marker_interval_s > 0.0,
                 "capture_feed: marker interval must be positive");
  trace::FeedCapture out;
  out.reserve(feed.size() + feed.size() / 16 + 2);
  std::uint64_t seq = 0;
  double last_marker_s = 0.0;
  bool saw_record = false;
  for (const FeedRecord& r : feed) {
    // Mirror of the engine's watermark cadence: a marker before the first
    // record and before every record that crosses the interval — so the
    // replayed marker instants land exactly where the live watermark
    // broadcasts did.
    if (!saw_record ||
        r.txn.start_s - last_marker_s >= config.marker_interval_s) {
      trace::CaptureEvent m;
      m.kind = trace::CaptureEvent::Kind::kMarker;
      m.marker_seq = seq++;
      m.marker_time_s = r.txn.start_s;
      out.push_back(std::move(m));
      last_marker_s = r.txn.start_s;
      saw_record = true;
    }
    trace::CaptureEvent ev;
    ev.kind = trace::CaptureEvent::Kind::kRecord;
    ev.client = r.client;
    ev.txn = r.txn;
    out.push_back(std::move(ev));
  }
  return out;
}

ReplayStats replay_capture(const trace::FeedCapture& capture,
                           IngestEngine& engine, const ReplayConfig& config) {
  DROPPKT_EXPECT(config.batch >= 1, "replay_capture: batch must be >= 1");
  DROPPKT_EXPECT(config.time_scale >= 0.0,
                 "replay_capture: time scale must be >= 0");
  auto now_ns = config.now_ns;
  if (!now_ns) {
    now_ns = [] {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
  }
  auto sleep_ns = config.sleep_ns;
  if (!sleep_ns) {
    sleep_ns = [](std::uint64_t ns) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    };
  }

  ReplayStats stats;
  std::vector<FeedRecord> staging;
  staging.reserve(config.batch);
  const std::uint64_t wall0_ns = now_ns();
  double feed0_s = 0.0;
  bool saw_marker = false;
  bool saw_record = false;
  const auto flush = [&] {
    if (staging.empty()) return;
    engine.ingest_batch(staging);
    staging.clear();
  };
  for (const trace::CaptureEvent& ev : capture) {
    if (ev.kind == trace::CaptureEvent::Kind::kRecord) {
      DROPPKT_EXPECT(!ev.client.empty(),
                     "replay_capture: record event with empty client");
      if (!saw_record) {
        stats.first_s = ev.txn.start_s;
        saw_record = true;
      }
      stats.last_s = ev.txn.start_s;
      staging.push_back(FeedRecord{ev.client, ev.txn});
      if (staging.size() >= config.batch) flush();
      ++stats.records;
    } else {
      // Pace at markers only: the flush keeps record order intact, the
      // sleep (if any) merely delays when the next span is offered — the
      // engine's outputs cannot observe the difference.
      flush();
      ++stats.markers;
      if (config.time_scale > 0.0) {
        if (!saw_marker) {
          feed0_s = ev.marker_time_s;
          saw_marker = true;
        }
        const double feed_elapsed_s = ev.marker_time_s - feed0_s;
        const double target_ns = feed_elapsed_s / config.time_scale * 1e9;
        const std::uint64_t elapsed_ns = now_ns() - wall0_ns;
        if (target_ns > static_cast<double>(elapsed_ns)) {
          sleep_ns(static_cast<std::uint64_t>(target_ns) - elapsed_ns);
        }
      }
      if (config.on_marker) config.on_marker(ev);
    }
  }
  flush();
  stats.wall_seconds =
      static_cast<double>(now_ns() - wall0_ns) / 1e9;
  return stats;
}

}  // namespace droppkt::engine
