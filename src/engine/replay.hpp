// Record/replay for the ingest engine: freeze a proxy feed to a
// trace::FeedCapture (records + interval markers), then push the capture
// through a fresh engine — at line rate or paced by a time-scale factor —
// reproducing the original run's session and alert sequences
// byte-for-byte.
//
// What makes replay deterministic: the engine's outputs depend only on
// the record sequence and the watermark broadcast cadence, and the
// watermark cadence depends only on feed times (watermark_interval_s) —
// never on wall time. Pacing therefore only changes *when* records are
// offered to ingest_batch, not which records or in what order, so a
// replay at any --time-scale produces bit-identical sessions and alerts
// to the capture's source run. Markers carry the capture-time interval
// cadence so a dashboard consumer can tick its sampler at the same feed
// instants the live run did.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "engine/engine.hpp"
#include "engine/feed.hpp"
#include "trace/capture.hpp"

namespace droppkt::engine {

struct CaptureConfig {
  /// Feed-time spacing of the embedded interval markers. Mirrors the
  /// engine's watermark cadence: a marker is emitted at the first record
  /// and whenever the feed has advanced at least this far since the last
  /// one, before the crossing record. Must be positive.
  double marker_interval_s = 15.0;
};

/// Freeze a feed (global start-time order, as fed to the engine) into a
/// capture with interval markers at the configured cadence.
trace::FeedCapture capture_feed(std::span<const FeedRecord> feed,
                                const CaptureConfig& config = {});

struct ReplayConfig {
  /// Feed-seconds per wall-second, applied at markers: 8.0 replays a
  /// 15 s marker interval in ~1.9 s of wall time. 0 (default) replays at
  /// line rate — no pacing, full ingest throughput.
  double time_scale = 0.0;
  /// Records staged per ingest_batch() call.
  std::size_t batch = 256;
  /// Clock/sleep seam for pacing, monotonic nanoseconds. Defaults to
  /// steady_clock / sleep_for; tests substitute a manual clock so pacing
  /// logic is exercised without real waiting.
  std::function<std::uint64_t()> now_ns;
  std::function<void(std::uint64_t)> sleep_ns;
  /// Called at each marker (after pacing, after every record before the
  /// marker is ingested) — the dashboard's sampler tick hook.
  std::function<void(const trace::CaptureEvent&)> on_marker;
};

struct ReplayStats {
  std::uint64_t records = 0;
  std::uint64_t markers = 0;
  double first_s = 0.0;  // feed time span covered by the capture's records
  double last_s = 0.0;
  double wall_seconds = 0.0;
};

/// Push a capture through `engine` in capture order. Does NOT call
/// engine.finish() — the caller decides when the stream ends (and may
/// replay several captures back to back). Throws ContractViolation on a
/// malformed capture (marker sequence gaps are tolerated; record events
/// with empty clients are not).
ReplayStats replay_capture(const trace::FeedCapture& capture,
                           IngestEngine& engine,
                           const ReplayConfig& config = {});

}  // namespace droppkt::engine
