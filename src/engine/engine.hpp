// IngestEngine: the deployment-scale layer between a proxy's TLS
// transaction feed and the paper's per-client QoE pipeline.
//
// A transparent proxy exports one globally time-ordered stream of
// (client, TlsTransaction) records for an entire vantage point — far more
// than one core's StreamingMonitor can drain at ISP scale. The engine
// hashes each client to one of N shards; every shard runs its own
// StreamingMonitor on a dedicated worker thread, fed through a bounded
// lock-free SPSC mailbox (util::SpscQueue), so session delimitation and
// classification parallelize with zero cross-shard locking on the hot
// path. Because a client's records all hash to the same shard, per-client
// ordering — the only ordering the monitor needs — is preserved.
//
// Quiet shards still evict idle clients: the ingest thread periodically
// broadcasts a low-watermark timestamp (the feed time reached by the
// global stream) to every shard, which forwards it to
// StreamingMonitor::advance_time(). Completed sessions from all shards
// fan into one sink, serialized by a mutex (sessions complete ~10^2-10^4x
// less often than records arrive, so the lock is off the hot path).
//
// Determinism: for a fixed feed and config, an N-shard run reports exactly
// the same session set (per-client boundaries and predicted classes) as a
// 1-shard run or a plain single-threaded StreamingMonitor, because each
// client's record-and-watermark subsequence is identical regardless of N.
// Only the emission *order* across clients varies.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.hpp"
#include "core/monitor.hpp"
#include "engine/engine_stats.hpp"
#include "trace/records.hpp"
#include "util/spsc_queue.hpp"

namespace droppkt::engine {

class AlertSink;  // engine/alert_sink.hpp

struct EngineConfig {
  /// Number of shard workers; 0 means hardware_concurrency (min 1).
  std::size_t num_shards = 0;
  /// Per-shard mailbox capacity (rounded up to a power of two).
  std::size_t queue_capacity = 4096;
  /// What a full mailbox does to the ingest thread: stall it (kBlock) or
  /// shed the shard's oldest backlog (kDropOldest, counted per shard).
  util::BackpressurePolicy backpressure = util::BackpressurePolicy::kBlock;
  /// Per-shard monitor configuration (session delimitation, idle timeout).
  core::MonitorConfig monitor;
  /// Feed-time interval between low-watermark broadcasts. Must be positive;
  /// values well below the idle timeout keep quiet-shard eviction timely.
  double watermark_interval_s = 15.0;
  /// Optional verdict consumer (see engine/alert_sink.hpp for the
  /// threading contract). Borrowed; must outlive the engine. The alert
  /// subsystem's alert::AlertPipeline is the intended implementation.
  AlertSink* alert_sink = nullptr;
};

/// Sharded multi-threaded ingest over a proxy's TLS transaction feed.
///
/// ingest() must be called from one thread at a time (the proxy feed is a
/// single ordered stream); records must arrive in global start-time order.
/// The estimator is borrowed, must outlive the engine, and must be safe
/// for concurrent predict() calls (it is: prediction is read-only). The
/// sink is invoked from worker threads, one call at a time.
class IngestEngine {
 public:
  using SessionSink = std::function<void(const core::MonitoredSession&)>;
  using ProvisionalSink =
      std::function<void(const core::ProvisionalEstimate&)>;

  IngestEngine(const core::QoeEstimator& estimator, SessionSink sink,
               EngineConfig config = {});

  /// With in-flight QoE surfacing: each shard's monitor emits a
  /// provisional estimate every config.monitor.provisional_every records
  /// per client (see core::ProvisionalEstimate). Like the session sink,
  /// `provisional` is invoked from worker threads one call at a time; the
  /// estimate's `client` view is valid only during the call.
  IngestEngine(const core::QoeEstimator& estimator, SessionSink sink,
               ProvisionalSink provisional, EngineConfig config = {});
  ~IngestEngine();

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Route one proxy record to its client's shard. Applies the configured
  /// backpressure policy if that shard's mailbox is full.
  void ingest(const std::string& client, const trace::TlsTransaction& txn);

  /// Close all mailboxes, drain them, flush every shard's monitor and join
  /// the workers. Idempotent; called by the destructor if needed. After
  /// finish(), ingest() must not be called again.
  void finish();

  std::size_t num_shards() const { return shards_.size(); }

  /// Which shard a client's records are routed to.
  std::size_t shard_of(const std::string& client) const;

  /// Point-in-time statistics; safe to call while ingesting.
  EngineStatsSnapshot stats() const;

  /// Total sessions reported across all shards so far.
  std::uint64_t sessions_reported() const;

  /// Total in-flight (provisional) estimates reported across all shards.
  std::uint64_t provisionals_reported() const;

 private:
  struct Msg {
    enum class Kind : std::uint8_t { kRecord, kWatermark };
    Kind kind = Kind::kRecord;
    std::string client;             // empty for watermarks
    trace::TlsTransaction txn;      // for watermarks only start_s is used
    std::chrono::steady_clock::time_point enqueue_tp{};
  };

  struct Shard {
    Shard(std::size_t cap, util::BackpressurePolicy policy)
        : queue(cap, policy) {}
    util::SpscQueue<Msg> queue;
    ShardCounters counters;
    std::unique_ptr<core::StreamingMonitor> monitor;
    std::thread worker;
    std::size_t index = 0;
    /// Set by the shard's own worker just before the shutdown
    /// monitor->finish() flush; read only from monitor callbacks on that
    /// same thread, so no atomics needed. Lets the alert sink distinguish
    /// feed-delimited sessions from force-flushed ones.
    bool draining = false;
  };

  void worker_loop(Shard& shard);

  const core::QoeEstimator* estimator_;
  SessionSink sink_;
  ProvisionalSink provisional_sink_;
  std::mutex sink_mutex_;
  EngineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  double last_watermark_s_ = 0.0;
  bool saw_record_ = false;
  bool finished_ = false;
};

}  // namespace droppkt::engine
