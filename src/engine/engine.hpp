// IngestEngine: the deployment-scale layer between a proxy's TLS
// transaction feed and the paper's per-client QoE pipeline.
//
// A transparent proxy exports one globally time-ordered stream of
// (client, TlsTransaction) records for an entire vantage point — far more
// than one core's StreamingMonitor can drain at ISP scale. The engine
// hashes each client to one of N shards; every shard runs its own
// StreamingMonitor on a dedicated worker thread, fed through a bounded
// lock-free SPSC mailbox (util::SpscQueue), so session delimitation and
// classification parallelize with zero cross-shard locking on the hot
// path. Because a client's records all hash to the same shard, per-client
// ordering — the only ordering the monitor needs — is preserved.
//
// Hot-path representation (the carrier-scale record path):
//   * Client ids and SNIs are interned into shard-local util::StringPools
//     by the ingest thread; mailbox messages are fixed-size PODs carrying
//     4-byte refs plus the numeric record fields — no string is copied or
//     allocated per record, and the worker resolves names only when a
//     session is emitted (orders of magnitude rarer than arrival).
//   * ingest_batch() routes a caller-sized span of feed records through
//     per-shard staging buffers and publishes them to the mailboxes in
//     blocks (SpscQueue::push_bulk); workers drain symmetric blocks with
//     pop_wait_bulk — the fastclick push/push_batch idiom, paying queue
//     and bookkeeping overhead once per block instead of once per record.
//   * Queue latency is stamped on a sampled subset of records
//     (latency_sample_every) and per-thread counters accumulate locally,
//     publishing to the shared snapshot atomics once per drained block —
//     no steady_clock read and no shared-cache-line RMW per record.
//
// Quiet shards still evict idle clients: the ingest thread periodically
// broadcasts a low-watermark timestamp (the feed time reached by the
// global stream) to every shard, which forwards it to
// StreamingMonitor::advance_time(). Completed sessions from all shards
// fan into one sink, serialized by a mutex (sessions complete ~10^2-10^4x
// less often than records arrive, so the lock is off the hot path).
//
// Determinism: for a fixed feed and config, an N-shard run — batched or
// not, any batch size — reports exactly the same session set (per-client
// boundaries and predicted classes) as a 1-shard run or a plain
// single-threaded StreamingMonitor, because each shard's
// record-and-watermark message sequence is identical regardless of N and
// of how records were grouped into ingest_batch() calls. Only the
// emission *order* across clients varies.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/estimator.hpp"
#include "core/monitor.hpp"
#include "core/tls_record.hpp"
#include "engine/engine_stats.hpp"
#include "engine/feed.hpp"
#include "telemetry/registry.hpp"
#include "trace/records.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/spsc_queue.hpp"
#include "util/string_pool.hpp"

namespace droppkt::engine {

class AlertSink;  // engine/alert_sink.hpp

struct EngineConfig {
  /// Number of shard workers; 0 means hardware_concurrency (min 1).
  std::size_t num_shards = 0;
  /// Per-shard mailbox capacity (rounded up to a power of two).
  std::size_t queue_capacity = 4096;
  /// What a full mailbox does to the ingest thread: stall it (kBlock) or
  /// shed the shard's oldest backlog (kDropOldest, counted per shard).
  util::BackpressurePolicy backpressure = util::BackpressurePolicy::kBlock;
  /// Per-shard monitor configuration (session delimitation, idle timeout).
  core::MonitorConfig monitor;
  /// Feed-time interval between low-watermark broadcasts. Must be positive;
  /// values well below the idle timeout keep quiet-shard eviction timely.
  double watermark_interval_s = 15.0;
  /// Stamp-and-measure queue latency on every k-th record accepted by a
  /// shard (1 = every record — the pre-batching behavior; 0 = never). A
  /// steady_clock read per record costs more than the rest of the enqueue
  /// path, so the default samples: the histogram stays populated while the
  /// hot path stays clock-free.
  std::size_t latency_sample_every = 64;
  /// Block size for batched transfer: ingest_batch() flushes a shard's
  /// staging buffer at this size, and workers drain up to this many
  /// messages per mailbox operation.
  std::size_t drain_block = 256;
  /// Optional verdict consumer (see engine/alert_sink.hpp for the
  /// threading contract). Borrowed; must outlive the engine. The alert
  /// subsystem's alert::AlertPipeline is the intended implementation.
  AlertSink* alert_sink = nullptr;
  /// Metric registry the engine registers its "engine.shard<i>.*"
  /// instruments in (and hands the alert sink via bind_telemetry).
  /// Borrowed; must outlive the engine, and must not already hold another
  /// engine's metrics (duplicate names throw). nullptr (the default): the
  /// engine owns a private registry, reachable via registry().
  telemetry::MetricRegistry* registry = nullptr;
};

/// Sharded multi-threaded ingest over a proxy's TLS transaction feed.
///
/// ingest() / ingest_batch() must be called from one thread at a time (the
/// proxy feed is a single ordered stream); records must arrive in global
/// start-time order. The estimator is borrowed, must outlive the engine,
/// and must be safe for concurrent predict() calls (it is: prediction is
/// read-only). The sink is invoked from worker threads, one call at a
/// time.
class IngestEngine {
 public:
  /// Session sink: invoked with a borrowed view (valid only during the
  /// call) — copy via to_owned() to retain, or read the interned `records`
  /// to stay allocation-free. `transactions` is empty unless
  /// config.monitor.materialize_transactions is on.
  using SessionSink = std::function<void(const core::MonitoredSessionView&)>;
  using ProvisionalSink =
      std::function<void(const core::ProvisionalEstimate&)>;

  IngestEngine(const core::QoeEstimator& estimator, SessionSink sink,
               EngineConfig config = {});

  /// With in-flight QoE surfacing: each shard's monitor emits a
  /// provisional estimate every config.monitor.provisional_every records
  /// per client (see core::ProvisionalEstimate). Like the session sink,
  /// `provisional` is invoked from worker threads one call at a time; the
  /// estimate's `client` view is valid only during the call.
  IngestEngine(const core::QoeEstimator& estimator, SessionSink sink,
               ProvisionalSink provisional, EngineConfig config = {});
  ~IngestEngine();

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Route one proxy record to its client's shard. Applies the configured
  /// backpressure policy if that shard's mailbox is full. The unbatched
  /// path: one mailbox operation per record.
  DROPPKT_NOALLOC void ingest(std::string_view client,
                              const trace::TlsTransaction& txn);

  /// Route a block of feed records (global start-time order, continuing
  /// the stream fed so far). Records are interned, staged per shard, and
  /// published to the mailboxes in bulk; every staged record is visible to
  /// its shard by the time the call returns. Produces byte-identical
  /// sessions and alert sequences to the same records fed one ingest()
  /// call at a time, for any grouping into batches.
  DROPPKT_NOALLOC void ingest_batch(std::span<const FeedRecord> batch);

  /// Close all mailboxes, drain them, flush every shard's monitor and join
  /// the workers. Idempotent; called by the destructor if needed. After
  /// finish(), ingest() must not be called again.
  void finish();

  std::size_t num_shards() const { return shards_.size(); }

  /// Which shard a client's records are routed to.
  std::size_t shard_of(std::string_view client) const;

  /// Point-in-time statistics; safe to call while ingesting. A view over
  /// the telemetry registry plus the live queue/pool sources (which
  /// refresh_gauges() republishes as gauges first).
  EngineStatsSnapshot stats() const;

  /// The registry holding the engine's (and its alert sink's) metrics —
  /// the one passed in EngineConfig::registry, or the engine-owned one.
  /// Interval consumers (telemetry::IntervalStreamer, dashboards) sample
  /// this.
  telemetry::MetricRegistry& registry() const { return *registry_; }

  /// Republish the registry gauges whose sources of truth live outside it
  /// (queue depth / high water / dropped, interned pool sizes). stats()
  /// calls this; interval samplers should too, just before sampling.
  /// Concurrent callers race benignly: every store publishes a valid
  /// recent reading of a monotone or instantaneous source.
  void refresh_gauges() const;

  /// Total sessions reported across all shards so far.
  std::uint64_t sessions_reported() const;

  /// Total in-flight (provisional) estimates reported across all shards.
  std::uint64_t provisionals_reported() const;

 private:
  /// Fixed-size POD mailbox message: 4-byte interned refs instead of
  /// owning strings, so queue transfer never touches the allocator and a
  /// dropped (kDropOldest) message is discarded for free.
  struct Msg {
    enum class Kind : std::uint8_t { kRecord, kWatermark };
    Kind kind = Kind::kRecord;
    util::StringPool::Ref client_ref = 0;  // unused for watermarks
    core::TlsRecord rec;  // for watermarks only rec.start_s is used
    /// Set only on latency-sampled records (time_point{} = unsampled).
    std::chrono::steady_clock::time_point enqueue_tp{};
  };

  struct Shard {
    Shard(std::size_t cap, util::BackpressurePolicy policy)
        : queue(cap, policy) {}
    util::SpscQueue<Msg> queue;
    /// Registry-backed instruments ("engine.shard<i>.*"); see
    /// ShardMetrics for the per-field writer contract.
    ShardMetrics metrics;
    /// Shard-local interning pools: written only by the ingest thread,
    /// resolved by this shard's worker for refs it received through the
    /// mailbox (the queue's release/acquire pair publishes the entries).
    util::StringPool clients;
    util::StringPool snis;
    /// ingest_batch staging (ingest thread only); capacity reused.
    std::vector<Msg> staging;
    /// Latency-sampling phase (ingest thread only).
    std::size_t stamp_phase = 0;
    std::unique_ptr<core::StreamingMonitor> monitor;
    std::thread worker;
    std::size_t index = 0;
    /// Set by the shard's own worker just before the shutdown
    /// monitor->finish() flush; read only from monitor callbacks on that
    /// same thread, so no atomics needed. Lets the alert sink distinguish
    /// feed-delimited sessions from force-flushed ones.
    bool draining = false;
  };

  /// Shard drain loop; allocation-free after its one-time drain-buffer
  /// setup (the per-record work is monitor calls on POD messages).
  DROPPKT_NOALLOC void worker_loop(Shard& shard);
  /// Build the POD message for one record on shard `sh` (interning).
  DROPPKT_NOALLOC Msg make_record_msg(Shard& sh, std::string_view client,
                                      const trace::TlsTransaction& txn);
  /// Broadcast a low watermark when the feed time calls for one. Flushes
  /// all staging first so every queue sees records-before-watermark in
  /// feed order — the invariant batching must not disturb.
  DROPPKT_NOALLOC void maybe_broadcast_watermark(double start_s);
  DROPPKT_NOALLOC void flush_shard(Shard& sh);
  DROPPKT_NOALLOC void flush_all_staging();
  /// Register shard `sh`'s instruments in the registry (setup phase).
  void register_shard_metrics(Shard& sh);

  const core::QoeEstimator* estimator_;
  /// The sink mutex serializes cross-shard sink invocations; the sink
  /// callables are set once at construction and guarded so the analysis
  /// proves no worker invokes them without holding it.
  util::Mutex sink_mutex_;
  SessionSink sink_ DROPPKT_GUARDED_BY(sink_mutex_);
  ProvisionalSink provisional_sink_ DROPPKT_GUARDED_BY(sink_mutex_);
  EngineConfig config_;
  /// Engine-owned registry when EngineConfig::registry is null.
  std::unique_ptr<telemetry::MetricRegistry> owned_registry_;
  telemetry::MetricRegistry* registry_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  double last_watermark_s_ = 0.0;
  bool saw_record_ = false;
  bool finished_ = false;
};

}  // namespace droppkt::engine
