#include "engine/feed.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "core/dataset_builder.hpp"
#include "has/player.hpp"
#include "has/video_catalog.hpp"
#include "net/link_model.hpp"
#include "net/trace_generator.hpp"
#include "trace/connection_manager.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::engine {

void sort_feed(Feed& feed) {
  std::stable_sort(feed.begin(), feed.end(),
                   [](const FeedRecord& a, const FeedRecord& b) {
                     return a.txn.start_s < b.txn.start_s;
                   });
}

namespace {

// A proxy export line is a few hundred bytes; a megabyte "line" is either
// corruption or hostile input, and capping it bounds parser allocations.
constexpr std::size_t kMaxLineBytes = 1 << 20;
constexpr std::size_t kMaxFieldBytes = 64 * 1024;

[[noreturn]] void feed_fail(const std::string& what) {
  throw ParseError("parse_feed_line: " + what);
}

double parse_finite(std::string_view field, const char* what) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(field.data(),
                                         field.data() + field.size(), v);
  if (ec != std::errc() || ptr != field.data() + field.size() ||
      !std::isfinite(v)) {
    feed_fail(std::string(what) + " is not a finite number: '" +
              std::string(field) + "'");
  }
  return v;
}

std::uint64_t parse_count(std::string_view field, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(field.data(),
                                         field.data() + field.size(), v);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    feed_fail(std::string(what) + " is not a non-negative integer: '" +
              std::string(field) + "'");
  }
  return v;
}

}  // namespace

void write_feed_line(const FeedRecord& record, std::ostream& os) {
  DROPPKT_EXPECT(
      record.client.find_first_of("\t\n\r") == std::string::npos &&
          record.txn.sni.find_first_of("\t\n\r") == std::string::npos,
      "write_feed_line: client/sni must not contain tab/newline/CR");
  const auto old_prec =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << record.client << '\t' << record.txn.start_s << '\t' << record.txn.end_s
     << '\t' << record.txn.ul_bytes << '\t' << record.txn.dl_bytes << '\t'
     << record.txn.http_count << '\t' << record.txn.sni << '\n';
  os.precision(old_prec);
}

void write_feed(const Feed& feed, std::ostream& os) {
  for (const auto& r : feed) write_feed_line(r, os);
}

FeedRecord parse_feed_line(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.size() > kMaxLineBytes) feed_fail("line exceeds the size limit");
  // After stripping the CRLF terminator no carriage return may remain;
  // allowing one would make write_feed_line(parse_feed_line(x)) lossy.
  if (line.find('\r') != std::string_view::npos) {
    feed_fail("stray carriage return inside line");
  }

  std::array<std::string_view, 7> fields;
  std::size_t n_fields = 0;
  while (true) {
    const std::size_t tab = line.find('\t');
    const std::string_view field = line.substr(0, tab);
    if (n_fields == fields.size()) feed_fail("too many fields");
    fields[n_fields++] = field;
    if (tab == std::string_view::npos) break;
    line.remove_prefix(tab + 1);
  }
  if (n_fields != fields.size()) {
    feed_fail("expected 7 tab-separated fields, got " +
              std::to_string(n_fields));
  }

  FeedRecord r;
  if (fields[0].empty()) feed_fail("empty client id");
  if (fields[0].size() > kMaxFieldBytes || fields[6].size() > kMaxFieldBytes) {
    feed_fail("client/sni field exceeds the size limit");
  }
  r.client = std::string(fields[0]);
  r.txn.start_s = parse_finite(fields[1], "start_s");
  r.txn.end_s = parse_finite(fields[2], "end_s");
  r.txn.ul_bytes = parse_finite(fields[3], "ul_bytes");
  r.txn.dl_bytes = parse_finite(fields[4], "dl_bytes");
  const std::uint64_t http = parse_count(fields[5], "http_count");
  r.txn.http_count = static_cast<std::size_t>(http);
  r.txn.sni = std::string(fields[6]);
  if (r.txn.end_s < r.txn.start_s) feed_fail("transaction end precedes start");
  if (r.txn.ul_bytes < 0.0 || r.txn.dl_bytes < 0.0) {
    feed_fail("negative byte counts");
  }
  return r;
}

Feed read_feed(std::istream& is) {
  Feed feed;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    try {
      feed.push_back(parse_feed_line(line));
    } catch (const ParseError& e) {
      throw ParseError("read_feed: line " + std::to_string(line_no) + ": " +
                       e.what());
    }
  }
  return feed;
}

Feed simulated_feed(const has::ServiceProfile& svc, std::size_t num_clients,
                    std::size_t sessions_per_client, std::uint64_t seed,
                    std::size_t* true_sessions) {
  Feed feed;
  std::size_t truth = 0;
  for (std::size_t c = 0; c < num_clients; ++c) {
    const auto stream = core::build_back_to_back(
        svc, sessions_per_client, seed + 7919 * c);
    truth += stream.num_sessions;
    const std::string client = "client-" + std::to_string(c);
    // Stagger subscribers so the interleaving is non-trivial but
    // deterministic.
    const double offset = 37.0 * static_cast<double>(c);
    for (const auto& t : stream.merged) {
      FeedRecord r;
      r.client = client;
      r.txn = t;
      r.txn.start_s += offset;
      r.txn.end_s += offset;
      feed.push_back(std::move(r));
    }
  }
  sort_feed(feed);
  if (true_sessions != nullptr) *true_sessions = truth;
  return feed;
}

namespace {

/// Simulate `n` sessions over an LTE link with `congestion` of the
/// bandwidth removed, times normalized so each log starts at 0.
std::vector<trace::TlsLog> session_pool(const has::ServiceProfile& svc,
                                        std::size_t n, double congestion,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  net::TraceGenerator gen(rng());
  const auto catalog = has::VideoCatalog::generate(svc.name, 20, rng());
  const has::PlayerSimulator player;
  std::vector<trace::TlsLog> pool;
  pool.reserve(n);
  while (pool.size() < n) {
    auto bw = gen.generate(net::Environment::kLte, 600.0);
    std::vector<net::BandwidthSample> squeezed;
    squeezed.reserve(bw.samples().size());
    for (const auto& s : bw.samples()) {
      squeezed.push_back({s.t_s, s.kbps * (1.0 - congestion)});
    }
    const net::BandwidthTrace trace(std::move(squeezed), bw.duration_s(),
                                    net::Environment::kLte);
    const net::LinkModel link(trace);
    auto playback = player.play(svc, catalog.sample(rng), link,
                                rng.uniform(60.0, 300.0), rng);
    const trace::ConnectionManager conns(svc.connections, rng);
    trace::TlsLog log = conns.collect(playback.http, rng);
    if (log.size() < 3) continue;  // too sparse to survive min_transactions
    double t0 = log.front().start_s;
    for (const auto& t : log) t0 = std::min(t0, t.start_s);
    for (auto& t : log) {
      t.start_s -= t0;
      t.end_s -= t0;
    }
    pool.push_back(std::move(log));
  }
  return pool;
}

}  // namespace

Feed incident_feed(const has::ServiceProfile& svc,
                   const IncidentFeedConfig& config,
                   IncidentGroundTruth* truth) {
  DROPPKT_EXPECT(config.num_locations >= 1 &&
                     config.degraded_locations <= config.num_locations,
                 "incident_feed: degraded_locations must be <= num_locations");
  DROPPKT_EXPECT(config.congestion > 0.0 && config.congestion < 1.0,
                 "incident_feed: congestion must be in (0,1)");
  DROPPKT_EXPECT(config.pool_sessions >= 1,
                 "incident_feed: need at least one pool session");

  const auto healthy_pool =
      session_pool(svc, config.pool_sessions, 0.05, config.seed);
  const auto degraded_pool =
      session_pool(svc, config.pool_sessions, config.congestion,
                   config.seed ^ 0xdeadULL);

  IncidentGroundTruth gt;
  gt.incident_start_s = config.incident_start_s;
  const std::size_t first_degraded =
      config.num_locations - config.degraded_locations;
  std::vector<std::string> locations;
  for (std::size_t l = 0; l < config.num_locations; ++l) {
    const bool degraded = l >= first_degraded;
    // Healthy cells "cell-hN", degraded "cell-dN": self-describing output
    // in examples/benches, invisible to the pipeline (any names work).
    const std::string name =
        (degraded ? "cell-d" : "cell-h") +
        std::to_string(degraded ? l - first_degraded : l);
    locations.push_back(name);
    (degraded ? gt.degraded_locations : gt.healthy_locations).push_back(name);
  }

  util::Rng rng(config.seed ^ 0x5ca1edULL);
  Feed feed;
  std::size_t client_idx = 0;
  for (std::size_t l = 0; l < config.num_locations; ++l) {
    const bool loc_degraded = l >= first_degraded;
    for (std::size_t c = 0; c < config.clients_per_location; ++c) {
      const std::string client =
          locations[l] + "/sub-" + std::to_string(c);
      double t = config.client_stagger_s * static_cast<double>(client_idx++);
      for (std::size_t s = 0; s < config.sessions_per_client; ++s) {
        const bool degraded =
            loc_degraded && t >= config.incident_start_s;
        const auto& pool = degraded ? degraded_pool : healthy_pool;
        const auto& log = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
        ScheduledSession sched;
        sched.client = client;
        sched.location = locations[l];
        sched.start_s = t;
        sched.degraded = degraded;
        double last_end = t;
        for (const auto& txn : log) {
          FeedRecord r;
          r.client = client;
          r.txn = txn;
          r.txn.start_s += t;
          r.txn.end_s += t;
          last_end = std::max(last_end, r.txn.end_s);
          feed.push_back(std::move(r));
        }
        sched.end_s = last_end;
        gt.sessions.push_back(std::move(sched));
        t = last_end + config.session_gap_s + rng.uniform(0.0, 10.0);
      }
    }
  }
  sort_feed(feed);
  if (truth != nullptr) *truth = gt;
  return feed;
}

Feed synthetic_feed(const SynthFeedConfig& config) {
  util::Rng rng(config.seed);
  Feed feed;
  feed.reserve(config.num_clients * config.sessions_per_client *
               config.txns_per_session);
  // A shared CDN pool; each session draws a mostly-fresh subset, which is
  // what the burst+fresh-server delimiter keys on.
  constexpr int kPoolSize = 48;
  for (std::size_t c = 0; c < config.num_clients; ++c) {
    const std::string client = "sub-" + std::to_string(c);
    double t = rng.uniform(0.0, config.horizon_s);
    for (std::size_t s = 0; s < config.sessions_per_client; ++s) {
      const int pool_base = static_cast<int>(rng.uniform_int(0, kPoolSize - 1));
      for (std::size_t k = 0; k < config.txns_per_session; ++k) {
        FeedRecord r;
        r.client = client;
        // Session open: a burst of connections within ~1 s to fresh
        // servers; afterwards, chunk fetches every few seconds reusing a
        // small server set.
        if (k < 4) {
          r.txn.start_s = t + rng.uniform(0.0, 1.0);
          r.txn.sni = "cdn" + std::to_string((pool_base + static_cast<int>(k)) %
                                             kPoolSize) +
                      ".example";
        } else {
          r.txn.start_s = t + 1.0 + 2.5 * static_cast<double>(k - 4) +
                          rng.uniform(0.0, 1.5);
          r.txn.sni = "cdn" +
                      std::to_string((pool_base + static_cast<int>(k) % 3) %
                                     kPoolSize) +
                      ".example";
        }
        r.txn.end_s = r.txn.start_s + rng.uniform(2.0, 12.0);
        r.txn.ul_bytes = rng.lognormal(6.0, 0.8);
        r.txn.dl_bytes = rng.lognormal(13.5, 1.2);
        r.txn.http_count = static_cast<std::size_t>(rng.uniform_int(1, 9));
        feed.push_back(std::move(r));
      }
      t += 1.0 + 2.5 * static_cast<double>(config.txns_per_session) +
           config.session_gap_s;
    }
  }
  sort_feed(feed);
  return feed;
}

}  // namespace droppkt::engine
