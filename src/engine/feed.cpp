#include "engine/feed.hpp"

#include <algorithm>

#include "core/dataset_builder.hpp"
#include "util/rng.hpp"

namespace droppkt::engine {

void sort_feed(Feed& feed) {
  std::stable_sort(feed.begin(), feed.end(),
                   [](const FeedRecord& a, const FeedRecord& b) {
                     return a.txn.start_s < b.txn.start_s;
                   });
}

Feed simulated_feed(const has::ServiceProfile& svc, std::size_t num_clients,
                    std::size_t sessions_per_client, std::uint64_t seed,
                    std::size_t* true_sessions) {
  Feed feed;
  std::size_t truth = 0;
  for (std::size_t c = 0; c < num_clients; ++c) {
    const auto stream = core::build_back_to_back(
        svc, sessions_per_client, seed + 7919 * c);
    truth += stream.num_sessions;
    const std::string client = "client-" + std::to_string(c);
    // Stagger subscribers so the interleaving is non-trivial but
    // deterministic.
    const double offset = 37.0 * static_cast<double>(c);
    for (const auto& t : stream.merged) {
      FeedRecord r;
      r.client = client;
      r.txn = t;
      r.txn.start_s += offset;
      r.txn.end_s += offset;
      feed.push_back(std::move(r));
    }
  }
  sort_feed(feed);
  if (true_sessions != nullptr) *true_sessions = truth;
  return feed;
}

Feed synthetic_feed(const SynthFeedConfig& config) {
  util::Rng rng(config.seed);
  Feed feed;
  feed.reserve(config.num_clients * config.sessions_per_client *
               config.txns_per_session);
  // A shared CDN pool; each session draws a mostly-fresh subset, which is
  // what the burst+fresh-server delimiter keys on.
  constexpr int kPoolSize = 48;
  for (std::size_t c = 0; c < config.num_clients; ++c) {
    const std::string client = "sub-" + std::to_string(c);
    double t = rng.uniform(0.0, config.horizon_s);
    for (std::size_t s = 0; s < config.sessions_per_client; ++s) {
      const int pool_base = static_cast<int>(rng.uniform_int(0, kPoolSize - 1));
      for (std::size_t k = 0; k < config.txns_per_session; ++k) {
        FeedRecord r;
        r.client = client;
        // Session open: a burst of connections within ~1 s to fresh
        // servers; afterwards, chunk fetches every few seconds reusing a
        // small server set.
        if (k < 4) {
          r.txn.start_s = t + rng.uniform(0.0, 1.0);
          r.txn.sni = "cdn" + std::to_string((pool_base + static_cast<int>(k)) %
                                             kPoolSize) +
                      ".example";
        } else {
          r.txn.start_s = t + 1.0 + 2.5 * static_cast<double>(k - 4) +
                          rng.uniform(0.0, 1.5);
          r.txn.sni = "cdn" +
                      std::to_string((pool_base + static_cast<int>(k) % 3) %
                                     kPoolSize) +
                      ".example";
        }
        r.txn.end_s = r.txn.start_s + rng.uniform(2.0, 12.0);
        r.txn.ul_bytes = rng.lognormal(6.0, 0.8);
        r.txn.dl_bytes = rng.lognormal(13.5, 1.2);
        r.txn.http_count = static_cast<std::size_t>(rng.uniform_int(1, 9));
        feed.push_back(std::move(r));
      }
      t += 1.0 + 2.5 * static_cast<double>(config.txns_per_session) +
           config.session_gap_s;
    }
  }
  sort_feed(feed);
  return feed;
}

}  // namespace droppkt::engine
