// Synthetic bandwidth-trace generation.
//
// Substitutes for the public trace datasets the paper replays (FCC fixed
// broadband [2], Riiser et al. 3G [27], van der Hooft et al. LTE [32]).
// Each environment is modelled as a Markov-modulated process: a small set
// of regimes (good / degraded / outage) with exponential dwell times, and
// AR(1) noise around the regime level at 1 Hz. The per-trace base level is
// drawn log-normally so the pool's average-bandwidth CDF spans the
// 10^2..10^5 kbps range shown in the paper's Figure 3a.
#pragma once

#include <cstdint>
#include <vector>

#include "net/bandwidth_trace.hpp"
#include "util/rng.hpp"

namespace droppkt::net {

/// Tunables for one environment's Markov-modulated generator.
struct EnvironmentModel {
  double level_log_mean;    // ln(kbps) of the per-trace base level
  double level_log_sd;      // spread of the base level across traces
  double min_kbps;          // clamp for generated samples
  double max_kbps;
  double degraded_factor;   // regime level multiplier when degraded
  double outage_prob;       // probability a regime switch lands in outage
  double mean_dwell_s;      // mean regime dwell time
  double noise_sd_frac;     // AR(1) innovation stddev as fraction of level
  double ar_coeff;          // AR(1) coefficient in [0,1)
  // Optional second population of access links (e.g. DSL within the fixed
  // broadband corpus). Probability 0 disables it.
  double mode2_prob = 0.0;
  double mode2_log_mean = 0.0;
  double mode2_log_sd = 0.0;
};

/// Built-in model for an environment class.
const EnvironmentModel& environment_model(Environment env);

/// Generates bandwidth traces for the three environment classes.
class TraceGenerator {
 public:
  explicit TraceGenerator(std::uint64_t seed);

  /// One trace of the given environment and length (1 Hz samples).
  BandwidthTrace generate(Environment env, double duration_s);

 private:
  util::Rng rng_;
};

/// A fixed, seeded pool of traces representing the paper's replay corpus,
/// plus the session-duration distribution of Figure 3b (10..1200 s).
class TracePool {
 public:
  /// Generate `count` traces with the paper's environment mix.
  TracePool(std::size_t count, std::uint64_t seed);

  std::size_t size() const { return traces_.size(); }
  const BandwidthTrace& trace(std::size_t i) const;

  /// Uniformly sample a trace for a session.
  const BandwidthTrace& sample(util::Rng& rng) const;

  /// Sample an intended session duration (seconds) following the paper's
  /// histogram bins {0-1, 1-2, 2-5, 5-20 min}, bounded to [10, 1200] s.
  double sample_session_duration(util::Rng& rng) const;

  /// Average bandwidth of every trace in the pool (for the Fig. 3a CDF).
  std::vector<double> average_bandwidths() const;

 private:
  std::vector<BandwidthTrace> traces_;
};

}  // namespace droppkt::net
