#include "net/link_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::net {

LinkParams link_params_for(Environment env) {
  switch (env) {
    case Environment::kBroadband:
      return {.base_rtt_ms = 18.0, .rtt_jitter_ms = 5.0, .loss_rate = 0.001,
              .efficiency = 0.94};
    case Environment::kThreeG:
      return {.base_rtt_ms = 130.0, .rtt_jitter_ms = 50.0, .loss_rate = 0.012,
              .efficiency = 0.85};
    case Environment::kLte:
      return {.base_rtt_ms = 45.0, .rtt_jitter_ms = 18.0, .loss_rate = 0.004,
              .efficiency = 0.90};
  }
  return {};
}

LinkModel::LinkModel(const BandwidthTrace& trace, LinkParams params)
    : trace_(&trace), params_(params) {
  DROPPKT_EXPECT(params_.efficiency > 0.0 && params_.efficiency <= 1.0,
                 "LinkModel: efficiency must be in (0,1]");
  DROPPKT_EXPECT(params_.loss_rate >= 0.0 && params_.loss_rate < 0.5,
                 "LinkModel: loss rate must be in [0,0.5)");
}

LinkModel::LinkModel(const BandwidthTrace& trace)
    : LinkModel(trace, link_params_for(trace.environment())) {}

double LinkModel::sample_rtt_s(util::Rng& rng) const {
  const double jitter = rng.lognormal(0.0, 0.4) * params_.rtt_jitter_ms;
  return (params_.base_rtt_ms + jitter) / 1000.0;
}

TransferTiming LinkModel::transfer(double start_s, double request_bytes,
                                   double response_bytes, util::Rng& rng) const {
  DROPPKT_EXPECT(start_s >= 0.0, "transfer: start must be non-negative");
  DROPPKT_EXPECT(request_bytes >= 0.0 && response_bytes >= 0.0,
                 "transfer: byte counts must be non-negative");
  TransferTiming t;
  t.request_sent_s = start_s;
  t.rtt_s = sample_rtt_s(rng);

  // Uplink request is small; model it as one RTT to first response byte.
  t.response_start_s = start_s + t.rtt_s;

  // Slow-start ramp: short responses pay extra round trips before the
  // congestion window covers the object. IW10 with MSS 1448 -> ~14.5 KB
  // per initial round, doubling each round.
  constexpr double kInitWindowBytes = 10.0 * 1448.0;
  double ramp_rounds = 0.0;
  if (response_bytes > kInitWindowBytes) {
    ramp_rounds = std::min(5.0, std::log2(response_bytes / kInitWindowBytes));
  }
  const double ramp_delay = ramp_rounds * t.rtt_s * 0.5;

  // Loss inflates delivered bytes (retransmissions) and efficiency covers
  // header overhead; both reduce goodput relative to the trace's link rate.
  const double loss_inflation = 1.0 / (1.0 - params_.loss_rate);
  const double wire_bytes = response_bytes * loss_inflation / params_.efficiency;

  const double data_start = t.response_start_s + ramp_delay;
  t.response_end_s = trace_->transfer_end_time(data_start, wire_bytes);
  DROPPKT_ENSURE(t.response_end_s >= data_start,
                 "transfer: end time must not precede start");
  return t;
}

}  // namespace droppkt::net
