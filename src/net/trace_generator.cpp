#include "net/trace_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace droppkt::net {

const EnvironmentModel& environment_model(Environment env) {
  // Levels chosen so the pooled average-bandwidth CDF spans roughly
  // 10^2..10^5 kbps, as in the paper's Figure 3a: 3G traces populate the
  // low end (hundreds of kbps), broadband the middle, LTE the high tail.
  static const EnvironmentModel kBroadband{
      /*level_log_mean=*/std::log(11000.0), /*level_log_sd=*/0.8,
      /*min_kbps=*/200.0, /*max_kbps=*/120000.0,
      /*degraded_factor=*/0.35, /*outage_prob=*/0.02,
      /*mean_dwell_s=*/45.0, /*noise_sd_frac=*/0.08, /*ar_coeff=*/0.85,
      // DSL sub-population: the FCC corpus mixes cable/fiber with slower
      // DSL lines in the 1.5-4 Mbps band.
      /*mode2_prob=*/0.45, /*mode2_log_mean=*/std::log(2200.0),
      /*mode2_log_sd=*/0.50};
  static const EnvironmentModel kThreeG{
      /*level_log_mean=*/std::log(1600.0), /*level_log_sd=*/0.65,
      /*min_kbps=*/0.0, /*max_kbps=*/8000.0,
      /*degraded_factor=*/0.25, /*outage_prob=*/0.09,
      /*mean_dwell_s=*/15.0, /*noise_sd_frac=*/0.30, /*ar_coeff=*/0.7};
  static const EnvironmentModel kLte{
      /*level_log_mean=*/std::log(12000.0), /*level_log_sd=*/0.85,
      /*min_kbps=*/100.0, /*max_kbps=*/110000.0,
      /*degraded_factor=*/0.2, /*outage_prob=*/0.06,
      /*mean_dwell_s=*/10.0, /*noise_sd_frac=*/0.25, /*ar_coeff=*/0.75};
  switch (env) {
    case Environment::kBroadband: return kBroadband;
    case Environment::kThreeG: return kThreeG;
    case Environment::kLte: return kLte;
  }
  return kBroadband;
}

TraceGenerator::TraceGenerator(std::uint64_t seed) : rng_(seed) {}

BandwidthTrace TraceGenerator::generate(Environment env, double duration_s) {
  DROPPKT_EXPECT(duration_s >= 1.0, "TraceGenerator: duration must be >= 1 s");
  const EnvironmentModel& m = environment_model(env);

  const bool second_mode = m.mode2_prob > 0.0 && rng_.bernoulli(m.mode2_prob);
  const double base_level = std::clamp(
      second_mode ? rng_.lognormal(m.mode2_log_mean, m.mode2_log_sd)
                  : rng_.lognormal(m.level_log_mean, m.level_log_sd),
      m.min_kbps, m.max_kbps);

  enum class Regime { kGood, kDegraded, kOutage };
  Regime regime = Regime::kGood;
  double regime_until = rng_.exponential(1.0 / m.mean_dwell_s);
  double ar_state = 0.0;  // multiplicative noise in log space

  std::vector<BandwidthSample> samples;
  const auto n = static_cast<std::size_t>(std::ceil(duration_s));
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    if (t >= regime_until) {
      // Regime switch: outage with probability outage_prob, else the good
      // and degraded regimes alternate-ish via a fair pick.
      const double u = rng_.uniform01();
      if (u < m.outage_prob) {
        regime = Regime::kOutage;
        // Outages are short relative to the dwell time.
        regime_until = t + std::max(1.0, rng_.exponential(1.0 / (m.mean_dwell_s * 0.15)));
      } else {
        regime = rng_.bernoulli(0.65) ? Regime::kGood : Regime::kDegraded;
        regime_until = t + std::max(1.0, rng_.exponential(1.0 / m.mean_dwell_s));
      }
    }
    ar_state = m.ar_coeff * ar_state + rng_.normal(0.0, m.noise_sd_frac);
    double level = base_level * std::exp(ar_state);
    switch (regime) {
      case Regime::kGood: break;
      case Regime::kDegraded: level *= m.degraded_factor; break;
      case Regime::kOutage: level *= 0.01; break;
    }
    level = std::clamp(level, m.min_kbps, m.max_kbps);
    samples.push_back({t, level});
  }
  return BandwidthTrace(std::move(samples), static_cast<double>(n), env);
}

TracePool::TracePool(std::size_t count, std::uint64_t seed) {
  DROPPKT_EXPECT(count > 0, "TracePool: count must be positive");
  TraceGenerator gen(seed);
  util::Rng rng(seed ^ 0x7f4a7c15ULL);
  traces_.reserve(count);
  // Environment mix mirroring the paper's corpus: fixed broadband, 3G, LTE.
  const std::vector<double> weights{0.40, 0.30, 0.30};
  const Environment envs[] = {Environment::kBroadband, Environment::kThreeG,
                              Environment::kLte};
  for (std::size_t i = 0; i < count; ++i) {
    const Environment env = envs[rng.weighted_index(weights)];
    // Trace period: long enough that wrap-around is rare within a session.
    const double dur = rng.uniform(300.0, 900.0);
    traces_.push_back(gen.generate(env, dur));
  }
}

const BandwidthTrace& TracePool::trace(std::size_t i) const {
  DROPPKT_EXPECT(i < traces_.size(), "TracePool::trace: index out of range");
  return traces_[i];
}

const BandwidthTrace& TracePool::sample(util::Rng& rng) const {
  return traces_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(traces_.size()) - 1))];
}

double TracePool::sample_session_duration(util::Rng& rng) const {
  // Figure 3b histogram shape: bins in minutes with weights tuned to the
  // paper's plot (short sessions dominate, long tail to 20 min).
  struct Bin {
    double lo_s, hi_s, weight;
  };
  static const Bin kBins[] = {
      {15.0, 60.0, 0.28}, {60.0, 120.0, 0.24}, {120.0, 300.0, 0.28},
      {300.0, 1200.0, 0.20}};
  std::vector<double> w;
  for (const auto& b : kBins) w.push_back(b.weight);
  const Bin& bin = kBins[rng.weighted_index(w)];
  // Log-uniform within the bin so long bins are not dominated by their top.
  return std::exp(rng.uniform(std::log(bin.lo_s), std::log(bin.hi_s)));
}

std::vector<double> TracePool::average_bandwidths() const {
  std::vector<double> avgs;
  avgs.reserve(traces_.size());
  for (const auto& t : traces_) avgs.push_back(t.average_kbps());
  return avgs;
}

}  // namespace droppkt::net
