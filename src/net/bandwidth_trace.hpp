// Bandwidth traces: piecewise-constant available-bandwidth time series.
//
// These stand in for the public trace sets the paper replays (FCC fixed
// broadband, Riiser et al. 3G, van der Hooft et al. LTE). A trace wraps
// around when simulation time exceeds its length, matching how trace
// replay tools loop traces for long sessions.
#pragma once

#include <string>
#include <vector>

namespace droppkt::net {

/// One sample: available bandwidth `kbps` from `t_s` until the next sample.
struct BandwidthSample {
  double t_s = 0.0;
  double kbps = 0.0;
};

/// Environment class a trace was generated for (see TraceGenerator).
enum class Environment { kBroadband, kThreeG, kLte };

/// Human-readable environment name ("broadband", "3g", "lte").
std::string to_string(Environment env);

/// Piecewise-constant available bandwidth over time.
///
/// Invariants: at least one sample, first sample at t=0, samples strictly
/// increasing in time, all bandwidths >= 0, duration > last sample time.
class BandwidthTrace {
 public:
  /// Build from samples; validates the invariants above.
  BandwidthTrace(std::vector<BandwidthSample> samples, double duration_s,
                 Environment env = Environment::kBroadband);

  /// Convenience: constant-bandwidth trace.
  static BandwidthTrace constant(double kbps, double duration_s);

  double duration_s() const { return duration_s_; }
  Environment environment() const { return env_; }
  const std::vector<BandwidthSample>& samples() const { return samples_; }

  /// Bandwidth at absolute time t (wraps modulo duration). kbps.
  double bandwidth_at(double t_s) const;

  /// Time-average bandwidth over one full trace period. kbps.
  double average_kbps() const;

  /// Bytes deliverable at full link rate in [t0, t1] (t1 >= t0).
  double capacity_bytes(double t0_s, double t1_s) const;

  /// Earliest time at which `bytes` can be delivered starting at `start_s`
  /// at full link rate. Returns +inf if the trace has zero capacity.
  double transfer_end_time(double start_s, double bytes) const;

 private:
  /// Index of the sample active at wrapped time t.
  std::size_t index_at(double t_wrapped) const;

  std::vector<BandwidthSample> samples_;
  double duration_s_;
  Environment env_;
  double bytes_per_period_;  // cached full-period capacity
};

}  // namespace droppkt::net
