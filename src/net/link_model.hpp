// Link model: turns a bandwidth trace into request/transfer timing.
//
// The player simulator asks "if I request `bytes` at time t, when does the
// transfer finish?". The model accounts for request latency (RTT), a
// slow-start ramp for short transfers, protocol efficiency, and random
// loss (which both inflates transferred bytes via retransmission and is
// exported to the packet generator).
#pragma once

#include "net/bandwidth_trace.hpp"
#include "util/rng.hpp"

namespace droppkt::net {

/// Per-environment transport parameters.
struct LinkParams {
  double base_rtt_ms = 30.0;     // propagation + queueing baseline
  double rtt_jitter_ms = 8.0;    // lognormal-ish jitter around the base
  double loss_rate = 0.002;      // packet loss probability
  double efficiency = 0.92;      // goodput / link rate (header + pacing waste)
};

/// Built-in transport parameters for an environment class.
LinkParams link_params_for(Environment env);

/// Result of simulating one HTTP request/response exchange.
struct TransferTiming {
  double request_sent_s = 0.0;    // when the request left the client
  double response_start_s = 0.0;  // first response byte at the client
  double response_end_s = 0.0;    // last response byte at the client
  double rtt_s = 0.0;             // RTT sampled for this exchange
};

/// Deterministic-per-seed model of one client<->server path over a trace.
///
/// The trace is shared (not owned); callers guarantee it outlives the model.
class LinkModel {
 public:
  LinkModel(const BandwidthTrace& trace, LinkParams params);

  /// Convenience: parameters derived from the trace's environment.
  explicit LinkModel(const BandwidthTrace& trace);

  const BandwidthTrace& trace() const { return *trace_; }
  const LinkParams& params() const { return params_; }

  /// Sample an RTT for one exchange (seconds).
  double sample_rtt_s(util::Rng& rng) const;

  /// Simulate a request of `request_bytes` uplink at `start_s` answered by
  /// `response_bytes` downlink. Models request RTT, TCP-like slow start for
  /// small responses, loss-driven retransmission inflation and efficiency.
  TransferTiming transfer(double start_s, double request_bytes,
                          double response_bytes, util::Rng& rng) const;

 private:
  const BandwidthTrace* trace_;
  LinkParams params_;
};

}  // namespace droppkt::net
