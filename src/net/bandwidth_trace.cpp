#include "net/bandwidth_trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.hpp"

namespace droppkt::net {

std::string to_string(Environment env) {
  switch (env) {
    case Environment::kBroadband: return "broadband";
    case Environment::kThreeG: return "3g";
    case Environment::kLte: return "lte";
  }
  return "unknown";
}

BandwidthTrace::BandwidthTrace(std::vector<BandwidthSample> samples,
                               double duration_s, Environment env)
    : samples_(std::move(samples)), duration_s_(duration_s), env_(env) {
  DROPPKT_EXPECT(!samples_.empty(), "BandwidthTrace: need at least one sample");
  DROPPKT_EXPECT(samples_.front().t_s == 0.0,
                 "BandwidthTrace: first sample must be at t=0");
  DROPPKT_EXPECT(duration_s_ > samples_.back().t_s,
                 "BandwidthTrace: duration must exceed last sample time");
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    DROPPKT_EXPECT(samples_[i].kbps >= 0.0,
                   "BandwidthTrace: bandwidth must be non-negative");
    if (i > 0) {
      DROPPKT_EXPECT(samples_[i].t_s > samples_[i - 1].t_s,
                     "BandwidthTrace: sample times must be strictly increasing");
    }
  }
  bytes_per_period_ = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double end = (i + 1 < samples_.size()) ? samples_[i + 1].t_s : duration_s_;
    bytes_per_period_ += samples_[i].kbps * 1000.0 / 8.0 * (end - samples_[i].t_s);
  }
}

BandwidthTrace BandwidthTrace::constant(double kbps, double duration_s) {
  return BandwidthTrace({{0.0, kbps}}, duration_s);
}

std::size_t BandwidthTrace::index_at(double t_wrapped) const {
  // Last sample with t_s <= t_wrapped.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t_wrapped,
      [](double t, const BandwidthSample& s) { return t < s.t_s; });
  DROPPKT_ENSURE(it != samples_.begin(), "index_at: time before first sample");
  return static_cast<std::size_t>(std::distance(samples_.begin(), it)) - 1;
}

double BandwidthTrace::bandwidth_at(double t_s) const {
  DROPPKT_EXPECT(t_s >= 0.0, "bandwidth_at: time must be non-negative");
  const double t = std::fmod(t_s, duration_s_);
  return samples_[index_at(t)].kbps;
}

double BandwidthTrace::average_kbps() const {
  return bytes_per_period_ * 8.0 / 1000.0 / duration_s_;
}

double BandwidthTrace::capacity_bytes(double t0_s, double t1_s) const {
  DROPPKT_EXPECT(t0_s >= 0.0 && t1_s >= t0_s, "capacity_bytes: need 0 <= t0 <= t1");
  // Whole periods first, then walk the remainder segment by segment.
  // Advancing by segment *index* (not by repeated fmod) guarantees the
  // loop terminates even when t0 lands within rounding error of a segment
  // boundary.
  double bytes = 0.0;
  const double span = t1_s - t0_s;
  const double whole_periods = std::floor(span / duration_s_);
  bytes += whole_periods * bytes_per_period_;
  double t = t0_s + whole_periods * duration_s_;

  const double tw = std::fmod(t, duration_s_);
  std::size_t i = index_at(tw);
  // Absolute end time of the segment containing t.
  double seg_end_abs =
      t - tw + ((i + 1 < samples_.size()) ? samples_[i + 1].t_s : duration_s_);
  while (t < t1_s) {
    const double step_end = std::min(seg_end_abs, t1_s);
    bytes += samples_[i].kbps * 1000.0 / 8.0 * (step_end - t);
    t = step_end;
    if (t >= t1_s) break;
    // Advance to the next segment (wrapping to the next period).
    if (i + 1 < samples_.size()) {
      seg_end_abs +=
          ((i + 2 < samples_.size()) ? samples_[i + 2].t_s : duration_s_) -
          samples_[i + 1].t_s;
      ++i;
    } else {
      seg_end_abs += (samples_.size() > 1) ? samples_[1].t_s : duration_s_;
      i = 0;
    }
  }
  return bytes;
}

double BandwidthTrace::transfer_end_time(double start_s, double bytes) const {
  DROPPKT_EXPECT(start_s >= 0.0, "transfer_end_time: start must be non-negative");
  DROPPKT_EXPECT(bytes >= 0.0, "transfer_end_time: bytes must be non-negative");
  if (bytes == 0.0) return start_s;
  if (bytes_per_period_ <= 0.0) return std::numeric_limits<double>::infinity();
  double remaining = bytes;
  double t = start_s;
  // Skip whole periods.
  const double whole_periods = std::floor(remaining / bytes_per_period_);
  if (whole_periods >= 1.0) {
    // A whole period delivers bytes_per_period_ regardless of phase only if
    // we advance exactly one period from any offset; that holds because the
    // trace is periodic.
    remaining -= whole_periods * bytes_per_period_;
    t += whole_periods * duration_s_;
  }
  // Walk segments for the remainder, advancing by segment index so the
  // loop terminates even when `t` sits within rounding error of a
  // boundary (see capacity_bytes).
  const double tw = std::fmod(t, duration_s_);
  std::size_t i = index_at(tw);
  double seg_end_abs =
      t - tw + ((i + 1 < samples_.size()) ? samples_[i + 1].t_s : duration_s_);
  while (remaining > 1e-9) {
    const double seg_span = seg_end_abs - t;
    const double rate_bps = samples_[i].kbps * 1000.0 / 8.0;  // bytes/second
    const double seg_capacity = rate_bps * seg_span;
    if (seg_capacity >= remaining && rate_bps > 0.0) {
      return t + remaining / rate_bps;
    }
    remaining -= seg_capacity;
    t = seg_end_abs;
    if (i + 1 < samples_.size()) {
      seg_end_abs +=
          ((i + 2 < samples_.size()) ? samples_[i + 2].t_s : duration_s_) -
          samples_[i + 1].t_s;
      ++i;
    } else {
      seg_end_abs += (samples_.size() > 1) ? samples_[1].t_s : duration_s_;
      i = 0;
    }
  }
  return t;
}

}  // namespace droppkt::net
