// Extension bench (paper Section 4.3): impact of user interactions
// (pauses, forward seeks) on inference accuracy. The paper lists this as
// future work; here we measure it. Three conditions:
//   clean->clean       : the paper's setting (no interactions anywhere)
//   clean->interactive : model trained on clean sessions, deployed against
//                        users who pause and skip (distribution shift)
//   inter->interactive : model retrained on interactive sessions
#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "net/link_model.hpp"
#include "trace/connection_manager.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

core::LabeledDataset simulate(const has::ServiceProfile& svc, std::size_t n,
                              std::uint64_t seed,
                              const has::InteractionModel& interactions) {
  util::Rng master(seed);
  const net::TracePool pool(200, master());
  const auto catalog = has::VideoCatalog::generate(svc.name, 40, master());
  const has::PlayerSimulator player;
  core::LabeledDataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t session_seed = master();
    util::Rng rng(session_seed);
    const auto& bw = pool.sample(rng);
    const double watch = pool.sample_session_duration(rng);
    const net::LinkModel link(bw);
    auto playback =
        player.play(svc, catalog.sample(rng), link, watch, rng, interactions);
    const trace::ConnectionManager conns(svc.connections, rng);
    auto tls = conns.collect(playback.http, rng);
    core::LabeledSession s;
    s.labels = core::compute_labels(playback.ground_truth, svc);
    s.record = {.service = svc.name,
                .video_id = "v",
                .environment = bw.environment(),
                .trace_avg_kbps = bw.average_kbps(),
                .watch_duration_s = watch,
                .seed = session_seed,
                .ground_truth = std::move(playback.ground_truth),
                .http = std::move(playback.http),
                .tls = std::move(tls)};
    out.push_back(std::move(s));
  }
  return out;
}

double accuracy(const core::QoeEstimator& est, const core::LabeledDataset& ds) {
  std::size_t correct = 0;
  for (const auto& s : ds) {
    correct += est.predict(s.record.tls) == s.labels.combined;
  }
  return static_cast<double>(correct) / ds.size();
}

}  // namespace

int main() {
  bench::print_header("Extension - impact of user interactions",
                      "Section 4.3 limitation ('part of the future work')");

  const auto svc = has::svc1_profile();
  const has::InteractionModel clean{};
  const has::InteractionModel active{.pause_rate_per_min = 0.5,
                                     .pause_mean_s = 25.0,
                                     .seek_rate_per_min = 0.6,
                                     .seek_mean_s = 45.0};

  const auto train_clean = simulate(svc, 1200, 1, clean);
  const auto train_inter = simulate(svc, 1200, 2, active);
  const auto test_clean = simulate(svc, 600, 3, clean);
  const auto test_inter = simulate(svc, 600, 4, active);

  double pauses = 0.0, seeks = 0.0;
  for (const auto& s : test_inter) {
    pauses += static_cast<double>(s.record.ground_truth.pause_count);
    seeks += static_cast<double>(s.record.ground_truth.seek_count);
  }
  std::printf("interactive sessions average %.1f pauses and %.1f seeks\n\n",
              pauses / test_inter.size(), seeks / test_inter.size());

  core::QoeEstimator est_clean, est_inter;
  est_clean.train(train_clean);
  est_inter.train(train_inter);

  util::TextTable table({"train -> test", "accuracy"});
  table.add_row({"clean -> clean (paper setting)",
                 bench::pct0(accuracy(est_clean, test_clean))});
  table.add_row({"clean -> interactive (distribution shift)",
                 bench::pct0(accuracy(est_clean, test_inter))});
  table.add_row({"interactive -> interactive (retrained)",
                 bench::pct0(accuracy(est_inter, test_inter))});
  std::printf("%s\n", table.render().c_str());

  std::printf("expected shape: pauses stretch sessions (SES_DUR, IAT) and\n"
              "seeks discard buffered media, so a clean-trained model loses\n"
              "accuracy under interactions; retraining on interactive\n"
              "traffic recovers part of the loss.\n");
  return 0;
}
