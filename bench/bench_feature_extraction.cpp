// Feature-extraction engine benchmark: the incremental accumulator vs the
// batch extractor, plus the equivalence gates the refactor rests on.
//
// Not a paper figure: every layer that consumes the 38-feature vector —
// training, batch prediction, the streaming monitor's per-session (and
// now per-record provisional) classification, the early-detection bench —
// runs through TlsFeatureAccumulator since the batch extractor became a
// thin wrapper over it. This bench (a) gates the contracts that make that
// safe, exactly, with exit status: snapshots are bit-identical to batch
// extraction for any observation order, and snapshot_at(h) is
// bit-identical to truncate_tls_log + re-extraction; and (b) measures the
// payoff: one observe() pass + H snapshot_at() calls vs H rounds of
// truncate + extract.
//
// Usage:
//   bench_feature_extraction          full run, writes BENCH_features.json
//   bench_feature_extraction --smoke  small corpus, no JSON — CI runs the
//                                     equivalence gates under -O2 fast
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/feature_accumulator.hpp"
#include "core/tls_features.hpp"
#include "trace/records.hpp"
#include "util/rng.hpp"

namespace {

using droppkt::core::TlsFeatureAccumulator;
using droppkt::core::TlsFeatureConfig;
using droppkt::util::Rng;

/// Random proxy-shaped TLS log: bursts of overlapping transactions with
/// heavy-tailed sizes and occasional zero-duration / zero-upload edge
/// cases, so the gates exercise every special case in the feature math.
droppkt::trace::TlsLog random_log(Rng& rng, std::size_t n) {
  droppkt::trace::TlsLog log;
  log.reserve(n);
  double t = rng.uniform(0.0, 5.0);
  for (std::size_t i = 0; i < n; ++i) {
    droppkt::trace::TlsTransaction x;
    x.start_s = t;
    const double dur = rng.uniform01() < 0.05 ? 0.0 : rng.exponential(0.2);
    x.end_s = x.start_s + dur;
    x.dl_bytes = rng.uniform01() < 0.03 ? 0.0 : rng.exponential(1e-5);
    x.ul_bytes = rng.uniform01() < 0.10 ? 0.0 : rng.exponential(1e-3);
    log.push_back(x);
    t += rng.exponential(0.5);
  }
  return log;
}

void shuffle_log(droppkt::trace::TlsLog& log, Rng& rng) {
  for (std::size_t i = log.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
    std::swap(log[i - 1], log[j]);
  }
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  // memcmp, not ==: NaN-safe and catches -0.0 vs 0.0 drift.
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace droppkt;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t n_logs = smoke ? 60 : 400;
  const std::size_t max_txns = smoke ? 80 : 400;

  std::printf("== feature extraction: incremental accumulator vs batch ==\n");

  TlsFeatureConfig extended;
  extended.extended_stats = true;
  TlsFeatureConfig custom;
  custom.interval_ends_s = {10.0, 45.0, 90.0, 300.0};
  const TlsFeatureConfig configs[] = {TlsFeatureConfig{}, extended, custom};
  const char* config_names[] = {"default", "extended_stats", "custom_intervals"};
  const double horizons[] = {15.0, 30.0, 60.0, 120.0, 240.0};
  constexpr std::size_t kHorizons = sizeof(horizons) / sizeof(horizons[0]);

  // --- Equivalence gates (exact, byte-for-byte). ---
  Rng rng(20201204);
  std::size_t checked = 0, mismatches = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    const TlsFeatureConfig& config = configs[c];
    for (std::size_t i = 0; i < n_logs; ++i) {
      // Include the empty log as the first case of every config.
      auto log = random_log(
          rng, i == 0 ? 0 : 1 + static_cast<std::size_t>(
                                    rng.uniform_int(0, max_txns - 1)));
      const auto batch = core::extract_tls_features(log, config);

      // Gate 1: accumulator over a shuffled order == batch over log order.
      auto shuffled = log;
      shuffle_log(shuffled, rng);
      TlsFeatureAccumulator acc(config);
      for (const auto& t : shuffled) acc.observe(t);
      ++checked;
      if (!bitwise_equal(acc.snapshot(), batch)) {
        ++mismatches;
        std::printf("MISMATCH [%s] log %zu: shuffled-order snapshot != batch\n",
                    config_names[c], i);
      }

      // Gate 2: snapshot_at(h) == truncate + batch re-extraction.
      if (!log.empty()) {
        std::vector<double> at(acc.feature_count());
        for (const double h : horizons) {
          acc.snapshot_at(h, at);
          const auto truncated =
              core::extract_tls_features(core::truncate_tls_log(log, h),
                                         config);
          ++checked;
          if (!bitwise_equal(at, truncated)) {
            ++mismatches;
            std::printf(
                "MISMATCH [%s] log %zu: snapshot_at(%.0f) != truncate+extract\n",
                config_names[c], i, h);
          }
        }
      }
    }
  }
  std::printf("equivalence gates: %zu comparisons, %zu mismatches — %s\n",
              checked, mismatches, mismatches == 0 ? "OK" : "FAIL");

  // --- Throughput: early-detection access pattern (H horizon vectors per
  // session) on a fixed corpus. ---
  Rng corpus_rng(7);
  std::vector<trace::TlsLog> corpus;
  corpus.reserve(n_logs);
  std::size_t total_txns = 0;
  for (std::size_t i = 0; i < n_logs; ++i) {
    corpus.push_back(random_log(
        corpus_rng,
        1 + static_cast<std::size_t>(corpus_rng.uniform_int(0, max_txns - 1))));
    total_txns += corpus.back().size();
  }

  double sink = 0.0;  // defeat dead-code elimination

  const auto t_batch = std::chrono::steady_clock::now();
  for (const auto& log : corpus) {
    for (const double h : horizons) {
      const auto f = core::extract_tls_features(core::truncate_tls_log(log, h));
      sink += f[0];
    }
    sink += core::extract_tls_features(log)[0];
  }
  const double batch_s = seconds_since(t_batch);

  TlsFeatureAccumulator acc;
  std::vector<double> row(acc.feature_count());
  const auto t_inc = std::chrono::steady_clock::now();
  for (const auto& log : corpus) {
    acc.reset();
    for (const auto& t : log) acc.observe(t);
    for (const double h : horizons) {
      acc.snapshot_at(h, row);
      sink += row[0];
    }
    acc.snapshot_into(row);
    sink += row[0];
  }
  const double incremental_s = seconds_since(t_inc);

  const double per_session = static_cast<double>(kHorizons + 1);
  const double batch_vecs_s =
      static_cast<double>(corpus.size()) * per_session / batch_s;
  const double inc_vecs_s =
      static_cast<double>(corpus.size()) * per_session / incremental_s;
  std::printf(
      "corpus: %zu sessions, %zu transactions, %zu horizon vectors each\n",
      corpus.size(), total_txns, kHorizons + 1);
  std::printf("batch (truncate + re-extract): %8.0f feature vectors/s\n",
              batch_vecs_s);
  std::printf("incremental (one pass):        %8.0f feature vectors/s\n",
              inc_vecs_s);
  std::printf("speedup: %.2fx   (checksum %g)\n", batch_s / incremental_s,
              sink);

  if (!smoke) {
    std::ofstream json("BENCH_features.json");
    json << "{\n  \"bench\": \"feature_extraction\",\n";
    json << "  \"corpus\": {\"sessions\": " << corpus.size()
         << ", \"transactions\": " << total_txns
         << ", \"vectors_per_session\": " << (kHorizons + 1) << "},\n";
    json << "  \"equivalence\": {\"comparisons\": " << checked
         << ", \"mismatches\": " << mismatches << "},\n";
    json << "  \"batch_per_horizon\": {\"seconds\": " << batch_s
         << ", \"vectors_per_s\": " << batch_vecs_s << "},\n";
    json << "  \"incremental\": {\"seconds\": " << incremental_s
         << ", \"vectors_per_s\": " << inc_vecs_s << "},\n";
    json << "  \"speedup\": " << batch_s / incremental_s << "\n";
    json << "}\n";
    std::printf("wrote BENCH_features.json\n");
  }

  return mismatches == 0 ? 0 : 1;
}
