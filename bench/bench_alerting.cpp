// Detection latency vs false-alarm rate for the streaming alerting
// subsystem (src/alert/), against ground-truth incident injection.
//
// Not a paper figure: this measures the operator product the paper's
// introduction motivates ("identify parts of the network that
// underperform in a lightweight manner") built on top of the provisional
// in-flight estimates. An incident feed degrades a known subset of
// locations at a known feed time; the full engine + alert pipeline runs
// over it at several hysteresis/confidence settings, and we score:
//
//   - location detection latency: seconds from incident start to the
//     first raised alert on each degraded location, and how many degraded
//     sessions had begun by then ("sessions into the incident");
//   - false alarms: raise events on locations that were never degraded;
//   - session verdict lead: how many seconds before a session's end its
//     stable (hysteresis-filtered) verdict first appeared.
//
// A determinism gate then replays one setting at 1/2/4 engine shards and
// requires the alert event sequence — every id, location, time and
// evidence float — to be byte-identical; any divergence exits non-zero.
//
//   bench_alerting           full sweep, writes BENCH_alerting.json
//   bench_alerting --smoke   small feed, no JSON — CI runs the same
//                            pipeline + determinism gate in seconds
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "alert/pipeline.hpp"
#include "bench_common.hpp"
#include "core/dataset_builder.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"

namespace {

using namespace droppkt;

struct Setting {
  std::size_t hysteresis_k = 3;
  double min_confidence = 0.5;
};

struct RunResult {
  // Canonical serialization of the full alert + transition sequence (the
  // determinism gate compares these byte-for-byte).
  std::string canonical;
  std::vector<alert::AlertEvent> log;
  engine::AlertCounts counts;
  /// First raise time per location, from the log.
  std::map<std::string, double> first_raise_s;
  /// (transition time, session end) pairs for matched first verdicts.
  double verdict_lead_sum_s = 0.0;
  std::size_t verdict_lead_n = 0;
};

alert::AlertPipelineConfig pipeline_config(const Setting& s) {
  alert::AlertPipelineConfig cfg;
  cfg.filter.hysteresis_k = s.hysteresis_k;
  cfg.filter.min_confidence = s.min_confidence;
  cfg.detector.window = alert::WindowKind::kDecay;
  cfg.detector.half_life_s = 600.0;
  cfg.detector.alert_rate = 0.5;
  cfg.detector.min_effective_sessions = 5.0;
  cfg.manager.defaults.raise_rate = 0.5;
  cfg.manager.defaults.clear_rate = 0.35;
  cfg.manager.defaults.clear_cooldown_s = 300.0;
  return cfg;
}

RunResult run_once(const core::QoeEstimator& estimator,
                   const engine::Feed& feed,
                   const engine::IncidentGroundTruth& truth,
                   const Setting& setting, std::size_t shards) {
  // Scheduled sessions per client, feed order, for verdict-lead matching.
  std::map<std::string, std::vector<const engine::ScheduledSession*>>
      by_client;
  for (const auto& s : truth.sessions) by_client[s.client].push_back(&s);

  RunResult res;
  std::string canon;
  alert::AlertPipelineConfig pcfg = pipeline_config(setting);
  std::map<std::string, double> first_transition_s;  // client -> time
  pcfg.on_transition = [&](const alert::VerdictTransition& t,
                           const std::string& location) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "T|%s|%s|%d|%d|%.17g|%.17g|%d\n",
                  t.client.c_str(), location.c_str(), t.from_class,
                  t.to_class, t.time_s, t.prev_time_s,
                  t.final_verdict ? 1 : 0);
    canon += buf;
    first_transition_s.try_emplace(t.client, t.time_s);
  };
  alert::AlertPipeline pipeline(pcfg);

  engine::EngineConfig ecfg;
  ecfg.num_shards = shards;
  ecfg.monitor.client_idle_timeout_s = 120.0;
  ecfg.monitor.provisional_every = 4;
  ecfg.watermark_interval_s = 15.0;
  ecfg.alert_sink = &pipeline;
  engine::IngestEngine eng(estimator, [](const core::MonitoredSessionView&) {},
                           ecfg);
  for (const auto& r : feed) eng.ingest(r.client, r.txn);
  eng.finish();

  res.log = pipeline.log_snapshot();
  res.counts = pipeline.counts();
  for (const auto& ev : res.log) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "A|%llu|%d|%s|%.17g|%.17g|%.17g|%.17g\n",
                  static_cast<unsigned long long>(ev.id),
                  ev.kind == alert::AlertEvent::Kind::kRaised ? 1 : 0,
                  ev.location.c_str(), ev.time_s, ev.rate_low, ev.rate_high,
                  ev.effective_sessions);
    canon += buf;
    if (ev.kind == alert::AlertEvent::Kind::kRaised) {
      res.first_raise_s.try_emplace(ev.location, ev.time_s);
    }
  }
  res.canonical = std::move(canon);

  // Session verdict lead: a client's first stable verdict vs the end of
  // the scheduled session that was playing at that moment.
  for (const auto& [client, t] : first_transition_s) {
    const auto it = by_client.find(client);
    if (it == by_client.end()) continue;
    for (const auto* sched : it->second) {
      if (t >= sched->start_s && t <= sched->end_s) {
        res.verdict_lead_sum_s += sched->end_s - t;
        ++res.verdict_lead_n;
        break;
      }
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_header(
      "Streaming alerting: detection latency vs false alarms",
      "operator use case (Section 1: lightweight network monitoring); "
      "no paper figure");

  core::DatasetConfig dcfg;
  dcfg.num_sessions = smoke ? 120 : 300;
  dcfg.seed = bench::kBenchSeed;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), dcfg));

  engine::IncidentFeedConfig fcfg;
  fcfg.num_locations = smoke ? 6 : 12;
  fcfg.degraded_locations = smoke ? 2 : 3;
  fcfg.clients_per_location = 6;
  fcfg.sessions_per_client = 3;
  fcfg.pool_sessions = smoke ? 10 : 24;
  fcfg.incident_start_s = smoke ? 600.0 : 1200.0;
  fcfg.seed = bench::kBenchSeed;
  engine::IncidentGroundTruth truth;
  const engine::Feed feed = engine::incident_feed(has::svc1_profile(), fcfg,
                                                  &truth);
  std::size_t degraded_sessions = 0;
  for (const auto& s : truth.sessions) degraded_sessions += s.degraded;
  std::printf("incident feed: %zu records, %zu locations (%zu degraded at "
              "t=%.0fs), %zu sessions (%zu degraded)\n\n",
              feed.size(), fcfg.num_locations, fcfg.degraded_locations,
              truth.incident_start_s, truth.sessions.size(),
              degraded_sessions);

  const std::vector<Setting> settings = {
      {1, 0.0}, {2, 0.45}, {3, 0.55}, {4, 0.65}};

  struct Row {
    Setting setting;
    std::size_t detected = 0;
    double latency_sum_s = 0.0;
    double sessions_into_sum = 0.0;
    std::size_t false_raises = 0;
    RunResult res;
  };
  std::vector<Row> rows;
  for (const auto& s : settings) {
    Row row;
    row.setting = s;
    row.res = run_once(estimator, feed, truth, s, /*shards=*/2);
    for (const auto& loc : truth.degraded_locations) {
      const auto it = row.res.first_raise_s.find(loc);
      if (it == row.res.first_raise_s.end()) continue;
      ++row.detected;
      row.latency_sum_s += it->second - truth.incident_start_s;
      std::size_t into = 0;
      for (const auto& sess : truth.sessions) {
        if (sess.degraded && sess.location == loc &&
            sess.start_s <= it->second) {
          ++into;
        }
      }
      row.sessions_into_sum += static_cast<double>(into);
    }
    for (const auto& ev : row.res.log) {
      if (ev.kind != alert::AlertEvent::Kind::kRaised) continue;
      bool healthy = false;
      for (const auto& loc : truth.healthy_locations) {
        if (ev.location == loc) healthy = true;
      }
      if (healthy) ++row.false_raises;
    }
    rows.push_back(std::move(row));
  }

  std::printf("k   conf   detected   latency(s)   sessions-in   "
              "false-raises   transitions   suppressed\n");
  for (const auto& r : rows) {
    const double n = static_cast<double>(r.detected ? r.detected : 1);
    std::printf("%zu  %4.2f   %4zu/%zu   %10.1f   %11.1f   %12zu   "
                "%11llu   %10llu\n",
                r.setting.hysteresis_k, r.setting.min_confidence, r.detected,
                truth.degraded_locations.size(), r.latency_sum_s / n,
                r.sessions_into_sum / n, r.false_raises,
                static_cast<unsigned long long>(r.res.counts.transitions),
                static_cast<unsigned long long>(r.res.counts.suppressed));
  }

  // ---- Determinism gate: the alert sequence must be byte-identical for
  // any shard count. ----
  const Setting gate = settings[2];
  bool identical = true;
  const RunResult ref = run_once(estimator, feed, truth, gate, 1);
  for (const std::size_t shards : {2u, 4u}) {
    const RunResult got = run_once(estimator, feed, truth, gate, shards);
    if (got.canonical != ref.canonical) {
      identical = false;
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: %zu-shard alert sequence differs "
                   "from 1-shard\n",
                   shards);
      // First differing line, for debugging.
      std::size_t i = 0;
      while (i < ref.canonical.size() && i < got.canonical.size() &&
             ref.canonical[i] == got.canonical[i]) {
        ++i;
      }
      std::fprintf(stderr, "  first divergence at byte %zu\n", i);
    }
  }
  std::printf("\ndeterminism gate (k=%zu conf=%.2f, shards 1/2/4): %s "
              "(%zu alert events, %llu transitions)\n",
              gate.hysteresis_k, gate.min_confidence,
              identical ? "IDENTICAL" : "DIVERGED", ref.log.size(),
              static_cast<unsigned long long>(ref.counts.transitions));
  if (!identical) return 1;

  if (!smoke) {
    std::ofstream json("BENCH_alerting.json");
    json << "{\n  \"bench\": \"alerting\",\n";
    json << "  \"records\": " << feed.size() << ",\n";
    json << "  \"locations\": " << fcfg.num_locations << ",\n";
    json << "  \"degraded_locations\": " << truth.degraded_locations.size()
         << ",\n";
    json << "  \"incident_start_s\": " << truth.incident_start_s << ",\n";
    json << "  \"sessions\": " << truth.sessions.size() << ",\n";
    json << "  \"degraded_sessions\": " << degraded_sessions << ",\n";
    json << "  \"settings\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      const double n = static_cast<double>(r.detected ? r.detected : 1);
      const double lead =
          r.res.verdict_lead_n
              ? r.res.verdict_lead_sum_s /
                    static_cast<double>(r.res.verdict_lead_n)
              : 0.0;
      json << "    {\"hysteresis_k\": " << r.setting.hysteresis_k
           << ", \"min_confidence\": " << r.setting.min_confidence
           << ", \"detected\": " << r.detected
           << ", \"mean_detection_latency_s\": " << r.latency_sum_s / n
           << ", \"mean_sessions_into_incident\": "
           << r.sessions_into_sum / n
           << ", \"false_alarm_raises\": " << r.false_raises
           << ", \"healthy_locations\": " << truth.healthy_locations.size()
           << ", \"mean_verdict_lead_s\": " << lead
           << ", \"transitions\": " << r.res.counts.transitions
           << ", \"suppressed\": " << r.res.counts.suppressed << "}"
           << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    json << "  ],\n";
    json << "  \"determinism\": {\"shards\": [1, 2, 4], \"identical\": "
         << (identical ? "true" : "false") << "}\n}\n";
    std::printf("wrote BENCH_alerting.json\n");
  }
  return 0;
}
