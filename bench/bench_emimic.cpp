// Extension bench: the analytic alternative. eMIMIC (the paper's
// reference [22], same authors) reconstructs HAS sessions from
// HTTP-level transactions without any training. How does analytic
// reconstruction on fine-grained data compare to ML on coarse TLS data?
#include "bench_common.hpp"
#include "core/emimic.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header(
      "Extension - analytic estimation (eMIMIC [22]) vs ML on TLS data",
      "Section 1/related work: mechanisms assuming fine-grained data");

  util::TextTable table({"service", "approach", "data", "accuracy",
                         "recall(low)"});
  for (const char* name : {"Svc1", "Svc2", "Svc3"}) {
    const auto svc = has::service_by_name(name);
    const auto& ds = bench::dataset_for(name);

    // Analytic: per-session reconstruction, no training, but needs the
    // per-request (HTTP) view an ISP cannot see for TLS traffic.
    ml::ConfusionMatrix analytic(core::kNumQoeClasses);
    for (const auto& s : ds) {
      const auto est = core::emimic_estimate(s.record.http,
                                             svc.segment_duration_s);
      analytic.add(s.labels.combined, est.to_labels(svc).combined);
    }
    table.add_row({name, "eMIMIC (analytic)", "HTTP transactions",
                   bench::pct0(analytic.accuracy()),
                   bench::pct0(analytic.recall(0))});

    const auto cv = core::evaluate_tls(ds, core::QoeTarget::kCombined);
    table.add_row({name, "Random Forest", "TLS transactions",
                   bench::pct0(cv.accuracy()), bench::pct0(cv.recall(0))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("shape: the analytic model needs no labels but inherits the\n"
              "fine-grained data requirement and its assumptions (fixed\n"
              "segment duration, clean segment detection) - range-request\n"
              "services (Svc1) and separate audio tracks violate them,\n"
              "while ML on coarse TLS data sidesteps reconstruction\n"
              "entirely. This is the trade-off space the paper's\n"
              "introduction frames.\n");
  return 0;
}
