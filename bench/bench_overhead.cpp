// Micro-benchmarks (google-benchmark) behind the Section 4.2 overhead
// claims: per-session feature extraction cost for the TLS pipeline vs the
// packet pipeline, plus the simulation itself.
#include <benchmark/benchmark.h>

#include "core/dataset_builder.hpp"
#include "core/ml16_features.hpp"
#include "core/tls_features.hpp"
#include "net/link_model.hpp"
#include "trace/packet_generator.hpp"

namespace {

using namespace droppkt;

const core::LabeledDataset& sample_sessions() {
  static const core::LabeledDataset ds = [] {
    core::DatasetConfig cfg;
    cfg.num_sessions = 64;
    cfg.seed = 7;
    return core::build_dataset(has::svc1_profile(), cfg);
  }();
  return ds;
}

void BM_TlsFeatureExtraction(benchmark::State& state) {
  const auto& ds = sample_sessions();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto f = core::extract_tls_features(ds[i % ds.size()].record.tls);
    benchmark::DoNotOptimize(f.data());
    ++i;
  }
  state.SetLabel("per session, 38 features from ~25 TLS transactions");
}
BENCHMARK(BM_TlsFeatureExtraction);

void BM_PacketFeatureExtraction(benchmark::State& state) {
  // Pre-generate packet logs so the benchmark isolates extraction cost.
  static const std::vector<trace::PacketLog> logs = [] {
    std::vector<trace::PacketLog> out;
    for (const auto& s : sample_sessions()) {
      util::Rng rng(s.record.seed ^ 0x9ac4e7ULL);
      const trace::PacketTraceGenerator gen(
          net::link_params_for(s.record.environment));
      out.push_back(gen.generate(s.record.http, rng));
    }
    return out;
  }();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto f = core::extract_ml16_features(logs[i % logs.size()]);
    benchmark::DoNotOptimize(f.data());
    ++i;
  }
  state.SetLabel("per session, ML16 features from ~30k packets");
}
BENCHMARK(BM_PacketFeatureExtraction);

void BM_PacketGeneration(benchmark::State& state) {
  const auto& ds = sample_sessions();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& s = ds[i % ds.size()];
    util::Rng rng(s.record.seed ^ 0x9ac4e7ULL);
    const trace::PacketTraceGenerator gen(
        net::link_params_for(s.record.environment));
    const auto log = gen.generate(s.record.http, rng);
    benchmark::DoNotOptimize(log.data());
    ++i;
  }
  state.SetLabel("expand one session's HTTP log into a packet trace");
}
BENCHMARK(BM_PacketGeneration);

void BM_SimulateSession(benchmark::State& state) {
  const net::TracePool pool(16, 3);
  const auto catalog = has::VideoCatalog::generate("Svc1", 10, 3);
  const auto svc = has::svc1_profile();
  const has::PlayerSimulator player;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    util::Rng rng(++seed);
    const auto& bw = pool.sample(rng);
    const net::LinkModel link(bw);
    auto result =
        player.play(svc, catalog.sample(rng), link, 180.0, rng);
    benchmark::DoNotOptimize(result.http.data());
  }
  state.SetLabel("one 3-minute Svc1 session end-to-end");
}
BENCHMARK(BM_SimulateSession);

}  // namespace

BENCHMARK_MAIN();
