// Ablation: summary-statistic choice for the transaction-level features.
// The paper's footnote 5: "We considered other statistics such as standard
// deviation and mean, but found them to be highly correlated to one of the
// existing statistics." This bench measures both the correlation and the
// accuracy effect of adding them.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "util/render.hpp"
#include "util/stats.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Ablation - summary statistics (footnote 5)",
                      "Section 3 footnote 5 (mean/std vs min/med/max)");

  const auto& ds = bench::dataset_for("Svc1");

  // Correlation of each MEAN/STD feature with its metric's existing stats.
  core::TlsFeatureConfig extended;
  extended.extended_stats = true;
  const auto names = core::tls_feature_names(extended);
  std::vector<std::vector<double>> columns(names.size());
  for (const auto& s : ds) {
    const auto f = core::extract_tls_features(s.record.tls, extended);
    for (std::size_t j = 0; j < f.size(); ++j) columns[j].push_back(f[j]);
  }
  auto col = [&](const std::string& name) -> const std::vector<double>& {
    const auto it = std::find(names.begin(), names.end(), name);
    return columns[static_cast<std::size_t>(it - names.begin())];
  };

  std::printf("max |correlation| of each added statistic with the kept "
              "min/med/max of its metric:\n");
  util::TextTable corr({"added feature", "max |r| vs kept stats", "with"});
  for (const char* metric : {"DL_SIZE", "UL_SIZE", "DUR", "TDR", "D2U", "IAT"}) {
    for (const char* stat : {"_MEAN", "_STD"}) {
      const auto& added = col(std::string(metric) + stat);
      double best = 0.0;
      std::string best_name;
      for (const char* kept : {"_MIN", "_MED", "_MAX"}) {
        const double r =
            std::abs(util::pearson(added, col(std::string(metric) + kept)));
        if (r > best) {
          best = r;
          best_name = std::string(metric) + kept;
        }
      }
      corr.add_row({std::string(metric) + stat, util::fixed(best, 2),
                    best_name});
    }
  }
  std::printf("%s\n", corr.render().c_str());

  // Accuracy with and without the extra statistics.
  const auto base_cv = core::evaluate_tls(ds, core::QoeTarget::kCombined);
  const auto ext_cv = core::evaluate_tls(ds, core::QoeTarget::kCombined,
                                         core::FeatureSet::kFull, extended);
  util::TextTable acc({"feature set", "#features", "accuracy", "recall(low)"});
  acc.add_row({"min/med/max (paper)", "38", bench::pct0(base_cv.accuracy()),
               bench::pct0(base_cv.recall(0))});
  acc.add_row({"+ mean/std", "50", bench::pct0(ext_cv.accuracy()),
               bench::pct0(ext_cv.recall(0))});
  std::printf("%s\n", acc.render().c_str());

  std::printf("expected shape: the added statistics correlate strongly\n"
              "(|r| ~ 0.8+) with kept ones and buy little or no accuracy -\n"
              "consistent with the paper's decision to drop them.\n");
  return 0;
}
