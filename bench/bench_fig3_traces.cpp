// Figure 3: statistics of the bandwidth trace corpus — (a) CDF of average
// bandwidth, (b) session duration histogram.
#include "bench_common.hpp"
#include "net/trace_generator.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Figure 3 - Bandwidth trace statistics",
                      "Fig. 3a (average bandwidth CDF, 10^2..10^5 kbps) and "
                      "Fig. 3b (session duration histogram)");

  const net::TracePool pool(300, bench::kBenchSeed);

  // -- Fig. 3a: CDF of average bandwidth. ---------------------------------
  const auto avgs = pool.average_bandwidths();
  std::printf("Figure 3a: CDF of trace average bandwidth (kbps)\n");
  std::printf("%s\n",
              util::cdf_chart(avgs, {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95},
                              "average bandwidth (kbps)")
                  .c_str());
  std::printf("  paper shape: CDF spans ~10^2 kbps to ~10^5 kbps\n\n");

  // -- Fig. 3b: session duration histogram. --------------------------------
  util::Rng rng(bench::kBenchSeed + 1);
  std::vector<double> durations_min;
  for (int i = 0; i < 6000; ++i) {
    durations_min.push_back(pool.sample_session_duration(rng) / 60.0);
  }
  std::printf("Figure 3b: session duration distribution\n");
  std::printf("%s\n",
              util::histogram(durations_min, {0.0, 1.0, 2.0, 5.0, 20.0},
                              {"0-1", "1-2", "2-5", "5-20"},
                              "Session duration (min)")
                  .c_str());
  std::printf("  paper shape: all four bins populated, 10 s to 1200 s range\n");
  return 0;
}
