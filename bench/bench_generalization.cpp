// Extension bench (paper Section 5): generalizability of the models —
// does a model trained on one service transfer to another? The paper
// trains per service and leaves cross-service generalization to future
// work; this bench measures the full 3x3 transfer matrix.
#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Extension - cross-service model transfer",
                      "Section 5 future work (model generalizability)");

  const char* services[] = {"Svc1", "Svc2", "Svc3"};

  // Train one estimator per service.
  std::map<std::string, core::QoeEstimator> estimators;
  for (const char* svc : services) {
    core::QoeEstimator est;
    est.train(bench::dataset_for(svc));
    estimators.emplace(svc, std::move(est));
  }

  util::TextTable table(
      {"train \\ test", "Svc1", "Svc2", "Svc3"});
  std::map<std::string, double> same, cross;
  for (const char* train_svc : services) {
    std::vector<std::string> row{train_svc};
    for (const char* test_svc : services) {
      const auto& ds = bench::dataset_for(test_svc);
      const auto& est = estimators.at(train_svc);
      std::size_t correct = 0;
      for (const auto& s : ds) {
        correct += est.predict(s.record.tls) == s.labels.combined;
      }
      const double acc = static_cast<double>(correct) / ds.size();
      row.push_back(bench::pct0(acc));
      if (std::string(train_svc) == test_svc) same[train_svc] = acc;
      else cross[std::string(train_svc) + test_svc] = acc;
    }
    table.add_row(std::move(row));
  }
  std::printf("combined-QoE accuracy, train service (rows) vs test service "
              "(columns):\n%s\n", table.render().c_str());
  std::printf("note: diagonal entries are training-set accuracy (no CV) and\n"
              "overstate generalization; compare off-diagonal cells against\n"
              "the ~85%% cross-validated in-service numbers instead.\n\n");

  double same_mean = 0.0, cross_mean = 0.0;
  for (const auto& [k, v] : same) same_mean += v / same.size();
  for (const auto& [k, v] : cross) cross_mean += v / cross.size();
  std::printf("mean in-service (train-set) accuracy : %s\n",
              bench::pct0(same_mean).c_str());
  std::printf("mean cross-service accuracy          : %s\n\n",
              bench::pct0(cross_mean).c_str());
  std::printf("expected shape: clear degradation across services - the\n"
              "paper's per-service training is justified because TLS\n"
              "transaction patterns are service-design specific (Fig. 6\n"
              "importances differ across services for the same reason).\n");
  return 0;
}
