// Extension bench (paper Section 4.3, limitation 1): "In an extreme case,
// an application may be designed to stream the entire session over a
// single TLS connection, thus, rendering the transaction-level statistics
// and temporal features used in our model ineffective."
//
// We build exactly that application — one long-lived connection per host,
// no request caps — and measure how much of the model's signal survives.
#include "bench_common.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

has::ServiceProfile single_connection_service() {
  has::ServiceProfile p = has::svc2_profile();
  p.name = "Svc2";  // same ladder/labels; only the wire behaviour changes
  p.connections.max_requests_per_connection = 1000000;
  p.connections.idle_timeout_s = 3600.0;
  p.connections.cdn_hosts_per_session = 1;
  p.connections.parallel_connections = 1;
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension - the single-connection extreme",
      "Section 4.3 limitation 1 (whole session in one TLS connection)");

  const auto& normal_ds = bench::dataset_for("Svc2");
  core::DatasetConfig cfg;
  cfg.seed = bench::kBenchSeed;
  cfg.num_sessions = normal_ds.size();
  const auto single_ds = core::build_dataset(single_connection_service(), cfg);

  double normal_tls = 0.0, single_tls = 0.0;
  for (const auto& s : normal_ds) normal_tls += s.record.tls.size();
  for (const auto& s : single_ds) single_tls += s.record.tls.size();
  std::printf("TLS transactions per session: %.1f (normal Svc2) vs %.1f "
              "(single-connection build)\n\n",
              normal_tls / normal_ds.size(), single_tls / single_ds.size());

  util::TextTable table({"service build", "feature set", "accuracy",
                         "recall(low)"});
  for (const auto* entry :
       {&normal_ds, &single_ds}) {
    const bool is_single = entry == &single_ds;
    for (auto set : {core::FeatureSet::kSessionLevel, core::FeatureSet::kFull}) {
      const auto cv = core::evaluate_tls(*entry, core::QoeTarget::kCombined, set);
      table.add_row({is_single ? "single-connection" : "normal",
                     set == core::FeatureSet::kFull ? "all 38" : "session-level only",
                     bench::pct0(cv.accuracy()), bench::pct0(cv.recall(0))});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("expected shape: with one connection per host the per-\n"
              "transaction statistics collapse onto the session-level\n"
              "volumetrics, so the full feature set loses its edge over\n"
              "session-level-only - the paper's stated failure mode.\n"
              "Volume features still work, so accuracy does not collapse\n"
              "entirely (QoE remains partly inferable from rate alone).\n");
  return 0;
}
