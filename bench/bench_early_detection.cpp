// Extension bench (paper Section 4.3): TLS transaction data is only
// complete once connections close, so the paper's approach is offline.
// How early could an ISP classify a session if the proxy exported
// partial records? Accuracy vs observation horizon.
//
// One incremental pass per session: each session's log is folded into a
// TlsFeatureAccumulator once, and every horizon's feature vector is a
// snapshot_at() of that one accumulator — bit-identical to the old
// truncate-and-re-extract loop (the equivalence the accumulator
// guarantees and bench_feature_extraction gates), at O(n + H·n) instead
// of O(H·(copy + extract)).
#include "bench_common.hpp"
#include "core/feature_accumulator.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header(
      "Extension - early detection from partial TLS data",
      "Section 4.3 limitation (no real-time inference from TLS records)");

  const auto& ds = bench::dataset_for("Svc1");

  const double horizons[] = {15.0, 30.0, 60.0, 120.0, 240.0, 1e9};
  constexpr std::size_t kHorizons = sizeof(horizons) / sizeof(horizons[0]);

  const auto names = core::tls_feature_names();
  std::vector<ml::Dataset> data;
  data.reserve(kHorizons);
  for (std::size_t i = 0; i < kHorizons; ++i) {
    data.emplace_back(names, core::kNumQoeClasses);
    data.back().reserve(ds.size());
  }

  core::TlsFeatureAccumulator acc;
  std::vector<double> row(acc.feature_count());
  for (const auto& s : ds) {
    acc.reset();
    for (const auto& t : s.record.tls) acc.observe(t);
    for (std::size_t i = 0; i < kHorizons; ++i) {
      if (horizons[i] >= 1e9) {
        acc.snapshot_into(row);
      } else {
        acc.snapshot_at(horizons[i], row);
      }
      data[i].add_row(std::span<const double>(row), s.labels.combined);
    }
  }

  util::TextTable table({"observation horizon", "accuracy", "recall(low)"});
  for (std::size_t i = 0; i < kHorizons; ++i) {
    const auto cv =
        ml::cross_validate(data[i], core::forest_factory(), 5, 42 ^ 0xcafeULL);
    const double h = horizons[i];
    const char* label = h >= 1e9 ? "full session (paper)" : nullptr;
    char buf[32];
    if (label == nullptr) {
      std::snprintf(buf, sizeof(buf), "first %.0f s", h);
      label = buf;
    }
    table.add_row({label, bench::pct0(cv.accuracy()),
                   bench::pct0(cv.recall(0))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: accuracy rises with the horizon and\n"
              "saturates well before full-session observation - early\n"
              "windows carry most of the signal (the paper's CUM_DL_60s\n"
              "importance hints at this), so near-real-time screening is\n"
              "plausible if the proxy can export partial records.\n");
  return 0;
}
