// Extension bench (paper Section 4.3): TLS transaction data is only
// complete once connections close, so the paper's approach is offline.
// How early could an ISP classify a session if the proxy exported
// partial records? Accuracy vs observation horizon.
#include "bench_common.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header(
      "Extension - early detection from partial TLS data",
      "Section 4.3 limitation (no real-time inference from TLS records)");

  const auto& ds = bench::dataset_for("Svc1");

  util::TextTable table({"observation horizon", "accuracy", "recall(low)"});
  const double horizons[] = {15.0, 30.0, 60.0, 120.0, 240.0, 1e9};
  for (double h : horizons) {
    // Truncate every session's log at the horizon, then run the usual
    // 5-fold protocol on the truncated views.
    ml::Dataset data(core::tls_feature_names(), core::kNumQoeClasses);
    for (const auto& s : ds) {
      const auto view = h >= 1e9 ? s.record.tls
                                 : core::truncate_tls_log(s.record.tls, h);
      data.add_row(core::extract_tls_features(view), s.labels.combined);
    }
    const auto cv =
        ml::cross_validate(data, core::forest_factory(), 5, 42 ^ 0xcafeULL);
    const char* label = h >= 1e9 ? "full session (paper)" : nullptr;
    char buf[32];
    if (label == nullptr) {
      std::snprintf(buf, sizeof(buf), "first %.0f s", h);
      label = buf;
    }
    table.add_row({label, bench::pct0(cv.accuracy()),
                   bench::pct0(cv.recall(0))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: accuracy rises with the horizon and\n"
              "saturates well before full-session observation - early\n"
              "windows carry most of the signal (the paper's CUM_DL_60s\n"
              "importance hints at this), so near-real-time screening is\n"
              "plausible if the proxy can export partial records.\n");
  return 0;
}
