// Table 3: accuracy / recall / precision as feature groups are added —
// session-level only (SL), + transaction statistics (TS), + temporal
// statistics. Combined QoE, Random Forest, 5-fold CV.
#include "bench_common.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Table 3 - Feature-set ablation",
                      "Table 3 (A/R/P per feature set and service)");

  util::TextTable table({"Feature set", "Svc1 A", "Svc1 R", "Svc1 P",
                         "Svc2 A", "Svc2 R", "Svc2 P", "Svc3 A", "Svc3 R",
                         "Svc3 P"});
  for (auto set : {core::FeatureSet::kSessionLevel,
                   core::FeatureSet::kSessionPlusTransaction,
                   core::FeatureSet::kFull}) {
    std::vector<std::string> row{core::to_string(set)};
    for (const char* svc : {"Svc1", "Svc2", "Svc3"}) {
      const auto& ds = bench::dataset_for(svc);
      const auto s =
          core::scores_from(core::evaluate_tls(ds, core::QoeTarget::kCombined, set));
      row.push_back(bench::pct0(s.accuracy));
      row.push_back(bench::pct0(s.recall_low));
      row.push_back(bench::pct0(s.precision_low));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("paper Table 3 for comparison:\n");
  std::printf("  Only Session-level (SL)     | 58%% 61%% 60%% | 66%% 68%% 63%% | 66%% 77%% 66%%\n");
  std::printf("  SL + Transaction Stats (TS) | 65%% 72%% 67%% | 69%% 77%% 68%% | 71%% 84%% 74%%\n");
  std::printf("  SL + TS + Temporal Stats    | 69%% 73%% 71%% | 71%% 78%% 71%% | 73%% 85%% 75%%\n\n");
  std::printf("paper shape: recall improves 6-12%% and accuracy 6-11%% as\n"
              "transaction-level and temporal features are added - the\n"
              "within-session TLS structure carries QoE information beyond\n"
              "session-level volumetrics.\n");
  return 0;
}
