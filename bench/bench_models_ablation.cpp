// Model ablation: the paper "tested different ML-based models, namely SVM,
// k-NN, XGBoost, Random Forest, and Multilayer Perceptron" and reports
// Random Forest because it "yielded the highest accuracy". This bench
// regenerates that comparison on the combined QoE target.
#include <memory>

#include "bench_common.hpp"
#include "ml/gbt.hpp"
#include "ml/knn.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Model ablation - classifier choice",
                      "Section 4.2 (RF chosen over SVM, k-NN, XGBoost, MLP)");

  struct ModelCase {
    const char* name;
    std::function<std::unique_ptr<ml::Classifier>()> make;
  };
  const std::vector<ModelCase> models{
      {"Random Forest", [] {
         return std::unique_ptr<ml::Classifier>(
             std::make_unique<ml::RandomForest>());
       }},
      {"XGBoost-style GBT", [] {
         return std::unique_ptr<ml::Classifier>(
             std::make_unique<ml::GradientBoosting>());
       }},
      {"k-NN (k=7)", [] {
         return std::unique_ptr<ml::Classifier>(
             std::make_unique<ml::KnnClassifier>());
       }},
      {"Linear SVM", [] {
         return std::unique_ptr<ml::Classifier>(
             std::make_unique<ml::LinearSvm>());
       }},
      {"MLP (64 hidden)", [] {
         return std::unique_ptr<ml::Classifier>(
             std::make_unique<ml::MlpClassifier>());
       }},
  };

  util::TextTable table({"model", "Svc1 A", "Svc1 R", "Svc2 A", "Svc2 R",
                         "Svc3 A", "Svc3 R"});
  std::map<std::string, double> mean_accuracy;
  for (const auto& m : models) {
    std::vector<std::string> row{m.name};
    double acc_sum = 0.0;
    for (const char* svc : {"Svc1", "Svc2", "Svc3"}) {
      const auto& ds = bench::dataset_for(svc);
      const auto data = core::make_tls_dataset(ds, core::QoeTarget::kCombined);
      const auto cv = ml::cross_validate(data, m.make, 5, 42 ^ 0xcafeULL);
      row.push_back(bench::pct0(cv.accuracy()));
      row.push_back(bench::pct0(cv.recall(0)));
      acc_sum += cv.accuracy();
    }
    mean_accuracy[m.name] = acc_sum / 3.0;
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  const auto best = std::max_element(
      mean_accuracy.begin(), mean_accuracy.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  std::printf("highest mean accuracy: %s (%s)\n", best->first.c_str(),
              bench::pct0(best->second).c_str());
  std::printf("paper shape: tree ensembles (Random Forest) on top.\n");
  return 0;
}
