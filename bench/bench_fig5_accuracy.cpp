// Figure 5: classification accuracy / recall / precision for each QoE
// metric (re-buffering, video quality, combined), per service.
// Random Forest, 38 TLS features, 5-fold stratified cross-validation.
#include "bench_common.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header(
      "Figure 5 - Accuracy per QoE metric (TLS transaction data)",
      "Fig. 5a/5b + Section 4.2 (Svc3 reported in text)");

  struct PaperRow {
    const char* svc;
    const char* metric;
    const char* note;
  };

  for (const char* svc : {"Svc1", "Svc2", "Svc3"}) {
    const auto& ds = bench::dataset_for(svc);
    std::printf("%s (%zu sessions):\n", svc, ds.size());
    util::TextTable table(
        {"QoE metric", "accuracy", "recall(worst)", "precision(worst)"});
    for (auto target : {core::QoeTarget::kRebuffering,
                        core::QoeTarget::kVideoQuality,
                        core::QoeTarget::kCombined}) {
      const auto cv = core::evaluate_tls(ds, target);
      const auto s = core::scores_from(cv);
      table.add_row({core::to_string(target), bench::pct0(s.accuracy),
                     bench::pct0(s.recall_low), bench::pct0(s.precision_low)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("paper shape:\n");
  std::printf("  - Svc1: video-quality recall (68%%) >> re-buffering recall "
              "(21%%) - quality degrades under poor networks\n");
  std::printf("  - Svc2: re-buffering recall (71%%) > video-quality recall "
              "(40%%) - trend reversed\n");
  std::printf("  - combined QoE: high accuracy for all services, recall "
              "73-85%%\n");
  return 0;
}
