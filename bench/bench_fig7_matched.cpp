// Figure 7: distributions of a transaction-level statistic and a temporal
// feature for sessions *matched on session-level features* — the paper's
// evidence that within-session TLS structure separates QoE classes even
// when session-level volumetrics cannot.
//   7a: CUM_DL_60s for Svc1 sessions, duration 2-3 min, SDR_DL 1400-1600 kbps
//   7b: D2U_MED for Svc2 sessions, duration 2-3 min, SDR_DL 1000-1200 kbps
#include <algorithm>

#include "bench_common.hpp"
#include "core/tls_features.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

void matched_boxplot(const char* svc, const char* feature,
                     double sdr_lo, double sdr_hi,
                     const char* title) {
  const auto& ds = bench::dataset_for(svc);
  const auto names = core::tls_feature_names();
  const auto fidx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), feature) - names.begin());
  const auto sdr_idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "SDR_DL") - names.begin());
  const auto dur_idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "SES_DUR") - names.begin());

  // Widen the SDR band until each class has a handful of matched sessions
  // (the paper's bands give n = 11..52 per class on its dataset).
  std::vector<std::vector<double>> by_class(3);
  double lo = sdr_lo, hi = sdr_hi;
  for (int attempt = 0; attempt < 6; ++attempt) {
    for (auto& v : by_class) v.clear();
    for (const auto& s : ds) {
      const auto f = core::extract_tls_features(s.record.tls);
      if (f[dur_idx] < 120.0 || f[dur_idx] > 180.0) continue;
      if (f[sdr_idx] < lo || f[sdr_idx] > hi) continue;
      by_class[s.labels.combined].push_back(f[fidx]);
    }
    const std::size_t min_n = std::min({by_class[0].size(), by_class[1].size(),
                                        by_class[2].size()});
    if (min_n >= 8) break;
    lo *= 0.9;
    hi *= 1.1;
  }

  std::printf("%s\n", title);
  std::printf("  matched on: session duration 2-3 min, SDR_DL %.0f-%.0f kbps\n",
              lo, hi);
  std::printf("%s\n",
              util::box_plot({{"low", by_class[0]},
                              {"medium", by_class[1]},
                              {"high", by_class[2]}},
                             feature)
                  .c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7 - Transaction/temporal features under matched session-level "
      "features",
      "Fig. 7a (Svc1 CUM_DL_60s) and Fig. 7b (Svc2 D2U_MED)");

  matched_boxplot("Svc1", "CUM_DL_60s", 1400.0, 1600.0,
                  "Figure 7a: Svc1, CUM_DL_60s (bytes)");
  matched_boxplot("Svc2", "D2U_MED", 1000.0, 1200.0,
                  "Figure 7b: Svc2, D2U_MED");

  std::printf("paper shape: within a fixed session-level band, low and high\n"
              "QoE sessions separate clearly (paper 7a: 25th pct 17 MB vs\n"
              "23 MB); the medium class overlaps both - which is why medium\n"
              "is the hardest class in Table 2.\n");
  return 0;
}
