// Extension bench: Encrypted ClientHello (ECH). The paper's pipeline
// leans on the SNI twice — video-traffic identification and the
// fresh-server term (delta) of the session-identification heuristic.
// With ECH the proxy sees only server IPs, and CDNs share few IPs across
// many hostnames. How much of the session-ID result survives?
#include <functional>

#include "bench_common.hpp"
#include "core/session_id.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

/// Replace SNIs by server "identities" visible without ECH decryption:
/// IPs drawn from a small shared pool (CDN anycast / shared frontends).
trace::TlsLog anonymize(const trace::TlsLog& log, int ip_pool) {
  trace::TlsLog out = log;
  for (auto& t : out) {
    const auto h = std::hash<std::string>{}(t.sni);
    t.sni = "198.51.100." + std::to_string(h % ip_pool);
  }
  return out;
}

struct Outcome {
  double new_recall = 0.0;
  double existing_acc = 0.0;
};

Outcome evaluate(const std::function<trace::TlsLog(const trace::TlsLog&)>& view) {
  std::size_t tp = 0, fn = 0, fp = 0, tn = 0;
  for (std::uint64_t i = 0; i < 25; ++i) {
    const auto stream =
        core::build_back_to_back(has::svc1_profile(), 8, bench::kBenchSeed + i);
    const auto pred = core::detect_session_starts(view(stream.merged));
    for (std::size_t j = 0; j < pred.size(); ++j) {
      if (stream.truth_new[j] && pred[j]) ++tp;
      else if (stream.truth_new[j]) ++fn;
      else if (pred[j]) ++fp;
      else ++tn;
    }
  }
  return {static_cast<double>(tp) / std::max<std::size_t>(1, tp + fn),
          static_cast<double>(tn) / std::max<std::size_t>(1, tn + fp)};
}

}  // namespace

int main() {
  bench::print_header(
      "Extension - session identification under Encrypted ClientHello",
      "Section 2.2 (SNI dependence of the pipeline)");

  util::TextTable table({"server identity visible to proxy", "new recall",
                         "existing correct"});
  struct Case {
    const char* name;
    std::function<trace::TlsLog(const trace::TlsLog&)> view;
  };
  const Case cases[] = {
      {"SNI (paper setting)",
       [](const trace::TlsLog& l) { return l; }},
      {"IP only, 256 CDN addresses",
       [](const trace::TlsLog& l) { return anonymize(l, 256); }},
      {"IP only, 16 shared addresses",
       [](const trace::TlsLog& l) { return anonymize(l, 16); }},
      {"IP only, 4 shared addresses",
       [](const trace::TlsLog& l) { return anonymize(l, 4); }},
  };
  for (const auto& c : cases) {
    const auto o = evaluate(c.view);
    table.add_row({c.name, bench::pct0(o.new_recall),
                   bench::pct0(o.existing_acc)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("expected shape: with many distinct CDN addresses, IPs are a\n"
              "serviceable SNI substitute; as frontends consolidate onto a\n"
              "few shared IPs, the fresh-server signal (delta) disappears\n"
              "and new-session recall collapses - ECH plus IP consolidation\n"
              "would force ISPs back to volumetric-only methods. (QoE\n"
              "feature extraction itself is unaffected: it never reads the\n"
              "SNI.)\n");
  return 0;
}
