// Figure 4: distribution of ground-truth QoE metrics across the three
// services — (a) re-buffering ratio, (b) video quality, (c) combined QoE.
#include "bench_common.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

void distribution(const char* title, core::QoeTarget target,
                  const char* paper_note) {
  std::printf("%s\n", title);
  util::TextTable table({"service", "#sessions",
                         core::class_names(target)[0],
                         core::class_names(target)[1],
                         core::class_names(target)[2]});
  for (const char* svc : {"Svc1", "Svc2", "Svc3"}) {
    const auto& ds = bench::dataset_for(svc);
    std::size_t counts[3] = {0, 0, 0};
    for (const auto& s : ds) ++counts[s.labels.label_for(target)];
    const double n = static_cast<double>(ds.size());
    table.add_row({svc, std::to_string(ds.size()),
                   bench::pct0(counts[0] / n), bench::pct0(counts[1] / n),
                   bench::pct0(counts[2] / n)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  paper shape: %s\n\n", paper_note);
}

}  // namespace

int main() {
  bench::print_header("Figure 4 - QoE metric distributions per service",
                      "Fig. 4a/4b/4c + Section 4.1 service-design analysis");

  distribution("Figure 4a: re-buffering ratio (high / mild / zero)",
               core::QoeTarget::kRebuffering,
               "Svc2 stalls the most (holds quality until the buffer runs "
               "low); Svc1 rarely stalls (240 s buffer, drops quality "
               "instead); Svc3 in between");
  distribution("Figure 4b: video quality (low / medium / high)",
               core::QoeTarget::kVideoQuality,
               "Svc1 shows the most low-quality sessions (sacrifices quality "
               "to avoid stalls); Svc2 holds quality high");
  distribution("Figure 4c: combined QoE (low / medium / high)",
               core::QoeTarget::kCombined,
               "every service has a substantial mix of all three classes "
               "(paper Svc1: 30/28/42)");
  return 0;
}
