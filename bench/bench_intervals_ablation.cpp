// Temporal-interval ablation: the paper treats the CUM_* interval
// end-points as a model hyperparameter ("we explored other intervals ...
// but found the above to yield the highest accuracy"). This bench sweeps
// alternative interval sets on the combined QoE target.
#include "bench_common.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Ablation - temporal interval hyperparameter",
                      "Section 3 (interval end-point choice)");

  struct IntervalCase {
    const char* name;
    std::vector<double> ends;
  };
  const std::vector<IntervalCase> cases{
      {"paper {30,60,120,240,480,720,960,1200}",
       {30, 60, 120, 240, 480, 720, 960, 1200}},
      {"uniform coarse {300,600,900,1200}", {300, 600, 900, 1200}},
      {"uniform fine {150,...,1200 step 150}",
       {150, 300, 450, 600, 750, 900, 1050, 1200}},
      {"front-loaded {10,20,30,45,60,90,120,180}",
       {10, 20, 30, 45, 60, 90, 120, 180}},
      {"single {60}", {60}},
  };

  util::TextTable table({"interval set", "#features", "Svc1 A", "Svc2 A",
                         "Svc3 A", "mean A"});
  for (const auto& c : cases) {
    core::TlsFeatureConfig cfg;
    cfg.interval_ends_s = c.ends;
    std::vector<std::string> row{c.name,
                                 std::to_string(4 + 18 + 2 * c.ends.size())};
    double sum = 0.0;
    for (const char* svc : {"Svc1", "Svc2", "Svc3"}) {
      const auto& ds = bench::dataset_for(svc);
      const auto cv = core::evaluate_tls(ds, core::QoeTarget::kCombined,
                                         core::FeatureSet::kFull, cfg);
      row.push_back(bench::pct0(cv.accuracy()));
      sum += cv.accuracy();
    }
    row.push_back(bench::pct0(sum / 3.0));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape: exponentially spaced intervals starting fine\n"
              "(sessions are most vulnerable early, when the buffer is\n"
              "empty) perform at or near the top; a single interval loses\n"
              "accuracy.\n");
  return 0;
}
