// Shard-scaling throughput of the ingest engine over a synthetic
// many-client proxy feed.
//
// Not a paper figure: this measures the deployment-scale subsystem the
// paper's "cheap enough to run at ISP scale" pitch implies. The same feed
// is replayed through IngestEngine at 1/2/4/8 shards; records/sec and
// speedup vs 1 shard are printed and written to BENCH_engine.json.
//
// Feed size defaults to ~480k records from 20k clients so the bench
// finishes quickly; scale up with e.g.
//   DROPPKT_ENGINE_CLIENTS=1000000 ./bench_engine_throughput
// for the full million-client run. Speedup requires physical cores:
// expect ~flat numbers on a 1-core container.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/dataset_builder.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const auto parsed = std::strtoull(v, nullptr, 10);
  if (parsed == 0) {
    std::fprintf(stderr, "[bench] ignoring %s='%s' (not a positive integer)\n",
                 name, v);
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

struct Run {
  std::size_t shards = 0;
  double seconds = 0.0;
  double records_per_s = 0.0;
  double speedup = 1.0;
  std::uint64_t sessions = 0;
  std::size_t high_water = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

}  // namespace

int main() {
  using namespace droppkt;
  bench::print_header("Ingest engine shard scaling",
                      "deployment subsystem (no paper figure); Section 6 "
                      "motivates ISP-scale operation");

  core::DatasetConfig cfg;
  cfg.num_sessions = 300;
  cfg.seed = bench::kBenchSeed;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), cfg));

  engine::SynthFeedConfig feed_cfg;
  feed_cfg.num_clients = env_size("DROPPKT_ENGINE_CLIENTS", 20000);
  feed_cfg.seed = bench::kBenchSeed;
  const auto t_gen = std::chrono::steady_clock::now();
  const engine::Feed feed = engine::synthetic_feed(feed_cfg);
  const double gen_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_gen)
          .count();
  std::printf("synthetic feed: %zu records, %zu clients (generated in %.1f s)\n\n",
              feed.size(), feed_cfg.num_clients, gen_s);

  std::vector<Run> runs;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    engine::EngineConfig ecfg;
    ecfg.num_shards = shards;
    ecfg.queue_capacity = 8192;
    std::atomic<std::uint64_t> sessions{0};
    const auto t0 = std::chrono::steady_clock::now();
    engine::IngestEngine eng(
        estimator,
        [&](const core::MonitoredSession&) {
          sessions.fetch_add(1, std::memory_order_relaxed);
        },
        ecfg);
    for (const auto& r : feed) eng.ingest(r.client, r.txn);
    eng.finish();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto snap = eng.stats();
    Run run;
    run.shards = shards;
    run.seconds = secs;
    run.records_per_s = static_cast<double>(feed.size()) / secs;
    run.sessions = snap.sessions_reported;
    run.high_water = snap.max_queue_high_water;
    run.p50_us = snap.latency_p50_us;
    run.p99_us = snap.latency_p99_us;
    runs.push_back(run);
  }
  for (auto& r : runs) r.speedup = r.records_per_s / runs.front().records_per_s;

  std::printf("shards   records/s   speedup   sessions   queue-hw   "
              "p50 us    p99 us\n");
  for (const auto& r : runs) {
    std::printf("%6zu  %10.0f   %6.2fx  %9llu  %9zu  %8.1f  %8.1f\n",
                r.shards, r.records_per_s, r.speedup,
                static_cast<unsigned long long>(r.sessions), r.high_water,
                r.p50_us, r.p99_us);
  }
  std::printf("\n(sessions must be identical across rows: sharding is a pure\n"
              "parallelization of the same monitor pipeline)\n");

  std::ofstream json("BENCH_engine.json");
  json << "{\n  \"bench\": \"engine_throughput\",\n";
  json << "  \"records\": " << feed.size() << ",\n";
  json << "  \"clients\": " << feed_cfg.num_clients << ",\n";
  json << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    json << "    {\"shards\": " << r.shards << ", \"seconds\": " << r.seconds
         << ", \"records_per_s\": " << r.records_per_s
         << ", \"speedup\": " << r.speedup
         << ", \"sessions\": " << r.sessions
         << ", \"latency_p50_us\": " << r.p50_us
         << ", \"latency_p99_us\": " << r.p99_us << "}"
         << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_engine.json\n");
  return 0;
}
