// Carrier-scale ingest throughput: the batched, interned engine hot path
// against the pre-optimization architecture, measured in the same run.
//
// Not a paper figure: this measures the deployment-scale subsystem the
// paper's "cheap enough to run at ISP scale" pitch implies. Three things
// are established per run:
//
//   1. A records/s-per-core curve over {1,2,4} shards x {1,32,256} batch
//      sizes through IngestEngine (batch 1 uses the unbatched ingest()
//      entry point; larger sizes use ingest_batch()).
//   2. A legacy baseline reproduced in-bench from the library's still
//      public pieces — SpscQueue of string-carrying messages, one worker,
//      a string-keyed monitor that re-runs the allocating
//      detect_session_starts() per record, per-record clock stamps and
//      per-record shared-counter RMWs — i.e. the engine architecture this
//      PR replaced, so the speedup is measured against the real
//      predecessor on the same machine, same feed, same run.
//   3. Determinism gates: every engine combination and the legacy
//      baseline must report byte-identical session sets, and every engine
//      combination must produce a byte-identical alert event sequence
//      through an attached alert::AlertPipeline.
//
// The identity gates always hard-fail, as does the telemetry drop gate
// (the interval streamer's bounded frame queue must shed nothing in the
// default configuration). The >=5x single-shard throughput gate and the
// <=2% telemetry streaming-overhead gate are enforced in full runs and
// only reported under --smoke (CI containers share cores; sub-second
// smoke feeds are too noisy to gate).
//
// Feed size defaults to ~960k records from 2k clients (240-connection
// sessions, a ~10-minute video session each); scale with e.g.
//   DROPPKT_ENGINE_CLIENTS=20000 ./bench_engine_throughput
// Shard speedup requires physical cores; the identity gates do not.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "alert/pipeline.hpp"
#include "bench_common.hpp"
#include "core/dataset_builder.hpp"
#include "core/session_id.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/streamer.hpp"
#include "util/spsc_queue.hpp"
#include "util/string_pool.hpp"

namespace {

using namespace droppkt;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const auto parsed = std::strtoull(v, nullptr, 10);
  if (parsed == 0) {
    std::fprintf(stderr, "[bench] ignoring %s='%s' (not a positive integer)\n",
                 name, v);
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

// Deterministic coarse location mapping so the alert pipeline aggregates
// the synthetic per-subscriber feed into a manageable location set.
std::string bench_location_of(std::string_view client) {
  return "loc-" + std::to_string(util::well_mixed_hash(client) % 64);
}

std::string session_line(std::string_view client, std::size_t txns,
                         int predicted, double confidence, double start_s,
                         double end_s, double detected_s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%.*s|%zu|%d|%.17g|%.17g|%.17g|%.17g",
                static_cast<int>(client.size()), client.data(), txns,
                predicted, confidence, start_s, end_s, detected_s);
  return buf;
}

/// Sorted multiset of session lines — emission order across clients is the
/// one thing sharding is allowed to change.
std::string canonical_sessions(std::vector<std::string> lines) {
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Alert events in sequence — the pipeline guarantees the *order* too.
std::string canonical_alerts(const std::vector<alert::AlertEvent>& log) {
  std::string out;
  char buf[256];
  for (const auto& e : log) {
    std::snprintf(buf, sizeof(buf), "%s|%llu|%s|%.17g|%.17g|%.17g|%.17g\n",
                  e.kind == alert::AlertEvent::Kind::kRaised ? "R" : "C",
                  static_cast<unsigned long long>(e.id), e.location.c_str(),
                  e.time_s, e.rate_low, e.rate_high, e.effective_sessions);
    out += buf;
  }
  return out;
}

struct RunResult {
  double seconds = 0.0;
  double records_per_s = 0.0;
  std::uint64_t sessions = 0;
  std::string session_canon;
  std::string alert_canon;
  std::size_t alert_events = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t tm_intervals = 0;
  std::uint64_t tm_dropped = 0;
  std::size_t tm_bytes = 0;
};

// ---------------------------------------------------------------------------
// Legacy baseline: the seed engine's record path, reproduced faithfully.
// One shard; every message carries owning strings through the mailbox;
// the worker keys clients by std::string, buffers owning transactions,
// folds the live feature accumulator eagerly per record, and re-runs the
// allocating detect_session_starts() (std::set<std::string> + a fresh
// vector<bool>) on the whole pending window per record; both sides read
// steady_clock per record and bump shared atomics per record. Emission
// classifies via predict_into on the live accumulator, exactly like the
// seed monitor, so the session canon is comparable bit for bit.
// ---------------------------------------------------------------------------

struct LegacyMsg {
  enum class Kind : std::uint8_t { kRecord, kWatermark };
  Kind kind = Kind::kRecord;
  std::string client;
  trace::TlsTransaction txn;
  std::chrono::steady_clock::time_point enqueue_tp{};
};

class LegacyMonitor {
 public:
  LegacyMonitor(const core::QoeEstimator& estimator,
                core::MonitorConfig config, alert::AlertPipeline* pipeline,
                std::vector<std::string>* session_lines)
      : estimator_(&estimator),
        config_(config),
        pipeline_(pipeline),
        session_lines_(session_lines) {
    feature_scratch_.resize(estimator.feature_count());
    proba_scratch_.resize(static_cast<std::size_t>(core::kNumQoeClasses));
  }

  void observe(const std::string& client, const trace::TlsTransaction& txn) {
    auto it = clients_.find(client);
    if (it == clients_.end()) {
      it = clients_
               .emplace(client,
                        ClientState{.pending = {},
                                    .last_start_s = -1e18,
                                    .acc = estimator_->make_accumulator()})
               .first;
    }
    ClientState& state = it->second;
    if (!state.pending.empty() &&
        txn.start_s - state.last_start_s > config_.client_idle_timeout_s) {
      emit(client, state, txn.start_s);
      state.pending.clear();
      state.acc.reset();
    }
    state.pending.push_back(txn);
    state.acc.observe(txn.start_s, txn.end_s, txn.ul_bytes, txn.dl_bytes);
    state.last_start_s = txn.start_s;
    const auto starts =
        core::detect_session_starts(state.pending, config_.session_id);
    for (std::size_t k = 1; k < starts.size(); ++k) {
      if (!starts[k]) continue;
      // The seed's split path: a fresh head state, re-folded from scratch.
      ClientState head{.pending = {},
                       .last_start_s = -1e18,
                       .acc = estimator_->make_accumulator()};
      head.pending.assign(state.pending.begin(),
                          state.pending.begin() +
                              static_cast<std::ptrdiff_t>(k));
      for (const auto& t : head.pending) {
        head.acc.observe(t.start_s, t.end_s, t.ul_bytes, t.dl_bytes);
      }
      emit(client, head, txn.start_s);
      state.pending.erase(state.pending.begin(),
                          state.pending.begin() +
                              static_cast<std::ptrdiff_t>(k));
      state.acc.reset();
      for (const auto& t : state.pending) {
        state.acc.observe(t.start_s, t.end_s, t.ul_bytes, t.dl_bytes);
      }
      break;
    }
  }

  void advance_time(double now_s) {
    for (auto it = clients_.begin(); it != clients_.end();) {
      if (now_s - it->second.last_start_s > config_.client_idle_timeout_s) {
        if (!it->second.pending.empty()) {
          emit(it->first, it->second, now_s);
        }
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void finish() {
    draining_ = true;
    for (auto& [client, state] : clients_) {
      if (!state.pending.empty()) {
        emit(client, state, state.last_start_s);
      }
    }
    clients_.clear();
  }

 private:
  struct ClientState {
    trace::TlsLog pending;
    double last_start_s = -1e18;
    core::TlsFeatureAccumulator acc;
  };

  void emit(const std::string& client, ClientState& state,
            double detected_s) {
    const trace::TlsLog& log = state.pending;
    if (log.size() < config_.min_transactions) return;
    // One snapshot + forest vote off the live accumulator (the seed
    // monitor's emit) — bit-identical to the engine path's classification.
    const int predicted =
        estimator_->predict_into(state.acc, feature_scratch_, proba_scratch_);
    const double confidence =
        proba_scratch_[static_cast<std::size_t>(predicted)];
    double end_s = log.front().end_s;
    for (const auto& t : log) end_s = std::max(end_s, t.end_s);
    session_lines_->push_back(session_line(client, log.size(), predicted,
                                           confidence, log.front().start_s,
                                           end_s, detected_s));
    if (pipeline_ != nullptr) {
      core::MonitoredSessionView s;
      s.client = client;
      s.transactions = log;
      s.predicted_class = predicted;
      s.confidence = confidence;
      s.start_s = log.front().start_s;
      s.end_s = end_s;
      s.detected_s = detected_s;
      pipeline_->on_session(0, s, draining_);
    }
  }

  const core::QoeEstimator* estimator_;
  core::MonitorConfig config_;
  alert::AlertPipeline* pipeline_;
  std::vector<std::string>* session_lines_;
  std::unordered_map<std::string, ClientState> clients_;
  std::vector<double> feature_scratch_;
  std::vector<double> proba_scratch_;
  bool draining_ = false;
};

RunResult run_legacy(const core::QoeEstimator& estimator,
                     const engine::Feed& feed,
                     const engine::EngineConfig& ecfg,
                     const alert::AlertPipelineConfig& pcfg) {
  RunResult result;
  alert::AlertPipeline pipeline(pcfg);
  pipeline.bind(1);
  std::vector<std::string> lines;
  engine::LatencyHistogram latency;
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> processed{0};

  const auto t0 = std::chrono::steady_clock::now();
  util::SpscQueue<LegacyMsg> queue(ecfg.queue_capacity, ecfg.backpressure);
  LegacyMonitor monitor(estimator, ecfg.monitor, &pipeline, &lines);
  std::thread worker([&] {
    LegacyMsg msg;
    while (queue.pop_wait(msg)) {
      if (msg.kind == LegacyMsg::Kind::kRecord) {
        monitor.observe(msg.client, msg.txn);
        processed.fetch_add(1, std::memory_order_relaxed);
        latency.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - msg.enqueue_tp)
                .count()));
      } else {
        monitor.advance_time(msg.txn.start_s);
        pipeline.on_watermark(0, msg.txn.start_s);
      }
    }
    monitor.finish();
  });

  double last_watermark_s = 0.0;
  bool saw_record = false;
  for (const auto& r : feed) {
    if (!saw_record ||
        r.txn.start_s - last_watermark_s >= ecfg.watermark_interval_s) {
      last_watermark_s = r.txn.start_s;
      saw_record = true;
      LegacyMsg wm;
      wm.kind = LegacyMsg::Kind::kWatermark;
      wm.txn.start_s = r.txn.start_s;
      queue.push(std::move(wm));
    }
    LegacyMsg msg;
    msg.client = r.client;
    msg.txn = r.txn;
    msg.enqueue_tp = std::chrono::steady_clock::now();
    enqueued.fetch_add(1, std::memory_order_relaxed);
    queue.push(std::move(msg));
  }
  queue.close();
  worker.join();
  pipeline.on_finish();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.records_per_s = static_cast<double>(feed.size()) / result.seconds;
  result.sessions = lines.size();
  result.session_canon = canonical_sessions(std::move(lines));
  const auto log = pipeline.log_snapshot();
  result.alert_events = log.size();
  result.alert_canon = canonical_alerts(log);
  auto counts = latency.counts();
  result.p50_us = engine::histogram_quantile_ns(counts, 0.50) / 1000.0;
  result.p99_us = engine::histogram_quantile_ns(counts, 0.99) / 1000.0;
  return result;
}

// ---------------------------------------------------------------------------
// Engine curve runs.
// ---------------------------------------------------------------------------

RunResult run_engine(const core::QoeEstimator& estimator,
                     const engine::Feed& feed, std::size_t shards,
                     std::size_t batch, const engine::EngineConfig& base,
                     const alert::AlertPipelineConfig& pcfg,
                     bool stream_telemetry = false) {
  RunResult result;
  alert::AlertPipeline pipeline(pcfg);
  std::vector<std::string> lines;
  engine::EngineConfig ecfg = base;
  ecfg.num_shards = shards;
  ecfg.alert_sink = &pipeline;
  telemetry::MetricRegistry registry;
  if (stream_telemetry) ecfg.registry = &registry;

  const auto t0 = std::chrono::steady_clock::now();
  {
    engine::IngestEngine eng(
        estimator,
        [&](const core::MonitoredSessionView& s) {
          // Serialized by the engine's sink mutex. Counts come off the
          // interned records — materialization is off for this run.
          lines.push_back(session_line(s.client, s.records.size(),
                                       s.predicted_class, s.confidence,
                                       s.start_s, s.end_s, s.detected_s));
        },
        ecfg);
    // Live interval streaming, as a deployment runs it: a sampler thread
    // diffing the registry every 10 ms and draining the frame queue into
    // the wire buffer. The hot path never waits on it — tick() try_pushes
    // and drops on a full queue, so any interference shows up only as
    // cache/scheduler pressure, which is exactly what the <2% gate bounds.
    std::optional<telemetry::IntervalStreamer> streamer;
    std::vector<std::uint8_t> wire;
    std::atomic<bool> sampler_done{false};
    std::thread sampler;
    if (stream_telemetry) {
      streamer.emplace(registry, telemetry::monotonic_clock());
      wire = streamer->header_frame();
      sampler = std::thread([&] {
        while (!sampler_done.load(std::memory_order_acquire)) {
          eng.refresh_gauges();
          streamer->tick();
          streamer->poll(wire);
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        eng.refresh_gauges();
        streamer->tick();
        streamer->poll(wire);
      });
    }
    if (batch <= 1) {
      for (const auto& r : feed) eng.ingest(r.client, r.txn);
    } else {
      for (std::size_t i = 0; i < feed.size(); i += batch) {
        const std::size_t n = std::min(batch, feed.size() - i);
        eng.ingest_batch(std::span<const engine::FeedRecord>(
            feed.data() + i, n));
      }
    }
    eng.finish();
    if (stream_telemetry) {
      sampler_done.store(true, std::memory_order_release);
      sampler.join();
      result.tm_intervals = streamer->intervals_sampled();
      result.tm_dropped = streamer->dropped_intervals();
      result.tm_bytes = wire.size();
    }
    const auto snap = eng.stats();
    result.p50_us = snap.latency_p50_us;
    result.p99_us = snap.latency_p99_us;
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.records_per_s = static_cast<double>(feed.size()) / result.seconds;
  result.sessions = lines.size();
  result.session_canon = canonical_sessions(std::move(lines));
  const auto log = pipeline.log_snapshot();
  result.alert_events = log.size();
  result.alert_canon = canonical_alerts(log);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::print_header(
      "Carrier-scale ingest: batched/interned engine vs legacy baseline",
      "deployment subsystem (no paper figure); Section 6 motivates "
      "ISP-scale operation");

  core::DatasetConfig cfg;
  cfg.num_sessions = smoke ? 120 : 300;
  cfg.seed = bench::kBenchSeed;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), cfg));

  engine::SynthFeedConfig feed_cfg;
  feed_cfg.num_clients =
      env_size("DROPPKT_ENGINE_CLIENTS", smoke ? 100 : 2000);
  // Long video sessions: at the feed's ~2.5 s chunk cadence, 240
  // connections is a ~10-minute adaptive-streaming session — the paper's
  // workload shape. Session length is the lever that separates the
  // architectures: the legacy per-record rescan is O(window) per record
  // (it rebuilds a std::set over the whole pending window on every
  // arrival), while the batched path's incremental scan stays O(burst)
  // regardless of window size. Short beacon-like sessions would hide the
  // difference the redesign exists to remove.
  feed_cfg.txns_per_session = 240;
  feed_cfg.seed = bench::kBenchSeed;
  const auto t_gen = std::chrono::steady_clock::now();
  engine::Feed feed = engine::synthetic_feed(feed_cfg);
  // Starve a deterministic subset of subscribers (hash-selected, ~1 in 8)
  // so the forest emits a mix of QoE classes: without low-QoE verdicts the
  // alert identity gate would compare two empty logs.
  for (auto& r : feed) {
    if (util::well_mixed_hash(r.client) % 8 == 0) r.txn.dl_bytes *= 0.02;
  }
  const double gen_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_gen)
          .count();
  std::printf(
      "synthetic feed: %zu records, %zu clients (generated in %.1f s)%s\n\n",
      feed.size(), feed_cfg.num_clients, gen_s, smoke ? "  [smoke]" : "");

  engine::EngineConfig base;
  base.queue_capacity = 8192;
  // The alert pipeline never reads transaction contents, and the session
  // canon above only needs counts — run the engine's emit path fully
  // allocation-free (no per-record string materialization).
  base.monitor.materialize_transactions = false;
  alert::AlertPipelineConfig pcfg;
  pcfg.location_of = bench_location_of;
  // Aggressive detection so the synthetic (mostly healthy) feed produces a
  // non-empty alert sequence — the identity gate should compare real
  // events, not two empty logs.
  pcfg.detector.alert_rate = 0.05;
  pcfg.detector.min_effective_sessions = 2.0;

  std::printf("legacy baseline (string messages, per-record clocks, "
              "allocating boundary scan, 1 worker)...\n");
  const RunResult legacy = run_legacy(estimator, feed, base, pcfg);
  std::printf("legacy:  %10.0f records/s  (%llu sessions, %zu alert events, "
              "p50 %.1f us, p99 %.1f us)\n\n",
              legacy.records_per_s,
              static_cast<unsigned long long>(legacy.sessions),
              legacy.alert_events, legacy.p50_us, legacy.p99_us);

  struct CurveRow {
    std::size_t shards;
    std::size_t batch;
    RunResult r;
  };
  std::vector<CurveRow> rows;
  std::printf("shards  batch   records/s   vs-legacy   sessions   "
              "alerts   p50 us    p99 us\n");
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t batch : {1u, 32u, 256u}) {
      CurveRow row{shards, batch,
                   run_engine(estimator, feed, shards, batch, base, pcfg)};
      std::printf("%6zu %6zu  %10.0f   %8.2fx  %9llu  %7zu  %8.1f  %8.1f\n",
                  row.shards, row.batch, row.r.records_per_s,
                  row.r.records_per_s / legacy.records_per_s,
                  static_cast<unsigned long long>(row.r.sessions),
                  row.r.alert_events, row.r.p50_us, row.r.p99_us);
      rows.push_back(std::move(row));
    }
  }

  // Telemetry overhead: the same engine configuration with a live
  // interval streamer attached (external registry, 10 ms sampling thread)
  // against one without. Best-of-N throughput absorbs scheduler noise;
  // the <2% gate is enforced in full runs only (sub-second smoke feeds
  // on shared CI cores are too noisy to gate). The drop gate is
  // unconditional: at the default queue depth with a live consumer, the
  // bounded frame queue must never shed an interval.
  const std::size_t tm_shards = 2;
  const std::size_t tm_batch = 256;
  const int tm_reps = smoke ? 1 : 3;
  RunResult tm_base;
  RunResult tm_tele;
  std::uint64_t tm_dropped_total = 0;
  bool tm_identical = true;
  std::printf("\ntelemetry overhead (%zu shards, batch %zu, best of %d)...\n",
              tm_shards, tm_batch, tm_reps);
  for (int rep = 0; rep < tm_reps; ++rep) {
    RunResult b = run_engine(estimator, feed, tm_shards, tm_batch, base, pcfg);
    RunResult t = run_engine(estimator, feed, tm_shards, tm_batch, base, pcfg,
                             /*stream_telemetry=*/true);
    tm_dropped_total += t.tm_dropped;
    if (b.session_canon != legacy.session_canon ||
        t.session_canon != legacy.session_canon ||
        b.alert_canon != legacy.alert_canon ||
        t.alert_canon != legacy.alert_canon) {
      tm_identical = false;
    }
    if (b.records_per_s > tm_base.records_per_s) tm_base = std::move(b);
    if (t.records_per_s > tm_tele.records_per_s) tm_tele = std::move(t);
  }
  const double tm_overhead =
      1.0 - tm_tele.records_per_s / tm_base.records_per_s;
  const bool gate_tm = tm_overhead <= 0.02;
  const bool gate_tm_drops = tm_dropped_total == 0;
  std::printf("without streamer: %10.0f records/s\n", tm_base.records_per_s);
  std::printf("with streamer:    %10.0f records/s  (%llu intervals, "
              "%zu wire bytes, %llu dropped)\n",
              tm_tele.records_per_s,
              static_cast<unsigned long long>(tm_tele.tm_intervals),
              tm_tele.tm_bytes,
              static_cast<unsigned long long>(tm_tele.tm_dropped));
  std::printf("streaming overhead: %.2f%% (gate: <= 2%%, %s%s); dropped "
              "intervals across %d runs: %llu (gate: == 0, %s)\n",
              tm_overhead * 100.0, gate_tm ? "PASS" : "FAIL",
              smoke ? ", not enforced in smoke mode" : "",
              tm_reps, static_cast<unsigned long long>(tm_dropped_total),
              gate_tm_drops ? "PASS" : "FAIL");

  // Identity gates: one session multiset, one alert sequence, everywhere.
  bool sessions_identical = true;
  bool alerts_identical = true;
  for (const auto& row : rows) {
    if (row.r.session_canon != legacy.session_canon) sessions_identical = false;
    if (row.r.alert_canon != legacy.alert_canon) alerts_identical = false;
  }
  sessions_identical = sessions_identical && tm_identical;
  alerts_identical = alerts_identical && tm_identical;
  std::printf("\nidentity: sessions %s (all 9 combos + legacy), "
              "alert sequence %s (%zu events)\n",
              sessions_identical ? "IDENTICAL" : "DIVERGED",
              alerts_identical ? "IDENTICAL" : "DIVERGED",
              legacy.alert_events);

  double best_single_shard = 0.0;
  for (const auto& row : rows) {
    if (row.shards == 1) {
      best_single_shard = std::max(best_single_shard, row.r.records_per_s);
    }
  }
  const double achieved = best_single_shard / legacy.records_per_s;
  const bool gate_5x = achieved >= 5.0;
  std::printf("single-shard speedup vs legacy: %.2fx (gate: >= 5x, %s%s)\n",
              achieved, gate_5x ? "PASS" : "FAIL",
              smoke ? ", not enforced in smoke mode" : "");

  std::ofstream json("BENCH_engine.json");
  json << "{\n  \"bench\": \"engine_throughput\",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  json << "  \"records\": " << feed.size() << ",\n";
  json << "  \"clients\": " << feed_cfg.num_clients << ",\n";
  json << "  \"legacy_baseline\": {\"seconds\": " << legacy.seconds
       << ", \"records_per_s\": " << legacy.records_per_s
       << ", \"sessions\": " << legacy.sessions
       << ", \"alert_events\": " << legacy.alert_events << "},\n";
  json << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    json << "    {\"shards\": " << row.shards << ", \"batch\": " << row.batch
         << ", \"seconds\": " << row.r.seconds
         << ", \"records_per_s\": " << row.r.records_per_s
         << ", \"speedup_vs_legacy\": "
         << row.r.records_per_s / legacy.records_per_s
         << ", \"sessions\": " << row.r.sessions
         << ", \"latency_p50_us\": " << row.r.p50_us
         << ", \"latency_p99_us\": " << row.r.p99_us << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ],\n";
  json << "  \"identity\": {\"sessions_identical\": "
       << (sessions_identical ? "true" : "false")
       << ", \"alerts_identical\": " << (alerts_identical ? "true" : "false")
       << ", \"alert_events\": " << legacy.alert_events << "},\n";
  json << "  \"gate_5x\": {\"required\": 5.0, \"achieved\": " << achieved
       << ", \"pass\": " << (gate_5x ? "true" : "false") << "},\n";
  json << "  \"telemetry\": {\"baseline_records_per_s\": "
       << tm_base.records_per_s
       << ", \"streaming_records_per_s\": " << tm_tele.records_per_s
       << ", \"overhead\": " << tm_overhead
       << ", \"intervals\": " << tm_tele.tm_intervals
       << ", \"wire_bytes\": " << tm_tele.tm_bytes
       << ", \"dropped_intervals\": " << tm_dropped_total
       << ", \"gate_2pct_pass\": " << (gate_tm ? "true" : "false")
       << ", \"gate_drops_pass\": " << (gate_tm_drops ? "true" : "false")
       << "}\n";
  json << "}\n";
  std::printf("\nwrote BENCH_engine.json\n");

  if (!sessions_identical || !alerts_identical) {
    std::fprintf(stderr,
                 "[bench] FAIL: batched/sharded runs diverged from the "
                 "unbatched baseline\n");
    return 1;
  }
  if (!gate_tm_drops) {
    std::fprintf(stderr,
                 "[bench] FAIL: telemetry frame queue dropped %llu "
                 "intervals in the default configuration\n",
                 static_cast<unsigned long long>(tm_dropped_total));
    return 1;
  }
  if (!smoke && !gate_5x) {
    std::fprintf(stderr,
                 "[bench] FAIL: single-shard speedup %.2fx below the 5x "
                 "gate\n",
                 achieved);
    return 1;
  }
  if (!smoke && !gate_tm) {
    std::fprintf(stderr,
                 "[bench] FAIL: telemetry streaming overhead %.2f%% above "
                 "the 2%% gate\n",
                 tm_overhead * 100.0);
    return 1;
  }
  return 0;
}
