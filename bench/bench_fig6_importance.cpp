// Figure 6: top-10 Random Forest feature importances per service
// (combined QoE target, full 38-feature set).
#include <set>

#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Figure 6 - Top-10 feature importances per service",
                      "Fig. 6a/6b/6c");

  std::map<std::string, std::set<std::string>> top10_by_service;
  for (const char* svc : {"Svc1", "Svc2", "Svc3"}) {
    const auto& ds = bench::dataset_for(svc);
    core::QoeEstimator est;
    est.train(ds);
    const auto imp = est.feature_importances();

    std::printf("%s:\n", svc);
    std::vector<std::pair<std::string, double>> top;
    for (std::size_t i = 0; i < 10 && i < imp.size(); ++i) {
      top.emplace_back(imp[i].first, imp[i].second);
      top10_by_service[svc].insert(imp[i].first);
    }
    std::printf("%s\n", util::bar_chart(top, 36).c_str());
  }

  // Paper: 4 features appear in the top-10 of all three services
  // (SDR_DL, TDR_MED, D2U_MED, CUM_DL_60s); 8 appear in only one.
  std::set<std::string> in_all;
  std::map<std::string, int> appearance;
  for (const auto& [svc, names] : top10_by_service) {
    for (const auto& n : names) ++appearance[n];
  }
  std::printf("features in the top-10 of all three services:");
  int common = 0, unique = 0;
  for (const auto& [name, count] : appearance) {
    if (count == 3) {
      std::printf(" %s", name.c_str());
      ++common;
    }
    if (count == 1) ++unique;
  }
  std::printf("\n  -> %d features common to all services (paper: 4, incl. "
              "SDR_DL, TDR_MED, D2U_MED, CUM_DL_60s)\n", common);
  std::printf("  -> %d features appear in only one service (paper: 8) - "
              "service designs differ\n", unique);
  return 0;
}
