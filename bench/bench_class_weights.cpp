// Extension ablation: the recall/precision operating point. The paper
// "particularly focuses on the recall value" for the low class, since
// missed problems cost more than false escalations (which the packet
// pipeline later filters). Class weights move along that trade-off.
#include "bench_common.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Ablation - class weighting (recall vs precision)",
                      "Section 4.2 rationale for focusing on recall");

  const auto& ds = bench::dataset_for("Svc2");
  const auto data = core::make_tls_dataset(ds, core::QoeTarget::kCombined);

  util::TextTable table({"low-class weight", "accuracy", "recall(low)",
                         "precision(low)", "f1(low)"});
  for (double w : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    ml::RandomForestParams params;
    // Weighting acts through leaf probabilities, so leaves must stay
    // impure — fully-grown trees have one-hot leaves that ignore weights.
    params.min_samples_leaf = 10;
    params.class_weights = {w, 1.0, 1.0};
    auto factory = [params]() -> std::unique_ptr<ml::Classifier> {
      return std::make_unique<ml::RandomForest>(params);
    };
    const auto cv = ml::cross_validate(data, factory, 5, 42 ^ 0xcafeULL);
    table.add_row({util::fixed(w, 1), bench::pct0(cv.accuracy()),
                   bench::pct0(cv.recall(0)), bench::pct0(cv.precision(0)),
                   bench::pct0(cv.pooled.f1(0))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: up-weighting the low class buys recall at\n"
              "the cost of precision (more sessions escalated to the\n"
              "packet pipeline); weight 1 sits near the F1 optimum. An ISP\n"
              "tunes this to its escalation budget.\n");
  return 0;
}
