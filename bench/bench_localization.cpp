// Extension bench: the end goal — localizing underperforming network
// locations from coarse data ("identify parts of the network that
// underperform in a lightweight manner", Section 1). How many sessions
// per location does the TLS-based detector need before degraded
// locations are credibly flagged and healthy ones left alone?
#include "bench_common.hpp"
#include "core/aggregator.hpp"
#include "core/estimator.hpp"
#include "has/player.hpp"
#include "net/link_model.hpp"
#include "net/trace_generator.hpp"
#include "trace/connection_manager.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

/// Simulate `n` sessions at a location with the given congestion level
/// and feed the estimator's verdicts into the aggregator.
void observe_location(const std::string& name, double congestion,
                      std::size_t n, const core::QoeEstimator& est,
                      core::LocationAggregator& agg, util::Rng& rng) {
  net::TraceGenerator gen(rng());
  const auto svc = has::svc1_profile();
  const auto catalog = has::VideoCatalog::generate(svc.name, 20, rng());
  const has::PlayerSimulator player;
  for (std::size_t i = 0; i < n; ++i) {
    auto bw = gen.generate(net::Environment::kLte, 600.0);
    std::vector<net::BandwidthSample> squeezed;
    for (const auto& s : bw.samples()) {
      squeezed.push_back({s.t_s, s.kbps * (1.0 - congestion)});
    }
    const net::BandwidthTrace trace(std::move(squeezed), bw.duration_s(),
                                    net::Environment::kLte);
    const net::LinkModel link(trace);
    auto playback = player.play(svc, catalog.sample(rng), link,
                                rng.uniform(60.0, 300.0), rng);
    const trace::ConnectionManager conns(svc.connections, rng);
    const auto tls = conns.collect(playback.http, rng);
    agg.record(name, est.predict(tls));
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Extension - localizing degraded network locations",
      "Section 1 use case (detect underperforming locations, escalate)");

  core::QoeEstimator est;
  est.train(bench::dataset_for("Svc1"));

  // 12 healthy LTE cells, 4 congested ones.
  struct Cell {
    std::string name;
    double congestion;
    bool degraded;
  };
  std::vector<Cell> cells;
  for (int i = 0; i < 12; ++i) {
    cells.push_back({"cell-h" + std::to_string(i), 0.05, false});
  }
  for (int i = 0; i < 4; ++i) {
    cells.push_back({"cell-D" + std::to_string(i), 0.93, true});
  }

  util::TextTable table({"sessions/location", "degraded flagged (of 4)",
                         "healthy flagged (of 12)"});
  for (std::size_t n : {5u, 10u, 20u, 40u}) {
    core::AggregatorConfig cfg;
    cfg.alert_rate = 0.5;
    cfg.min_sessions = 5;
    core::LocationAggregator agg(cfg);
    util::Rng rng(bench::kBenchSeed + n);
    for (const auto& c : cells) {
      observe_location(c.name, c.congestion, n, est, agg, rng);
    }
    std::size_t tp = 0, fp = 0;
    for (const auto& f : agg.flagged()) {
      bool degraded = false;
      for (const auto& c : cells) {
        if (c.name == f.location) degraded = c.degraded;
      }
      (degraded ? tp : fp) += 1;
    }
    table.add_row({std::to_string(n), std::to_string(tp), std::to_string(fp)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("expected shape: with a Wilson-interval gate, a few tens of\n"
              "sessions per location suffice to flag every congested cell\n"
              "without false alarms - the 'lightweight network-wide\n"
              "monitoring' the paper argues coarse data enables.\n");
  return 0;
}
