// Session-identification parameter sweep around the paper's operating
// point (W=3 s, Nmin=2, delta_min=0.5).
#include "bench_common.hpp"
#include "core/session_id.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

struct Outcome {
  double new_recall = 0.0;
  double existing_acc = 0.0;
};

Outcome evaluate(const core::SessionIdParams& params) {
  std::size_t tp = 0, fn = 0, fp = 0, tn = 0;
  for (std::uint64_t i = 0; i < 25; ++i) {
    const auto stream =
        core::build_back_to_back(has::svc1_profile(), 8, bench::kBenchSeed + i);
    const auto pred = core::detect_session_starts(stream.merged, params);
    for (std::size_t j = 0; j < pred.size(); ++j) {
      if (stream.truth_new[j] && pred[j]) ++tp;
      else if (stream.truth_new[j]) ++fn;
      else if (pred[j]) ++fp;
      else ++tn;
    }
  }
  return {static_cast<double>(tp) / std::max<std::size_t>(1, tp + fn),
          static_cast<double>(tn) / std::max<std::size_t>(1, tn + fp)};
}

}  // namespace

int main() {
  bench::print_header("Ablation - session-identification parameters",
                      "Section 4.2 heuristic (W=3 s, Nmin=2, delta=0.5)");

  util::TextTable table({"W (s)", "Nmin", "delta_min", "new recall",
                         "existing correct"});
  struct Case {
    double w;
    std::size_t n;
    double d;
    bool is_paper;
  };
  const Case cases[] = {
      {3.0, 2, 0.5, true},   // the paper's operating point
      {1.0, 2, 0.5, false},  // narrower burst window
      {6.0, 2, 0.5, false},  // wider window
      {3.0, 1, 0.5, false},  // weaker burst requirement
      {3.0, 4, 0.5, false},  // stronger burst requirement
      {3.0, 2, 0.25, false}, // laxer freshness
      {3.0, 2, 0.75, false}, // stricter freshness
  };
  for (const auto& c : cases) {
    const auto o = evaluate({.window_s = c.w, .n_min = c.n, .delta_min = c.d});
    table.add_row({util::fixed(c.w, 0) + (c.is_paper ? " (paper)" : ""),
                   std::to_string(c.n), util::fixed(c.d, 2),
                   bench::pct0(o.new_recall), bench::pct0(o.existing_acc)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: the paper's point balances the two error types -\n"
              "loosening Nmin or delta inflates false session starts, while\n"
              "tightening them misses real ones.\n");
  return 0;
}
