// Table 2: confusion matrix for the combined QoE metric in Svc1
// (Random Forest, 5-fold CV, row-normalized percentages).
#include "bench_common.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Table 2 - Confusion matrix, Svc1 combined QoE",
                      "Table 2");

  const auto& ds = bench::dataset_for("Svc1");
  const auto cv = core::evaluate_tls(ds, core::QoeTarget::kCombined);
  std::printf("%s\n", cv.pooled.render({"low", "med", "high"}).c_str());
  std::printf("overall accuracy: %s\n\n", bench::pct0(cv.accuracy()).c_str());

  std::printf("paper Table 2 for comparison:\n");
  std::printf("  | actual | #sessions | -> low | -> med | -> high |\n");
  std::printf("  | low    | 632       | 72%%    | 21%%    | 8%%      |\n");
  std::printf("  | med    | 599       | 25%%    | 43%%    | 32%%     |\n");
  std::printf("  | high   | 880       | 5%%     | 12%%    | 84%%     |\n\n");
  std::printf("paper shape: misclassifications concentrate between\n"
              "neighboring classes; medium is hardest; low and high are\n"
              "classified with high accuracy.\n");

  // Machine-checkable shape assertions (reported, not enforced).
  const auto& cm = cv.pooled;
  auto frac = [&](int a, int p) {
    return static_cast<double>(cm.count(a, p)) /
           std::max<std::size_t>(1, cm.actual_total(a));
  };
  std::printf("\nshape check:\n");
  std::printf("  low->high leakage  %.1f%% (paper 8%%)  %s\n",
              100.0 * frac(0, 2), frac(0, 2) < 0.15 ? "OK" : "DIVERGES");
  std::printf("  med is worst class %s\n",
              (cm.recall(1) <= cm.recall(0) && cm.recall(1) <= cm.recall(2))
                  ? "OK" : "DIVERGES");
  return 0;
}
