// Ablation: Random Forest hyperparameters (ensemble size, tree depth,
// per-split feature sampling) on the combined QoE target. The paper uses
// scikit-learn defaults; this sweep shows how sensitive the headline
// result is to those choices.
#include "bench_common.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

core::Scores run(const ml::Dataset& data, ml::RandomForestParams params) {
  auto factory = [params]() -> std::unique_ptr<ml::Classifier> {
    return std::make_unique<ml::RandomForest>(params);
  };
  return core::scores_from(ml::cross_validate(data, factory, 5, 42 ^ 0xcafeULL));
}

}  // namespace

int main() {
  bench::print_header("Ablation - Random Forest hyperparameters",
                      "Section 4.2 model configuration");

  const auto& ds = bench::dataset_for("Svc1");
  const auto data = core::make_tls_dataset(ds, core::QoeTarget::kCombined);

  std::printf("Ensemble size (max_depth=24, mtry=sqrt):\n");
  util::TextTable trees({"num_trees", "accuracy", "recall(low)"});
  for (std::size_t n : {1u, 5u, 20u, 50u, 100u, 200u}) {
    ml::RandomForestParams p;
    p.num_trees = n;
    const auto s = run(data, p);
    trees.add_row({std::to_string(n), bench::pct0(s.accuracy),
                   bench::pct0(s.recall_low)});
  }
  std::printf("%s\n", trees.render().c_str());

  std::printf("Tree depth (100 trees):\n");
  util::TextTable depth({"max_depth", "accuracy", "recall(low)"});
  for (int d : {2, 4, 8, 16, 24}) {
    ml::RandomForestParams p;
    p.max_depth = d;
    const auto s = run(data, p);
    depth.add_row({std::to_string(d), bench::pct0(s.accuracy),
                   bench::pct0(s.recall_low)});
  }
  std::printf("%s\n", depth.render().c_str());

  std::printf("Features per split (100 trees, depth 24; 38 features total):\n");
  util::TextTable mtry({"max_features", "accuracy", "recall(low)"});
  for (std::size_t m : {1u, 3u, 6u, 12u, 24u, 38u}) {
    ml::RandomForestParams p;
    p.max_features = m;
    const auto s = run(data, p);
    mtry.add_row({std::to_string(m), bench::pct0(s.accuracy),
                  bench::pct0(s.recall_low)});
  }
  std::printf("%s\n", mtry.render().c_str());

  std::printf("expected shape: accuracy saturates by ~50 trees and depth\n"
              "~8-16; very small mtry or a single stump-like tree loses\n"
              "several points - the headline result is robust to the exact\n"
              "configuration, as ensemble methods usually are.\n");
  return 0;
}
