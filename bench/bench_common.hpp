// Shared scaffolding for the experiment benches.
//
// Every bench regenerates the paper-scale dataset deterministically from a
// fixed seed (scale down with DROPPKT_SESSIONS_SCALE=0.1 for quick runs)
// and prints the corresponding paper table/figure as text, alongside the
// paper's reported numbers for comparison.
#pragma once

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "core/dataset_builder.hpp"
#include "core/pipeline.hpp"

namespace droppkt::bench {

/// Master seed shared by all benches so figures are mutually consistent.
inline constexpr std::uint64_t kBenchSeed = 20201204;

/// Paper-scale dataset for one service (cached per process).
inline const core::LabeledDataset& dataset_for(const std::string& service) {
  static std::map<std::string, core::LabeledDataset> cache;
  auto it = cache.find(service);
  if (it == cache.end()) {
    core::DatasetConfig cfg;
    cfg.seed = kBenchSeed;
    const auto t0 = std::chrono::steady_clock::now();
    auto ds = core::build_dataset(has::service_by_name(service), cfg);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::fprintf(stderr, "[bench] simulated %zu %s sessions in %lld ms\n",
                 ds.size(), service.c_str(), static_cast<long long>(ms));
    it = cache.emplace(service, std::move(ds)).first;
  }
  return it->second;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n\n");
}

inline std::string pct0(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * fraction);
  return buf;
}

}  // namespace droppkt::bench
