// Extension bench (paper Section 5): live content. A live player cannot
// buffer ahead of the broadcast edge, so its traffic is paced at real
// time — how do the QoE mix and the estimator change?
#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Extension - live content vs video-on-demand",
                      "Section 5 future work (live service types)");

  const auto live = has::svc_live_profile();
  core::DatasetConfig cfg;
  cfg.num_sessions = 1500;
  cfg.seed = bench::kBenchSeed;
  const auto live_ds = core::build_dataset(live, cfg);
  const auto& vod_ds = bench::dataset_for("Svc1");

  // QoE mix: live should stall more (no buffer to ride out dips).
  auto mix = [](const core::LabeledDataset& ds, core::QoeTarget t, int cls) {
    std::size_t n = 0;
    for (const auto& s : ds) n += s.labels.label_for(t) == cls;
    return static_cast<double>(n) / ds.size();
  };
  util::TextTable qoe({"corpus", "#sessions", "high rebuf", "zero rebuf",
                       "low quality", "low combined"});
  struct Corpus {
    const char* name;
    const core::LabeledDataset* data;
  };
  const Corpus corpora[] = {{"VOD (Svc1)", &vod_ds}, {"Live", &live_ds}};
  for (const auto& c : corpora) {
    qoe.add_row({c.name, std::to_string(c.data->size()),
                 bench::pct0(mix(*c.data, core::QoeTarget::kRebuffering, 0)),
                 bench::pct0(mix(*c.data, core::QoeTarget::kRebuffering, 2)),
                 bench::pct0(mix(*c.data, core::QoeTarget::kVideoQuality, 0)),
                 bench::pct0(mix(*c.data, core::QoeTarget::kCombined, 0))});
  }
  std::printf("%s\n", qoe.render().c_str());

  // Estimation accuracy on live traffic, and VOD->live transfer.
  const auto live_cv = core::evaluate_tls(live_ds, core::QoeTarget::kCombined);
  std::printf("live-trained, live-tested (5-fold CV): accuracy %s, "
              "recall(low) %s\n",
              bench::pct0(live_cv.accuracy()).c_str(),
              bench::pct0(live_cv.recall(0)).c_str());

  core::QoeEstimator vod_model;
  vod_model.train(vod_ds);
  std::size_t correct = 0;
  for (const auto& s : live_ds) {
    correct += vod_model.predict(s.record.tls) == s.labels.combined;
  }
  std::printf("VOD-trained, live-tested (transfer):   accuracy %s\n\n",
              bench::pct0(static_cast<double>(correct) / live_ds.size()).c_str());

  std::printf("expected shape: live sessions stall more and show a\n"
              "different traffic envelope (real-time pacing), so the VOD\n"
              "model transfers poorly - per-service-type training is needed,\n"
              "as the paper anticipates.\n");
  return 0;
}
