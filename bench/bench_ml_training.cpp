// ML training engine benchmark: thread-pool forest fitting and the
// presorted split search vs the legacy per-node re-sort.
//
// Not a paper figure: every accuracy/ablation result in EXPERIMENTS.md
// retrains Random Forests dozens of times, so fit throughput bounds how
// fast the whole evaluation suite iterates. This bench pins down the perf
// trajectory: it times forest fitting on the standard synthetic dataset
// at 1/2/4/8 threads, times the legacy algorithm (re-sorting (value,
// label) pairs at every node, exactly what src/ml/decision_tree.cpp did
// before the presorted column-index structure) as the single-thread
// baseline, verifies the fitted forest is bit-identical across thread
// counts, and measures batch-prediction throughput.
//
// Thread speedup requires physical cores — on a 1-core container the
// curve is flat and only the algorithmic (presorted vs re-sort) speedup
// shows. `hardware_concurrency` is recorded in BENCH_ml.json so readers
// can interpret the numbers.
//
// Usage:
//   bench_ml_training          full run, writes BENCH_ml.json to the cwd
//   bench_ml_training --smoke  tiny dataset, no JSON — CI exercises the
//                              parallel path under -O2 in seconds
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "ml/cross_validation.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using droppkt::ml::Dataset;
using droppkt::util::Rng;

/// Standard synthetic dataset: 38 features like the paper's TLS feature
/// vector — 8 informative (class-shifted means at varying scales), the
/// rest pure noise — 3 QoE-like classes.
Dataset make_synthetic(std::size_t rows, std::uint64_t seed) {
  constexpr std::size_t kFeatures = 38;
  constexpr std::size_t kInformative = 8;
  std::vector<std::string> names;
  names.reserve(kFeatures);
  for (std::size_t f = 0; f < kFeatures; ++f) {
    std::string name = "f";
    name += std::to_string(f);
    names.push_back(std::move(name));
  }
  Dataset data(std::move(names), 3);
  data.reserve(rows);
  Rng rng(seed);
  std::vector<double> row(kFeatures);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, 2));
    for (std::size_t f = 0; f < kInformative; ++f) {
      const double scale = 1.0 + static_cast<double>(f);
      row[f] = label * scale + rng.normal(0.0, 2.0 * scale);
    }
    for (std::size_t f = kInformative; f < kFeatures; ++f) {
      row[f] = rng.normal();
    }
    data.add_row(row, label);
  }
  return data;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// Legacy baseline: the pre-PR-2 split search. Every node re-collects and
// re-sorts (value, label) pairs per candidate feature — O(F·W log W) per
// node. Kept here (not in the library) purely as the bench's reference
// workload; bootstrap/seed draws mirror RandomForest::fit so the forests
// are structurally comparable.
namespace legacy {

struct Node {
  int feature = -1;
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
};

struct Tree {
  std::vector<Node> nodes;
  std::size_t max_features = 0;
  int max_depth = 24;

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices,
                     int depth, Rng& rng) {
    std::vector<double> counts(static_cast<std::size_t>(data.num_classes()), 0.0);
    for (std::size_t i : indices) {
      counts[static_cast<std::size_t>(data.label(i))] += 1.0;
    }
    const double total = static_cast<double>(indices.size());
    double sum_sq = 0.0;
    for (double c : counts) sum_sq += (c / total) * (c / total);
    const double node_gini = 1.0 - sum_sq;

    auto make_leaf = [&]() -> std::int32_t {
      nodes.push_back(Node{});
      return static_cast<std::int32_t>(nodes.size() - 1);
    };
    if (node_gini <= 1e-12 || depth >= max_depth || indices.size() < 2) {
      return make_leaf();
    }

    std::vector<std::size_t> features;
    const auto perm = rng.permutation(data.num_features());
    features.assign(perm.begin(),
                    perm.begin() + static_cast<std::ptrdiff_t>(max_features));

    struct Best {
      double impurity = 1e18;
      int feature = -1;
      double threshold = 0.0;
    } best;
    std::vector<std::pair<double, int>> sorted;
    sorted.reserve(indices.size());
    std::vector<double> left_counts(counts.size());

    for (std::size_t f : features) {
      sorted.clear();
      for (std::size_t i : indices) {
        sorted.emplace_back(data.row(i)[f], data.label(i));
      }
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front().first == sorted.back().first) continue;
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      double w_left = 0.0;
      const std::size_t n = sorted.size();
      for (std::size_t i = 0; i + 1 < n; ++i) {
        left_counts[static_cast<std::size_t>(sorted[i].second)] += 1.0;
        w_left += 1.0;
        if (sorted[i].first == sorted[i + 1].first) continue;
        const double w_right = total - w_left;
        if (w_right <= 0.0) continue;
        double lg = 0.0, rg = 0.0;
        for (std::size_t c = 0; c < left_counts.size(); ++c) {
          const double pl = left_counts[c] / w_left;
          lg += pl * pl;
          const double pr = (counts[c] - left_counts[c]) / w_right;
          rg += pr * pr;
        }
        const double weighted =
            (w_left * (1.0 - lg) + w_right * (1.0 - rg)) / total;
        if (weighted < best.impurity) {
          best.impurity = weighted;
          best.feature = static_cast<int>(f);
          double thr = 0.5 * (sorted[i].first + sorted[i + 1].first);
          if (!(thr >= sorted[i].first && thr < sorted[i + 1].first)) {
            thr = sorted[i].first;
          }
          best.threshold = thr;
        }
      }
    }

    if (best.feature < 0 || best.impurity >= node_gini - 1e-12) {
      return make_leaf();
    }
    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t i : indices) {
      if (data.row(i)[static_cast<std::size_t>(best.feature)] <=
          best.threshold) {
        left_idx.push_back(i);
      } else {
        right_idx.push_back(i);
      }
    }
    indices.clear();
    indices.shrink_to_fit();
    Node node;
    node.feature = best.feature;
    node.threshold = best.threshold;
    nodes.push_back(node);
    const auto me = static_cast<std::int32_t>(nodes.size() - 1);
    const std::int32_t l = build(data, left_idx, depth + 1, rng);
    const std::int32_t r = build(data, right_idx, depth + 1, rng);
    nodes[static_cast<std::size_t>(me)].left = l;
    nodes[static_cast<std::size_t>(me)].right = r;
    return me;
  }
};

/// Sequential forest fit with the legacy split search; returns total node
/// count (consumed so the work is not optimized away).
std::size_t fit_forest(const Dataset& data, std::size_t num_trees,
                       std::uint64_t seed) {
  const std::size_t n = data.size();
  const auto mtry = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(std::sqrt(static_cast<double>(data.num_features())))));
  Rng rng(seed);
  std::size_t total_nodes = 0;
  for (std::size_t t = 0; t < num_trees; ++t) {
    std::vector<std::size_t> sample(n);
    for (std::size_t i = 0; i < n; ++i) {
      sample[i] = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    Tree tree;
    tree.max_features = mtry;
    Rng tree_rng(rng());
    tree.build(data, sample, 0, tree_rng);
    total_nodes += tree.nodes.size();
  }
  return total_nodes;
}

}  // namespace legacy

struct FitRun {
  std::size_t threads = 0;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace droppkt;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t rows = smoke ? 300 : 6000;
  const std::size_t test_rows = smoke ? 200 : 20000;
  const std::size_t num_trees = smoke ? 12 : 100;
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};

  std::printf("=========================================================\n");
  std::printf("ML training engine: parallel forests + presorted splits\n");
  std::printf("mode: %s | hardware_concurrency: %zu\n",
              smoke ? "smoke" : "full",
              util::ThreadPool::recommended_threads());
  std::printf("=========================================================\n\n");

  const Dataset train = make_synthetic(rows, 7777);
  const Dataset test = make_synthetic(test_rows, 8888);
  std::printf("dataset: %zu rows x %zu features, %d classes; %zu trees\n\n",
              train.size(), train.num_features(), train.num_classes(),
              num_trees);

  // Legacy single-thread baseline: per-node re-sort split search.
  const auto t_legacy = std::chrono::steady_clock::now();
  const std::size_t legacy_nodes = legacy::fit_forest(train, num_trees, 42);
  const double legacy_s = seconds_since(t_legacy);
  std::printf("legacy re-sort fit (1 thread): %7.2f s  (%zu nodes)\n",
              legacy_s, legacy_nodes);

  // Presorted engine at increasing thread counts.
  ml::RandomForestParams params;
  params.num_trees = num_trees;
  params.seed = 42;
  std::vector<FitRun> runs;
  std::string model_1t;
  bool deterministic = true;
  for (const std::size_t threads : thread_counts) {
    params.num_threads = threads;
    ml::RandomForest forest(params);
    const auto t0 = std::chrono::steady_clock::now();
    forest.fit(train);
    const double fit_s = seconds_since(t0);
    runs.push_back({threads, fit_s});

    std::stringstream model;
    forest.save(model);
    if (threads == thread_counts.front()) {
      model_1t = model.str();
    } else if (model.str() != model_1t) {
      deterministic = false;
    }
    const double vs_1t = runs.front().seconds / fit_s;
    const double vs_legacy = legacy_s / fit_s;
    std::printf(
        "presorted fit (%zu thread%s):     %7.2f s  "
        "(%4.2fx vs 1t, %4.2fx vs legacy)\n",
        threads, threads == 1 ? "" : "s", fit_s, vs_1t, vs_legacy);
  }
  std::printf("bit-identical across thread counts: %s\n\n",
              deterministic ? "yes" : "NO — BUG");

  // Batch prediction throughput.
  params.num_threads = 1;
  ml::RandomForest forest(params);
  forest.fit(train);
  const auto c_count = static_cast<std::size_t>(train.num_classes());
  std::vector<double> proba(test.size() * c_count);
  const auto t_p1 = std::chrono::steady_clock::now();
  forest.predict_proba_batch(test, proba, 1);
  const double predict_1t_s = seconds_since(t_p1);
  const std::size_t max_threads = thread_counts.back();
  const auto t_pn = std::chrono::steady_clock::now();
  forest.predict_proba_batch(test, proba, max_threads);
  const double predict_nt_s = seconds_since(t_pn);
  const double thr_1t = static_cast<double>(test.size()) / predict_1t_s;
  const double thr_nt = static_cast<double>(test.size()) / predict_nt_s;
  std::printf("batch predict: %zu rows | %.0f rows/s (1 thread) | "
              "%.0f rows/s (%zu threads)\n",
              test.size(), thr_1t, thr_nt, max_threads);

  // Fold-parallel cross-validation (the paper's evaluation loop).
  double cv_1t_s = 0.0, cv_nt_s = 0.0;
  if (!smoke) {
    auto factory = [] {
      ml::RandomForestParams p;
      p.num_trees = 30;
      p.num_threads = 1;  // CV-level parallelism is the measured axis
      return std::unique_ptr<ml::Classifier>(new ml::RandomForest(p));
    };
    const auto t_cv1 = std::chrono::steady_clock::now();
    const auto cv_a = ml::cross_validate(train, factory, 5, 1234, 1);
    cv_1t_s = seconds_since(t_cv1);
    const auto t_cvn = std::chrono::steady_clock::now();
    const auto cv_b = ml::cross_validate(train, factory, 5, 1234, 5);
    cv_nt_s = seconds_since(t_cvn);
    std::printf("5-fold CV (30-tree forests): %.2f s sequential | %.2f s "
                "fold-parallel | accuracy %.3f (identical: %s)\n",
                cv_1t_s, cv_nt_s, cv_a.accuracy(),
                cv_a.accuracy() == cv_b.accuracy() ? "yes" : "NO — BUG");
  }

  if (!smoke) {
    std::ofstream json("BENCH_ml.json");
    json << "{\n  \"bench\": \"ml_training\",\n";
    json << "  \"hardware_concurrency\": "
         << util::ThreadPool::recommended_threads() << ",\n";
    json << "  \"dataset\": {\"rows\": " << train.size()
         << ", \"features\": " << train.num_features()
         << ", \"classes\": " << train.num_classes() << "},\n";
    json << "  \"forest\": {\"num_trees\": " << num_trees
         << ", \"max_depth\": " << params.max_depth << "},\n";
    json << "  \"legacy_resort_fit_seconds\": " << legacy_s << ",\n";
    json << "  \"fit_runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      json << "    {\"threads\": " << r.threads
           << ", \"seconds\": " << r.seconds
           << ", \"speedup_vs_1t\": " << runs.front().seconds / r.seconds
           << ", \"speedup_vs_legacy\": " << legacy_s / r.seconds << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"deterministic_across_threads\": "
         << (deterministic ? "true" : "false") << ",\n";
    json << "  \"predict\": {\"rows\": " << test.size()
         << ", \"rows_per_s_1t\": " << thr_1t << ", \"rows_per_s_"
         << max_threads << "t\": " << thr_nt << "},\n";
    json << "  \"cross_validation\": {\"k\": 5, \"seconds_sequential\": "
         << cv_1t_s << ", \"seconds_fold_parallel\": " << cv_nt_s << "}\n";
    json << "}\n";
    std::printf("\nwrote BENCH_ml.json\n");
  }

  return deterministic ? 0 : 1;
}
