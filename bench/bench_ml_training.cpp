// ML training engine benchmark: thread-pool forest fitting (exact and
// histogram split search), the legacy per-node re-sort baseline, and
// compiled flat-forest batch inference.
//
// Not a paper figure: every accuracy/ablation result in EXPERIMENTS.md
// retrains Random Forests dozens of times, so fit throughput bounds how
// fast the whole evaluation suite iterates. This bench pins down the perf
// trajectory: it times forest fitting on the standard synthetic dataset
// at 1/2/4/8 threads for both split methods with a per-phase timing
// breakdown (bootstrap draw / column build / tree training / OOB merge),
// times the legacy algorithm (re-sorting (value, label) pairs at every
// node, exactly what src/ml/decision_tree.cpp did before the presorted
// column-index structure) as the single-thread baseline, and measures
// batch-prediction throughput of the tree-walk forest against
// ml::CompiledForest.
//
// The run is also a gate, not just a report — it exits non-zero if any
// of these fail:
//   * either split method produces thread-count-dependent models;
//   * histogram-split holdout accuracy drifts from the exact search by
//     more than the tolerance;
//   * CompiledForest probabilities differ from the tree-walk forest's by
//     even one bit;
//   * (full mode) CompiledForest throughput is below 10x the tree-walk
//     batch path measured in the same run.
// Fold-parallel CV slower than sequential CV is a gate on multi-core
// hosts and a warning on 1-core containers (there is nothing to win).
//
// Thread speedup requires physical cores — on a 1-core container the
// curve is flat and only the algorithmic speedups (presorted vs re-sort,
// histogram vs exact, compiled vs tree-walk) show. `hardware_concurrency`
// is recorded in BENCH_ml.json so readers can interpret the numbers.
//
// Usage:
//   bench_ml_training          full run, writes BENCH_ml.json to the cwd
//   bench_ml_training --smoke  tiny dataset, no JSON — CI exercises the
//                              parallel path and all correctness gates
//                              under -O2 in seconds
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ml/compiled_forest.hpp"
#include "ml/cross_validation.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using droppkt::ml::Dataset;
using droppkt::util::Rng;

/// Standard synthetic dataset: 38 features like the paper's TLS feature
/// vector — 8 informative (class-shifted means at varying scales), the
/// rest pure noise — 3 QoE-like classes.
Dataset make_synthetic(std::size_t rows, std::uint64_t seed) {
  constexpr std::size_t kFeatures = 38;
  constexpr std::size_t kInformative = 8;
  std::vector<std::string> names;
  names.reserve(kFeatures);
  for (std::size_t f = 0; f < kFeatures; ++f) {
    std::string name = "f";
    name += std::to_string(f);
    names.push_back(std::move(name));
  }
  Dataset data(std::move(names), 3);
  data.reserve(rows);
  Rng rng(seed);
  std::vector<double> row(kFeatures);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, 2));
    for (std::size_t f = 0; f < kInformative; ++f) {
      const double scale = 1.0 + static_cast<double>(f);
      row[f] = label * scale + rng.normal(0.0, 2.0 * scale);
    }
    for (std::size_t f = kInformative; f < kFeatures; ++f) {
      row[f] = rng.normal();
    }
    data.add_row(row, label);
  }
  return data;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// Legacy baseline: the pre-PR-2 split search. Every node re-collects and
// re-sorts (value, label) pairs per candidate feature — O(F·W log W) per
// node. Kept here (not in the library) purely as the bench's reference
// workload; bootstrap/seed draws mirror RandomForest::fit so the forests
// are structurally comparable.
namespace legacy {

struct Node {
  int feature = -1;
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
};

struct Tree {
  std::vector<Node> nodes;
  std::size_t max_features = 0;
  int max_depth = 24;

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices,
                     int depth, Rng& rng) {
    std::vector<double> counts(static_cast<std::size_t>(data.num_classes()), 0.0);
    for (std::size_t i : indices) {
      counts[static_cast<std::size_t>(data.label(i))] += 1.0;
    }
    const double total = static_cast<double>(indices.size());
    double sum_sq = 0.0;
    for (double c : counts) sum_sq += (c / total) * (c / total);
    const double node_gini = 1.0 - sum_sq;

    auto make_leaf = [&]() -> std::int32_t {
      nodes.push_back(Node{});
      return static_cast<std::int32_t>(nodes.size() - 1);
    };
    if (node_gini <= 1e-12 || depth >= max_depth || indices.size() < 2) {
      return make_leaf();
    }

    std::vector<std::size_t> features;
    const auto perm = rng.permutation(data.num_features());
    features.assign(perm.begin(),
                    perm.begin() + static_cast<std::ptrdiff_t>(max_features));

    struct Best {
      double impurity = 1e18;
      int feature = -1;
      double threshold = 0.0;
    } best;
    std::vector<std::pair<double, int>> sorted;
    sorted.reserve(indices.size());
    std::vector<double> left_counts(counts.size());

    for (std::size_t f : features) {
      sorted.clear();
      for (std::size_t i : indices) {
        sorted.emplace_back(data.row(i)[f], data.label(i));
      }
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front().first == sorted.back().first) continue;
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      double w_left = 0.0;
      const std::size_t n = sorted.size();
      for (std::size_t i = 0; i + 1 < n; ++i) {
        left_counts[static_cast<std::size_t>(sorted[i].second)] += 1.0;
        w_left += 1.0;
        if (sorted[i].first == sorted[i + 1].first) continue;
        const double w_right = total - w_left;
        if (w_right <= 0.0) continue;
        double lg = 0.0, rg = 0.0;
        for (std::size_t c = 0; c < left_counts.size(); ++c) {
          const double pl = left_counts[c] / w_left;
          lg += pl * pl;
          const double pr = (counts[c] - left_counts[c]) / w_right;
          rg += pr * pr;
        }
        const double weighted =
            (w_left * (1.0 - lg) + w_right * (1.0 - rg)) / total;
        if (weighted < best.impurity) {
          best.impurity = weighted;
          best.feature = static_cast<int>(f);
          double thr = 0.5 * (sorted[i].first + sorted[i + 1].first);
          if (!(thr >= sorted[i].first && thr < sorted[i + 1].first)) {
            thr = sorted[i].first;
          }
          best.threshold = thr;
        }
      }
    }

    if (best.feature < 0 || best.impurity >= node_gini - 1e-12) {
      return make_leaf();
    }
    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t i : indices) {
      if (data.row(i)[static_cast<std::size_t>(best.feature)] <=
          best.threshold) {
        left_idx.push_back(i);
      } else {
        right_idx.push_back(i);
      }
    }
    indices.clear();
    indices.shrink_to_fit();
    Node node;
    node.feature = best.feature;
    node.threshold = best.threshold;
    nodes.push_back(node);
    const auto me = static_cast<std::int32_t>(nodes.size() - 1);
    const std::int32_t l = build(data, left_idx, depth + 1, rng);
    const std::int32_t r = build(data, right_idx, depth + 1, rng);
    nodes[static_cast<std::size_t>(me)].left = l;
    nodes[static_cast<std::size_t>(me)].right = r;
    return me;
  }
};

/// Sequential forest fit with the legacy split search; returns total node
/// count (consumed so the work is not optimized away).
std::size_t fit_forest(const Dataset& data, std::size_t num_trees,
                       std::uint64_t seed) {
  const std::size_t n = data.size();
  const auto mtry = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(std::sqrt(static_cast<double>(data.num_features())))));
  Rng rng(seed);
  std::size_t total_nodes = 0;
  for (std::size_t t = 0; t < num_trees; ++t) {
    std::vector<std::size_t> sample(n);
    for (std::size_t i = 0; i < n; ++i) {
      sample[i] = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    Tree tree;
    tree.max_features = mtry;
    Rng tree_rng(rng());
    tree.build(data, sample, 0, tree_rng);
    total_nodes += tree.nodes.size();
  }
  return total_nodes;
}

}  // namespace legacy

struct FitRun {
  std::size_t threads = 0;
  double seconds = 0.0;
  // Per-phase breakdown from RandomForestParams::collect_timing.
  double bootstrap_draw_s = 0.0;
  double column_build_s = 0.0;
  double trees_wall_s = 0.0;
  double oob_merge_s = 0.0;
  double tree_seconds_sum = 0.0;
  double tree_seconds_max = 0.0;
};

struct CurveResult {
  std::vector<FitRun> runs;
  bool deterministic = true;
  /// The forest fitted at the first (single-thread) point of the curve,
  /// reused for accuracy / prediction sections instead of refitting.
  std::optional<droppkt::ml::RandomForest> forest_1t;
};

/// Fit the forest at each thread count, record wall time plus the
/// per-phase breakdown, and verify the serialized model is byte-identical
/// across the whole curve.
CurveResult run_fit_curve(const Dataset& train,
                          droppkt::ml::RandomForestParams params,
                          const std::vector<std::size_t>& thread_counts,
                          const char* label, double baseline_s,
                          const char* baseline_name) {
  params.collect_timing = true;  // stats-only; the model is unaffected
  CurveResult out;
  std::string model_first;
  for (const std::size_t threads : thread_counts) {
    params.num_threads = threads;
    droppkt::ml::RandomForest forest(params);
    const auto t0 = std::chrono::steady_clock::now();
    forest.fit(train);
    FitRun run;
    run.threads = threads;
    run.seconds = seconds_since(t0);
    if (const auto* timing = forest.last_fit_timing()) {
      run.bootstrap_draw_s = timing->bootstrap_draw_s;
      run.column_build_s = timing->column_build_s;
      run.trees_wall_s = timing->trees_wall_s;
      run.oob_merge_s = timing->oob_merge_s;
      for (const double s : timing->tree_seconds) {
        run.tree_seconds_sum += s;
        run.tree_seconds_max = std::max(run.tree_seconds_max, s);
      }
    }
    out.runs.push_back(run);

    std::stringstream model;
    forest.save(model);
    if (threads == thread_counts.front()) {
      model_first = model.str();
      out.forest_1t.emplace(std::move(forest));
    } else if (model.str() != model_first) {
      out.deterministic = false;
    }
    std::printf(
        "%s fit (%zu thread%s): %7.2f s  (%4.2fx vs 1t, %4.2fx vs %s)\n"
        "    phases: bootstrap %.3fs | columns %.3fs | trees %.3fs "
        "(sum %.3fs, max tree %.3fs) | oob %.3fs\n",
        label, threads, threads == 1 ? " " : "s", run.seconds,
        out.runs.front().seconds / run.seconds, baseline_s / run.seconds,
        baseline_name, run.bootstrap_draw_s, run.column_build_s,
        run.trees_wall_s, run.tree_seconds_sum, run.tree_seconds_max,
        run.oob_merge_s);
  }
  std::printf("%s bit-identical across thread counts: %s\n\n", label,
              out.deterministic ? "yes" : "NO — BUG");
  return out;
}

double holdout_accuracy(const droppkt::ml::RandomForest& rf,
                        const Dataset& test) {
  const auto labels = rf.predict_batch(test, 1);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    hits += static_cast<std::size_t>(labels[i] == test.label(i));
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

void write_fit_runs_json(std::ofstream& json, const std::vector<FitRun>& runs,
                         double baseline_s, const char* baseline_key) {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    json << "    {\"threads\": " << r.threads
         << ", \"seconds\": " << r.seconds
         << ", \"speedup_vs_1t\": " << runs.front().seconds / r.seconds
         << ", \"" << baseline_key << "\": " << baseline_s / r.seconds
         << ",\n     \"phases\": {\"bootstrap_draw_s\": " << r.bootstrap_draw_s
         << ", \"column_build_s\": " << r.column_build_s
         << ", \"trees_wall_s\": " << r.trees_wall_s
         << ", \"oob_merge_s\": " << r.oob_merge_s
         << ", \"tree_seconds_sum\": " << r.tree_seconds_sum
         << ", \"tree_seconds_max\": " << r.tree_seconds_max << "}}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace droppkt;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t rows = smoke ? 300 : 6000;
  const std::size_t test_rows = smoke ? 200 : 20000;
  const std::size_t num_trees = smoke ? 12 : 100;
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  // Histogram splits on a tiny smoke dataset see real quantization noise;
  // at the full 6000-row workload the two searches track far closer.
  const double accuracy_tolerance = smoke ? 0.08 : 0.02;

  std::printf("=========================================================\n");
  std::printf("ML training engine: parallel forests, split methods,\n");
  std::printf("compiled flat-forest inference\n");
  std::printf("mode: %s | hardware_concurrency: %zu\n",
              smoke ? "smoke" : "full",
              util::ThreadPool::recommended_threads());
  std::printf("=========================================================\n\n");

  const Dataset train = make_synthetic(rows, 7777);
  const Dataset test = make_synthetic(test_rows, 8888);
  std::printf("dataset: %zu rows x %zu features, %d classes; %zu trees\n\n",
              train.size(), train.num_features(), train.num_classes(),
              num_trees);

  // Legacy single-thread baseline: per-node re-sort split search.
  const auto t_legacy = std::chrono::steady_clock::now();
  const std::size_t legacy_nodes = legacy::fit_forest(train, num_trees, 42);
  const double legacy_s = seconds_since(t_legacy);
  std::printf("legacy re-sort fit (1 thread): %7.2f s  (%zu nodes)\n\n",
              legacy_s, legacy_nodes);

  // Exact presorted search, then histogram search, each across the thread
  // curve with determinism checks and the per-phase breakdown.
  ml::RandomForestParams params;
  params.num_trees = num_trees;
  params.seed = 42;
  const CurveResult exact = run_fit_curve(train, params, thread_counts,
                                          "presorted", legacy_s, "legacy");
  params.split_method = ml::SplitMethod::kHistogram;
  const CurveResult hist =
      run_fit_curve(train, params, thread_counts, "histogram",
                    exact.runs.front().seconds, "exact-1t");

  // Accuracy gate: binned splits may trade only marginal holdout accuracy
  // for their speed.
  const double acc_exact = holdout_accuracy(*exact.forest_1t, test);
  const double acc_hist = holdout_accuracy(*hist.forest_1t, test);
  const double acc_delta = std::fabs(acc_hist - acc_exact);
  const bool accuracy_ok = acc_delta <= accuracy_tolerance;
  std::printf("holdout accuracy: exact %.4f | histogram %.4f | delta %.4f "
              "(tolerance %.2f): %s\n\n",
              acc_exact, acc_hist, acc_delta, accuracy_tolerance,
              accuracy_ok ? "ok" : "FAIL");

  // Compiled flat-forest inference: identity gate (bit-equal probabilities
  // vs the tree-walk batch path) and throughput.
  const ml::RandomForest& forest = *exact.forest_1t;
  const auto cf = ml::CompiledForest::compile(forest);
  const auto c_count = static_cast<std::size_t>(train.num_classes());
  const std::size_t max_threads = thread_counts.back();
  std::vector<double> want(test.size() * c_count);
  std::vector<double> got(want.size());

  const auto t_p1 = std::chrono::steady_clock::now();
  forest.predict_proba_batch(test, want, 1);
  const double treewalk_1t_s = seconds_since(t_p1);
  const auto t_pn = std::chrono::steady_clock::now();
  forest.predict_proba_batch(test, got, max_threads);
  const double treewalk_nt_s = seconds_since(t_pn);
  bool identity_ok = want == got;  // tree-walk itself thread-invariant

  const auto t_c1 = std::chrono::steady_clock::now();
  cf.predict_proba_batch(test, got, 1);
  const double compiled_1t_s = seconds_since(t_c1);
  identity_ok = identity_ok && want == got;
  const auto t_cn = std::chrono::steady_clock::now();
  cf.predict_proba_batch(test, got, max_threads);
  const double compiled_nt_s = seconds_since(t_cn);
  identity_ok = identity_ok && want == got;

  const double rows_d = static_cast<double>(test.size());
  const double thr_tree_1t = rows_d / treewalk_1t_s;
  const double thr_tree_nt = rows_d / treewalk_nt_s;
  const double thr_cf_1t = rows_d / compiled_1t_s;
  const double thr_cf_nt = rows_d / compiled_nt_s;
  const double compiled_speedup = thr_cf_1t / thr_tree_1t;
  // Throughput is machine-dependent, so the 10x gate only runs on the
  // full-size workload where the ratio has wide margin; smoke still
  // enforces the identity and accuracy gates.
  const bool speedup_ok = smoke || compiled_speedup >= 10.0;
  std::printf("batch predict, %zu rows x %zu nodes:\n", test.size(),
              cf.num_nodes());
  std::printf("  tree-walk: %8.0f rows/s (1t) | %8.0f rows/s (%zut)\n",
              thr_tree_1t, thr_tree_nt, max_threads);
  std::printf("  compiled:  %8.0f rows/s (1t) | %8.0f rows/s (%zut)\n",
              thr_cf_1t, thr_cf_nt, max_threads);
  std::printf("  bit-identical probabilities: %s\n",
              identity_ok ? "yes" : "NO — BUG");
  std::printf("  compiled speedup: %.1fx vs tree-walk (gate: >=10x%s): %s\n\n",
              compiled_speedup, smoke ? ", skipped in smoke" : "",
              speedup_ok ? "ok" : "FAIL");

  // Fold-parallel cross-validation (the paper's evaluation loop): one
  // shared pool, folds sequential, trees parallel within each fold.
  double cv_1t_s = 0.0, cv_nt_s = 0.0;
  bool cv_identical = true;
  bool cv_not_slower = true;
  const bool one_core = util::ThreadPool::recommended_threads() <= 1;
  if (!smoke) {
    auto factory = [] {
      ml::RandomForestParams p;
      p.num_trees = 30;
      p.num_threads = 1;  // CV-level parallelism is the measured axis
      return std::unique_ptr<ml::Classifier>(new ml::RandomForest(p));
    };
    const auto t_cv1 = std::chrono::steady_clock::now();
    const auto cv_a = ml::cross_validate(train, factory, 5, 1234, 1);
    cv_1t_s = seconds_since(t_cv1);
    const auto t_cvn = std::chrono::steady_clock::now();
    const auto cv_b = ml::cross_validate(train, factory, 5, 1234, 5);
    cv_nt_s = seconds_since(t_cvn);
    cv_identical = cv_a.accuracy() == cv_b.accuracy();
    cv_not_slower = cv_nt_s <= cv_1t_s;
    std::printf("5-fold CV (30-tree forests): %.2f s sequential | %.2f s "
                "fold-parallel | accuracy %.3f (identical: %s)\n",
                cv_1t_s, cv_nt_s, cv_a.accuracy(),
                cv_identical ? "yes" : "NO — BUG");
    if (!cv_not_slower) {
      // On a single core there is no parallelism to win; the shared pool
      // only has to not regress badly, so the gate degrades to a warning.
      std::printf("  fold-parallel slower than sequential: %s\n",
                  one_core ? "WARN (1-core host, non-fatal)" : "FAIL");
    }
  }

  if (!smoke) {
    std::ofstream json("BENCH_ml.json");
    json << "{\n  \"bench\": \"ml_training\",\n";
    json << "  \"hardware_concurrency\": "
         << util::ThreadPool::recommended_threads() << ",\n";
    json << "  \"dataset\": {\"rows\": " << train.size()
         << ", \"features\": " << train.num_features()
         << ", \"classes\": " << train.num_classes() << "},\n";
    json << "  \"forest\": {\"num_trees\": " << num_trees
         << ", \"max_depth\": " << params.max_depth << "},\n";
    json << "  \"legacy_resort_fit_seconds\": " << legacy_s << ",\n";
    json << "  \"fit_runs\": [\n";
    write_fit_runs_json(json, exact.runs, legacy_s, "speedup_vs_legacy");
    json << "  ],\n";
    json << "  \"deterministic_across_threads\": "
         << (exact.deterministic ? "true" : "false") << ",\n";
    json << "  \"histogram_fit_runs\": [\n";
    write_fit_runs_json(json, hist.runs, exact.runs.front().seconds,
                        "speedup_vs_exact_1t");
    json << "  ],\n";
    json << "  \"histogram_deterministic_across_threads\": "
         << (hist.deterministic ? "true" : "false") << ",\n";
    json << "  \"accuracy\": {\"exact\": " << acc_exact
         << ", \"histogram\": " << acc_hist << ", \"delta\": " << acc_delta
         << ", \"tolerance\": " << accuracy_tolerance << "},\n";
    json << "  \"predict\": {\"rows\": " << test.size()
         << ", \"treewalk_rows_per_s_1t\": " << thr_tree_1t
         << ", \"treewalk_rows_per_s_" << max_threads
         << "t\": " << thr_tree_nt
         << ",\n    \"compiled_rows_per_s_1t\": " << thr_cf_1t
         << ", \"compiled_rows_per_s_" << max_threads
         << "t\": " << thr_cf_nt
         << ",\n    \"compiled_speedup_1t\": " << compiled_speedup
         << ", \"compiled_identical\": "
         << (identity_ok ? "true" : "false") << "},\n";
    json << "  \"cross_validation\": {\"k\": 5, \"seconds_sequential\": "
         << cv_1t_s << ", \"seconds_fold_parallel\": " << cv_nt_s
         << ", \"accuracy_identical\": " << (cv_identical ? "true" : "false")
         << "},\n";
    json << "  \"gates\": {\"deterministic\": "
         << (exact.deterministic ? "\"pass\"" : "\"fail\"")
         << ", \"histogram_deterministic\": "
         << (hist.deterministic ? "\"pass\"" : "\"fail\"")
         << ", \"accuracy_delta\": " << (accuracy_ok ? "\"pass\"" : "\"fail\"")
         << ",\n    \"compiled_identity\": "
         << (identity_ok ? "\"pass\"" : "\"fail\"")
         << ", \"compiled_speedup_10x\": "
         << (speedup_ok ? "\"pass\"" : "\"fail\"")
         << ", \"cv_fold_parallel\": "
         << (cv_not_slower ? "\"pass\""
                           : (one_core ? "\"warn-1core\"" : "\"fail\""))
         << "}\n";
    json << "}\n";
    std::printf("\nwrote BENCH_ml.json\n");
  }

  const bool ok = exact.deterministic && hist.deterministic && accuracy_ok &&
                  identity_ok && speedup_ok && cv_identical &&
                  (cv_not_slower || one_core);
  std::printf("\ngates: %s\n", ok ? "all pass" : "FAILED");
  return ok ? 0 : 1;
}
