// Extension bench: QUIC. A transparent TCP proxy cannot split QUIC (UDP,
// end-to-end encrypted) into TLS transaction records at all, so as
// services shift to QUIC the paper's data source covers a shrinking
// fraction of sessions. Flow records (NetFlow) still see QUIC traffic.
// This bench quantifies low-QoE detection across deployment fractions
// for a TLS-only monitor vs a hybrid TLS+flow monitor.
#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "core/flow_features.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header(
      "Extension - monitoring coverage as services adopt QUIC",
      "Section 2.2 data-source assumptions (TCP-terminating proxy)");

  // Train both models on one corpus, evaluate on another.
  core::DatasetConfig cfg;
  cfg.num_sessions = 1400;
  cfg.seed = bench::kBenchSeed + 7;
  const auto train = core::build_dataset(has::svc1_profile(), cfg);
  cfg.seed = bench::kBenchSeed + 8;
  cfg.num_sessions = 900;
  const auto test = core::build_dataset(has::svc1_profile(), cfg);

  core::QoeEstimator tls_model;
  tls_model.train(train);

  ml::RandomForest flow_model;
  flow_model.fit(core::make_flow_dataset(train, core::QoeTarget::kCombined));

  // Pre-compute per-session predictions under both views.
  std::vector<int> tls_pred, flow_pred, truth;
  for (const auto& s : test) {
    truth.push_back(s.labels.combined);
    tls_pred.push_back(tls_model.predict(s.record.tls));
    flow_pred.push_back(flow_model.predict(core::extract_flow_features(
        core::flows_for_session(s.record))));
  }

  util::TextTable table({"QUIC share", "TLS-only: low-QoE recall",
                         "hybrid TLS+flow: low-QoE recall"});
  for (const double quic_share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    util::Rng rng(99);
    std::size_t low_total = 0, tls_hit = 0, hybrid_hit = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const bool quic = rng.bernoulli(quic_share);
      if (truth[i] != 0) continue;
      ++low_total;
      if (!quic && tls_pred[i] == 0) ++tls_hit;  // QUIC invisible to proxy
      if ((quic ? flow_pred[i] : tls_pred[i]) == 0) ++hybrid_hit;
    }
    table.add_row({bench::pct0(quic_share),
                   bench::pct0(static_cast<double>(tls_hit) / low_total),
                   bench::pct0(static_cast<double>(hybrid_hit) / low_total)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("expected shape: the TLS-only monitor's effective recall\n"
              "decays linearly with QUIC adoption (unseen sessions are\n"
              "undetected), while the hybrid monitor holds roughly flat -\n"
              "the flow path (this repo's NetFlow substrate) is the\n"
              "QUIC-proof fallback the paper's future work points at.\n");
  return 0;
}
