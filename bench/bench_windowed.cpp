// Extension bench: fine-granular (per-window) estimation, the style of
// Requet/BUFFEST/Mazhar&Shafiq, and the derivation of per-session metrics
// from it — the comparison the paper explicitly skipped ("A comparison
// with these approaches would require estimation of per-session metrics
// from fine-granular estimation. For simplicity, we consider an algorithm
// that directly estimates per-session metrics.").
#include "bench_common.hpp"
#include "core/windowed.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header(
      "Extension - fine-granular (windowed) estimation vs per-session",
      "Section 4.2, comparison-with-packet-traces discussion");

  core::DatasetConfig cfg;
  cfg.num_sessions = 900;
  cfg.seed = bench::kBenchSeed + 11;
  const auto train = core::build_dataset(has::svc2_profile(), cfg);
  cfg.seed = bench::kBenchSeed + 12;
  cfg.num_sessions = 500;
  const auto test = core::build_dataset(has::svc2_profile(), cfg);

  const core::WindowedConfig wcfg;

  // 1. Train the window-level stall detector on packet features.
  const auto window_train = core::make_window_dataset(train, wcfg);
  ml::RandomForestParams params;
  params.num_trees = 60;
  params.min_samples_leaf = 5;
  ml::RandomForest window_model(params);
  window_model.fit(window_train);

  // 2. Window-level detection quality on held-out sessions.
  ml::ConfusionMatrix window_cm(2);
  std::vector<std::vector<int>> per_session_preds;
  for (const auto& s : test) {
    const auto windows = core::windows_for_session(s, wcfg);
    std::vector<int> preds;
    for (std::size_t w = 0; w < windows.features.size(); ++w) {
      const int p = window_model.predict(windows.features[w]);
      window_cm.add(windows.stalled[w], p);
      preds.push_back(p);
    }
    per_session_preds.push_back(std::move(preds));
  }
  std::printf("Window-level stall detection (%zu windows of %.0f s):\n",
              window_cm.total(), wcfg.window_s);
  std::printf("%s", window_cm.render({"smooth", "stalled"}).c_str());
  std::printf("  accuracy %s, stalled-window recall %s\n\n",
              bench::pct0(window_cm.accuracy()).c_str(),
              bench::pct0(window_cm.recall(1)).c_str());

  // 3. Derive per-session re-buffering classes from window predictions and
  //    compare against the paper's direct per-session approach on TLS data.
  ml::ConfusionMatrix derived(core::kNumQoeClasses);
  for (std::size_t i = 0; i < test.size(); ++i) {
    derived.add(test[i].labels.rebuffering,
                core::session_rebuffering_from_windows(per_session_preds[i],
                                                       wcfg));
  }
  const auto direct =
      core::evaluate_tls(test, core::QoeTarget::kRebuffering);

  util::TextTable table({"approach", "data", "session rebuf accuracy",
                         "recall(high)"});
  table.add_row({"windowed packets -> derived", "packet traces",
                 bench::pct0(derived.accuracy()),
                 bench::pct0(derived.recall(0))});
  table.add_row({"direct per-session (paper)", "TLS transactions",
                 bench::pct0(direct.accuracy()),
                 bench::pct0(direct.recall(0))});
  std::printf("%s\n", table.render().c_str());

  std::printf("expected shape: windowed detection finds stalled windows\n"
              "reliably, but deriving the paper's 3-class per-session metric\n"
              "quantizes badly (a single 10 s window already exceeds the 2%%\n"
              "mild threshold), so the coarse direct approach is competitive\n"
              "at a fraction of the data - supporting the paper's design\n"
              "choice of estimating per-session metrics directly.\n");
  return 0;
}
