// Table 4: QoE estimation from packet traces with the ML16 baseline
// (Dimopoulos et al., IMC'16) vs TLS transaction data, plus the memory and
// computation overhead comparison from Section 4.2.
#include <chrono>

#include "bench_common.hpp"
#include "core/ml16_features.hpp"
#include "core/tls_features.hpp"
#include "net/link_model.hpp"
#include "trace/packet_generator.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  using Clock = std::chrono::steady_clock;
  bench::print_header(
      "Table 4 - Packet traces + ML16 vs TLS transactions",
      "Table 4 (+ Section 4.2 overhead: 1400x records, 60x compute)");

  util::TextTable table({"service", "TLS A", "TLS R", "TLS P", "ML16 A",
                         "ML16 R", "ML16 P", "gain A", "gain R", "gain P"});
  for (const char* svc : {"Svc1", "Svc2", "Svc3"}) {
    const auto& ds = bench::dataset_for(svc);
    const auto tls =
        core::scores_from(core::evaluate_tls(ds, core::QoeTarget::kCombined));
    const auto pkt_data = core::make_ml16_dataset(ds, core::QoeTarget::kCombined);
    const auto pkt = core::scores_from(
        ml::cross_validate(pkt_data, core::forest_factory(), 5, 42 ^ 0xcafeULL));
    auto gain = [](double a, double b) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%+.0f%%", 100.0 * (a - b));
      return std::string(buf);
    };
    table.add_row({svc, bench::pct0(tls.accuracy), bench::pct0(tls.recall_low),
                   bench::pct0(tls.precision_low), bench::pct0(pkt.accuracy),
                   bench::pct0(pkt.recall_low), bench::pct0(pkt.precision_low),
                   gain(pkt.accuracy, tls.accuracy),
                   gain(pkt.recall_low, tls.recall_low),
                   gain(pkt.precision_low, tls.precision_low)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper Table 4: Svc1 74%%/82%%/73%% (+5/+9/+2), Svc2 "
              "78%%/85%%/76%% (+7/+7/+5), Svc3 78%%/89%%/78%% (+5/+4/+3)\n\n");

  // ---- Overhead comparison (Section 4.2). --------------------------------
  const auto& ds = bench::dataset_for("Svc1");

  // Memory: records per session.
  double packets = 0.0, tls_n = 0.0;
  for (const auto& s : ds) {
    const trace::PacketTraceGenerator gen(
        net::link_params_for(s.record.environment));
    packets += static_cast<double>(gen.estimate_packet_count(s.record.http));
    tls_n += static_cast<double>(s.record.tls.size());
  }
  std::printf("Memory overhead (Svc1):\n");
  std::printf("  avg packets per session          : %.0f  (paper: 27,689)\n",
              packets / ds.size());
  std::printf("  avg TLS transactions per session : %.1f  (paper: 19.5)\n",
              tls_n / ds.size());
  std::printf("  ratio                            : %.0fx (paper: ~1400x)\n\n",
              packets / tls_n);

  // Computation: feature extraction over all Svc1 sessions.
  const auto t0 = Clock::now();
  for (const auto& s : ds) {
    util::Rng rng(s.record.seed ^ 0x9ac4e7ULL);
    const trace::PacketTraceGenerator gen(
        net::link_params_for(s.record.environment));
    const auto pkts = gen.generate(s.record.http, rng);
    (void)core::extract_ml16_features(pkts);
  }
  const auto t_pkt = Clock::now();
  for (const auto& s : ds) {
    (void)core::extract_tls_features(s.record.tls);
  }
  const auto t_tls = Clock::now();
  const double pkt_ms =
      std::chrono::duration<double, std::milli>(t_pkt - t0).count();
  const double tls_ms =
      std::chrono::duration<double, std::milli>(t_tls - t_pkt).count();
  std::printf("Computation overhead (feature extraction, all Svc1 sessions):\n");
  std::printf("  packet pipeline: %.0f ms   (paper: 503 s on its hardware)\n",
              pkt_ms);
  std::printf("  TLS pipeline   : %.1f ms   (paper: 8.3 s)\n", tls_ms);
  std::printf("  ratio          : %.0fx     (paper: ~60x)\n", pkt_ms / tls_ms);
  std::printf("\npaper shape: packets win accuracy by single digits but cost\n"
              "orders of magnitude more memory and compute - motivating\n"
              "adaptive monitoring (fine-grained data only where TLS-based\n"
              "detection flags problems).\n");
  return 0;
}
