// Figure 2: TLS transactions vs HTTP transactions in the first 5 seconds
// of a Svc1 session, plus the HTTP-per-TLS aggregation ratio the paper
// reports (12.1 for Svc1).
#include "bench_common.hpp"

namespace {

using namespace droppkt;

void timeline_for_first_session() {
  const auto& ds = bench::dataset_for("Svc1");
  const auto& s = ds.front().record;

  std::printf("First 5 seconds of a %s session (session %s):\n\n",
              s.service.c_str(), s.video_id.c_str());
  std::printf("  TLS transactions (what the proxy reports):\n");
  int tls_n = 0;
  for (const auto& t : s.tls) {
    if (t.start_s > 5.0) continue;
    ++tls_n;
    std::printf("    #%d  %-28s  start %.2fs  end %.1fs  dl %.0f KB\n", tls_n,
                t.sni.c_str(), t.start_s, t.end_s, t.dl_bytes / 1000.0);
  }
  std::printf("\n  HTTP transactions inside them (invisible to the proxy):\n");
  int http_n = 0;
  for (const auto& t : s.http) {
    if (t.request_s > 5.0) continue;
    ++http_n;
    std::printf("    #%-3d %.2fs  %-8s  dl %.0f KB\n", http_n, t.request_s,
                to_string(t.kind).c_str(), t.dl_bytes / 1000.0);
  }
  std::printf("\n  -> %d HTTP transactions fell inside %d TLS transactions "
              "in the first 5 s\n\n", http_n, tls_n);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2 - TLS vs HTTP transactions at session start",
      "Fig. 2 + Section 2.2 (avg 12.1 HTTP per TLS transaction in Svc1)");

  timeline_for_first_session();

  const auto& ds = bench::dataset_for("Svc1");
  double tls = 0.0, http = 0.0;
  for (const auto& s : ds) {
    tls += static_cast<double>(s.record.tls.size());
    http += static_cast<double>(s.record.http.size());
  }
  std::printf("Dataset-wide aggregation (Svc1, %zu sessions):\n", ds.size());
  std::printf("  avg TLS transactions per session : %.1f   (paper: 19.5)\n",
              tls / ds.size());
  std::printf("  avg HTTP transactions per session: %.1f\n", http / ds.size());
  std::printf("  avg HTTP per TLS transaction     : %.1f   (paper: 12.1)\n",
              http / tls);
  return 0;
}
