// Extension bench (paper Section 5 future work): the accuracy vs
// scalability trade-off across the data-granularity spectrum —
// TLS transactions vs NetFlow records at several export timeouts vs
// full packet traces (ML16).
#include "bench_common.hpp"
#include "core/flow_features.hpp"
#include "core/ml16_features.hpp"
#include "net/link_model.hpp"
#include "trace/packet_generator.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header(
      "Extension - accuracy vs granularity (TLS / NetFlow / packets)",
      "Section 5 future work: flow-level data with periodic summaries");

  const char* svc = "Svc1";
  const auto& ds = bench::dataset_for(svc);

  util::TextTable table({"data source", "records/session", "accuracy",
                         "recall(low)", "precision(low)"});

  // TLS transactions (the paper's main result).
  {
    const auto cv = core::evaluate_tls(ds, core::QoeTarget::kCombined);
    const auto s = core::scores_from(cv);
    double records = 0.0;
    for (const auto& x : ds) records += static_cast<double>(x.record.tls.size());
    table.add_row({"TLS transactions (proxy)",
                   util::fixed(records / ds.size(), 1), bench::pct0(s.accuracy),
                   bench::pct0(s.recall_low), bench::pct0(s.precision_low)});
  }

  // NetFlow at three export granularities.
  struct FlowCase {
    const char* name;
    trace::FlowExportConfig config;
  };
  const FlowCase cases[] = {
      {"NetFlow, 300 s active timeout", {.active_timeout_s = 300.0,
                                         .inactive_timeout_s = 15.0}},
      {"NetFlow, 60 s active timeout", {.active_timeout_s = 60.0,
                                        .inactive_timeout_s = 15.0}},
      {"NetFlow, 10 s active timeout", {.active_timeout_s = 10.0,
                                        .inactive_timeout_s = 10.0}},
  };
  for (const auto& c : cases) {
    double records = 0.0;
    for (const auto& x : ds) {
      records +=
          static_cast<double>(core::flows_for_session(x.record, c.config).size());
    }
    const auto data =
        core::make_flow_dataset(ds, core::QoeTarget::kCombined, c.config);
    const auto s = core::scores_from(
        ml::cross_validate(data, core::forest_factory(), 5, 42 ^ 0xcafeULL));
    table.add_row({c.name, util::fixed(records / ds.size(), 1),
                   bench::pct0(s.accuracy), bench::pct0(s.recall_low),
                   bench::pct0(s.precision_low)});
  }

  // Full packet pipeline (ML16).
  {
    double records = 0.0;
    for (const auto& x : ds) {
      const trace::PacketTraceGenerator gen(
          net::link_params_for(x.record.environment));
      records += static_cast<double>(gen.estimate_packet_count(x.record.http));
    }
    const auto data = core::make_ml16_dataset(ds, core::QoeTarget::kCombined);
    const auto s = core::scores_from(
        ml::cross_validate(data, core::forest_factory(), 5, 42 ^ 0xcafeULL));
    table.add_row({"packet trace (ML16)", util::fixed(records / ds.size(), 0),
                   bench::pct0(s.accuracy), bench::pct0(s.recall_low),
                   bench::pct0(s.precision_low)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: accuracy grows with granularity, but the\n"
              "record volume grows much faster - finer NetFlow summaries\n"
              "sit between TLS transactions and packets on both axes,\n"
              "exactly the trade-off the paper proposes to explore.\n\n");
  std::printf("note: flow records lack SNI; identification relies on DNS\n"
              "(see trace::identify_video_flows), which the TLS path gets\n"
              "for free.\n");
  return 0;
}
