// Table 5: session-identification accuracy on back-to-back Svc1 sessions
// (heuristic: W=3 s, Nmin=2, delta_min=0.5).
#include "bench_common.hpp"
#include "core/session_id.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;
  bench::print_header("Table 5 - Session identification for back-to-back "
                      "sessions",
                      "Table 5 (89% of new sessions, 98% of existing "
                      "transactions correct)");

  // Many independent streams of consecutive sessions, as in the paper's
  // stress test where every session was streamed back-to-back.
  std::size_t tp = 0, fn = 0, fp = 0, tn = 0;
  std::size_t total_sessions = 0;
  const std::size_t streams = 40;
  const std::size_t sessions_per_stream = 8;
  for (std::size_t i = 0; i < streams; ++i) {
    const auto stream = core::build_back_to_back(
        has::svc1_profile(), sessions_per_stream, bench::kBenchSeed + i);
    const auto pred = core::detect_session_starts(stream.merged);
    total_sessions += stream.num_sessions;
    for (std::size_t j = 0; j < pred.size(); ++j) {
      if (stream.truth_new[j] && pred[j]) ++tp;
      else if (stream.truth_new[j]) ++fn;
      else if (pred[j]) ++fp;
      else ++tn;
    }
  }

  std::printf("%zu streams x %zu consecutive sessions = %zu sessions, "
              "%zu transactions\n\n",
              streams, sessions_per_stream, total_sessions,
              tp + fn + fp + tn);

  util::TextTable table({"actual", "#transactions", "-> existing", "-> new"});
  const double exist_n = static_cast<double>(tn + fp);
  const double new_n = static_cast<double>(tp + fn);
  table.add_row({"Existing", std::to_string(tn + fp),
                 bench::pct0(tn / exist_n), bench::pct0(fp / exist_n)});
  table.add_row({"New", std::to_string(tp + fn), bench::pct0(fn / new_n),
                 bench::pct0(tp / new_n)});
  std::printf("%s\n", table.render().c_str());

  std::printf("paper Table 5: Existing 13269 (98%% / 2%%), New 1545 "
              "(11%% / 89%%)\n\n");
  std::printf("paper shape: a timeout-based rule would merge ALL of these\n"
              "into one session (transactions overlap across boundaries);\n"
              "the burst + fresh-server heuristic recovers ~9 in 10 session\n"
              "starts while barely disturbing existing transactions.\n");
  return 0;
}
