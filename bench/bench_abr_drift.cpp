// Extension bench: model drift under player updates. The estimator learns
// a service's *current* traffic patterns; when the service ships a new
// ABR algorithm (same ladder, same CDN, different control loop), how much
// accuracy is lost before the ISP retrains?
#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

has::ServiceProfile with_abr(has::AbrKind abr) {
  has::ServiceProfile p = has::svc2_profile();
  p.abr = abr;
  return p;
}

core::LabeledDataset make(const has::ServiceProfile& svc, std::size_t n,
                          std::uint64_t seed) {
  core::DatasetConfig cfg;
  cfg.seed = seed;
  cfg.num_sessions = n;
  return core::build_dataset(svc, cfg);
}

double accuracy(const core::QoeEstimator& est, const core::LabeledDataset& ds) {
  std::size_t correct = 0;
  for (const auto& s : ds) {
    correct += est.predict(s.record.tls) == s.labels.combined;
  }
  return static_cast<double>(correct) / ds.size();
}

}  // namespace

int main() {
  bench::print_header(
      "Extension - model drift across player (ABR) updates",
      "Section 4.3 ('the extent of such patterns ... depends on the design "
      "of the streaming application')");

  struct Variant {
    const char* name;
    has::AbrKind abr;
  };
  const Variant variants[] = {
      {"sticky-rate (shipped)", has::AbrKind::kStickyRate},
      {"hybrid (update A)", has::AbrKind::kHybrid},
      {"MPC (update B)", has::AbrKind::kMpc},
      {"buffer-fill (update C)", has::AbrKind::kBufferFill},
  };

  // Train once on the shipped player (disjoint seed from the eval sets).
  const auto train_ds = make(with_abr(variants[0].abr), 1500,
                             bench::kBenchSeed + 999);
  core::QoeEstimator est;
  est.train(train_ds);

  util::TextTable table({"player variant", "high-rebuf share",
                         "accuracy (trained on shipped)",
                         "accuracy (retrained)"});
  for (const auto& v : variants) {
    const auto ds = make(with_abr(v.abr), 900, bench::kBenchSeed);
    double high_rebuf = 0.0;
    for (const auto& s : ds) high_rebuf += s.labels.rebuffering == 0;
    high_rebuf /= ds.size();

    const auto cv = core::evaluate_tls(ds, core::QoeTarget::kCombined);
    table.add_row({v.name, bench::pct0(high_rebuf),
                   bench::pct0(accuracy(est, ds)),
                   bench::pct0(cv.accuracy())});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("expected shape: each ABR redistributes QoE (buffer-fill\n"
              "trades stalls for low quality; MPC balances both) and shifts\n"
              "the traffic-to-QoE mapping, so the shipped-player model\n"
              "degrades on updates while retraining recovers - ISPs need a\n"
              "retraining cadence tied to service releases.\n");
  return 0;
}
