// Seed-corpus generator: every seed comes from the repo's own writers, so
// the fuzzers start from inputs that take the deep accept paths instead of
// spending their budget rediscovering the file formats byte by byte.
//
// Usage: droppkt_gen_corpus <corpus-root>
// Writes corpus/<target>/seed-* under the given root. The generated files
// are committed (fuzz/corpus/**) and replayed by both the fuzz smoke job
// and tests/integration/fuzz_regression_test.cpp.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "engine/feed.hpp"
#include "engine/replay.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/wire.hpp"
#include "trace/capture.hpp"
#include "trace/records.hpp"
#include "trace/serialize.hpp"
#include "util/csv.hpp"

namespace {

namespace fs = std::filesystem;
using droppkt::trace::TlsLog;
using droppkt::trace::TlsTransaction;

void write_seed(const fs::path& dir, const std::string& name,
                const std::string& bytes) {
  fs::create_directories(dir);
  std::ofstream ofs(dir / name, std::ios::binary);
  ofs.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!ofs) {
    std::fprintf(stderr, "gen_corpus: failed writing %s\n",
                 (dir / name).c_str());
    std::exit(1);
  }
}

void write_seed(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  write_seed(dir, name,
             std::string(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size()));
}

TlsTransaction txn(double start, double end, double ul, double dl,
                   std::size_t http, std::string sni) {
  TlsTransaction t;
  t.start_s = start;
  t.end_s = end;
  t.ul_bytes = ul;
  t.dl_bytes = dl;
  t.http_count = http;
  t.sni = std::move(sni);
  return t;
}

droppkt::ml::Dataset tiny_dataset() {
  droppkt::ml::Dataset data({"rate_mbps", "gap_s", "chunks"}, 2);
  // A separable toy problem: class 1 iff rate < gap.
  const double rows[][3] = {{0.4, 2.0, 3.0}, {0.6, 1.8, 4.0}, {0.5, 2.2, 2.0},
                            {3.0, 0.2, 9.0}, {2.8, 0.4, 8.0}, {3.5, 0.1, 7.0},
                            {0.7, 1.5, 5.0}, {2.5, 0.3, 6.0}};
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    data.add_row({rows[i][0], rows[i][1], rows[i][2]},
                 rows[i][0] < rows[i][1] ? 1 : 0);
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];

  // --- tls_binary: output of write_tls_binary -------------------------
  {
    const fs::path dir = root / "tls_binary";
    {
      std::ostringstream os(std::ios::binary);
      droppkt::trace::write_tls_binary({}, os);
      write_seed(dir, "seed-empty.bin", os.str());
    }
    TlsLog log;
    log.push_back(txn(0.0, 1.5, 900.0, 250000.0, 3, "video.example.com"));
    log.push_back(txn(1.6, 4.25, 1200.5, 1.75e6, 12, "cdn.example.net"));
    log.push_back(txn(4.3, 4.3, 0.0, 0.0, 0, ""));
    {
      std::ostringstream os(std::ios::binary);
      droppkt::trace::write_tls_binary(log, os);
      write_seed(dir, "seed-three-records.bin", os.str());
    }
    TlsLog weird;
    weird.push_back(txn(-10.0, 1e9, 0.5, 6.02e23, 1000000,
                        std::string(300, 'a') + ".example"));
    {
      std::ostringstream os(std::ios::binary);
      droppkt::trace::write_tls_binary(weird, os);
      write_seed(dir, "seed-extremes.bin", os.str());
    }
  }

  // --- feed_line: output of write_feed --------------------------------
  {
    const fs::path dir = root / "feed_line";
    droppkt::engine::Feed feed;
    feed.push_back({"client-a", txn(0.0, 2.0, 800.0, 1.2e6, 4,
                                    "video.example.com")});
    feed.push_back({"client-b", txn(0.5, 3.75, 950.25, 2.5e6, 7, "")});
    feed.push_back({"client-a", txn(240.0, 241.5, 400.0, 9.0e5, 2,
                                    "cdn.example.net")});
    std::ostringstream os;
    droppkt::engine::write_feed(feed, os);
    write_seed(dir, "seed-feed.txt", os.str());
    std::ostringstream one;
    droppkt::engine::write_feed_line(feed[0], one);
    write_seed(dir, "seed-one-line.txt", one.str());
    write_seed(dir, "seed-extreme-numbers.txt",
               "c\t-1e308\t1e308\t0\t1.7976931348623157e308\t"
               "18446744073709551615\tsni\n");
  }

  // --- csv: output of CsvTable::write and write_tls_csv ----------------
  {
    const fs::path dir = root / "csv";
    {
      droppkt::util::CsvTable table({"name", "value", "note"});
      table.add_row({"plain", "1.25", "no quoting"});
      table.add_row({"comma", "2", "a,b"});
      table.add_row({"quote", "3", "say \"hi\""});
      table.add_row({"newline", "4", "line1\nline2"});
      table.add_row({"", "-0.0", ""});
      std::ostringstream os;
      table.write(os);
      write_seed(dir, "seed-quoting.csv", os.str());
    }
    {
      TlsLog log;
      log.push_back(txn(0.0, 1.0, 100.0, 5.0e5, 2, "video.example.com"));
      log.push_back(txn(1.5, 2.0, 200.0, 7.5e5, 3, "a,b\"c"));
      std::ostringstream os;
      droppkt::trace::write_tls_csv(log, os);
      write_seed(dir, "seed-tls-log.csv", os.str());
    }
    write_seed(dir, "seed-header-only.csv", "alpha,beta\n");
  }

  // --- model: saved DecisionTree, RandomForest, GradientBoosting -------
  {
    const fs::path dir = root / "model";
    const droppkt::ml::Dataset data = tiny_dataset();
    {
      droppkt::ml::DecisionTreeParams p;
      p.max_depth = 3;
      droppkt::ml::DecisionTree tree(p);
      tree.fit(data);
      std::ostringstream os;
      tree.save(os);
      write_seed(dir, "seed-tree.txt", os.str());
    }
    {
      droppkt::ml::RandomForestParams p;
      p.num_trees = 3;
      p.max_depth = 3;
      p.num_threads = 1;
      droppkt::ml::RandomForest forest(p);
      forest.fit(data);
      std::ostringstream os;
      forest.save(os);
      write_seed(dir, "seed-forest.txt", os.str());
    }
    {
      droppkt::ml::GradientBoostingParams p;
      p.num_rounds = 4;
      p.max_depth = 2;
      p.min_samples_leaf = 1;
      p.subsample = 1.0;
      droppkt::ml::GradientBoosting gbt(p);
      gbt.fit(data);
      std::ostringstream os;
      gbt.save(os);
      write_seed(dir, "seed-gbt.txt", os.str());
    }
  }

  // --- telemetry_wire: droppkt-tm v1 streams from the repo's encoders ---
  {
    namespace tm = droppkt::telemetry;
    const fs::path dir = root / "telemetry_wire";
    {
      std::vector<std::uint8_t> out;
      tm::tm_write_header(out);
      write_seed(dir, "seed-header-only.bin", out);
    }
    tm::MetricRegistry reg;
    auto& records = reg.counter("engine.shard0.records", "records");
    auto& depth = reg.gauge("engine.shard0.queue_depth", "msgs");
    auto& latency = reg.histogram("engine.shard0.latency", "ns");
    records.add(12345);
    depth.set(7);
    latency.record(3);
    latency.record(1500);
    latency.record(1u << 20);
    const std::vector<tm::TmDirectoryEntry> entries = tm::tm_directory_of(reg);
    {
      std::vector<std::uint8_t> out;
      tm::tm_write_header(out);
      tm::tm_write_directory(out, entries);
      write_seed(dir, "seed-directory.bin", out);
    }
    {
      tm::TmInterval iv;
      iv.seq = 2;
      iv.t0_ns = 1'000'000'000;
      iv.t1_ns = 6'000'000'000;
      iv.scalars = {{entries[0].id, 12345}, {entries[1].id, 7}};
      tm::TmHistogramDelta hd;
      hd.id = entries[2].id;
      hd.deltas[1] = 1;
      hd.deltas[10] = 1;
      hd.deltas[20] = 1;
      iv.hist_deltas.push_back(hd);
      tm::TmLocation loc;
      loc.name = "cell-d0";
      loc.degraded = true;
      loc.rate_low = 0.31;
      loc.rate_high = 0.78;
      loc.effective_sessions = 9.5;
      loc.class_counts = {4, 2, 1};
      iv.locations.push_back(loc);
      std::vector<std::uint8_t> out;
      tm::tm_write_header(out);
      tm::tm_write_directory(out, entries);
      tm::tm_write_interval(out, iv);
      write_seed(dir, "seed-directory-interval.bin", out);
    }
  }

  // --- feed_capture: DPFC files from capture_feed / the writer ----------
  {
    const fs::path dir = root / "feed_capture";
    write_seed(dir, "seed-empty.dpfc",
               droppkt::trace::feed_capture_bytes({}));
    {
      droppkt::engine::Feed feed;
      feed.push_back({"loc0-client0", txn(0.0, 2.0, 800.0, 1.2e6, 4,
                                          "video.example.com")});
      feed.push_back({"loc0-client1", txn(5.0, 9.5, 950.25, 2.5e6, 7, "")});
      feed.push_back({"loc1-client0", txn(20.0, 21.5, 400.0, 9.0e5, 2,
                                          "cdn.example.net")});
      droppkt::engine::CaptureConfig ccfg;
      ccfg.marker_interval_s = 10.0;
      const droppkt::trace::FeedCapture capture =
          droppkt::engine::capture_feed(feed, ccfg);
      write_seed(dir, "seed-markers.dpfc",
                 droppkt::trace::feed_capture_bytes(capture));
    }
    {
      droppkt::trace::FeedCapture capture;
      droppkt::trace::CaptureEvent rec;
      rec.kind = droppkt::trace::CaptureEvent::Kind::kRecord;
      rec.client = std::string(4096, 'c');
      rec.txn = txn(-10.0, 1e9, 0.5, 6.02e23, 1000000,
                    std::string(300, 'a') + ".example");
      capture.push_back(rec);
      droppkt::trace::CaptureEvent mk;
      mk.kind = droppkt::trace::CaptureEvent::Kind::kMarker;
      mk.marker_seq = 18446744073709551615ull;
      mk.marker_time_s = 1e12;
      capture.push_back(mk);
      write_seed(dir, "seed-extremes.dpfc",
                 droppkt::trace::feed_capture_bytes(capture));
    }
  }

  std::printf("gen_corpus: seeds written under %s\n", root.c_str());
  return 0;
}
