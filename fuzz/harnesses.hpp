// One-input entry points for the untrusted-input decoders.
//
// Each function is the body of a libFuzzer target (fuzz_<name>.cpp wraps
// it in LLVMFuzzerTestOneInput) and is also linked into
// tests/integration/fuzz_regression_test.cpp, which replays the checked-in
// corpus and every committed crash regression through the exact harness
// code. Contract: a harness returns 0 for any input — decoders may reject
// bytes with droppkt::ParseError / droppkt::ContractViolation, but must
// never crash, corrupt memory, loop forever, or break round-trip
// invariants (a harness calls std::abort on those, which the fuzzer and
// the sanitizers report).
#pragma once

#include <cstddef>
#include <cstdint>

namespace droppkt::fuzz {

/// Binary TLS record stream: parse, re-serialize, re-parse, compare.
int one_tls_binary(const std::uint8_t* data, std::size_t size);

/// Proxy feed text lines: parse each line; successful parses must
/// round-trip bit-exactly through write_feed_line.
int one_feed_line(const std::uint8_t* data, std::size_t size);

/// CSV table: parse; exercise accessors; successful parses must survive
/// write + re-read with identical header and rows.
int one_csv(const std::uint8_t* data, std::size_t size);

/// Model deserialization: the same bytes are offered to DecisionTree,
/// RandomForest and GradientBoosting load; anything accepted must predict
/// without crashing and survive a save/load round-trip.
int one_model(const std::uint8_t* data, std::size_t size);

/// droppkt-tm v1 telemetry stream: decode (unknown tags and frame types
/// skipped via their length prefix), re-encode the decoded frames with
/// tm_encode_frames, re-decode, compare frame-for-frame.
int one_telemetry_wire(const std::uint8_t* data, std::size_t size);

/// DPFC v1 feed capture: decode, re-serialize via feed_capture_bytes,
/// re-decode, compare event-for-event.
int one_feed_capture(const std::uint8_t* data, std::size_t size);

}  // namespace droppkt::fuzz
