#include "harnesses.hpp"

#include <cstdio>
#include <cstdlib>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "engine/feed.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"
#include "telemetry/wire.hpp"
#include "trace/capture.hpp"
#include "trace/serialize.hpp"
#include "util/csv.hpp"
#include "util/expect.hpp"

namespace droppkt::fuzz {

namespace {

[[noreturn]] void harness_fail(const char* harness, const char* what) {
  std::fprintf(stderr, "fuzz harness %s: %s\n", harness, what);
  std::abort();
}

std::string as_text(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

bool txn_equal(const trace::TlsTransaction& a, const trace::TlsTransaction& b) {
  return a.start_s == b.start_s && a.end_s == b.end_s &&
         a.ul_bytes == b.ul_bytes && a.dl_bytes == b.dl_bytes &&
         a.http_count == b.http_count && a.sni == b.sni;
}

}  // namespace

int one_tls_binary(const std::uint8_t* data, std::size_t size) {
  trace::TlsLog log;
  try {
    log = trace::read_tls_binary(std::span<const std::uint8_t>(data, size));
  } catch (const ParseError&) {
    return 0;  // rejected cleanly — the expected outcome for random bytes
  }
  // Anything the reader accepted must re-serialize and re-parse to the
  // same log: the round-trip invariant the CSV path cannot offer.
  const auto bytes = trace::tls_binary_bytes(log);
  trace::TlsLog back;
  try {
    back = trace::read_tls_binary(std::span<const std::uint8_t>(bytes));
  } catch (const ParseError&) {
    harness_fail("tls_binary", "writer output rejected by the reader");
  }
  if (back.size() != log.size()) {
    harness_fail("tls_binary", "round-trip changed the record count");
  }
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (!txn_equal(log[i], back[i])) {
      harness_fail("tls_binary", "round-trip changed a record");
    }
  }
  return 0;
}

int one_feed_line(const std::uint8_t* data, std::size_t size) {
  std::istringstream is(as_text(data, size));
  std::string line;
  while (std::getline(is, line)) {
    engine::FeedRecord rec;
    try {
      rec = engine::parse_feed_line(line);
    } catch (const ParseError&) {
      continue;
    }
    std::ostringstream os;
    engine::write_feed_line(rec, os);
    std::string written = os.str();
    written.pop_back();  // trailing '\n'
    engine::FeedRecord back;
    try {
      back = engine::parse_feed_line(written);
    } catch (const ParseError&) {
      harness_fail("feed_line", "writer output rejected by the parser");
    }
    if (back.client != rec.client || !txn_equal(back.txn, rec.txn)) {
      harness_fail("feed_line", "round-trip changed the record");
    }
  }
  return 0;
}

int one_csv(const std::uint8_t* data, std::size_t size) {
  util::CsvTable table;
  {
    std::istringstream is(as_text(data, size));
    try {
      table = util::CsvTable::read(is);
    } catch (const ParseError&) {
      return 0;
    }
  }
  // Accessors over the whole accepted table must stay in bounds.
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_cols(); ++c) {
      (void)table.at(r, c);
      try {
        (void)table.at_double(r, c);
      } catch (const ContractViolation&) {
        // non-numeric cell: a typed error, not a crash
      }
    }
  }
  // Write + re-read must reproduce the table exactly.
  std::ostringstream os;
  table.write(os);
  std::istringstream back_in(os.str());
  util::CsvTable back;
  try {
    back = util::CsvTable::read(back_in);
  } catch (const ParseError&) {
    harness_fail("csv", "writer output rejected by the reader");
  }
  if (back.header() != table.header() || back.num_rows() != table.num_rows()) {
    harness_fail("csv", "round-trip changed the table shape");
  }
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    if (back.row(r) != table.row(r)) {
      harness_fail("csv", "round-trip changed a row");
    }
  }
  return 0;
}

namespace {

void exercise_tree(const ml::DecisionTree& tree) {
  const std::vector<double> mid(tree.num_features(), 0.5);
  const std::vector<double> lo(tree.num_features(), -1e308);
  const int p1 = tree.predict(mid);
  (void)tree.predict(lo);
  (void)tree.predict_proba(mid);
  (void)tree.depth();
  // A loaded tree must survive save + reload with identical predictions.
  std::stringstream ss;
  tree.save(ss);
  const ml::DecisionTree back = ml::DecisionTree::load(ss);
  if (back.predict(mid) != p1 || back.node_count() != tree.node_count()) {
    harness_fail("model", "tree save/load round-trip diverged");
  }
}

}  // namespace

int one_model(const std::uint8_t* data, std::size_t size) {
  const std::string text = as_text(data, size);
  {
    std::istringstream is(text);
    try {
      const ml::DecisionTree tree = ml::DecisionTree::load(is);
      exercise_tree(tree);
    } catch (const ParseError&) {
    }
  }
  {
    std::istringstream is(text);
    try {
      const ml::RandomForest forest = ml::RandomForest::load(is);
      const std::vector<double> mid(forest.num_features(), 0.5);
      (void)forest.predict(mid);
      (void)forest.predict_proba(mid);
    } catch (const ParseError&) {
    }
  }
  {
    std::istringstream is(text);
    try {
      const ml::GradientBoosting gbt = ml::GradientBoosting::load(is);
      const std::vector<double> mid(gbt.num_features(), 0.5);
      (void)gbt.predict(mid);
      (void)gbt.predict_proba(mid);
    } catch (const ParseError&) {
    }
  }
  return 0;
}

int one_telemetry_wire(const std::uint8_t* data, std::size_t size) {
  std::vector<telemetry::TmFrame> frames;
  try {
    frames =
        telemetry::tm_decode_stream(std::span<const std::uint8_t>(data, size));
  } catch (const ParseError&) {
    return 0;  // rejected cleanly
  }
  // The first decode already dropped unknown tags and frame types, so the
  // decoded frames are fully canonical: re-encoding them must produce a
  // stream the decoder maps back to the identical frame sequence.
  const auto bytes = telemetry::tm_encode_frames(frames);
  std::vector<telemetry::TmFrame> back;
  try {
    back = telemetry::tm_decode_stream(std::span<const std::uint8_t>(bytes));
  } catch (const ParseError&) {
    harness_fail("telemetry_wire", "encoder output rejected by the decoder");
  }
  if (back != frames) {
    harness_fail("telemetry_wire", "round-trip changed the frames");
  }
  return 0;
}

int one_feed_capture(const std::uint8_t* data, std::size_t size) {
  trace::FeedCapture capture;
  try {
    capture =
        trace::read_feed_capture(std::span<const std::uint8_t>(data, size));
  } catch (const ParseError&) {
    return 0;
  }
  // Reader and writer must agree on the format limits: every accepted
  // capture re-serializes (no ContractViolation) and reads back equal.
  std::vector<std::uint8_t> bytes;
  try {
    bytes = trace::feed_capture_bytes(capture);
  } catch (const ContractViolation&) {
    harness_fail("feed_capture", "reader accepted an event the writer rejects");
  }
  trace::FeedCapture back;
  try {
    back = trace::read_feed_capture(std::span<const std::uint8_t>(bytes));
  } catch (const ParseError&) {
    harness_fail("feed_capture", "writer output rejected by the reader");
  }
  if (back.size() != capture.size()) {
    harness_fail("feed_capture", "round-trip changed the event count");
  }
  for (std::size_t i = 0; i < capture.size(); ++i) {
    const auto& a = capture[i];
    const auto& b = back[i];
    if (a.kind != b.kind || a.client != b.client || !txn_equal(a.txn, b.txn) ||
        a.marker_seq != b.marker_seq || a.marker_time_s != b.marker_time_s) {
      harness_fail("feed_capture", "round-trip changed an event");
    }
  }
  return 0;
}

}  // namespace droppkt::fuzz
