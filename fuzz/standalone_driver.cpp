// Fallback fuzzing driver for toolchains without libFuzzer (GCC).
//
// Linked into each fuzz target when the compiler is not Clang. Replays
// every file passed on the command line (and every regular file inside any
// directory argument), then — unless -runs=0 — keeps mutating the corpus
// with a deterministic xorshift PRNG until -max_total_time or -runs is
// exhausted. Understands the subset of libFuzzer flags our CI invokes, so
// the same command line works under both drivers. A crashing input is
// written to crash-<n> in the working directory before the signal brings
// the process down, same contract as libFuzzer.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

// The input currently being executed; dumped from the crash handler.
std::vector<std::uint8_t> g_current;
std::uint64_t g_executions = 0;

void dump_current_input() {
  static const char* const kName = "crash-input";
  std::FILE* f = std::fopen(kName, "wb");
  if (f != nullptr) {
    if (!g_current.empty()) {
      std::fwrite(g_current.data(), 1, g_current.size(), f);
    }
    std::fclose(f);
    std::fprintf(stderr,
                 "standalone_driver: crashing input (%zu bytes) written to %s "
                 "after %llu executions\n",
                 g_current.size(), kName,
                 static_cast<unsigned long long>(g_executions));
  }
}

[[noreturn]] void crash_handler(int sig) {
  dump_current_input();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
  std::_Exit(128 + sig);
}

void run_one(const std::uint8_t* data, std::size_t size) {
  g_current.assign(data, data + size);
  ++g_executions;
  (void)LLVMFuzzerTestOneInput(data, size);
}

/// xorshift64* — deterministic across platforms, no <random> needed.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

void mutate(std::vector<std::uint8_t>& buf, Rng& rng, std::size_t max_len) {
  const std::size_t kind = rng.below(5);
  switch (kind) {
    case 0:  // flip bits
      if (!buf.empty()) {
        for (std::size_t k = rng.below(4) + 1; k-- > 0;) {
          buf[rng.below(buf.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
      }
      break;
    case 1:  // overwrite with a random byte
      if (!buf.empty()) {
        buf[rng.below(buf.size())] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 2:  // insert a short random chunk
      if (buf.size() < max_len) {
        const std::size_t count =
            std::min<std::size_t>(rng.below(8) + 1, max_len - buf.size());
        const std::size_t at = rng.below(buf.size() + 1);
        std::vector<std::uint8_t> chunk(count);
        for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next());
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(at),
                   chunk.begin(), chunk.end());
      }
      break;
    case 3:  // erase a chunk
      if (!buf.empty()) {
        const std::size_t at = rng.below(buf.size());
        const std::size_t count =
            std::min(rng.below(8) + 1, buf.size() - at);
        buf.erase(buf.begin() + static_cast<std::ptrdiff_t>(at),
                  buf.begin() + static_cast<std::ptrdiff_t>(at + count));
      }
      break;
    default:  // splice in an interesting integer
      if (buf.size() >= 4) {
        static const std::uint32_t kInteresting[] = {
            0,          1,          0x7F,       0xFF,       0x100,
            0x7FFF,     0xFFFF,     0x10000,    0x7FFFFFFF, 0xFFFFFFFF};
        const std::uint32_t v =
            kInteresting[rng.below(std::size(kInteresting))];
        std::memcpy(buf.data() + rng.below(buf.size() - 3), &v, 4);
      }
      break;
  }
  if (buf.size() > max_len) buf.resize(max_len);
}

bool read_file(const fs::path& path, std::vector<std::uint8_t>& out) {
  std::ifstream ifs(path, std::ios::binary);
  if (!ifs) return false;
  out.assign(std::istreambuf_iterator<char>(ifs),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGABRT, crash_handler);
  std::signal(SIGSEGV, crash_handler);
  std::signal(SIGBUS, crash_handler);
  std::signal(SIGFPE, crash_handler);
  std::signal(SIGILL, crash_handler);

  long max_total_time = 0;  // seconds; 0 = no time budget
  long long runs = -1;      // mutation executions; -1 = unlimited, 0 = replay only
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 20;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::atol(arg.c_str() + 16);
    } else if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<std::size_t>(std::atoll(arg.c_str() + 9));
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore other libFuzzer flags (-rss_limit_mb, -print_final_stats, …)
      // so shared CI command lines don't need driver-specific branches.
    } else {
      inputs.emplace_back(arg);
    }
  }

  // Phase 1: replay the corpus (files and directories, recursively).
  std::vector<std::vector<std::uint8_t>> corpus;
  for (const auto& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(in)) {
        if (!entry.is_regular_file()) continue;
        std::vector<std::uint8_t> bytes;
        if (read_file(entry.path(), bytes)) corpus.push_back(std::move(bytes));
      }
    } else {
      std::vector<std::uint8_t> bytes;
      if (!read_file(in, bytes)) {
        std::fprintf(stderr, "standalone_driver: cannot read %s\n",
                     in.c_str());
        return 2;
      }
      corpus.push_back(std::move(bytes));
    }
  }
  for (const auto& bytes : corpus) run_one(bytes.data(), bytes.size());
  std::fprintf(stderr, "standalone_driver: replayed %zu corpus inputs\n",
               corpus.size());
  if (runs == 0) return 0;

  // Phase 2: mutate. Seeds come from the corpus; with no corpus we grow
  // inputs from scratch.
  if (corpus.empty()) corpus.push_back({});
  Rng rng{seed ? seed : 1};
  const std::time_t deadline =
      max_total_time > 0 ? std::time(nullptr) + max_total_time : 0;
  long long executed = 0;
  std::vector<std::uint8_t> buf;
  while (true) {
    if (runs > 0 && executed >= runs) break;
    if (deadline != 0 && std::time(nullptr) >= deadline) break;
    if (deadline == 0 && runs < 0) break;  // no budget given: replay only
    buf = corpus[rng.below(corpus.size())];
    const std::size_t rounds = rng.below(4) + 1;
    for (std::size_t k = 0; k < rounds; ++k) mutate(buf, rng, max_len);
    run_one(buf.data(), buf.size());
    ++executed;
  }
  std::fprintf(stderr,
               "standalone_driver: done, %lld mutated executions (seed %llu)\n",
               executed, static_cast<unsigned long long>(seed));
  return 0;
}
