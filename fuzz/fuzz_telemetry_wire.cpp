#include <cstddef>
#include <cstdint>

#include "harnesses.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return droppkt::fuzz::one_telemetry_wire(data, size);
}
