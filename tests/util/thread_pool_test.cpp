#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/expect.hpp"

namespace droppkt::util {
namespace {

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, RunsManyTasksAcrossWorkers) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&count] {
      count.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorCompletesPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // join
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPartialRange) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&sum](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&count](std::size_t) { ++count; });
  pool.parallel_for(7, 3, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&ran](std::size_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i == 50) throw std::runtime_error("halt");
                        }),
      std::runtime_error);
  // The throwing chunk aborts at the exception but every other chunk
  // completes before the rethrow, and the pool stays usable.
  EXPECT_GE(ran.load(), 51);
  EXPECT_LT(ran.load(), 100);
  std::atomic<int> after{0};
  pool.parallel_for(0, 8, [&after](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, MoreTasksThanWorkersThanIndices) {
  // chunks = min(n, workers): 2 indices over 8 workers must not stall.
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(0, 2, [&count](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ZeroWorkersRejected) {
  EXPECT_THROW(ThreadPool{0}, droppkt::ContractViolation);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(ThreadPool::recommended_threads(), 1u);
}

}  // namespace
}  // namespace droppkt::util
