// ExactSum promises the correctly-rounded sum of the term multiset, for
// any insertion order; OrderedSample promises the sorted multiset, for any
// insertion order. The feature accumulator's bit-identity contract rests
// on both, so they get direct coverage here — including the paths a
// realistic feed never exercises (inline-buffer overflow into the heap
// spill, interleaved erase_one/query/insert).
#include "util/exact_sum.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/expect.hpp"
#include "util/ordered_sample.hpp"
#include "util/rng.hpp"

namespace droppkt::util {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(ExactSum, EmptyIsZeroAndClearResets) {
  ExactSum s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.value(), 0.0);
  s.add(3.5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.value(), 3.5);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.value(), 0.0);
}

TEST(ExactSum, RecoversCancelledLowOrderBits) {
  // 1e16 swallows 1.0 in plain double arithmetic; the exact sum does not.
  ExactSum s;
  s.add(1e16);
  s.add(1.0);
  s.add(-1e16);
  EXPECT_EQ(s.value(), 1.0);
  // The classic fsum demo: .1 added ten times is exactly 1.0 when the
  // rounding happens once at the end.
  ExactSum t;
  for (int i = 0; i < 10; ++i) t.add(0.1);
  EXPECT_EQ(t.value(), 1.0);
}

TEST(ExactSum, ValueIsIndependentOfInsertionOrder) {
  Rng rng(2020);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> terms;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < n; ++i) {
      // Wild magnitude spread to force long partial lists.
      const double mag = std::pow(10.0, rng.uniform(-12.0, 12.0));
      terms.push_back((rng.uniform01() < 0.5 ? -1.0 : 1.0) * mag);
    }
    ExactSum forward;
    for (double x : terms) forward.add(x);
    std::vector<double> shuffled = terms;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1],
                shuffled[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<long>(i) - 1))]);
    }
    ExactSum permuted;
    for (double x : shuffled) permuted.add(x);
    EXPECT_TRUE(same_bits(forward.value(), permuted.value()))
        << "order-dependent sum at trial " << trial;
  }
}

TEST(ExactSum, SurvivesInlineBufferOverflow) {
  // Non-overlapping powers of two: every term becomes its own partial, so
  // enough of them must outgrow any fixed inline storage and spill. The
  // exact sum of 2^0 .. 2^-k for k < 53 is still one representable double.
  ExactSum s;
  double expected = 0.0;
  for (int k = 0; k <= 40; ++k) {
    s.add(std::pow(2.0, -k));
    expected += std::pow(2.0, -k);  // exact: mantissa holds all 41 bits
  }
  EXPECT_EQ(s.value(), expected);
  // Still usable (and exact) after the spill.
  s.add(-expected);
  EXPECT_EQ(s.value(), 0.0);
  s.clear();
  s.add(2.0);
  EXPECT_EQ(s.value(), 2.0);
}

TEST(OrderedSample, SortedViewMatchesStdSortForAnyOrder) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> values;
    const int n = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < n; ++i) values.push_back(rng.uniform(-5.0, 5.0));
    OrderedSample sample;
    for (double v : values) sample.insert(v);
    std::sort(values.begin(), values.end());
    const auto view = sample.sorted();
    ASSERT_EQ(view.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(view[i], values[i]);
    }
  }
}

TEST(OrderedSample, QueriesInterleaveWithInsertsAndErases) {
  OrderedSample s;
  s.insert(3.0);
  s.insert(1.0);                 // out of order: forces the lazy sort
  EXPECT_EQ(s.sorted().front(), 1.0);
  s.insert(2.0);                 // dirties again after a query
  EXPECT_EQ(s.sorted()[1], 2.0);
  s.erase_one(2.0);
  EXPECT_EQ(s.size(), 2u);
  s.insert(0.5);
  s.erase_one(3.0);              // erase must see the re-sorted view
  const auto view = s.sorted();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 0.5);
  EXPECT_EQ(view[1], 1.0);
  EXPECT_THROW(s.erase_one(9.0), droppkt::ContractViolation);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(OrderedSample, DuplicateValuesKeepMultiplicity) {
  OrderedSample s;
  for (double v : {2.0, 1.0, 2.0, 2.0, 1.0}) s.insert(v);
  const auto view = s.sorted();
  ASSERT_EQ(view.size(), 5u);
  EXPECT_EQ(std::count(view.begin(), view.end(), 2.0), 3);
  s.erase_one(2.0);
  EXPECT_EQ(std::count(s.sorted().begin(), s.sorted().end(), 2.0), 2);
}

}  // namespace
}  // namespace droppkt::util
