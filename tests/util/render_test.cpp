#include "util/render.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "util/expect.hpp"

namespace droppkt::util {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Three content lines + rule.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, EnforcesWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only"}), ContractViolation);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"x", "y"});
  t.add_row({"aaaa", "1"});
  t.add_row({"b", "2"});
  const std::string out = t.render();
  // Every line should have the same length (padded columns).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    const auto len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(BarChart, ScalesToMax) {
  const auto out = bar_chart({{"a", 10.0}, {"b", 5.0}}, 10);
  // 'a' gets 10 hashes, 'b' gets 5.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_EQ(out.find("###########"), std::string::npos);
}

TEST(BarChart, AllZeroProducesNoBars) {
  const auto out = bar_chart({{"a", 0.0}}, 10);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(BarChart, RejectsNegative) {
  EXPECT_THROW(bar_chart({{"a", -1.0}}, 10), ContractViolation);
}

TEST(Pct, Formats) {
  EXPECT_EQ(pct(0.72), "72%");
  EXPECT_EQ(pct(0.725, 1), "72.5%");
  EXPECT_EQ(pct(0.0), "0%");
  EXPECT_EQ(pct(1.0), "100%");
}

TEST(Fixed, Formats) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(CdfChart, ContainsPercentilesAndCounts) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto out = cdf_chart(v, {0.1, 0.5, 0.9}, "latency");
  EXPECT_NE(out.find("latency"), std::string::npos);
  EXPECT_NE(out.find("n=10"), std::string::npos);
  EXPECT_NE(out.find("p50"), std::string::npos);
}

TEST(CdfChart, RejectsBadFraction) {
  EXPECT_THROW(cdf_chart({1.0}, {1.5}, "x"), ContractViolation);
}

TEST(Histogram, CountsBins) {
  const std::vector<double> v{0.5, 1.5, 1.6, 2.5};
  const auto out =
      histogram(v, {0, 1, 2, 3}, {"0-1", "1-2", "2-3"}, "values");
  EXPECT_NE(out.find("values"), std::string::npos);
  EXPECT_NE(out.find("50"), std::string::npos);  // middle bin 50%
}

TEST(Histogram, LastBinInclusive) {
  const std::vector<double> v{3.0};
  const auto out = histogram(v, {0, 1, 2, 3}, {"a", "b", "c"}, "t");
  EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(Histogram, ValidatesShape) {
  EXPECT_THROW(histogram({}, {0}, {}, "t"), ContractViolation);
  EXPECT_THROW(histogram({}, {0, 1}, {"a", "b"}, "t"), ContractViolation);
}

TEST(Sparkline, MapsMinToBottomAndMaxToTopOfRamp) {
  const std::string out = sparkline({0.0, 5.0, 10.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.front(), ' ');  // min -> bottom of ramp
  EXPECT_EQ(out.back(), '@');   // max -> top of ramp
}

TEST(Sparkline, FlatSeriesRendersMidRampNotEmpty) {
  const std::string zeros = sparkline({0.0, 0.0, 0.0});
  const std::string highs = sparkline({9e9, 9e9});
  EXPECT_EQ(zeros, std::string(3, zeros[0]));
  EXPECT_NE(zeros[0], ' ');
  EXPECT_EQ(highs[0], zeros[0]);  // same glyph regardless of level
}

TEST(Sparkline, ResamplesToRequestedWidth) {
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const std::string out = sparkline(v, 10);
  ASSERT_EQ(out.size(), 10u);
  // Monotone series stays monotone after nearest-sample resampling —
  // measured in ramp position, since the glyphs are not in ASCII order.
  const std::string ramp = " .:-=+*#%@";
  std::vector<std::size_t> levels;
  for (const char c : out) {
    const std::size_t level = ramp.find(c);
    ASSERT_NE(level, std::string::npos);
    levels.push_back(level);
  }
  EXPECT_TRUE(std::is_sorted(levels.begin(), levels.end()));
  EXPECT_EQ(levels.front(), 0u);
  // The last cell is a nearest sample (v[90]), not the series max, so it
  // lands near — not necessarily at — the top of the ramp.
  EXPECT_GE(levels.back(), ramp.size() - 2);
  EXPECT_EQ(sparkline(v, 200).size(), 200u);  // upsampling too
}

TEST(Sparkline, NonFiniteAndEmptyInputs) {
  EXPECT_EQ(sparkline({}), "");
  const std::string out =
      sparkline({0.0, std::numeric_limits<double>::quiet_NaN(), 1.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], '?');
  EXPECT_EQ(out[0], ' ');  // finite values still normalized min..max
  EXPECT_EQ(out[2], '@');
}

TEST(BoxPlot, ReportsQuartiles) {
  const auto out = box_plot({{"grp", {1, 2, 3, 4, 5}}}, "metric");
  EXPECT_NE(out.find("grp"), std::string::npos);
  EXPECT_NE(out.find("metric"), std::string::npos);
  EXPECT_NE(out.find("3"), std::string::npos);  // median
}

}  // namespace
}  // namespace droppkt::util
