#include "util/string_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/expect.hpp"

namespace droppkt::util {
namespace {

TEST(WellMixedHash, StableAndSensitive) {
  // The hash is part of the determinism contract (shard routing keys off
  // it), so its values must never drift across platforms or builds.
  EXPECT_EQ(well_mixed_hash(""), well_mixed_hash(""));
  EXPECT_NE(well_mixed_hash("a"), well_mixed_hash("b"));
  EXPECT_NE(well_mixed_hash("ab"), well_mixed_hash("ba"));
  const std::uint64_t h = well_mixed_hash("cell-3/sub-17");
  EXPECT_EQ(well_mixed_hash(std::string("cell-3/sub-17")), h);
}

TEST(StringPool, RefsAreDenseAndRoundTrip) {
  StringPool pool;
  std::vector<std::string> strings;
  for (int i = 0; i < 100; ++i) strings.push_back("sub-" + std::to_string(i));
  for (std::size_t i = 0; i < strings.size(); ++i) {
    EXPECT_EQ(pool.intern(strings[i]), static_cast<StringPool::Ref>(i));
  }
  EXPECT_EQ(pool.size(), strings.size());
  for (std::size_t i = 0; i < strings.size(); ++i) {
    EXPECT_EQ(pool.view(static_cast<StringPool::Ref>(i)), strings[i]);
    // Re-interning returns the existing ref, never a new one.
    EXPECT_EQ(pool.intern(strings[i]), static_cast<StringPool::Ref>(i));
  }
  EXPECT_EQ(pool.size(), strings.size());
}

TEST(StringPool, EmptyAndLargeStringsRoundTrip) {
  StringPool pool;
  const StringPool::Ref empty = pool.intern("");
  EXPECT_EQ(pool.view(empty), "");
  // Larger than one arena block (64 KiB): takes the oversized-block path.
  const std::string big(1u << 17, 'x');
  const StringPool::Ref big_ref = pool.intern(big);
  EXPECT_EQ(pool.view(big_ref), big);
  EXPECT_EQ(pool.intern(""), empty);
  EXPECT_EQ(pool.intern(big), big_ref);
  EXPECT_GE(pool.payload_bytes(), big.size());
}

TEST(StringPool, SurvivesIndexGrowthAndProbeCollisions) {
  // Intern enough strings to force several index rehashes (initial index
  // is 1024 slots, grown at 50% load); every earlier ref must still
  // resolve and re-intern to itself afterwards. With tens of thousands of
  // keys the open-addressed index also exercises long probe chains.
  StringPool pool;
  std::unordered_map<std::string, StringPool::Ref> refs;
  for (int i = 0; i < 20000; ++i) {
    const std::string s = "client-" + std::to_string(i * 7919);
    refs.emplace(s, pool.intern(s));
  }
  EXPECT_EQ(pool.size(), refs.size());
  for (const auto& [s, ref] : refs) {
    EXPECT_EQ(pool.view(ref), s);
    EXPECT_EQ(pool.intern(s), ref);
  }
}

TEST(StringPool, DistinctStringsNeverShareARef) {
  // Collision safety: refs are compared as integers in the hot path, so
  // two distinct strings must never intern to the same ref even when
  // their hashes land on the same index slot.
  StringPool pool;
  std::unordered_map<StringPool::Ref, std::string> owner;
  for (int i = 0; i < 5000; ++i) {
    const std::string s = std::to_string(i);
    const StringPool::Ref ref = pool.intern(s);
    const auto [it, fresh] = owner.emplace(ref, s);
    EXPECT_TRUE(fresh) << "ref " << ref << " shared by '" << it->second
                       << "' and '" << s << "'";
  }
}

TEST(StringPool, ViewIsStableAcrossLaterInterns) {
  // The engine's worker resolves refs while the producer keeps interning;
  // entries must never move. Capture views early, intern enough to add
  // chunks and regrow the index, then re-check the old views in place.
  StringPool pool;
  const StringPool::Ref ref = pool.intern("pinned");
  const std::string_view before = pool.view(ref);
  for (int i = 0; i < 10000; ++i) pool.intern("filler-" + std::to_string(i));
  const std::string_view after = pool.view(ref);
  EXPECT_EQ(before.data(), after.data());
  EXPECT_EQ(after, "pinned");
}

TEST(StringPool, CrossThreadViewAfterPublication) {
  // Publication contract: a ref handed to another thread through a
  // release/acquire edge resolves there. The producer interns and
  // publishes the count; the reader acquires it and views every ref below.
  StringPool pool;
  std::atomic<std::uint32_t> published{0};
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint32_t n = published.load(std::memory_order_acquire);
      for (std::uint32_t r = 0; r < n; ++r) {
        const std::string_view v = pool.view(r);
        if (v != "k-" + std::to_string(r)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  for (std::uint32_t i = 0; i < 30000; ++i) {
    const StringPool::Ref ref = pool.intern("k-" + std::to_string(i));
    ASSERT_EQ(ref, i);
    published.store(i + 1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(StringPool, CapacityMatchesChunkGeometry) {
  EXPECT_EQ(StringPool::capacity(), 4096u * 4096u);
}

}  // namespace
}  // namespace droppkt::util
