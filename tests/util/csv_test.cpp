#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/expect.hpp"

namespace droppkt::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvSplit, SimpleFields) {
  const auto f = csv_split_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvSplit, EmptyFields) {
  const auto f = csv_split_line("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(CsvSplit, QuotedCommaAndQuote) {
  const auto f = csv_split_line("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "say \"hi\"");
}

TEST(CsvSplit, StripsCarriageReturn) {
  const auto f = csv_split_line("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(CsvTable, RoundTripThroughStream) {
  CsvTable table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"with,comma", "2"});
  std::stringstream ss;
  table.write(ss);
  const CsvTable back = CsvTable::read(ss);
  ASSERT_EQ(back.num_rows(), 2u);
  ASSERT_EQ(back.num_cols(), 2u);
  EXPECT_EQ(back.at(0, 0), "alpha");
  EXPECT_EQ(back.at(1, 0), "with,comma");
  EXPECT_EQ(back.at_double(0, 1), 1.5);
}

TEST(CsvTable, ColLookup) {
  CsvTable table({"a", "b", "c"});
  EXPECT_EQ(table.col("b"), 1u);
  EXPECT_THROW(table.col("nope"), ContractViolation);
}

TEST(CsvTable, RowWidthEnforced) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), ContractViolation);
}

TEST(CsvTable, AtDoubleRejectsNonNumeric) {
  CsvTable table({"x"});
  table.add_row({"abc"});
  EXPECT_THROW(table.at_double(0, 0), ContractViolation);
}

TEST(CsvTable, OutOfRangeAccess) {
  CsvTable table({"x"});
  table.add_row({"1"});
  EXPECT_THROW(table.at(1, 0), ContractViolation);
  EXPECT_THROW(table.at(0, 1), ContractViolation);
  EXPECT_THROW(table.row(5), ContractViolation);
}

TEST(CsvTable, ReadRequiresHeader) {
  std::stringstream empty;
  EXPECT_THROW(CsvTable::read(empty), ParseError);
}

TEST(CsvTable, SkipsBlankLines) {
  std::stringstream ss("a,b\n\n1,2\n\n");
  const auto table = CsvTable::read(ss);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(CsvTable, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/droppkt_csv_test.csv";
  CsvTable table({"k", "v"});
  table.add_row({"key", "42"});
  table.write_file(path);
  const auto back = CsvTable::read_file(path);
  EXPECT_EQ(back.at_double(0, 1), 42.0);
  std::remove(path.c_str());
}

TEST(CsvTable, MissingFileThrows) {
  EXPECT_THROW(CsvTable::read_file("/nonexistent/definitely/not.csv"),
               std::runtime_error);
}

TEST(FormatDouble, Compact) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(42), "42");
  EXPECT_EQ(format_double(0), "0");
}

}  // namespace
}  // namespace droppkt::util
