#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::util {
namespace {

TEST(Summarize, EmptyIsAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> v{3.5};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 3.5);
  EXPECT_EQ(s.max, 3.5);
  EXPECT_EQ(s.mean, 3.5);
  EXPECT_EQ(s.median, 3.5);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownValues) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const auto s = summarize(v);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Summarize, UnsortedInput) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  const auto s = summarize(v);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.max, 5.0);
}

TEST(Percentile, EndpointsAndMidpoints) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_EQ(percentile(v, 0), 10.0);
  EXPECT_EQ(percentile(v, 100), 40.0);
  EXPECT_EQ(percentile(v, 50), 25.0);  // linear interpolation
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{0, 10};
  EXPECT_NEAR(percentile(v, 25), 2.5, 1e-12);
  EXPECT_NEAR(percentile(v, 75), 7.5, 1e-12);
}

TEST(Percentile, EmptyIsZero) { EXPECT_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, RejectsOutOfRangeP) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), ContractViolation);
  EXPECT_THROW(percentile(v, 101), ContractViolation);
}

TEST(Percentile, MonotoneInP) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.normal());
  double prev = percentile(v, 0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(MeanStddev, Basics) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.0, 1e-12);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{5, 5, 5};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, RejectsLengthMismatch) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1};
  EXPECT_THROW(pearson(x, y), ContractViolation);
}

TEST(EmpiricalCdf, SortedAndNormalized) {
  const std::vector<double> v{3, 1, 2};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_EQ(cdf[0].first, 1.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(cdf[2].first, 3.0);
  EXPECT_EQ(cdf[2].second, 1.0);
}

TEST(EmpiricalCdf, Empty) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(OnlineStats, MatchesBatch) {
  Rng rng(2);
  std::vector<double> v;
  OnlineStats os;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    v.push_back(x);
    os.add(x);
  }
  EXPECT_NEAR(os.mean(), mean(v), 1e-9);
  EXPECT_NEAR(os.stddev(), stddev(v), 1e-9);
  const auto s = summarize(v);
  EXPECT_EQ(os.min(), s.min);
  EXPECT_EQ(os.max(), s.max);
  EXPECT_EQ(os.count(), 1000u);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats os;
  EXPECT_EQ(os.mean(), 0.0);
  EXPECT_EQ(os.stddev(), 0.0);
  EXPECT_EQ(os.min(), 0.0);
  EXPECT_EQ(os.max(), 0.0);
}

// Property: summary invariants hold across random samples.
class SummaryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryProperty, Invariants) {
  Rng rng(GetParam());
  std::vector<double> v;
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 200));
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.normal(0, 100));
  const auto s = summarize(v);
  EXPECT_EQ(s.count, n);
  EXPECT_LE(s.min, s.median);
  EXPECT_LE(s.median, s.max);
  EXPECT_LE(s.min, s.mean);
  EXPECT_LE(s.mean, s.max);
  EXPECT_GE(s.stddev, 0.0);
  EXPECT_LE(s.stddev, (s.max - s.min) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace droppkt::util
