#include "util/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "util/expect.hpp"

namespace droppkt::util {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscQueue<int>(65).capacity(), 128u);
  EXPECT_THROW(SpscQueue<int>(1), droppkt::ContractViolation);
}

TEST(SpscQueue, FifoSingleThread) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) q.push(i);
  EXPECT_EQ(q.size(), 8u);
  int v = -1;
  EXPECT_FALSE(q.try_push(v));  // full
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(q.try_pop(out));  // empty
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, WrapsAroundManyTimes) {
  SpscQueue<std::size_t> q(4);
  std::size_t next_out = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    q.push(i);
    if (i % 2 == 1) {  // drain two for every two pushed, staying half-full
      for (int k = 0; k < 2; ++k) {
        std::size_t out = 0;
        ASSERT_TRUE(q.try_pop(out));
        EXPECT_EQ(out, next_out++);
      }
    }
  }
  EXPECT_EQ(q.high_water(), 2u);
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(SpscQueue, DropOldestAccounting) {
  SpscQueue<int> q(4, BackpressurePolicy::kDropOldest);
  for (int i = 0; i < 10; ++i) q.push(i);  // 0..5 are shed, 6..9 survive
  EXPECT_EQ(q.dropped(), 6u);
  EXPECT_EQ(q.size(), 4u);
  for (int expect = 6; expect < 10; ++expect) {
    int out = -1;
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_TRUE(q.empty());
  // Drops only happen under overflow, not on every push.
  q.push(42);
  EXPECT_EQ(q.dropped(), 6u);
}

TEST(SpscQueue, HighWaterTracksDeepestOccupancy) {
  SpscQueue<int> q(16);
  for (int i = 0; i < 5; ++i) q.push(i);
  int out;
  while (q.try_pop(out)) {
  }
  for (int i = 0; i < 3; ++i) q.push(i);
  EXPECT_EQ(q.high_water(), 5u);
}

TEST(SpscQueue, CloseWakesConsumerAfterDrain) {
  SpscQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  int out = -1;
  EXPECT_TRUE(q.pop_wait(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop_wait(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop_wait(out));  // closed and empty
}

TEST(SpscQueue, TwoThreadStressBlocking) {
  constexpr std::size_t kItems = 200000;
  SpscQueue<std::size_t> q(64);
  std::vector<std::size_t> got;
  got.reserve(kItems);
  std::thread consumer([&] {
    std::size_t v = 0;
    while (q.pop_wait(v)) got.push_back(v);
  });
  for (std::size_t i = 0; i < kItems; ++i) q.push(i);
  q.close();
  consumer.join();
  ASSERT_EQ(got.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(got[i], i) << "order violated at " << i;
  }
  EXPECT_EQ(q.dropped(), 0u);
  EXPECT_LE(q.high_water(), q.capacity());
}

TEST(SpscQueue, TwoThreadStressDropOldestKeepsOrderedSuffix) {
  constexpr std::size_t kItems = 100000;
  SpscQueue<std::size_t> q(16, BackpressurePolicy::kDropOldest);
  std::vector<std::size_t> got;
  got.reserve(kItems);
  std::thread consumer([&] {
    std::size_t v = 0;
    while (q.pop_wait(v)) got.push_back(v);
  });
  for (std::size_t i = 0; i < kItems; ++i) q.push(i);
  q.close();
  consumer.join();
  // Whatever survives must be a strictly increasing subsequence ending at
  // the final element, and conservation must hold exactly.
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.back(), kItems - 1);
  for (std::size_t i = 1; i < got.size(); ++i) ASSERT_LT(got[i - 1], got[i]);
  EXPECT_EQ(got.size() + q.dropped(), kItems);
}

TEST(SpscQueue, BulkRoundTripWrapsAround) {
  // Bulk blocks that never divide the capacity evenly force every push
  // and pop to straddle the ring boundary repeatedly.
  SpscQueue<std::size_t> q(8);
  std::size_t next_in = 0;
  std::size_t next_out = 0;
  std::size_t block[5];
  std::size_t out[5];
  for (int round = 0; round < 500; ++round) {
    for (auto& v : block) v = next_in++;
    q.push_bulk(block, 5);
    const std::size_t got = q.try_pop_bulk(out, 5);
    ASSERT_EQ(got, 5u);
    for (std::size_t i = 0; i < got; ++i) ASSERT_EQ(out[i], next_out++);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(SpscQueue, TryPushBulkStopsAtFullRing) {
  SpscQueue<int> q(4);
  int items[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(q.try_push_bulk(items, 6), 4u);  // ring holds 4
  EXPECT_EQ(q.try_push_bulk(items + 4, 2), 0u);
  int out[6];
  EXPECT_EQ(q.try_pop_bulk(out, 6), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.try_pop_bulk(out, 6), 0u);  // empty
}

TEST(SpscQueue, DropOldestAcrossOneBulkBlock) {
  // A block larger than the ring: only its newest ring-full suffix may
  // survive, and everything older — including elements of this same
  // block — is counted in dropped().
  SpscQueue<int> q(4, BackpressurePolicy::kDropOldest);
  q.push(100);
  q.push(101);
  int block[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  q.push_bulk(block, 10);
  EXPECT_EQ(q.dropped(), 8u);  // 100, 101, and block elements 0..5
  EXPECT_EQ(q.size(), 4u);
  for (int expect = 6; expect < 10; ++expect) {
    int out = -1;
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(SpscQueue, PopWaitBulkDrainsTailAfterClose) {
  SpscQueue<int> q(8);
  int items[3] = {7, 8, 9};
  q.push_bulk(items, 3);
  q.close();
  int out[8];
  EXPECT_EQ(q.pop_wait_bulk(out, 8), 3u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 8);
  EXPECT_EQ(out[2], 9);
  EXPECT_EQ(q.pop_wait_bulk(out, 8), 0u);  // closed and fully drained
}

TEST(SpscQueue, TwoThreadBulkStressBlocking) {
  constexpr std::size_t kItems = 200000;
  constexpr std::size_t kBlock = 37;  // non-power-of-two on a 64-ring
  SpscQueue<std::size_t> q(64);
  std::vector<std::size_t> got;
  got.reserve(kItems);
  std::thread consumer([&] {
    std::size_t buf[kBlock];
    for (;;) {
      const std::size_t n = q.pop_wait_bulk(buf, kBlock);
      if (n == 0) break;
      got.insert(got.end(), buf, buf + n);
    }
  });
  std::size_t block[kBlock];
  std::size_t next = 0;
  while (next < kItems) {
    std::size_t n = 0;
    while (n < kBlock && next < kItems) block[n++] = next++;
    q.push_bulk(block, n);
  }
  q.close();
  consumer.join();
  ASSERT_EQ(got.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(got[i], i) << "order violated at " << i;
  }
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(SpscQueue, MovesNonTrivialPayloads) {
  SpscQueue<std::string> q(8);
  std::thread consumer([&] {
    std::string s;
    std::size_t n = 0;
    while (q.pop_wait(s)) {
      ASSERT_EQ(s, "payload-" + std::to_string(n++));
    }
    EXPECT_EQ(n, 5000u);
  });
  for (int i = 0; i < 5000; ++i) q.push("payload-" + std::to_string(i));
  q.close();
  consumer.join();
}

}  // namespace
}  // namespace droppkt::util
