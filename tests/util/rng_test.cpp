#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace droppkt::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  const auto x1 = a();
  const auto x2 = a();
  a.reseed(7);
  EXPECT_EQ(a(), x1);
  EXPECT_EQ(a(), x2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    ASSERT_GE(v, -10);
    ASSERT_LE(v, -5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(10);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSd) {
  Rng rng(10);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(11);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, LognormalMedian) {
  Rng rng(12);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.lognormal(std::log(100.0), 0.5));
  EXPECT_NEAR(median(v), 100.0, 3.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(13);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW(rng.bernoulli(-0.1), ContractViolation);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(14);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(15);
  EXPECT_THROW(rng.weighted_index({}), ContractViolation);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), ContractViolation);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), ContractViolation);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(16);
  const auto p = rng.permutation(50);
  ASSERT_EQ(p.size(), 50u);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationEmpty) {
  Rng rng(16);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, PermutationShuffles) {
  Rng rng(17);
  // Over many draws, the first element should not always be 0.
  int first_is_zero = 0;
  for (int i = 0; i < 100; ++i) {
    if (rng.permutation(10)[0] == 0) ++first_is_zero;
  }
  EXPECT_LT(first_is_zero, 30);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(19), b(19);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ca(), cb());
}

// Property sweep: all distributions stay in range across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, DistributionsWellFormed) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.exponential(1.0), 0.0);
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1337, 99999,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace droppkt::util
