#include "net/bandwidth_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::net {
namespace {

TEST(BandwidthTrace, ConstantTraceBasics) {
  const auto t = BandwidthTrace::constant(1000.0, 10.0);
  EXPECT_EQ(t.duration_s(), 10.0);
  EXPECT_EQ(t.bandwidth_at(0.0), 1000.0);
  EXPECT_EQ(t.bandwidth_at(9.9), 1000.0);
  EXPECT_NEAR(t.average_kbps(), 1000.0, 1e-9);
}

TEST(BandwidthTrace, WrapsAround) {
  const auto t = BandwidthTrace({{0.0, 100.0}, {5.0, 200.0}}, 10.0);
  EXPECT_EQ(t.bandwidth_at(2.0), 100.0);
  EXPECT_EQ(t.bandwidth_at(7.0), 200.0);
  EXPECT_EQ(t.bandwidth_at(12.0), 100.0);  // wrapped
  EXPECT_EQ(t.bandwidth_at(17.0), 200.0);
}

TEST(BandwidthTrace, AverageWeightsByTime) {
  // 100 kbps for 5 s, 300 kbps for 15 s -> (100*5 + 300*15)/20 = 250.
  const auto t = BandwidthTrace({{0.0, 100.0}, {5.0, 300.0}}, 20.0);
  EXPECT_NEAR(t.average_kbps(), 250.0, 1e-9);
}

TEST(BandwidthTrace, ValidatesInvariants) {
  EXPECT_THROW(BandwidthTrace({}, 10.0), droppkt::ContractViolation);
  EXPECT_THROW(BandwidthTrace({{1.0, 100.0}}, 10.0), droppkt::ContractViolation);
  EXPECT_THROW(BandwidthTrace({{0.0, -5.0}}, 10.0), droppkt::ContractViolation);
  EXPECT_THROW(BandwidthTrace({{0.0, 1.0}, {0.0, 2.0}}, 10.0),
               droppkt::ContractViolation);
  EXPECT_THROW(BandwidthTrace({{0.0, 1.0}, {5.0, 2.0}}, 5.0),
               droppkt::ContractViolation);
}

TEST(BandwidthTrace, CapacityBytesConstant) {
  const auto t = BandwidthTrace::constant(800.0, 10.0);  // 100 KB/s
  EXPECT_NEAR(t.capacity_bytes(0.0, 1.0), 100e3, 1.0);
  EXPECT_NEAR(t.capacity_bytes(3.0, 7.0), 400e3, 1.0);
}

TEST(BandwidthTrace, CapacityBytesAcrossWrap) {
  const auto t = BandwidthTrace({{0.0, 800.0}, {5.0, 1600.0}}, 10.0);
  // One full period: 5s at 100 KB/s + 5s at 200 KB/s = 1.5 MB.
  EXPECT_NEAR(t.capacity_bytes(0.0, 10.0), 1.5e6, 1.0);
  EXPECT_NEAR(t.capacity_bytes(0.0, 20.0), 3.0e6, 1.0);
  // From 7s to 12s: 3s at 200 + 2s at 100 = 800 KB.
  EXPECT_NEAR(t.capacity_bytes(7.0, 12.0), 800e3, 1.0);
}

TEST(BandwidthTrace, CapacityRejectsBadRange) {
  const auto t = BandwidthTrace::constant(100.0, 10.0);
  EXPECT_THROW(t.capacity_bytes(5.0, 4.0), droppkt::ContractViolation);
  EXPECT_THROW(t.capacity_bytes(-1.0, 4.0), droppkt::ContractViolation);
}

TEST(BandwidthTrace, TransferEndTimeConstantRate) {
  const auto t = BandwidthTrace::constant(800.0, 10.0);  // 100 KB/s
  EXPECT_NEAR(t.transfer_end_time(2.0, 300e3), 5.0, 1e-6);
}

TEST(BandwidthTrace, TransferEndTimeZeroBytes) {
  const auto t = BandwidthTrace::constant(800.0, 10.0);
  EXPECT_EQ(t.transfer_end_time(3.0, 0.0), 3.0);
}

TEST(BandwidthTrace, TransferEndTimeSpansZeroSegment) {
  // 1s of capacity, then 4s outage, repeating.
  const auto t = BandwidthTrace({{0.0, 800.0}, {1.0, 0.0}}, 5.0);
  // 150 KB: 100 KB in first second, stall 4 s, 50 KB in 0.5 s of next period.
  EXPECT_NEAR(t.transfer_end_time(0.0, 150e3), 5.5, 1e-6);
}

TEST(BandwidthTrace, TransferEndTimeMultiPeriod) {
  const auto t = BandwidthTrace::constant(800.0, 10.0);  // 1 MB per period
  EXPECT_NEAR(t.transfer_end_time(0.0, 2.5e6), 25.0, 1e-6);
}

TEST(BandwidthTrace, TransferZeroCapacityIsInfinite) {
  const auto t = BandwidthTrace::constant(0.0, 10.0);
  EXPECT_TRUE(std::isinf(t.transfer_end_time(0.0, 100.0)));
}

TEST(ToString, Environments) {
  EXPECT_EQ(to_string(Environment::kBroadband), "broadband");
  EXPECT_EQ(to_string(Environment::kThreeG), "3g");
  EXPECT_EQ(to_string(Environment::kLte), "lte");
}

// Property: transfer_end_time is consistent with capacity_bytes.
class TransferCapacityProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TransferCapacityProperty, InverseRelationship) {
  util::Rng rng(GetParam());
  std::vector<BandwidthSample> samples;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    samples.push_back({t, rng.uniform(50.0, 5000.0)});
    t += rng.uniform(0.5, 3.0);
  }
  const BandwidthTrace trace(std::move(samples), t + 1.0);
  for (int i = 0; i < 20; ++i) {
    const double start = rng.uniform(0.0, 30.0);
    const double bytes = rng.uniform(1e3, 5e6);
    const double end = trace.transfer_end_time(start, bytes);
    ASSERT_GE(end, start);
    // The capacity accumulated by `end` matches the bytes requested.
    EXPECT_NEAR(trace.capacity_bytes(start, end), bytes, bytes * 1e-6 + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferCapacityProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace droppkt::net
