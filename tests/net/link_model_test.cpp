#include "net/link_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace droppkt::net {
namespace {

TEST(LinkParams, PerEnvironmentOrdering) {
  const auto bb = link_params_for(Environment::kBroadband);
  const auto tg = link_params_for(Environment::kThreeG);
  const auto lte = link_params_for(Environment::kLte);
  EXPECT_LT(bb.base_rtt_ms, lte.base_rtt_ms);
  EXPECT_LT(lte.base_rtt_ms, tg.base_rtt_ms);
  EXPECT_LT(bb.loss_rate, tg.loss_rate);
}

TEST(LinkModel, ValidatesParams) {
  const auto trace = BandwidthTrace::constant(1000.0, 10.0);
  LinkParams bad;
  bad.efficiency = 0.0;
  EXPECT_THROW(LinkModel(trace, bad), droppkt::ContractViolation);
  bad = {};
  bad.loss_rate = 0.7;
  EXPECT_THROW(LinkModel(trace, bad), droppkt::ContractViolation);
}

TEST(LinkModel, RttSamplesPositiveAndNearBase) {
  const auto trace = BandwidthTrace::constant(1000.0, 10.0);
  LinkParams p;
  p.base_rtt_ms = 50.0;
  p.rtt_jitter_ms = 10.0;
  const LinkModel link(trace, p);
  util::Rng rng(1);
  util::OnlineStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(link.sample_rtt_s(rng));
  EXPECT_GT(stats.min(), 0.05);  // never below the base
  EXPECT_NEAR(stats.mean(), 0.061, 0.01);
}

TEST(LinkModel, TransferOrdering) {
  const auto trace = BandwidthTrace::constant(8000.0, 100.0);
  const LinkModel link(trace);
  util::Rng rng(2);
  const auto t = link.transfer(5.0, 800.0, 500e3, rng);
  EXPECT_EQ(t.request_sent_s, 5.0);
  EXPECT_GT(t.response_start_s, t.request_sent_s);
  EXPECT_GT(t.response_end_s, t.response_start_s);
  EXPECT_GT(t.rtt_s, 0.0);
}

TEST(LinkModel, LargerTransfersTakeLonger) {
  const auto trace = BandwidthTrace::constant(4000.0, 100.0);
  const LinkModel link(trace);
  util::Rng rng(3);
  const auto small = link.transfer(0.0, 500.0, 100e3, rng);
  const auto large = link.transfer(0.0, 500.0, 10e6, rng);
  EXPECT_LT(small.response_end_s - small.request_sent_s,
            large.response_end_s - large.request_sent_s);
}

TEST(LinkModel, GoodputBelowLinkRate) {
  // Loss + efficiency overheads mean effective rate < trace rate.
  const auto trace = BandwidthTrace::constant(8000.0, 1000.0);  // 1 MB/s
  LinkParams p;
  p.base_rtt_ms = 10.0;
  p.rtt_jitter_ms = 1.0;
  p.loss_rate = 0.01;
  p.efficiency = 0.9;
  const LinkModel link(trace, p);
  util::Rng rng(4);
  const double bytes = 10e6;
  const auto t = link.transfer(0.0, 500.0, bytes, rng);
  const double rate = bytes / (t.response_end_s - t.request_sent_s);
  EXPECT_LT(rate, 1e6);
  EXPECT_GT(rate, 0.7e6);
}

TEST(LinkModel, SlowStartPenalizesSmallTransfersProportionallyMore) {
  const auto trace = BandwidthTrace::constant(80000.0, 1000.0);  // 10 MB/s
  LinkParams p;
  p.base_rtt_ms = 100.0;
  p.rtt_jitter_ms = 0.1;
  p.loss_rate = 0.0001;
  p.efficiency = 0.95;
  const LinkModel link(trace, p);
  util::Rng rng(5);
  const auto small = link.transfer(0.0, 500.0, 50e3, rng);
  const auto large = link.transfer(0.0, 500.0, 5e6, rng);
  const double small_rate = 50e3 / (small.response_end_s - small.request_sent_s);
  const double large_rate = 5e6 / (large.response_end_s - large.request_sent_s);
  EXPECT_LT(small_rate, large_rate);
}

TEST(LinkModel, RejectsNegativeInputs) {
  const auto trace = BandwidthTrace::constant(1000.0, 10.0);
  const LinkModel link(trace);
  util::Rng rng(6);
  EXPECT_THROW(link.transfer(-1.0, 100.0, 100.0, rng),
               droppkt::ContractViolation);
  EXPECT_THROW(link.transfer(0.0, -1.0, 100.0, rng),
               droppkt::ContractViolation);
  EXPECT_THROW(link.transfer(0.0, 100.0, -1.0, rng),
               droppkt::ContractViolation);
}

TEST(LinkModel, EnvironmentConstructorUsesTraceEnvironment) {
  const BandwidthTrace trace({{0.0, 500.0}}, 10.0, Environment::kThreeG);
  const LinkModel link(trace);
  EXPECT_EQ(link.params().base_rtt_ms,
            link_params_for(Environment::kThreeG).base_rtt_ms);
}

// Property: transfers complete in finite time on any positive-rate trace
// and end after they start.
class TransferProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransferProperty, FiniteAndOrdered) {
  util::Rng rng(GetParam());
  const auto trace = BandwidthTrace::constant(rng.uniform(100.0, 50000.0), 60.0);
  const LinkModel link(trace, link_params_for(Environment::kLte));
  for (int i = 0; i < 50; ++i) {
    const auto t = link.transfer(rng.uniform(0.0, 100.0),
                                 rng.uniform(0.0, 2000.0),
                                 rng.uniform(0.0, 5e6), rng);
    ASSERT_TRUE(std::isfinite(t.response_end_s));
    ASSERT_LE(t.request_sent_s, t.response_start_s);
    ASSERT_LE(t.response_start_s, t.response_end_s + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace droppkt::net
