#include "net/trace_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace droppkt::net {
namespace {

TEST(TraceGenerator, Deterministic) {
  TraceGenerator a(42), b(42);
  const auto ta = a.generate(Environment::kLte, 120.0);
  const auto tb = b.generate(Environment::kLte, 120.0);
  ASSERT_EQ(ta.samples().size(), tb.samples().size());
  for (std::size_t i = 0; i < ta.samples().size(); ++i) {
    EXPECT_EQ(ta.samples()[i].kbps, tb.samples()[i].kbps);
  }
}

TEST(TraceGenerator, RespectsDurationAndSampling) {
  TraceGenerator gen(1);
  const auto t = gen.generate(Environment::kBroadband, 300.0);
  EXPECT_EQ(t.duration_s(), 300.0);
  EXPECT_EQ(t.samples().size(), 300u);
  EXPECT_EQ(t.environment(), Environment::kBroadband);
}

TEST(TraceGenerator, SamplesWithinModelClamps) {
  TraceGenerator gen(2);
  for (auto env : {Environment::kBroadband, Environment::kThreeG,
                   Environment::kLte}) {
    const auto& m = environment_model(env);
    const auto t = gen.generate(env, 200.0);
    for (const auto& s : t.samples()) {
      ASSERT_GE(s.kbps, m.min_kbps);
      ASSERT_LE(s.kbps, m.max_kbps);
    }
  }
}

TEST(TraceGenerator, RejectsTinyDuration) {
  TraceGenerator gen(3);
  EXPECT_THROW(gen.generate(Environment::kLte, 0.5),
               droppkt::ContractViolation);
}

TEST(TraceGenerator, EnvironmentsHaveDistinctScales) {
  TraceGenerator gen(4);
  util::OnlineStats bb, tg;
  for (int i = 0; i < 40; ++i) {
    bb.add(gen.generate(Environment::kBroadband, 120.0).average_kbps());
    tg.add(gen.generate(Environment::kThreeG, 120.0).average_kbps());
  }
  // Broadband averages well above 3G averages.
  EXPECT_GT(bb.mean(), 2.0 * tg.mean());
}

TEST(TraceGenerator, TracesVary) {
  TraceGenerator gen(5);
  const auto a = gen.generate(Environment::kLte, 60.0);
  const auto b = gen.generate(Environment::kLte, 60.0);
  EXPECT_NE(a.average_kbps(), b.average_kbps());
}

TEST(TracePool, DeterministicAndSized) {
  const TracePool p1(50, 9), p2(50, 9);
  EXPECT_EQ(p1.size(), 50u);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1.trace(i).average_kbps(), p2.trace(i).average_kbps());
  }
}

TEST(TracePool, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(TracePool(0, 1), droppkt::ContractViolation);
  const TracePool p(3, 1);
  EXPECT_THROW(p.trace(3), droppkt::ContractViolation);
}

TEST(TracePool, ContainsAllEnvironments) {
  const TracePool pool(200, 10);
  bool has_env[3] = {false, false, false};
  for (std::size_t i = 0; i < pool.size(); ++i) {
    has_env[static_cast<int>(pool.trace(i).environment())] = true;
  }
  EXPECT_TRUE(has_env[0]);
  EXPECT_TRUE(has_env[1]);
  EXPECT_TRUE(has_env[2]);
}

TEST(TracePool, AverageBandwidthSpansPaperRange) {
  // Figure 3a: the CDF spans roughly 10^2 .. 10^5 kbps.
  const TracePool pool(400, 11);
  const auto avgs = pool.average_bandwidths();
  ASSERT_EQ(avgs.size(), 400u);
  EXPECT_LT(util::percentile(avgs, 5), 1200.0);
  EXPECT_GT(util::percentile(avgs, 95), 10000.0);
  EXPECT_LT(*std::max_element(avgs.begin(), avgs.end()), 1.2e5);
}

TEST(TracePool, SessionDurationsWithinPaperBounds) {
  const TracePool pool(10, 12);
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double d = pool.sample_session_duration(rng);
    ASSERT_GE(d, 10.0);
    ASSERT_LE(d, 1200.0);
  }
}

TEST(TracePool, SessionDurationHistogramShape) {
  // Figure 3b: every bin populated, short sessions common.
  const TracePool pool(10, 13);
  util::Rng rng(2);
  int bins[4] = {0, 0, 0, 0};
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double d = pool.sample_session_duration(rng);
    if (d < 60) ++bins[0];
    else if (d < 120) ++bins[1];
    else if (d < 300) ++bins[2];
    else ++bins[3];
  }
  for (int b : bins) EXPECT_GT(b, n / 10);
  EXPECT_GT(bins[0] + bins[1], bins[3]);  // short dominates long tail
}

TEST(TracePool, SampleReturnsPoolMembers) {
  const TracePool pool(5, 14);
  util::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto& t = pool.sample(rng);
    bool found = false;
    for (std::size_t j = 0; j < pool.size(); ++j) {
      if (&pool.trace(j) == &t) found = true;
    }
    EXPECT_TRUE(found);
  }
}

// Property: generated traces never produce zero total capacity (players
// must always be able to make progress eventually).
class TraceCapacityProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Environment>> {};

TEST_P(TraceCapacityProperty, PositiveAverage) {
  TraceGenerator gen(std::get<0>(GetParam()));
  const auto t = gen.generate(std::get<1>(GetParam()), 120.0);
  EXPECT_GT(t.average_kbps(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEnvs, TraceCapacityProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 8),
                       ::testing::Values(Environment::kBroadband,
                                         Environment::kThreeG,
                                         Environment::kLte)));

}  // namespace
}  // namespace droppkt::net
